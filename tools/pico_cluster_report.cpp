// pico_cluster_report — run a plan on the threaded runtime and report the
// *cluster-wide* observability view: per-device clock offsets estimated over
// the transport, true worker compute (worker-clock measured, harvested via
// TraceDump and rebased onto the coordinator timeline), true wire time
// (request and reply legs split apart using the estimated offset) and
// worker-side queueing (request receipt -> compute start).
//
// The run's merged Chrome trace — coordinator spans plus the harvested,
// offset-corrected worker spans — and the merged Prometheus dump
// (coordinator exposition followed by each worker's, harvested via
// MetricsDump) are written as artifacts.
//
// With --harvest-ms the run harvests *continuously*: a background thread
// pulls metric/span deltas from every worker mid-run (span cursors prevent
// double-counting), feeding rolling windows, a live λ̂, the per-device
// straggler detector and the online Eq. 5–11 / Thm. 2 model checker.
// --watch renders the resulting health view once per completed round;
// --slow-device injects an artificial compute delay on one device (chaos
// hook) so the straggler path can be demonstrated — and gated — on a
// loopback host.
//
// --skew-ns injects an artificial worker-clock offset (obs debug hook), so a
// loopback run on one host still exercises the estimator and the rebasing
// path end to end; --check then turns the report into a CI gate: exit
// status 2 unless every device was reachable, contributed worker compute
// spans, every harvested span lands (rebased) inside the local run window
// and nests under its serve span, and the final health snapshot holds (no
// unreachable device; with --expect-straggler, exactly the named device
// flagged).  Exit 1 is reserved for usage/runtime errors, so CI can tell
// "broken invocation" from "unhealthy cluster".
//
// --kill-device drops one worker's connection mid-run (chaos hook) and
// switches the run onto the resilient runtime: the death is detected,
// recovery replans over the survivors, and every accepted task is still
// delivered.  --expect-device-down gates that path the same way
// --expect-straggler gates the straggler detector: exit 2 unless exactly
// the named device was declared down, a DeviceDown event was recorded, and
// at least one replan happened.
//
// Examples:
//   pico_cluster_report --model configs/vgg16.cfg --input-size 64 --tasks 8
//   pico_cluster_report --model configs/vgg16.cfg --input-size 64
//       --transport tcp --skew-ns 50000000 --check --json
//   pico_cluster_report --model configs/vgg16.cfg --input-size 64 --tasks 32
//       --harvest-ms 20 --task-gap-ms 5 --slow-device 1:40 --watch
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/cfg.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"
#include "partition/pico_dp.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/resilient_runtime.hpp"
#include "runtime/worker.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: pico_cluster_report --model <model.cfg> [options]

plan:
  --scheme <name>        PICO (default), LW, EFL or OFL (case-insensitive)
  --cluster paper        the paper's 8-Pi heterogeneous testbed (default)
  --cluster homog:<n>x<ghz>   n identical Pi-class devices
  --bandwidth-mbps <b>   shared uplink bandwidth (default 50)

run:
  --tasks <n>            inferences to run (default 4)
  --input-size <n>       override the [net] height/width (toy inputs for CI)
  --transport <kind>     inproc (default) or tcp
  --skew-ns <ns>         inject an artificial worker-clock offset (debug
                         hook; proves the rebasing path on a loopback host)
  --pings <n>            clock probes per worker at harvest (default 4)

continuous harvest:
  --harvest-ms <n>       pull worker telemetry every n ms mid-run (span
                         cursors keep repeated pulls duplicate-free); 0 =
                         shutdown-only harvest (default; the PICO_HARVEST_MS
                         env var overrides either way)
  --task-gap-ms <n>      sleep n ms between submissions (spreads the run so
                         harvest rounds land mid-run; default 0)
  --slow-device <id>:<ms>  inject an artificial per-request compute delay on
                         one device (chaos hook; drives the straggler
                         detector on a loopback host)
  --watch                render the live health view (λ̂, windowed compute,
                         straggler scores, drift events) after each
                         completed harvest round, to stderr

churn:
  --kill-device <id>:<n>  drop device <id>'s connection on its n-th request
                         (chaos hook).  The run then uses the resilient
                         runtime: the death is detected, recovery replans
                         over the survivors and every accepted task is
                         re-executed — no inference is dropped
  --net-timeout-ms <n>   per-operation transport deadline on every device
                         connection (0 = block forever, default; the
                         PICO_NET_TIMEOUT_MS env var overrides)
  --expect-device-down <id>  with --check: require that exactly this device
                         was declared down (DeviceDown event + dead list),
                         that recovery replanned at least once, and that
                         the surviving devices stayed healthy

postmortem (standalone mode; --model not required):
  --postmortem <file>    load a pico_postmortem_<pid>.json crash artifact and
                         render it (text tables, or JSON with --json) instead
                         of running a cluster
  --expect-event <code>  with --postmortem: gate on the artifact containing
                         at least one event with this stable code name (e.g.
                         worker_serve, check_failed; repeatable — all must be
                         present).  Exit 2 when missing, 1 on a bad file, 0
                         when every expected event is found

output:
  --json                 emit a JSON report instead of the text tables
  --trace-out <file>     merged Chrome trace (default pico_cluster_trace.json)
  --metrics-out <file>   merged Prometheus dump (default empty = skip)
  --check                CI gate: exit 2 unless every device is reachable,
                         produced worker spans, all harvested spans are
                         rebased into the run window and nest under "serve",
                         and the final health snapshot holds
  --expect-straggler <id>  with --check: require that the health engine
                         flagged exactly this device as a straggler
)";

struct Args {
  std::string model;
  std::string scheme = "PICO";
  std::string cluster = "paper";
  double bandwidth_mbps = 50.0;
  int tasks = 4;
  int input_size = 0;
  std::string transport = "inproc";
  long long skew_ns = 0;
  int pings = 4;
  int harvest_ms = 0;
  int task_gap_ms = 0;
  pico::DeviceId slow_device = -1;
  double slow_ms = 0.0;
  pico::DeviceId kill_device = -1;
  int kill_after = 0;
  long long net_timeout_ms = 0;
  bool watch = false;
  bool json = false;
  bool check = false;
  pico::DeviceId expect_straggler = -1;
  pico::DeviceId expect_down = -1;
  std::string trace_out = "pico_cluster_trace.json";
  std::string metrics_out;
  std::string postmortem;
  std::vector<std::string> expect_events;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pico_cluster_report: " << message << "\n";
  std::exit(1);
}

double parse_double(const std::string& text, const std::string& flag) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail("bad numeric value '" + text + "' for " + flag);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= tokens.size()) fail("missing value for " + flag);
      return tokens[++i];
    };
    if (flag == "--model" || flag == "--cfg") {
      args.model = value();
    } else if (flag == "--scheme") {
      args.scheme = value();
      for (char& c : args.scheme) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    } else if (flag == "--cluster") {
      args.cluster = value();
    } else if (flag == "--bandwidth-mbps") {
      args.bandwidth_mbps = parse_double(value(), flag);
    } else if (flag == "--tasks") {
      args.tasks = static_cast<int>(parse_double(value(), flag));
      if (args.tasks < 1) fail("--tasks must be >= 1");
    } else if (flag == "--input-size") {
      args.input_size = static_cast<int>(parse_double(value(), flag));
      if (args.input_size < 1) fail("--input-size must be >= 1");
    } else if (flag == "--transport") {
      args.transport = value();
      if (args.transport != "inproc" && args.transport != "tcp") {
        fail("--transport must be inproc or tcp");
      }
    } else if (flag == "--skew-ns") {
      args.skew_ns = static_cast<long long>(parse_double(value(), flag));
    } else if (flag == "--pings") {
      args.pings = static_cast<int>(parse_double(value(), flag));
      if (args.pings < 1) fail("--pings must be >= 1");
    } else if (flag == "--harvest-ms") {
      args.harvest_ms = static_cast<int>(parse_double(value(), flag));
      if (args.harvest_ms < 0) fail("--harvest-ms must be >= 0");
    } else if (flag == "--task-gap-ms") {
      args.task_gap_ms = static_cast<int>(parse_double(value(), flag));
      if (args.task_gap_ms < 0) fail("--task-gap-ms must be >= 0");
    } else if (flag == "--slow-device") {
      const std::string spec = value();
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) fail("--slow-device <id>:<ms>");
      args.slow_device = static_cast<pico::DeviceId>(
          parse_double(spec.substr(0, colon), flag));
      args.slow_ms = parse_double(spec.substr(colon + 1), flag);
      if (args.slow_ms <= 0.0) fail("--slow-device delay must be > 0 ms");
    } else if (flag == "--kill-device") {
      const std::string spec = value();
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) fail("--kill-device <id>:<after_tasks>");
      args.kill_device = static_cast<pico::DeviceId>(
          parse_double(spec.substr(0, colon), flag));
      args.kill_after =
          static_cast<int>(parse_double(spec.substr(colon + 1), flag));
      if (args.kill_after < 1) fail("--kill-device count must be >= 1");
    } else if (flag == "--net-timeout-ms") {
      args.net_timeout_ms =
          static_cast<long long>(parse_double(value(), flag));
      if (args.net_timeout_ms < 0) fail("--net-timeout-ms must be >= 0");
    } else if (flag == "--watch") {
      args.watch = true;
    } else if (flag == "--expect-device-down") {
      args.expect_down =
          static_cast<pico::DeviceId>(parse_double(value(), flag));
    } else if (flag == "--expect-straggler") {
      args.expect_straggler =
          static_cast<pico::DeviceId>(parse_double(value(), flag));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--check") {
      args.check = true;
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--metrics-out") {
      args.metrics_out = value();
    } else if (flag == "--postmortem") {
      args.postmortem = value();
    } else if (flag == "--expect-event") {
      const std::string name = value();
      if (pico::obs::event_code_from_name(name.c_str()) ==
          pico::obs::EventCode::None) {
        fail("--expect-event: unknown event code name '" + name + "'");
      }
      args.expect_events.push_back(name);
    } else if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else {
      fail("unknown flag '" + flag + "'\n" + kUsage);
    }
  }
  if (!args.expect_events.empty() && args.postmortem.empty()) {
    fail("--expect-event needs --postmortem");
  }
  if (args.model.empty() && args.postmortem.empty()) {
    fail(std::string("--model is required\n") + kUsage);
  }
  return args;
}

pico::Cluster parse_cluster(const std::string& spec) {
  using pico::Cluster;
  if (spec == "paper") return Cluster::paper_heterogeneous();
  if (spec.rfind("homog:", 0) == 0) {
    const std::string body = spec.substr(6);
    const std::size_t x = body.find('x');
    if (x == std::string::npos) fail("--cluster homog:<n>x<ghz>");
    const int count =
        static_cast<int>(parse_double(body.substr(0, x), "--cluster"));
    const double ghz = parse_double(body.substr(x + 1), "--cluster");
    if (count < 1) fail("cluster needs at least one device");
    return Cluster::paper_homogeneous(count, ghz);
  }
  fail("unknown cluster spec '" + spec + "'");
}

pico::nn::Graph load_model(const std::string& path, int input_size) {
  std::ifstream file(path);
  if (!file.good()) fail("cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  if (input_size > 0) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    bool in_net = false;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '[') {
        in_net = line.rfind("[net]", 0) == 0;
      }
      if (in_net && (line.rfind("height=", 0) == 0 ||
                     line.rfind("width=", 0) == 0)) {
        out << line.substr(0, line.find('=') + 1) << input_size << '\n';
      } else {
        out << line << '\n';
      }
    }
    text = out.str();
  }
  return pico::models::parse_cfg(text);
}

pico::partition::Plan make_plan(const Args& args,
                                const pico::nn::Graph& graph,
                                const pico::Cluster& cluster,
                                const pico::NetworkModel& network) {
  namespace partition = pico::partition;
  partition::SchemeOptions options;
  if (args.scheme == "PICO") {
    return partition::pico_plan(graph, cluster, network, options);
  }
  if (args.scheme == "LW") return partition::lw_plan(graph, cluster, options);
  if (args.scheme == "EFL") {
    return partition::efl_plan(graph, cluster, options);
  }
  if (args.scheme == "OFL") {
    return partition::ofl_plan(graph, cluster, network, options);
  }
  fail("unknown scheme '" + args.scheme + "' (PICO, LW, EFL, OFL)");
}

std::string num(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string fmt_us(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", seconds * 1e6);
  return buffer;
}

/// Count + mean of one histogram series summed over every stage the device
/// appears in (weighted by per-stage observation counts).
struct SeriesStat {
  long long count = 0;
  double mean = 0.0;
};

SeriesStat device_series(const pico::partition::Plan& plan,
                         const std::string& name, pico::DeviceId device) {
  pico::obs::Registry& registry = pico::obs::Registry::global();
  long long count = 0;
  double sum = 0.0;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    bool present = false;
    for (const pico::partition::DeviceSlice& slice :
         plan.stages[s].assignments) {
      present |= slice.device == device;
    }
    if (!present) continue;
    const pico::obs::Histogram& hist = registry.histogram(
        name, {{"stage", std::to_string(s)},
               {"device", std::to_string(device)}});
    count += hist.count();
    sum += hist.sum();
  }
  return {count, count > 0 ? sum / static_cast<double>(count) : 0.0};
}

struct DeviceReport {
  pico::DeviceId device = -1;
  bool reachable = false;
  long long offset_ns = 0;
  long long rtt_ns = 0;
  long long error_bound_ns = 0;
  int clock_samples = 0;
  long long requests = 0;
  long long worker_spans = 0;  ///< harvested (rebased) spans from this device
  SeriesStat compute;          ///< true worker compute (worker clock)
  SeriesStat wire_request;     ///< coordinator send -> worker recv, rebased
  SeriesStat wire_reply;       ///< worker send -> coordinator recv, rebased
  SeriesStat worker_queue;     ///< worker recv -> compute start
};

/// Render one health snapshot as the text view --watch repeats per round
/// and the final report embeds.
void print_health(std::FILE* out, const pico::obs::HealthSnapshot& health) {
  std::fprintf(out,
               "cluster health: %lld round(s), lambda_hat %.3f/s, "
               "md1_wait_pred %sus, queue_wait_meas %sus — %s\n",
               static_cast<long long>(health.rounds), health.lambda_hat,
               fmt_us(health.md1_wait_predicted).c_str(),
               fmt_us(health.queue_wait_measured).c_str(),
               health.healthy() ? "healthy" : "UNHEALTHY");
  std::fprintf(out, "%8s %6s %15s %8s %10s %8s %8s\n", "device", "reach",
               "win_compute_us", "score", "straggler", "spans", "cursor");
  for (const pico::obs::DeviceHealth& device : health.devices) {
    std::fprintf(out, "%8d %6s %15s %8.2f %10s %8lld %8llu\n", device.device,
                 device.reachable ? "yes" : "NO",
                 fmt_us(device.window_compute_mean).c_str(),
                 device.straggler_score, device.straggler ? "YES" : "-",
                 static_cast<long long>(device.spans_harvested),
                 static_cast<unsigned long long>(device.trace_cursor));
  }
  for (const pico::obs::StageResidual& residual : health.residuals) {
    std::fprintf(out,
                 "  residual %-8s stage %2d: predicted %s, measured %s, "
                 "ewma %.3f\n",
                 residual.signal.c_str(), residual.stage,
                 fmt_us(residual.predicted).c_str(),
                 fmt_us(residual.measured).c_str(), residual.residual_ewma);
  }
  for (const pico::obs::HealthEvent& event : health.events) {
    std::fprintf(out, "  [round %lld] %s%s%s: %s%s\n",
                 static_cast<long long>(event.round),
                 pico::obs::health_event_kind_name(event.kind),
                 event.device >= 0
                     ? (" device " + std::to_string(event.device)).c_str()
                     : "",
                 event.stage >= 0
                     ? (" stage " + std::to_string(event.stage)).c_str()
                     : "",
                 event.detail.c_str(),
                 event.blackbox.empty()
                     ? ""
                     : (" [black box: " +
                        std::to_string(event.blackbox.size()) + " event(s)]")
                           .c_str());
  }
}

/// Standalone --postmortem mode: render a crash artifact and gate on the
/// expected event codes.  Exit 0 = rendered (and every --expect-event code
/// present), 2 = a gate failed, 1 = the file is unreadable or malformed.
int postmortem_mode(const Args& args) {
  namespace obs = pico::obs;
  obs::Postmortem pm;
  try {
    pm = obs::load_postmortem(args.postmortem);
  } catch (const std::exception& error) {
    std::cerr << "pico_cluster_report: " << error.what() << "\n";
    return 1;
  }

  if (args.json) {
    std::cout << "{\n  \"postmortem\": \"" << args.postmortem << "\",\n"
              << "  \"pid\": " << pm.pid << ",\n  \"reason\": \"" << pm.reason
              << "\",\n  \"signal\": " << pm.signal_number
              << ",\n  \"threads\": " << pm.threads.size()
              << ",\n  \"pending_spans\": " << pm.spans.size()
              << ",\n  \"metrics\": " << pm.metrics.size()
              << ",\n  \"events\": [";
    for (std::size_t i = 0; i < pm.events.size(); ++i) {
      const obs::PostmortemEvent& event = pm.events[i];
      std::cout << (i ? "," : "") << "\n    {\"seq\": " << event.seq
                << ", \"t_ns\": " << event.t_ns << ", \"tid\": " << event.tid
                << ", \"thread\": \"" << pm.thread_name(event.tid)
                << "\", \"name\": \"" << event.name << "\", \"args\": ["
                << event.args[0] << ", " << event.args[1] << ", "
                << event.args[2] << ", " << event.args[3] << "]}";
    }
    std::cout << "\n  ]\n}\n";
  } else {
    std::printf("postmortem %s: pid %d, reason %s", args.postmortem.c_str(),
                pm.pid, pm.reason.c_str());
    if (pm.signal_number != 0) std::printf(" (signal %d)", pm.signal_number);
    std::printf("\n%zu thread(s), %zu journal event(s), %zu open span(s), "
                "%zu metric(s)\n\n",
                pm.threads.size(), pm.events.size(), pm.spans.size(),
                pm.metrics.size());
    std::printf("%8s %14s %-14s %-18s args\n", "seq", "t_ns", "thread",
                "event");
    for (const obs::PostmortemEvent& event : pm.events) {
      const std::string thread = pm.thread_name(event.tid);
      std::printf("%8llu %14lld %-14s %-18s %lld %lld %lld %lld\n",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<long long>(event.t_ns),
                  thread.empty() ? ("tid " + std::to_string(event.tid)).c_str()
                                 : thread.c_str(),
                  event.name.c_str(), static_cast<long long>(event.args[0]),
                  static_cast<long long>(event.args[1]),
                  static_cast<long long>(event.args[2]),
                  static_cast<long long>(event.args[3]));
    }
    if (!pm.spans.empty()) {
      std::printf("\nspans still open at dump time:\n");
      for (const obs::PostmortemSpan& span : pm.spans) {
        std::printf("  %-14s start %lld ns, track %lld, task %lld (%s)\n",
                    span.name.c_str(), static_cast<long long>(span.start_ns),
                    static_cast<long long>(span.track),
                    static_cast<long long>(span.task_id),
                    pm.thread_name(span.tid).c_str());
      }
    }
  }

  int failures = 0;
  for (const std::string& expected : args.expect_events) {
    bool found = false;
    for (const obs::PostmortemEvent& event : pm.events) {
      found |= event.name == expected;
    }
    if (!found) {
      std::cerr << "pico_cluster_report: CHECK FAILED: postmortem has no '"
                << expected << "' event\n";
      ++failures;
    }
  }
  if (failures > 0) return 2;
  if (!args.expect_events.empty()) {
    std::cerr << "all postmortem event checks passed\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.postmortem.empty()) return postmortem_mode(args);
  try {
    namespace obs = pico::obs;
    namespace runtime = pico::runtime;

    const pico::nn::Graph graph = load_model(args.model, args.input_size);
    const pico::Cluster cluster = parse_cluster(args.cluster);
    pico::NetworkModel network;
    network.bandwidth = args.bandwidth_mbps * 1e6 / 8.0;
    const pico::partition::Plan plan =
        make_plan(args, graph, cluster, network);

    obs::Registry& registry = obs::Registry::global();
    registry.reset_values();
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_enabled(true);
    obs::set_debug_clock_skew_ns(args.skew_ns);

    runtime::RuntimeOptions options;
    options.transport = args.transport == "tcp"
                            ? runtime::TransportKind::Tcp
                            : runtime::TransportKind::InProcess;
    options.harvest_pings = args.pings;
    options.harvest_ms = args.harvest_ms;
    options.net_timeout_ms = args.net_timeout_ms;
    if (args.watch && args.harvest_ms == 0) options.harvest_ms = 50;
    if (args.slow_device >= 0) {
      runtime::set_debug_compute_delay_ms(args.slow_device, args.slow_ms);
    }

    const pico::Shape in_shape =
        graph.node(plan.stages.front().first).in_shape;
    pico::Tensor input(in_shape);
    pico::Rng rng(7);
    input.randomize(rng);

    const std::int64_t run_start_ns = obs::Tracer::now_ns();
    std::vector<obs::WorkerTelemetry> workers;
    obs::HealthSnapshot health;
    std::vector<pico::DeviceId> dead;
    int replans = 0;
    // Submit/await/shutdown loop shared by the plain and the resilient
    // runtimes (both expose submit/health/shutdown/cluster_telemetry).
    auto run_tasks = [&](auto& rt) {
      std::vector<std::future<pico::Tensor>> futures;
      futures.reserve(static_cast<std::size_t>(args.tasks));
      std::int64_t watched_rounds = 0;
      auto watch_tick = [&] {
        if (!args.watch) return;
        const obs::HealthSnapshot live = rt.health();
        if (live.rounds > watched_rounds) {
          watched_rounds = live.rounds;
          print_health(stderr, live);
        }
      };
      for (int i = 0; i < args.tasks; ++i) {
        futures.push_back(rt.submit(input));
        if (args.task_gap_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(args.task_gap_ms));
        }
        watch_tick();
      }
      for (auto& f : futures) {
        f.get();
        watch_tick();
      }
      rt.shutdown();  // stops the periodic thread, runs one final harvest
      workers = rt.cluster_telemetry().workers();
      health = rt.health();
    };
    if (args.kill_device >= 0) {
      // Churn mode: arm the chaos hook and run under the resilient runtime
      // so the death is detected, survivors replanned, and every accepted
      // task still completes.  Device ids stay in the full-cluster space.
      runtime::set_debug_worker_kill_after(args.kill_device, args.kill_after);
      runtime::ResilientOptions resilient;
      resilient.runtime = options;
      resilient.network = network;
      resilient.replan = [&args, &network](const pico::nn::Graph& g,
                                           const pico::Cluster& survivors) {
        return make_plan(args, g, survivors, network);
      };
      runtime::ResilientRuntime rt(graph, cluster, resilient);
      run_tasks(rt);
      dead = rt.dead_devices();
      replans = rt.replans();
      runtime::clear_debug_worker_faults();
    } else {
      runtime::PipelineRuntime rt(graph, plan, options);
      run_tasks(rt);
    }
    runtime::clear_debug_compute_delays();
    const std::int64_t run_end_ns = obs::Tracer::now_ns();

    std::vector<pico::DeviceId> devices;
    for (const pico::partition::Stage& stage : plan.stages) {
      for (const pico::partition::DeviceSlice& slice : stage.assignments) {
        bool seen = false;
        for (const pico::DeviceId id : devices) seen |= id == slice.device;
        if (!seen) devices.push_back(slice.device);
      }
    }
    std::sort(devices.begin(), devices.end());

    std::vector<DeviceReport> report;
    for (const pico::DeviceId id : devices) {
      DeviceReport row;
      row.device = id;
      for (const obs::WorkerTelemetry& worker : workers) {
        if (worker.device != id) continue;
        row.reachable = worker.reachable;
        row.offset_ns = worker.offset_ns;
        row.rtt_ns = worker.rtt_ns;
        row.error_bound_ns = worker.error_bound_ns;
        row.clock_samples = worker.clock_samples;
        row.worker_spans = static_cast<long long>(worker.spans.size());
      }
      row.requests =
          registry
              .counter("pico_device_requests_total",
                       {{"device", std::to_string(id)}})
              .value();
      row.compute = device_series(plan, "pico_stage_compute_seconds", id);
      row.wire_request = device_series(plan, "pico_wire_request_seconds", id);
      row.wire_reply = device_series(plan, "pico_wire_reply_seconds", id);
      row.worker_queue = device_series(plan, "pico_worker_queue_seconds", id);
      report.push_back(row);
    }

    // Artifacts: merged Chrome trace (the global tracer already contains
    // the harvested, rebased worker spans) + merged Prometheus dump.
    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    std::map<std::int64_t, std::string> track_names;
    track_names[obs::task_track()] = "tasks";
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      track_names[obs::stage_track(static_cast<int>(s))] =
          "stage " + std::to_string(s);
    }
    for (const pico::DeviceId id : devices) {
      track_names[obs::device_track(id)] = "device " + std::to_string(id);
    }
    track_names[obs::net_track()] = "net";
    obs::write_chrome_trace_file(args.trace_out, spans, track_names);
    if (!args.metrics_out.empty()) {
      obs::ClusterTelemetry merged;
      for (obs::WorkerTelemetry worker : workers) {
        merged.add(std::move(worker));
      }
      std::ofstream out(args.metrics_out, std::ios::trunc);
      if (!out.good()) fail("cannot write " + args.metrics_out);
      out << merged.merged_prometheus(registry.prometheus_text());
    }

    if (args.json) {
      std::cout << "{\n  \"model\": \"" << args.model << "\",\n";
      std::cout << "  \"scheme\": \"" << plan.scheme << "\",\n";
      std::cout << "  \"transport\": \"" << args.transport << "\",\n";
      std::cout << "  \"tasks\": " << args.tasks << ",\n";
      std::cout << "  \"injected_skew_ns\": " << args.skew_ns << ",\n";
      std::cout << "  \"devices\": [";
      for (std::size_t i = 0; i < report.size(); ++i) {
        const DeviceReport& row = report[i];
        std::cout << (i ? "," : "") << "\n    {\"device\": " << row.device
                  << ", \"reachable\": "
                  << (row.reachable ? "true" : "false")
                  << ", \"clock_offset_ns\": " << row.offset_ns
                  << ", \"clock_rtt_ns\": " << row.rtt_ns
                  << ", \"clock_error_bound_ns\": " << row.error_bound_ns
                  << ", \"clock_samples\": " << row.clock_samples
                  << ", \"requests\": " << row.requests
                  << ", \"worker_spans\": " << row.worker_spans
                  << ", \"compute_mean_s\": " << num(row.compute.mean)
                  << ", \"wire_request_mean_s\": "
                  << num(row.wire_request.mean)
                  << ", \"wire_reply_mean_s\": " << num(row.wire_reply.mean)
                  << ", \"worker_queue_mean_s\": "
                  << num(row.worker_queue.mean) << "}";
      }
      std::cout << "\n  ],\n  \"health\": {\n";
      std::cout << "    \"rounds\": " << health.rounds << ",\n";
      std::cout << "    \"lambda_hat\": " << num(health.lambda_hat) << ",\n";
      std::cout << "    \"md1_wait_predicted_s\": "
                << num(health.md1_wait_predicted) << ",\n";
      std::cout << "    \"queue_wait_measured_s\": "
                << num(health.queue_wait_measured) << ",\n";
      std::cout << "    \"healthy\": " << (health.healthy() ? "true" : "false")
                << ",\n    \"devices\": [";
      for (std::size_t i = 0; i < health.devices.size(); ++i) {
        const obs::DeviceHealth& device = health.devices[i];
        std::cout << (i ? "," : "") << "\n      {\"device\": "
                  << device.device << ", \"reachable\": "
                  << (device.reachable ? "true" : "false")
                  << ", \"window_compute_mean_s\": "
                  << num(device.window_compute_mean)
                  << ", \"straggler_score\": " << num(device.straggler_score)
                  << ", \"straggler\": "
                  << (device.straggler ? "true" : "false")
                  << ", \"spans_harvested\": " << device.spans_harvested
                  << ", \"trace_cursor\": " << device.trace_cursor << "}";
      }
      std::cout << "\n    ],\n    \"events\": [";
      for (std::size_t i = 0; i < health.events.size(); ++i) {
        const obs::HealthEvent& event = health.events[i];
        std::cout << (i ? "," : "") << "\n      {\"round\": " << event.round
                  << ", \"kind\": \""
                  << obs::health_event_kind_name(event.kind)
                  << "\", \"device\": " << event.device
                  << ", \"stage\": " << event.stage << ", \"value\": "
                  << num(event.value)
                  << ", \"blackbox_events\": " << event.blackbox.size() << "}";
      }
      std::cout << "\n    ]\n  },\n";
      std::cout << "  \"recovery\": {\"dead_devices\": [";
      for (std::size_t i = 0; i < dead.size(); ++i) {
        std::cout << (i ? ", " : "") << dead[i];
      }
      std::cout << "], \"replans\": " << replans << "},\n";
      std::cout << "  \"spans\": " << spans.size() << ",\n";
      std::cout << "  \"trace\": \"" << args.trace_out << "\"\n}\n";
    } else {
      std::printf(
          "pico_cluster_report: %s, scheme %s, %d tasks (%s transport",
          args.model.c_str(), plan.scheme.c_str(), args.tasks,
          args.transport.c_str());
      if (args.skew_ns != 0) {
        std::printf(", injected skew %lld ns", args.skew_ns);
      }
      std::printf(")\n\nper-device clock sync (estimated over the wire):\n");
      std::printf("%8s %6s %14s %12s %12s %8s\n", "device", "reach",
                  "offset_ns", "rtt_ns", "err_bound", "samples");
      for (const DeviceReport& row : report) {
        std::printf("%8d %6s %14lld %12lld %12lld %8d\n", row.device,
                    row.reachable ? "yes" : "NO", row.offset_ns, row.rtt_ns,
                    row.error_bound_ns, row.clock_samples);
      }
      std::printf(
          "\nper-device time split, means in microseconds (true worker "
          "compute vs wire vs queueing):\n");
      std::printf("%8s %9s %7s | %12s %12s %12s %12s\n", "device",
                  "requests", "spans", "compute_us", "wire_req_us",
                  "wire_rep_us", "queue_us");
      for (const DeviceReport& row : report) {
        std::printf("%8d %9lld %7lld | %12s %12s %12s %12s\n", row.device,
                    row.requests, row.worker_spans,
                    fmt_us(row.compute.mean).c_str(),
                    fmt_us(row.wire_request.mean).c_str(),
                    fmt_us(row.wire_reply.mean).c_str(),
                    fmt_us(row.worker_queue.mean).c_str());
      }
      std::printf("\n");
      print_health(stdout, health);
      if (args.kill_device >= 0) {
        std::printf("\nrecovery: %d replan(s), dead devices:", replans);
        if (dead.empty()) std::printf(" none");
        for (const pico::DeviceId id : dead) std::printf(" %d", id);
        std::printf("\n");
      }
      std::printf("\nwrote %zu spans (merged cluster trace) to %s\n",
                  spans.size(), args.trace_out.c_str());
      if (!args.metrics_out.empty()) {
        std::printf("wrote merged metrics dump to %s\n",
                    args.metrics_out.c_str());
      }
    }

    if (args.check) {
      int failures = 0;
      auto check = [&failures](bool ok, const std::string& what) {
        if (!ok) {
          std::cerr << "pico_cluster_report: CHECK FAILED: " << what << "\n";
          ++failures;
        }
      };
      // A deliberately killed device is exempt from the liveness rows (it
      // legitimately ends the run unreachable); its own gate is below.
      auto is_dead = [&dead](pico::DeviceId id) {
        return std::find(dead.begin(), dead.end(), id) != dead.end();
      };
      for (const DeviceReport& row : report) {
        if (is_dead(row.device)) continue;
        const std::string dev = "device " + std::to_string(row.device);
        check(row.reachable, dev + " unreachable at harvest");
        check(row.worker_spans > 0, dev + " produced no worker spans");
        check(row.clock_samples > 0, dev + " has no accepted clock samples");
      }
      // Health-engine gate: at least one completed round, every surviving
      // device reachable in the final snapshot, and — when a straggler was
      // deliberately injected — exactly the expected device flagged.
      check(health.rounds > 0, "no harvest round completed");
      for (const obs::DeviceHealth& device : health.devices) {
        if (is_dead(device.device)) continue;
        check(device.reachable, "device " + std::to_string(device.device) +
                                    " unreachable in the health snapshot");
      }
      // Death-recovery gate (mirror of the straggler gate): with an
      // injected kill the expectation is exact — the named device and no
      // other was declared down, the DeviceDown event survived the epoch
      // swap, and recovery actually replanned.
      if (args.expect_down >= 0) {
        check(args.kill_device >= 0,
              "--expect-device-down needs --kill-device to inject a death");
        check(is_dead(args.expect_down),
              "device " + std::to_string(args.expect_down) +
                  " was not declared down");
        check(dead.size() <= 1, "more than one device was declared down");
        check(replans >= 1, "the device death did not trigger a replan");
        bool down_event = false;
        bool other_down = false;
        for (const obs::HealthEvent& event : health.events) {
          if (event.kind != obs::HealthEventKind::DeviceDown) continue;
          if (event.device == args.expect_down) {
            down_event = true;
          } else {
            other_down = true;
          }
        }
        check(down_event, "no DeviceDown health event for device " +
                              std::to_string(args.expect_down));
        check(!other_down, "DeviceDown health event for an unexpected device");
      }
      // Straggler flags gate only on request: on a loopback host a
      // heterogeneous *modeled* cluster runs on identical real cores, so
      // per-device wall times legitimately diverge from the plan's
      // equal-time sizing — flags are advisory there.  With an injected
      // slowdown the expectation is exact: the named device and no other.
      if (args.expect_straggler >= 0) {
        for (const obs::DeviceHealth& device : health.devices) {
          const bool expected = device.device == args.expect_straggler;
          check(device.straggler == expected,
                "device " + std::to_string(device.device) +
                    (expected ? " was not flagged as the straggler"
                              : " falsely flagged as a straggler"));
        }
      }
      // Every harvested worker span must have been rebased into the local
      // run window (an unrebased span under injected skew lands far
      // outside) and every compute span must nest inside a serve span.
      const std::int64_t slack_ns =
          std::max<std::int64_t>(5'000'000, std::llabs(args.skew_ns) / 4);
      std::vector<const obs::SpanRecord*> serves;
      for (const obs::WorkerTelemetry& worker : workers) {
        for (const obs::SpanRecord& span : worker.spans) {
          if (span.name == "serve") serves.push_back(&span);
        }
      }
      for (const obs::WorkerTelemetry& worker : workers) {
        for (const obs::SpanRecord& span : worker.spans) {
          const std::string what = "span '" + span.name + "' of device " +
                                   std::to_string(worker.device);
          check(span.start_ns >= run_start_ns - slack_ns &&
                    span.start_ns + span.duration_ns <=
                        run_end_ns + slack_ns,
                what + " not rebased into the run window");
          check(span.duration_ns >= 0, what + " has negative duration");
          if (span.name == "compute") {
            bool nested = false;
            for (const obs::SpanRecord* serve : serves) {
              nested |= serve->track == span.track &&
                        serve->task_id == span.task_id &&
                        serve->start_ns <= span.start_ns &&
                        span.start_ns + span.duration_ns <=
                            serve->start_ns + serve->duration_ns;
            }
            check(nested, what + " does not nest inside its serve span");
          }
        }
      }
      if (failures > 0) {
        std::cerr << "pico_cluster_report: " << failures
                  << " check(s) failed\n";
        // Exit 2 = the cluster failed its health/observability gate (vs 1
        // for usage or runtime errors) — machine-readable for CI.
        return 2;
      }
      // stderr: --json callers own stdout for the report itself.
      std::cerr << "all cluster-observability checks passed\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "pico_cluster_report: " << error.what() << "\n";
    return 1;
  }
}
