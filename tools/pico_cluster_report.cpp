// pico_cluster_report — run a plan on the threaded runtime and report the
// *cluster-wide* observability view: per-device clock offsets estimated over
// the transport, true worker compute (worker-clock measured, harvested via
// TraceDump and rebased onto the coordinator timeline), true wire time
// (request and reply legs split apart using the estimated offset) and
// worker-side queueing (request receipt -> compute start).
//
// The run's merged Chrome trace — coordinator spans plus the harvested,
// offset-corrected worker spans — and the merged Prometheus dump
// (coordinator exposition followed by each worker's, harvested via
// MetricsDump) are written as artifacts.
//
// --skew-ns injects an artificial worker-clock offset (obs debug hook), so a
// loopback run on one host still exercises the estimator and the rebasing
// path end to end; --check then turns the report into a CI gate: exit
// nonzero unless every device was reachable, contributed worker compute
// spans, and every harvested span lands (rebased) inside the local run
// window and nests under its serve span.
//
// Examples:
//   pico_cluster_report --model configs/vgg16.cfg --input-size 64 --tasks 8
//   pico_cluster_report --model configs/vgg16.cfg --input-size 64
//       --transport tcp --skew-ns 50000000 --check --json
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "models/cfg.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"
#include "partition/pico_dp.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: pico_cluster_report --model <model.cfg> [options]

plan:
  --scheme <name>        PICO (default), LW, EFL or OFL (case-insensitive)
  --cluster paper        the paper's 8-Pi heterogeneous testbed (default)
  --cluster homog:<n>x<ghz>   n identical Pi-class devices
  --bandwidth-mbps <b>   shared uplink bandwidth (default 50)

run:
  --tasks <n>            inferences to run (default 4)
  --input-size <n>       override the [net] height/width (toy inputs for CI)
  --transport <kind>     inproc (default) or tcp
  --skew-ns <ns>         inject an artificial worker-clock offset (debug
                         hook; proves the rebasing path on a loopback host)
  --pings <n>            clock probes per worker at harvest (default 4)

output:
  --json                 emit a JSON report instead of the text tables
  --trace-out <file>     merged Chrome trace (default pico_cluster_trace.json)
  --metrics-out <file>   merged Prometheus dump (default empty = skip)
  --check                CI gate: exit 1 unless every device is reachable,
                         produced worker spans, and all harvested spans are
                         rebased into the run window and nest under "serve"
)";

struct Args {
  std::string model;
  std::string scheme = "PICO";
  std::string cluster = "paper";
  double bandwidth_mbps = 50.0;
  int tasks = 4;
  int input_size = 0;
  std::string transport = "inproc";
  long long skew_ns = 0;
  int pings = 4;
  bool json = false;
  bool check = false;
  std::string trace_out = "pico_cluster_trace.json";
  std::string metrics_out;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pico_cluster_report: " << message << "\n";
  std::exit(1);
}

double parse_double(const std::string& text, const std::string& flag) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail("bad numeric value '" + text + "' for " + flag);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= tokens.size()) fail("missing value for " + flag);
      return tokens[++i];
    };
    if (flag == "--model" || flag == "--cfg") {
      args.model = value();
    } else if (flag == "--scheme") {
      args.scheme = value();
      for (char& c : args.scheme) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    } else if (flag == "--cluster") {
      args.cluster = value();
    } else if (flag == "--bandwidth-mbps") {
      args.bandwidth_mbps = parse_double(value(), flag);
    } else if (flag == "--tasks") {
      args.tasks = static_cast<int>(parse_double(value(), flag));
      if (args.tasks < 1) fail("--tasks must be >= 1");
    } else if (flag == "--input-size") {
      args.input_size = static_cast<int>(parse_double(value(), flag));
      if (args.input_size < 1) fail("--input-size must be >= 1");
    } else if (flag == "--transport") {
      args.transport = value();
      if (args.transport != "inproc" && args.transport != "tcp") {
        fail("--transport must be inproc or tcp");
      }
    } else if (flag == "--skew-ns") {
      args.skew_ns = static_cast<long long>(parse_double(value(), flag));
    } else if (flag == "--pings") {
      args.pings = static_cast<int>(parse_double(value(), flag));
      if (args.pings < 1) fail("--pings must be >= 1");
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--check") {
      args.check = true;
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--metrics-out") {
      args.metrics_out = value();
    } else if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else {
      fail("unknown flag '" + flag + "'\n" + kUsage);
    }
  }
  if (args.model.empty()) {
    fail(std::string("--model is required\n") + kUsage);
  }
  return args;
}

pico::Cluster parse_cluster(const std::string& spec) {
  using pico::Cluster;
  if (spec == "paper") return Cluster::paper_heterogeneous();
  if (spec.rfind("homog:", 0) == 0) {
    const std::string body = spec.substr(6);
    const std::size_t x = body.find('x');
    if (x == std::string::npos) fail("--cluster homog:<n>x<ghz>");
    const int count =
        static_cast<int>(parse_double(body.substr(0, x), "--cluster"));
    const double ghz = parse_double(body.substr(x + 1), "--cluster");
    if (count < 1) fail("cluster needs at least one device");
    return Cluster::paper_homogeneous(count, ghz);
  }
  fail("unknown cluster spec '" + spec + "'");
}

pico::nn::Graph load_model(const std::string& path, int input_size) {
  std::ifstream file(path);
  if (!file.good()) fail("cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  if (input_size > 0) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    bool in_net = false;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '[') {
        in_net = line.rfind("[net]", 0) == 0;
      }
      if (in_net && (line.rfind("height=", 0) == 0 ||
                     line.rfind("width=", 0) == 0)) {
        out << line.substr(0, line.find('=') + 1) << input_size << '\n';
      } else {
        out << line << '\n';
      }
    }
    text = out.str();
  }
  return pico::models::parse_cfg(text);
}

pico::partition::Plan make_plan(const Args& args,
                                const pico::nn::Graph& graph,
                                const pico::Cluster& cluster,
                                const pico::NetworkModel& network) {
  namespace partition = pico::partition;
  partition::SchemeOptions options;
  if (args.scheme == "PICO") {
    return partition::pico_plan(graph, cluster, network, options);
  }
  if (args.scheme == "LW") return partition::lw_plan(graph, cluster, options);
  if (args.scheme == "EFL") {
    return partition::efl_plan(graph, cluster, options);
  }
  if (args.scheme == "OFL") {
    return partition::ofl_plan(graph, cluster, network, options);
  }
  fail("unknown scheme '" + args.scheme + "' (PICO, LW, EFL, OFL)");
}

std::string num(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string fmt_us(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", seconds * 1e6);
  return buffer;
}

/// Count + mean of one histogram series summed over every stage the device
/// appears in (weighted by per-stage observation counts).
struct SeriesStat {
  long long count = 0;
  double mean = 0.0;
};

SeriesStat device_series(const pico::partition::Plan& plan,
                         const std::string& name, pico::DeviceId device) {
  pico::obs::Registry& registry = pico::obs::Registry::global();
  long long count = 0;
  double sum = 0.0;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    bool present = false;
    for (const pico::partition::DeviceSlice& slice :
         plan.stages[s].assignments) {
      present |= slice.device == device;
    }
    if (!present) continue;
    const pico::obs::Histogram& hist = registry.histogram(
        name, {{"stage", std::to_string(s)},
               {"device", std::to_string(device)}});
    count += hist.count();
    sum += hist.sum();
  }
  return {count, count > 0 ? sum / static_cast<double>(count) : 0.0};
}

struct DeviceReport {
  pico::DeviceId device = -1;
  bool reachable = false;
  long long offset_ns = 0;
  long long rtt_ns = 0;
  long long error_bound_ns = 0;
  int clock_samples = 0;
  long long requests = 0;
  long long worker_spans = 0;  ///< harvested (rebased) spans from this device
  SeriesStat compute;          ///< true worker compute (worker clock)
  SeriesStat wire_request;     ///< coordinator send -> worker recv, rebased
  SeriesStat wire_reply;       ///< worker send -> coordinator recv, rebased
  SeriesStat worker_queue;     ///< worker recv -> compute start
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    namespace obs = pico::obs;
    namespace runtime = pico::runtime;

    const pico::nn::Graph graph = load_model(args.model, args.input_size);
    const pico::Cluster cluster = parse_cluster(args.cluster);
    pico::NetworkModel network;
    network.bandwidth = args.bandwidth_mbps * 1e6 / 8.0;
    const pico::partition::Plan plan =
        make_plan(args, graph, cluster, network);

    obs::Registry& registry = obs::Registry::global();
    registry.reset_values();
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.set_enabled(true);
    obs::set_debug_clock_skew_ns(args.skew_ns);

    runtime::RuntimeOptions options;
    options.transport = args.transport == "tcp"
                            ? runtime::TransportKind::Tcp
                            : runtime::TransportKind::InProcess;
    options.harvest_pings = args.pings;

    const pico::Shape in_shape =
        graph.node(plan.stages.front().first).in_shape;
    pico::Tensor input(in_shape);
    pico::Rng rng(7);
    input.randomize(rng);

    const std::int64_t run_start_ns = obs::Tracer::now_ns();
    std::vector<obs::WorkerTelemetry> workers;
    {
      runtime::PipelineRuntime rt(graph, plan, options);
      std::vector<std::future<pico::Tensor>> futures;
      futures.reserve(static_cast<std::size_t>(args.tasks));
      for (int i = 0; i < args.tasks; ++i) futures.push_back(rt.submit(input));
      for (auto& f : futures) f.get();
      rt.shutdown();  // harvests worker telemetry over the transport
      workers = rt.cluster_telemetry().workers();
    }
    const std::int64_t run_end_ns = obs::Tracer::now_ns();

    std::vector<pico::DeviceId> devices;
    for (const pico::partition::Stage& stage : plan.stages) {
      for (const pico::partition::DeviceSlice& slice : stage.assignments) {
        bool seen = false;
        for (const pico::DeviceId id : devices) seen |= id == slice.device;
        if (!seen) devices.push_back(slice.device);
      }
    }
    std::sort(devices.begin(), devices.end());

    std::vector<DeviceReport> report;
    for (const pico::DeviceId id : devices) {
      DeviceReport row;
      row.device = id;
      for (const obs::WorkerTelemetry& worker : workers) {
        if (worker.device != id) continue;
        row.reachable = worker.reachable;
        row.offset_ns = worker.offset_ns;
        row.rtt_ns = worker.rtt_ns;
        row.error_bound_ns = worker.error_bound_ns;
        row.clock_samples = worker.clock_samples;
        row.worker_spans = static_cast<long long>(worker.spans.size());
      }
      row.requests =
          registry
              .counter("pico_device_requests_total",
                       {{"device", std::to_string(id)}})
              .value();
      row.compute = device_series(plan, "pico_stage_compute_seconds", id);
      row.wire_request = device_series(plan, "pico_wire_request_seconds", id);
      row.wire_reply = device_series(plan, "pico_wire_reply_seconds", id);
      row.worker_queue = device_series(plan, "pico_worker_queue_seconds", id);
      report.push_back(row);
    }

    // Artifacts: merged Chrome trace (the global tracer already contains
    // the harvested, rebased worker spans) + merged Prometheus dump.
    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    std::map<std::int64_t, std::string> track_names;
    track_names[obs::task_track()] = "tasks";
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      track_names[obs::stage_track(static_cast<int>(s))] =
          "stage " + std::to_string(s);
    }
    for (const pico::DeviceId id : devices) {
      track_names[obs::device_track(id)] = "device " + std::to_string(id);
    }
    track_names[obs::net_track()] = "net";
    obs::write_chrome_trace_file(args.trace_out, spans, track_names);
    if (!args.metrics_out.empty()) {
      obs::ClusterTelemetry merged;
      for (obs::WorkerTelemetry worker : workers) {
        merged.add(std::move(worker));
      }
      std::ofstream out(args.metrics_out, std::ios::trunc);
      if (!out.good()) fail("cannot write " + args.metrics_out);
      out << merged.merged_prometheus(registry.prometheus_text());
    }

    if (args.json) {
      std::cout << "{\n  \"model\": \"" << args.model << "\",\n";
      std::cout << "  \"scheme\": \"" << plan.scheme << "\",\n";
      std::cout << "  \"transport\": \"" << args.transport << "\",\n";
      std::cout << "  \"tasks\": " << args.tasks << ",\n";
      std::cout << "  \"injected_skew_ns\": " << args.skew_ns << ",\n";
      std::cout << "  \"devices\": [";
      for (std::size_t i = 0; i < report.size(); ++i) {
        const DeviceReport& row = report[i];
        std::cout << (i ? "," : "") << "\n    {\"device\": " << row.device
                  << ", \"reachable\": "
                  << (row.reachable ? "true" : "false")
                  << ", \"clock_offset_ns\": " << row.offset_ns
                  << ", \"clock_rtt_ns\": " << row.rtt_ns
                  << ", \"clock_error_bound_ns\": " << row.error_bound_ns
                  << ", \"clock_samples\": " << row.clock_samples
                  << ", \"requests\": " << row.requests
                  << ", \"worker_spans\": " << row.worker_spans
                  << ", \"compute_mean_s\": " << num(row.compute.mean)
                  << ", \"wire_request_mean_s\": "
                  << num(row.wire_request.mean)
                  << ", \"wire_reply_mean_s\": " << num(row.wire_reply.mean)
                  << ", \"worker_queue_mean_s\": "
                  << num(row.worker_queue.mean) << "}";
      }
      std::cout << "\n  ],\n  \"spans\": " << spans.size() << ",\n";
      std::cout << "  \"trace\": \"" << args.trace_out << "\"\n}\n";
    } else {
      std::printf(
          "pico_cluster_report: %s, scheme %s, %d tasks (%s transport",
          args.model.c_str(), plan.scheme.c_str(), args.tasks,
          args.transport.c_str());
      if (args.skew_ns != 0) {
        std::printf(", injected skew %lld ns", args.skew_ns);
      }
      std::printf(")\n\nper-device clock sync (estimated over the wire):\n");
      std::printf("%8s %6s %14s %12s %12s %8s\n", "device", "reach",
                  "offset_ns", "rtt_ns", "err_bound", "samples");
      for (const DeviceReport& row : report) {
        std::printf("%8d %6s %14lld %12lld %12lld %8d\n", row.device,
                    row.reachable ? "yes" : "NO", row.offset_ns, row.rtt_ns,
                    row.error_bound_ns, row.clock_samples);
      }
      std::printf(
          "\nper-device time split, means in microseconds (true worker "
          "compute vs wire vs queueing):\n");
      std::printf("%8s %9s %7s | %12s %12s %12s %12s\n", "device",
                  "requests", "spans", "compute_us", "wire_req_us",
                  "wire_rep_us", "queue_us");
      for (const DeviceReport& row : report) {
        std::printf("%8d %9lld %7lld | %12s %12s %12s %12s\n", row.device,
                    row.requests, row.worker_spans,
                    fmt_us(row.compute.mean).c_str(),
                    fmt_us(row.wire_request.mean).c_str(),
                    fmt_us(row.wire_reply.mean).c_str(),
                    fmt_us(row.worker_queue.mean).c_str());
      }
      std::printf("\nwrote %zu spans (merged cluster trace) to %s\n",
                  spans.size(), args.trace_out.c_str());
      if (!args.metrics_out.empty()) {
        std::printf("wrote merged metrics dump to %s\n",
                    args.metrics_out.c_str());
      }
    }

    if (args.check) {
      int failures = 0;
      auto check = [&failures](bool ok, const std::string& what) {
        if (!ok) {
          std::cerr << "pico_cluster_report: CHECK FAILED: " << what << "\n";
          ++failures;
        }
      };
      for (const DeviceReport& row : report) {
        const std::string dev = "device " + std::to_string(row.device);
        check(row.reachable, dev + " unreachable at harvest");
        check(row.worker_spans > 0, dev + " produced no worker spans");
        check(row.clock_samples > 0, dev + " has no accepted clock samples");
      }
      // Every harvested worker span must have been rebased into the local
      // run window (an unrebased span under injected skew lands far
      // outside) and every compute span must nest inside a serve span.
      const std::int64_t slack_ns =
          std::max<std::int64_t>(5'000'000, std::llabs(args.skew_ns) / 4);
      std::vector<const obs::SpanRecord*> serves;
      for (const obs::WorkerTelemetry& worker : workers) {
        for (const obs::SpanRecord& span : worker.spans) {
          if (span.name == "serve") serves.push_back(&span);
        }
      }
      for (const obs::WorkerTelemetry& worker : workers) {
        for (const obs::SpanRecord& span : worker.spans) {
          const std::string what = "span '" + span.name + "' of device " +
                                   std::to_string(worker.device);
          check(span.start_ns >= run_start_ns - slack_ns &&
                    span.start_ns + span.duration_ns <=
                        run_end_ns + slack_ns,
                what + " not rebased into the run window");
          check(span.duration_ns >= 0, what + " has negative duration");
          if (span.name == "compute") {
            bool nested = false;
            for (const obs::SpanRecord* serve : serves) {
              nested |= serve->track == span.track &&
                        serve->task_id == span.task_id &&
                        serve->start_ns <= span.start_ns &&
                        span.start_ns + span.duration_ns <=
                            serve->start_ns + serve->duration_ns;
            }
            check(nested, what + " does not nest inside its serve span");
          }
        }
      }
      if (failures > 0) {
        std::cerr << "pico_cluster_report: " << failures
                  << " check(s) failed\n";
        return 1;
      }
      // stderr: --json callers own stdout for the report itself.
      std::cerr << "all cluster-observability checks passed\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "pico_cluster_report: " << error.what() << "\n";
    return 1;
  }
}
