// pico_postmortem — render a flight-recorder crash artifact
// (pico_postmortem_<pid>.json, written by the signal/terminate handlers or
// write_postmortem_now) as a causal timeline: every journal event in seq
// order with wall-clock deltas, thread names, decoded args, the spans that
// were still open when the process died, and the crash-slot metrics
// snapshot.
//
// With --trace the journal is additionally merged into an existing Chrome
// trace (the pico_cluster_report / PICO_TRACE artifact): each event becomes
// a "ph":"i" instant on a dedicated "flight recorder" track, so the crash
// record and the span timeline line up in one viewer.  Worker-side
// postmortems carry worker-clock timestamps; --offset-ns subtracts the
// harvest-estimated clock offset first (the same rebasing harvest applies
// to spans), so cross-machine artifacts land on the coordinator timeline.
//
// Examples:
//   pico_postmortem pico_postmortem_12345.json
//   pico_postmortem pico_postmortem_12345.json --offset-ns 48123456
//       --trace pico_cluster_trace.json --out merged_trace.json
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/postmortem.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: pico_postmortem <postmortem.json> [options]

  --offset-ns <n>   subtract n from every event timestamp before rendering
                    (rebase a worker-clock artifact onto the coordinator
                    timeline, mirroring the harvest span rebasing)
  --trace <file>    merge the journal into this Chrome trace as "ph":"i"
                    instant events on a "flight recorder" track
  --out <file>      merged trace destination (default
                    pico_postmortem_trace.json; requires --trace)
  --json            machine-readable timeline on stdout instead of text
)";

struct Args {
  std::string postmortem;
  std::string trace;
  std::string out = "pico_postmortem_trace.json";
  long long offset_ns = 0;
  bool json = false;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pico_postmortem: " << message << "\n";
  std::exit(1);
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= tokens.size()) fail("missing value for " + flag);
      return tokens[++i];
    };
    if (flag == "--offset-ns") {
      try {
        args.offset_ns = std::stoll(value());
      } catch (const std::exception&) {
        fail("bad value for --offset-ns");
      }
    } else if (flag == "--trace") {
      args.trace = value();
    } else if (flag == "--out") {
      args.out = value();
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (!flag.empty() && flag[0] == '-') {
      fail("unknown flag '" + flag + "'\n" + kUsage);
    } else if (args.postmortem.empty()) {
      args.postmortem = flag;
    } else {
      fail("more than one postmortem file given\n" + std::string(kUsage));
    }
  }
  if (args.postmortem.empty()) fail(std::string(kUsage));
  return args;
}

void json_escape(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Decode the string-table-indexed args (check_failed files, plan_switch
/// scheme names) back to text where the code is known to intern.
std::string describe_args(const pico::obs::Postmortem& pm,
                          const pico::obs::PostmortemEvent& event) {
  namespace obs = pico::obs;
  auto interned = [&pm](std::int64_t index) -> std::string {
    if (index >= 0 && static_cast<std::size_t>(index) < pm.strings.size()) {
      return pm.strings[static_cast<std::size_t>(index)];
    }
    return "?";
  };
  const auto code = static_cast<obs::EventCode>(event.code);
  std::ostringstream os;
  if (code == obs::EventCode::PlanSwitch) {
    os << interned(event.args[0]) << " -> " << interned(event.args[1])
       << " (switch " << event.args[2] << ")";
  } else if (code == obs::EventCode::CheckFailed) {
    os << interned(event.args[1]) << ":" << event.args[0];
  } else {
    os << event.args[0] << " " << event.args[1] << " " << event.args[2] << " "
       << event.args[3];
  }
  return os.str();
}

/// Splice instant events into an existing Chrome trace file: everything up
/// to the final ']' is kept verbatim, the journal rides in after it.
void merge_into_trace(const Args& args, const pico::obs::Postmortem& pm) {
  std::ifstream in(args.trace);
  if (!in.good()) fail("cannot read " + args.trace);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  const std::size_t end = text.rfind(']');
  if (end == std::string::npos) {
    fail(args.trace + " does not look like a Chrome trace (no ']')");
  }
  const bool empty_array = [&] {
    for (std::size_t i = end; i-- > 0;) {
      if (text[i] == '[') return true;
      if (!std::isspace(static_cast<unsigned char>(text[i]))) return false;
    }
    return true;
  }();

  // The recorder gets its own viewer row, far from the span tracks.
  constexpr long long kRecorderTrack = 990000;
  std::ostringstream os;
  os << text.substr(0, end);
  if (!empty_array) os << ',';
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << kRecorderTrack
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"flight recorder (pid "
     << pm.pid << ")\"}}";
  os.precision(15);
  for (const pico::obs::PostmortemEvent& event : pm.events) {
    os << ",{\"ph\":\"i\",\"pid\":0,\"tid\":" << kRecorderTrack
       << ",\"s\":\"t\",\"name\":";
    json_escape(os, event.name);
    os << ",\"cat\":\"recorder\",\"ts\":"
       << static_cast<double>(event.t_ns) / 1e3 << ",\"args\":{\"seq\":"
       << event.seq << ",\"thread\":";
    json_escape(os, pm.thread_name(event.tid));
    os << ",\"detail\":";
    json_escape(os, describe_args(pm, event));
    os << "}}";
  }
  os << text.substr(end);

  std::ofstream out(args.out, std::ios::trunc);
  if (!out.good()) fail("cannot write " + args.out);
  out << os.str();
  if (!out.good()) fail("write to " + args.out + " failed");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  namespace obs = pico::obs;
  obs::Postmortem pm;
  try {
    pm = obs::load_postmortem(args.postmortem);
  } catch (const std::exception& error) {
    fail(error.what());
  }
  // Rebase (and keep events seq-sorted: load_postmortem sorted them, and a
  // uniform shift preserves that order on the time axis too).
  for (obs::PostmortemEvent& event : pm.events) event.t_ns -= args.offset_ns;
  for (obs::PostmortemSpan& span : pm.spans) span.start_ns -= args.offset_ns;

  if (args.json) {
    std::ostringstream os;
    os << "{\n  \"pid\": " << pm.pid << ",\n  \"reason\": ";
    json_escape(os, pm.reason);
    os << ",\n  \"signal\": " << pm.signal_number << ",\n  \"events\": [";
    for (std::size_t i = 0; i < pm.events.size(); ++i) {
      const obs::PostmortemEvent& event = pm.events[i];
      os << (i ? "," : "") << "\n    {\"seq\": " << event.seq
         << ", \"t_ns\": " << event.t_ns << ", \"thread\": ";
      json_escape(os, pm.thread_name(event.tid));
      os << ", \"name\": ";
      json_escape(os, event.name);
      os << ", \"detail\": ";
      json_escape(os, describe_args(pm, event));
      os << "}";
    }
    os << "\n  ],\n  \"open_spans\": [";
    for (std::size_t i = 0; i < pm.spans.size(); ++i) {
      const obs::PostmortemSpan& span = pm.spans[i];
      os << (i ? "," : "") << "\n    {\"name\": ";
      json_escape(os, span.name);
      os << ", \"start_ns\": " << span.start_ns << ", \"task\": "
         << span.task_id << ", \"thread\": ";
      json_escape(os, pm.thread_name(span.tid));
      os << "}";
    }
    os << "\n  ]\n}\n";
    std::cout << os.str();
  } else {
    std::printf("postmortem of pid %d — %s", pm.pid, pm.reason.c_str());
    if (pm.signal_number != 0) std::printf(" (signal %d)", pm.signal_number);
    if (args.offset_ns != 0) {
      std::printf(", rebased by -%lld ns", args.offset_ns);
    }
    std::printf("\n\ncausal timeline (%zu event(s)):\n", pm.events.size());
    std::int64_t last_ns = pm.events.empty() ? 0 : pm.events.front().t_ns;
    for (const obs::PostmortemEvent& event : pm.events) {
      const std::string thread = pm.thread_name(event.tid);
      std::printf("  %8llu  %14lld ns  %+10lld  %-14s %-18s %s\n",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<long long>(event.t_ns),
                  static_cast<long long>(event.t_ns - last_ns),
                  thread.empty() ? ("tid " + std::to_string(event.tid)).c_str()
                                 : thread.c_str(),
                  event.name.c_str(), describe_args(pm, event).c_str());
      last_ns = event.t_ns;
    }
    if (!pm.spans.empty()) {
      std::printf("\nin flight at death (%zu open span(s)):\n",
                  pm.spans.size());
      for (const obs::PostmortemSpan& span : pm.spans) {
        std::printf("  %-14s started %lld ns, task %lld, thread %s\n",
                    span.name.c_str(), static_cast<long long>(span.start_ns),
                    static_cast<long long>(span.task_id),
                    pm.thread_name(span.tid).c_str());
      }
    }
    if (!pm.metrics.empty()) {
      std::printf("\nmetrics snapshot (%zu):\n", pm.metrics.size());
      for (const obs::PostmortemMetric& metric : pm.metrics) {
        std::printf("  %-36s%s count %lld value %.9g\n", metric.name.c_str(),
                    metric.labels.empty()
                        ? ""
                        : ("{" + metric.labels + "}").c_str(),
                    static_cast<long long>(metric.count), metric.value);
      }
    }
  }

  if (!args.trace.empty()) {
    merge_into_trace(args, pm);
    std::fprintf(stderr, "pico_postmortem: merged %zu event(s) into %s\n",
                 pm.events.size(), args.out.c_str());
  }
  return 0;
}
