#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the library and
# tool sources using the compile database of an existing build directory.
#
# usage: tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
#   tools/run_tidy.sh               # uses ./build
#   tools/run_tidy.sh build-asan
#   tools/run_tidy.sh build -- --fix
#
# Exits non-zero if clang-tidy reports any diagnostic, so CI can gate on it.
# The container/toolchain may lack clang-tidy (the repo builds with GCC
# alone); in that case this script reports SKIP and exits 0 so local runs
# and non-clang CI legs are not broken.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_tidy: $tidy_bin not found — SKIP (install clang-tidy to enable)"
  exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_tidy: no compile database at $db" >&2
  echo "          configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

# Library, analysis and tool translation units; tests and benches follow the
# same config but are linted only when LINT_TESTS=1 (they are gtest/benchmark
# macro-heavy and slower to process).
mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" -name '*.cpp' | sort)
if [ "${LINT_TESTS:-0}" = "1" ]; then
  mapfile -t test_sources < <(find "$repo_root/tests" "$repo_root/bench" -name '*.cpp' | sort)
  sources+=("${test_sources[@]}")
fi

echo "run_tidy: ${#sources[@]} file(s), database $db"
status=0
for source in "${sources[@]}"; do
  if ! "$tidy_bin" -p "$build_dir" --quiet "$@" "$source"; then
    status=1
  fi
done
exit $status
