#!/usr/bin/env bash
# Guarded-state lint: every mutable data member of the concurrent runtime
# classes must carry an explicit concurrency discipline (PICO_GUARDED_BY,
# std::atomic, const/static, a synchronization primitive, or a documented
# `// sched-exempt: <reason>`).
#
# This used to be a standalone awk scanner.  The same policy now lives in
# pico_lint's `unguarded-member` check (tools/pico_lint/check_guarded.cpp),
# which parses real declarations instead of regex-matching lines — so this
# script is a thin wrapper: find (or build) the pico_lint binary and run
# just that check.  Path scoping inside pico_lint pins the check to the
# concurrency habitats (src/runtime/*.hpp, src/common/thread_pool.hpp, ...),
# matching what the awk version scanned.
#
# usage: tools/check_guarded.sh
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Prefer an already-built binary (any build tree); else compile the lint
# sources directly — they are dependency-free C++17, so a plain compiler
# invocation works without CMake.
pico_lint=""
for candidate in "$repo_root"/build*/tools/pico_lint/pico_lint; do
  if [ -x "$candidate" ]; then
    pico_lint="$candidate"
    break
  fi
done

if [ -z "$pico_lint" ]; then
  cxx="${CXX:-c++}"
  cache_dir="${TMPDIR:-/tmp}/pico_lint_wrapper"
  mkdir -p "$cache_dir"
  pico_lint="$cache_dir/pico_lint"
  echo "check_guarded: building pico_lint with $cxx ..."
  # Everything except clang_frontend.cpp (which needs Clang dev headers).
  sources=()
  for src in "$repo_root"/tools/pico_lint/*.cpp; do
    case "$src" in
      */clang_frontend.cpp) ;;
      *) sources+=("$src") ;;
    esac
  done
  if ! "$cxx" -std=c++17 -O1 -I "$repo_root/tools/pico_lint" \
      "${sources[@]}" -o "$pico_lint"; then
    echo "check_guarded: FAIL — could not build pico_lint"
    exit 1
  fi
fi

echo "check_guarded: using $pico_lint"
if ! "$pico_lint" --src-root "$repo_root" --check unguarded-member \
    --baseline "$repo_root/tools/pico_lint/baseline.txt"; then
  echo "check_guarded: FAIL — annotate with PICO_GUARDED_BY(...), make the"
  echo "member std::atomic/const, or document why it needs neither with"
  echo "'// sched-exempt: <reason>'."
  exit 1
fi
echo "check_guarded: OK"
