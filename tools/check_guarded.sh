#!/usr/bin/env bash
# Guarded-state lint: every mutable data member of the concurrent runtime
# classes must carry an explicit concurrency discipline.  A member
# declaration (trailing-underscore name) in the scanned headers passes iff
# the line
#
#   - is annotated PICO_GUARDED_BY(...) (clang -Wthread-safety checks it), or
#   - is a std::atomic, or
#   - is const / static / a Mutex / a CondVar (synchronization primitives
#     and immutable state need no guard), or
#   - carries `// sched-exempt: <reason>` on the same or preceding line, or
#   - sits inside a `// sched-exempt-begin: <reason>` ... `// sched-exempt-end`
#     block (for classes whose whole private section shares one discipline).
#
# Anything else is an unguarded mutable member — the class of state the
# PICO_SCHED explorer exists to catch races on — and fails the lint.
#
# Pure bash + awk (no clang needed), so unlike the format/tidy gates this
# one never SKIPs.
#
# usage: tools/check_guarded.sh
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

files=("$repo_root"/src/runtime/*.hpp "$repo_root"/src/common/thread_pool.hpp)

echo "check_guarded: ${#files[@]} file(s)"

fail=0
for file in "${files[@]}"; do
  out="$(awk '
    # Track sched-exempt block scopes.
    /\/\/ *sched-exempt-begin:/ { in_block = 1 }
    /\/\/ *sched-exempt-end/    { in_block = 0 }

    {
      line = $0
      # A sched-exempt comment covers the next code line, carrying across
      # the rest of a multi-line comment.
      if (line ~ /^[ \t]*\/\//) {
        if (line ~ /\/\/ *sched-exempt:/) pending = 1
        prev_exempt = 0
      } else {
        prev_exempt = pending
        pending = 0
      }
    }

    # A member declaration: optional indentation, a type, then an
    # identifier ending in `_` followed by an initializer, annotation, or
    # semicolon.  Locals never have trailing underscores in this codebase
    # (Google style), so headers only match real members.
    /^[ \t]+[A-Za-z_][A-Za-z0-9_:<>,&* \t()]*[ \t][A-Za-z_][A-Za-z0-9_]*_[ \t]*([;={]|PICO_GUARDED_BY)/ {
      if (in_block) next
      if (prev_exempt) next
      if (line ~ /\/\/ *sched-exempt:/) next
      if (line ~ /PICO_GUARDED_BY/) next
      if (line ~ /std::atomic/) next
      if (line ~ /^[ \t]*(static|const)[ \t]/) next
      if (line ~ /^[ \t]*(mutable[ \t]+)?(pico::)?(Mutex|CondVar)[ \t]/) next
      if (line ~ /^[ \t]*(using|typedef|return|throw|delete|new)[ \t]/) next
      printf "%s:%d: unguarded mutable member: %s\n", FILENAME, FNR, line
    }
  ' "$file")"
  if [ -n "$out" ]; then
    echo "$out"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_guarded: FAIL — annotate with PICO_GUARDED_BY(...), make the"
  echo "member std::atomic/const, or document why it needs neither with"
  echo "'// sched-exempt: <reason>'."
  exit 1
fi
echo "check_guarded: OK"
