// pico_audit — static plan/graph auditor CLI.
//
// Loads a model (.cfg), a cluster description and a partition plan (from a
// pico-plan file or freshly planned with a named scheme), runs the
// analysis::audit_plan checks and prints a text or JSON report.  Exit code:
//   0  audit passed (no error findings)
//   1  usage / input error
//   2  audit found at least one error
//
// Examples:
//   pico_audit --cfg configs/vgg16.cfg --scheme PICO
//   pico_audit --cfg configs/yolov2.cfg --plan deploy/yolo.plan --json
//   pico_audit --cfg configs/vgg16.cfg --scheme EFL --cluster homog:4x1.2
//              --memory-limit-mb 512
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "models/cfg.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_io.hpp"
#include "partition/schemes.hpp"

namespace {

constexpr const char* kUsage = R"(usage: pico_audit --cfg <model.cfg> [options]

plan source (default: --scheme PICO):
  --plan <file>          audit a saved pico-plan file
  --scheme <name>        plan with a scheme: PICO, LW, EFL or OFL

cluster (default: the paper's 8-Pi heterogeneous testbed):
  --cluster paper        2x1.2GHz + 2x0.8GHz + 4x0.6GHz Raspberry Pis
  --cluster homog:<n>x<ghz>   n identical Pi-class devices
  --cluster pi:<f1,f2,...>    Pi-class devices at the given GHz

checks / model:
  --bandwidth-mbps <b>   shared uplink bandwidth (default 50)
  --tlim <seconds>       pipeline latency bound T_lim (default: none)
  --memory-limit-mb <m>  per-device memory budget (default: none)
  --redundancy-warn <r>  stage redundancy warning threshold (default 0.75)

output:
  --json                 emit the JSON report instead of text
  --output <file>        write the report to a file instead of stdout
)";

struct Args {
  std::string cfg;
  std::string plan_file;
  std::string scheme = "PICO";
  std::string cluster = "paper";
  double bandwidth_mbps = 50.0;
  double tlim = 0.0;           // 0 = unset
  double memory_limit_mb = 0.0;
  double redundancy_warn = 0.75;
  bool json = false;
  std::string output;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pico_audit: " << message << "\n";
  std::exit(1);
}

double parse_double(const std::string& text, const std::string& flag) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail("bad numeric value '" + text + "' for " + flag);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= tokens.size()) fail("missing value for " + flag);
      return tokens[++i];
    };
    if (flag == "--cfg") {
      args.cfg = value();
    } else if (flag == "--plan") {
      args.plan_file = value();
    } else if (flag == "--scheme") {
      args.scheme = value();
    } else if (flag == "--cluster") {
      args.cluster = value();
    } else if (flag == "--bandwidth-mbps") {
      args.bandwidth_mbps = parse_double(value(), flag);
    } else if (flag == "--tlim") {
      args.tlim = parse_double(value(), flag);
    } else if (flag == "--memory-limit-mb") {
      args.memory_limit_mb = parse_double(value(), flag);
    } else if (flag == "--redundancy-warn") {
      args.redundancy_warn = parse_double(value(), flag);
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--output") {
      args.output = value();
    } else if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else {
      fail("unknown flag '" + flag + "'\n" + kUsage);
    }
  }
  if (args.cfg.empty()) fail(std::string("--cfg is required\n") + kUsage);
  return args;
}

pico::Cluster parse_cluster(const std::string& spec) {
  using pico::Cluster;
  if (spec == "paper") return Cluster::paper_heterogeneous();
  if (spec.rfind("homog:", 0) == 0) {
    const std::string body = spec.substr(6);
    const std::size_t x = body.find('x');
    if (x == std::string::npos) fail("--cluster homog:<n>x<ghz>");
    const int count = static_cast<int>(
        parse_double(body.substr(0, x), "--cluster"));
    const double ghz = parse_double(body.substr(x + 1), "--cluster");
    if (count < 1) fail("cluster needs at least one device");
    return Cluster::paper_homogeneous(count, ghz);
  }
  if (spec.rfind("pi:", 0) == 0) {
    std::vector<double> freqs;
    std::stringstream body(spec.substr(3));
    std::string item;
    while (std::getline(body, item, ',')) {
      freqs.push_back(parse_double(item, "--cluster"));
    }
    if (freqs.empty()) fail("--cluster pi:<f1,f2,...>");
    return Cluster::raspberry_pi(freqs);
  }
  fail("unknown cluster spec '" + spec + "'");
}

pico::partition::Plan make_plan(const Args& args, const pico::nn::Graph& graph,
                                const pico::Cluster& cluster,
                                const pico::NetworkModel& network) {
  namespace partition = pico::partition;
  if (!args.plan_file.empty()) return partition::load_plan(args.plan_file);
  partition::SchemeOptions options;
  if (args.tlim > 0.0) options.latency_limit = args.tlim;
  if (args.scheme == "PICO") {
    return partition::pico_plan(graph, cluster, network, options);
  }
  if (args.scheme == "LW") return partition::lw_plan(graph, cluster, options);
  if (args.scheme == "EFL") {
    return partition::efl_plan(graph, cluster, options);
  }
  if (args.scheme == "OFL") {
    return partition::ofl_plan(graph, cluster, network, options);
  }
  fail("unknown scheme '" + args.scheme + "' (PICO, LW, EFL, OFL)");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    const pico::nn::Graph graph = pico::models::load_cfg(args.cfg);
    const pico::Cluster cluster = parse_cluster(args.cluster);
    pico::NetworkModel network;
    network.bandwidth = args.bandwidth_mbps * 1e6 / 8.0;
    const pico::partition::Plan plan =
        make_plan(args, graph, cluster, network);

    pico::analysis::AuditOptions options;
    if (args.memory_limit_mb > 0.0) {
      options.device_memory_limit = args.memory_limit_mb * 1024.0 * 1024.0;
    }
    if (args.tlim > 0.0) options.latency_limit = args.tlim;
    options.redundancy_warning = args.redundancy_warn;

    const pico::analysis::AuditReport report =
        pico::analysis::audit_plan(graph, cluster, network, plan, options);
    const std::string rendered = args.json
                                     ? pico::analysis::to_json(report)
                                     : pico::analysis::to_text(report);
    if (args.output.empty()) {
      std::cout << rendered;
      if (args.json) std::cout << "\n";
    } else {
      std::ofstream out(args.output);
      if (!out) fail("cannot write " + args.output);
      out << rendered;
      if (args.json) out << "\n";
    }
    return report.ok() ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "pico_audit: " << error.what() << "\n";
    return 1;
  }
}
