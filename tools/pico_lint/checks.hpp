// pico_lint — check interface and registry.
//
// Eight checks, each codifying a bug class this repo has actually shipped
// (see DESIGN.md §12 for the motivating bugs and the suppression syntax):
//
//   narrow-mul           int×int extent/stride arithmetic that feeds a wide
//                        context (64-bit variable, pointer offset, subscript,
//                        allocation size) — the im2col / bucket_index class.
//   unchecked-status     discarded result of a status-returning call
//                        (POSIX errno-style calls, [[nodiscard]] functions,
//                        Error/Status-returning repo functions).
//   blocking-under-lock  send/recv/join/sleep-style blocking calls inside a
//                        MutexLock / lock_guard scope — the class lockdep
//                        only sees dynamically.
//   unguarded-member     mutable members of runtime classes lacking
//                        PICO_GUARDED_BY/atomic/const/exemption (the AST
//                        promotion of tools/check_guarded.sh).
//   wire-taint           allocation sizes, loop bounds or indices derived
//                        from decoded wire bytes used before a bounds check.
//   signal-unsafe        interprocedural: anything reachable from a
//                        `// pico-lint: signal-root` function (the crash
//                        postmortem path) that allocates, locks, throws or
//                        touches stdio — see check_signal_safety.cpp.
//   escape-to-thread     reference/`this` lambda captures escaping into a
//                        thread/pool task that can outlive the captured
//                        scope — the shape of the repo's three worst UAFs.
//   use-after-move       moved-from locals read before reassignment.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "model.hpp"

namespace pico::lint {

struct Finding {
  std::string check;
  std::string path;     // path as given on the command line
  std::string relpath;  // repo-relative (used for scoping + fingerprints)
  int line = 0;
  std::string message;
  std::string hint;
  std::string excerpt;  // whitespace-normalized source line
};

struct CheckOptions {
  bool scope_all = false;  // run every check on every file (fixture tests)
  std::set<std::string> enabled;  // empty = all
  // Status-returning function names collected from declarations across the
  // whole input set ([[nodiscard]] / Error-returning), merged with the
  // builtin POSIX list by the unchecked-status check.
  std::set<std::string> status_fns;
};

/// All check ids, in reporting order.
const std::vector<std::string>& all_check_ids();

/// True if `check` applies to the file at repo-relative path `relpath`.
bool check_in_scope(const std::string& check, const std::string& relpath);

/// Pre-pass: collect [[nodiscard]] / Error-returning function declarations.
void collect_status_decls(const LexedFile& file,
                          std::set<std::string>& status_fns);

/// Run every enabled, in-scope check over one lexed file.
std::vector<Finding> run_checks(const LexedFile& file,
                                const std::string& relpath,
                                const CheckOptions& options);

// Individual checks (exposed for targeted testing).
void check_narrowing(const LexedFile& file, const FileModel& model,
                     const Suppressions& sup, const std::string& relpath,
                     std::vector<Finding>& out);
void check_status(const LexedFile& file, const FileModel& model,
                  const Suppressions& sup, const std::string& relpath,
                  const std::set<std::string>& status_fns,
                  std::vector<Finding>& out);
void check_locking(const LexedFile& file, const FileModel& model,
                   const Suppressions& sup, const std::string& relpath,
                   std::vector<Finding>& out);
void check_guarded(const LexedFile& file, const FileModel& model,
                   const Suppressions& sup, const std::string& relpath,
                   std::vector<Finding>& out);
void check_taint(const LexedFile& file, const FileModel& model,
                 const Suppressions& sup, const std::string& relpath,
                 std::vector<Finding>& out);
void check_escape(const LexedFile& file, const FileModel& model,
                  const Suppressions& sup, const std::string& relpath,
                  std::vector<Finding>& out);
void check_move(const LexedFile& file, const FileModel& model,
                const Suppressions& sup, const std::string& relpath,
                std::vector<Finding>& out);

// Project-level check: needs the whole-input call graph, so it runs once
// after the per-file passes (the driver builds the graph with
// build_callgraph and hands it here).  Findings get path/relpath/excerpt
// filled in by the check itself.  When `report_out` is non-null, a
// human-readable call-graph report (roots, reachable closure, leaves,
// verdict) is appended to it.
struct CallGraph;
void check_signal_safety(const CallGraph& graph,
                         const std::vector<LexedFile>& files,
                         std::vector<Finding>& out, std::string* report_out);

/// Whitespace-normalized text of line `line` (1-based) of `file`.
std::string line_excerpt(const LexedFile& file, int line);

}  // namespace pico::lint
