#include "model.hpp"

#include <algorithm>
#include <cstddef>

namespace pico::lint {

namespace {

const std::set<std::string>& narrow_types() {
  static const std::set<std::string> kNarrow = {
      "int",      "signed",   "unsigned", "short",    "char",
      "int8_t",   "int16_t",  "int32_t",  "uint8_t",  "uint16_t",
      "uint32_t", "char8_t",  "char16_t", "char32_t", "wchar_t",
  };
  return kNarrow;
}

const std::set<std::string>& wide_types() {
  static const std::set<std::string> kWide = {
      "long",      "int64_t",   "uint64_t",  "size_t",    "ptrdiff_t",
      "ssize_t",   "streamsize", "intptr_t", "uintptr_t", "intmax_t",
      "uintmax_t", "off_t",
  };
  return kWide;
}

bool is_statement_keyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "return", "throw",  "delete",   "if",     "else",    "for",
      "while",  "do",     "switch",   "case",   "default", "break",
      "continue", "goto", "new",      "using",  "typedef", "template",
      "public", "private", "protected", "try",  "catch",   "sizeof",
      "co_return", "co_yield", "co_await", "static_assert", "friend",
      "operator", "this", "namespace", "class", "struct",  "union",
      "enum",
  };
  return kKeywords.count(t) > 0;
}

bool is_qualifier(const std::string& t) {
  static const std::set<std::string> kQual = {
      "const", "constexpr", "static", "mutable", "volatile", "register",
      "thread_local", "inline",
  };
  return kQual.count(t) > 0;
}

bool is_builtin_type_word(const std::string& t) {
  static const std::set<std::string> kBuiltin = {
      "unsigned", "signed", "long", "short", "int", "char", "bool",
      "float", "double", "void", "auto",
  };
  return kBuiltin.count(t) > 0;
}

/// Skip a balanced template-argument list starting at `i` (tokens[i] == "<").
/// Returns the index just past the matching ">".  Conservative: gives up (and
/// returns i + 1) if the region does not balance within the statement.
std::size_t skip_template_args(const std::vector<Token>& tokens,
                               std::size_t i) {
  int depth = 0;
  std::size_t j = i;
  const std::size_t limit = std::min(tokens.size(), i + 400);
  while (j < limit) {
    const std::string& t = tokens[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      --depth;
      if (depth == 0) return j + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t == ";" || t == "{") {
      break;  // clearly not a template argument list
    }
    ++j;
  }
  return i + 1;
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& o = tokens[open].text;
  std::string close;
  if (o == "(") {
    close = ")";
  } else if (o == "[") {
    close = "]";
  } else if (o == "{") {
    close = "}";
  } else {
    return open;
  }
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == o) {
      ++depth;
    } else if (t == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size() - 1;
}

Width classify_type(const std::vector<std::string>& type_tokens) {
  bool saw_narrow = false, saw_wide = false, saw_other = false,
       saw_auto = false;
  for (std::size_t i = 0; i < type_tokens.size(); ++i) {
    const std::string& t = type_tokens[i];
    if (t == "*") return Width::Pointer;
    if (t == "&" || t == "&&" || t == "::" || is_qualifier(t)) continue;
    if (t == "auto") {
      saw_auto = true;
      continue;
    }
    if (t == "long") {
      saw_wide = true;  // long and long long are 64-bit on LP64
      continue;
    }
    if (wide_types().count(t)) {
      saw_wide = true;
      continue;
    }
    if (narrow_types().count(t)) {
      saw_narrow = true;
      continue;
    }
    if (t == "bool" || t == "float" || t == "double" || t == "void") {
      saw_other = true;
      continue;
    }
    if (t == "std") continue;
    // Any other identifier (class types, templates) -> not an integer we
    // can reason about.
    saw_other = true;
  }
  if (saw_other) return Width::Other;
  if (saw_wide) return Width::Wide;
  if (saw_narrow) return Width::Narrow;
  if (saw_auto) return Width::Unknown;
  return Width::Unknown;
}

// ---------------------------------------------------------------------------
// build_model
// ---------------------------------------------------------------------------

namespace {

struct BraceClass {
  enum Kind { Namespace, Class, Function, Skip, Transparent } kind;
  std::string name;          // class or function name when applicable
  std::size_t params_begin;  // for Function: '(' of the parameter list
};

/// Classify the '{' at index `open` by scanning backwards.
BraceClass classify_open_brace(const std::vector<Token>& tokens,
                               std::size_t open) {
  // Scan the introducer span: backwards to the previous ';', '{' or '}'.
  std::size_t span_begin = 0;
  {
    int angle = 0;  // tolerate '>' of template parameter lists
    std::size_t j = open;
    while (j > 0) {
      --j;
      const std::string& t = tokens[j].text;
      if (t == ">") ++angle;
      if (t == "<" && angle > 0) --angle;
      if (t == ";" || t == "{" || t == "}") {
        span_begin = j + 1;
        break;
      }
      if (t == ")") {
        // Jump over balanced parens so `for (...;...;...)` semicolons do
        // not terminate the span scan.
        int depth = 0;
        while (j > 0) {
          const std::string& u = tokens[j].text;
          if (u == ")") ++depth;
          if (u == "(") {
            --depth;
            if (depth == 0) break;
          }
          --j;
        }
      }
    }
  }

  bool has_namespace = false, has_class = false, has_enum = false;
  for (std::size_t j = span_begin; j < open; ++j) {
    const std::string& t = tokens[j].text;
    if (t == "namespace" || t == "extern") has_namespace = true;
    if (t == "class" || t == "struct" || t == "union") has_class = true;
    if (t == "enum") has_enum = true;
    if (t == "(") {
      // `class`/`struct` appearing inside parens (a parameter) does not
      // introduce a class body; stop treating the span as a class head.
      has_class = false;
      has_namespace = false;
    }
  }
  if (has_enum) return {BraceClass::Skip, "", 0};
  if (has_namespace) return {BraceClass::Namespace, "", 0};
  if (has_class) {
    // Class name: identifier right after the class/struct keyword.
    std::string name;
    for (std::size_t j = span_begin; j + 1 < open; ++j) {
      const std::string& t = tokens[j].text;
      if (t == "class" || t == "struct" || t == "union") {
        if (tokens[j + 1].ident()) name = tokens[j + 1].text;
        break;
      }
    }
    return {BraceClass::Class, name, 0};
  }

  // Function body?  Walk back over trailing qualifiers to a ')'.
  std::size_t j = open;
  while (j > span_begin) {
    --j;
    const std::string& t = tokens[j].text;
    if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
        t == "mutable" || t == "try" || t == "->" || t == "&" || t == "&&" ||
        tokens[j].ident()) {
      // `-> Type` trailing return types and PICO_*() qualifier macros pass
      // through; a bare identifier here is either a trailing return type or
      // an attribute macro name.
      if (t == ")" || t == "{") break;
      continue;
    }
    if (t == ")") {
      // Find the matching '('; handle constructor init lists by walking
      // further left across `: member(init), member(init)` chains.
      std::size_t close = j;
      for (;;) {
        int depth = 0;
        std::size_t k = close;
        while (k > 0) {
          const std::string& u = tokens[k].text;
          if (u == ")" || u == "}") ++depth;
          if (u == "(" || u == "{") {
            --depth;
            if (depth == 0) break;
          }
          --k;
        }
        // Token before the '(' (or '{' of a brace-init in an init list).
        if (k == 0) return {BraceClass::Skip, "", 0};
        std::size_t before = k - 1;
        if (!tokens[before].ident()) {
          // `if (...) {`, `for (...) {`, lambda `] (...) {`, etc.
          return {BraceClass::Transparent, "", 0};
        }
        const std::string callee = tokens[before].text;
        if (callee == "if" || callee == "for" || callee == "while" ||
            callee == "switch" || callee == "catch") {
          return {BraceClass::Transparent, "", 0};
        }
        // Init-list member?  `X::X(...) : member_(init), other_{init} {`
        // The token before `member_(` is ':' or ','.
        if (before > 0 &&
            (tokens[before - 1].text == ":" || tokens[before - 1].text == ",")) {
          // Walk left past the ':' of the init list to the param list ')'.
          std::size_t colon = before - 1;
          while (colon > 0 && tokens[colon].text == ",") {
            // Skip the previous initializer group: ident ( ... ) or
            // ident { ... }.
            std::size_t g = colon - 1;  // should be ')' or '}'
            int d = 0;
            while (g > 0) {
              const std::string& u = tokens[g].text;
              if (u == ")" || u == "}") ++d;
              if (u == "(" || u == "{") {
                --d;
                if (d == 0) break;
              }
              --g;
            }
            if (g < 2) return {BraceClass::Skip, "", 0};
            colon = g - 2;  // before the initializer's identifier
          }
          if (tokens[colon].text != ":") return {BraceClass::Skip, "", 0};
          if (colon == 0 || tokens[colon - 1].text != ")") {
            return {BraceClass::Skip, "", 0};
          }
          close = colon - 1;
          continue;  // re-run with the real parameter list
        }
        return {BraceClass::Function, callee, k};
      }
    }
    break;
  }
  return {BraceClass::Skip, "", 0};
}

}  // namespace

FileModel build_model(const LexedFile& file) {
  FileModel model;
  model.file = &file;
  const std::vector<Token>& tokens = file.tokens;
  std::vector<BraceClass::Kind> stack;

  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "}") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (t != "{") continue;

    // Brace-init / array initializers directly after '=' or an identifier
    // are data, not scopes: skip them wholesale.
    if (i > 0 && (tokens[i - 1].text == "=" || tokens[i - 1].text == "return")) {
      i = match_forward(tokens, i);
      continue;
    }

    const BraceClass bc = classify_open_brace(tokens, i);
    switch (bc.kind) {
      case BraceClass::Namespace:
      case BraceClass::Transparent:
        stack.push_back(bc.kind);
        break;
      case BraceClass::Class: {
        ClassInfo cls;
        cls.name = bc.name;
        cls.body_begin = i;
        cls.body_end = match_forward(tokens, i);
        cls.line = tokens[i].line;
        model.classes.push_back(std::move(cls));
        stack.push_back(bc.kind);
        break;
      }
      case BraceClass::Function: {
        FunctionInfo fn;
        fn.name = bc.name;
        fn.params_begin = bc.params_begin;
        fn.body_begin = i;
        fn.body_end = match_forward(tokens, i);
        fn.line = tokens[i].line;
        const std::size_t end = fn.body_end;
        model.functions.push_back(std::move(fn));
        i = end;  // do not scan inside: locals are handled per-function
        break;
      }
      case BraceClass::Skip:
        i = match_forward(tokens, i);
        break;
    }
  }
  return model;
}

// ---------------------------------------------------------------------------
// class_members
// ---------------------------------------------------------------------------

std::vector<MemberDecl> class_members(const LexedFile& file,
                                      const ClassInfo& cls) {
  std::vector<MemberDecl> members;
  const std::vector<Token>& tokens = file.tokens;
  std::vector<std::size_t> stmt;  // token indices of the current statement
  bool in_initializer = false;    // after '=' at member depth

  auto flush = [&]() {
    if (stmt.empty()) return;
    // Reject non-member statements.
    const std::string& first = tokens[stmt[0]].text;
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "template" || first == "static_assert" ||
        first == "operator" || first == "explicit" || first == "virtual" ||
        first == "enum") {
      stmt.clear();
      return;
    }
    // Find a declarator: identifier ending in '_' directly followed (in the
    // collapsed statement) by ';'-end, '=', '{', or a guard macro.
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      const Token& tok = tokens[stmt[s]];
      if (!tok.ident() || tok.text.size() < 2 || tok.text.back() != '_') {
        continue;
      }
      const bool at_end = s + 1 == stmt.size();
      std::string next = at_end ? ";" : tokens[stmt[s + 1]].text;
      if (!(next == ";" || next == "=" || next == "{" ||
            next == "PICO_GUARDED_BY" || next == "GUARDED_BY")) {
        continue;
      }
      MemberDecl m;
      m.name = tok.text;
      m.line = tok.line;
      m.name_index = stmt[s];
      for (std::size_t q = 0; q < s; ++q) {
        if (!m.type_text.empty()) m.type_text += ' ';
        m.type_text += tokens[stmt[q]].text;
      }
      for (std::size_t q = 0; q < stmt.size(); ++q) {
        const std::string& tt = tokens[stmt[q]].text;
        if (tt == "PICO_GUARDED_BY" || tt == "GUARDED_BY") m.has_guard = true;
      }
      const std::string& lead = tokens[stmt[0]].text;
      m.is_static = lead == "static";
      m.is_const =
          lead == "const" || (stmt.size() > 1 && lead == "static" &&
                              tokens[stmt[1]].text == "const");
      for (std::size_t q = 0; q < s; ++q) {
        const std::string& tt = tokens[stmt[q]].text;
        if (tt == "atomic") m.is_atomic = true;
        if (tt == "Mutex" || tt == "CondVar" || tt == "mutex" ||
            tt == "condition_variable" || tt == "shared_mutex") {
          m.is_mutex_like = true;
        }
      }
      members.push_back(std::move(m));
      break;
    }
    stmt.clear();
  };

  std::size_t i = cls.body_begin + 1;
  while (i < cls.body_end) {
    const std::string& t = tokens[i].text;
    if (t == ";") {
      flush();
      in_initializer = false;
      ++i;
      continue;
    }
    if (in_initializer) {
      if (t == "(" || t == "[" || t == "{") {
        i = match_forward(tokens, i) + 1;
      } else {
        ++i;
      }
      continue;
    }
    if (t == ":") {
      // Access label (`public:`) — or a constructor init list, but those
      // only appear after a ')' which resets via the function-body path.
      if (stmt.size() == 1 &&
          (tokens[stmt[0]].text == "public" ||
           tokens[stmt[0]].text == "private" ||
           tokens[stmt[0]].text == "protected")) {
        stmt.clear();
        ++i;
        continue;
      }
      stmt.clear();  // init list or bitfield: not a plain member decl
      // Skip ahead to the next '{' or ';' at this level.
      while (i < cls.body_end && tokens[i].text != "{" && tokens[i].text != ";")
        ++i;
      continue;
    }
    if (t == "=") {
      in_initializer = true;
      stmt.push_back(i);
      ++i;
      continue;
    }
    if (t == "<" && !stmt.empty() && tokens[stmt.back()].ident()) {
      // Template arguments of the declared type: collapse.
      const std::size_t past = skip_template_args(tokens, i);
      // Keep classification keywords (atomic already captured via the
      // identifier before '<'; inner types matter for mutex detection).
      for (std::size_t j = i; j < past && j < cls.body_end; ++j) {
        if (tokens[j].ident()) stmt.push_back(j);
      }
      i = past;
      continue;
    }
    if (t == "(") {
      const std::size_t close = match_forward(tokens, i);
      stmt.push_back(i);
      stmt.push_back(close);
      i = close + 1;
      continue;
    }
    if (t == "{") {
      // Function body (token before is ')' or qualifier) resets the
      // statement; nested class bodies were already collected separately
      // by build_model; brace-init `name_{...}` keeps the statement.
      const bool brace_init = !stmt.empty() && tokens[stmt.back()].ident() &&
                              tokens[stmt.back()].text.back() == '_';
      const std::size_t close = match_forward(tokens, i);
      if (brace_init) {
        stmt.push_back(i);
        stmt.push_back(close);
      } else {
        stmt.clear();
      }
      i = close + 1;
      continue;
    }
    if (t == "}") {
      ++i;
      continue;
    }
    stmt.push_back(i);
    ++i;
  }
  flush();
  return members;
}

// ---------------------------------------------------------------------------
// collect_decls
// ---------------------------------------------------------------------------

namespace {

/// Parse the parameter list whose '(' is at `open`; append declarations.
void parse_params(const std::vector<Token>& tokens, std::size_t open,
                  std::vector<VarDecl>& out) {
  const std::size_t close = match_forward(tokens, open);
  std::vector<std::vector<std::size_t>> params(1);
  int pdepth = 0, adepth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++pdepth;
    if (t == ")" || t == "]" || t == "}") --pdepth;
    if (t == "<") ++adepth;
    if (t == ">") adepth = std::max(0, adepth - 1);
    if (t == "," && pdepth == 0 && adepth == 0) {
      params.emplace_back();
      continue;
    }
    params.back().push_back(i);
  }
  for (const auto& p : params) {
    if (p.size() < 2) continue;
    // Name: last identifier, or the identifier before '=' (defaulted).
    std::size_t name_pos = p.size();
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (tokens[p[i]].text == "=") {
        name_pos = i;
        break;
      }
    }
    if (name_pos == 0) continue;
    std::size_t last = name_pos == p.size() ? p.size() - 1 : name_pos - 1;
    if (!tokens[p[last]].ident()) continue;
    VarDecl d;
    d.name = tokens[p[last]].text;
    d.decl_index = p[last];
    std::vector<std::string> type_tokens;
    for (std::size_t i = 0; i < last; ++i) {
      type_tokens.push_back(tokens[p[i]].text);
      if (!d.type_text.empty()) d.type_text += ' ';
      d.type_text += tokens[p[i]].text;
    }
    if (type_tokens.empty()) continue;
    d.width = classify_type(type_tokens);
    out.push_back(std::move(d));
  }
}

}  // namespace

std::vector<VarDecl> collect_decls(const LexedFile& file,
                                   const FunctionInfo& fn) {
  std::vector<VarDecl> decls;
  const std::vector<Token>& tokens = file.tokens;
  if (fn.params_begin > 0) parse_params(tokens, fn.params_begin, decls);

  // Statement starts inside the body: after ';', '{', '}' and after the
  // '(' of `for (`.
  std::vector<std::size_t> starts;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == ";" || t == "{" || t == "}") {
      starts.push_back(i + 1);
    } else if (t == "(" && i > 0 &&
               (tokens[i - 1].text == "for" || tokens[i - 1].text == "if" ||
                tokens[i - 1].text == "while" ||
                tokens[i - 1].text == "catch")) {
      starts.push_back(i + 1);
    } else if (t == "(" && i > 0 && tokens[i - 1].text == "]") {
      parse_params(tokens, i, decls);  // lambda parameter list
    }
  }

  for (std::size_t s : starts) {
    if (s >= fn.body_end) continue;
    std::size_t i = s;
    // Leading qualifiers.
    while (i < fn.body_end && is_qualifier(tokens[i].text)) ++i;
    if (i >= fn.body_end || !tokens[i].ident()) continue;
    if (is_statement_keyword(tokens[i].text) &&
        !is_builtin_type_word(tokens[i].text)) {
      continue;
    }
    // Type tokens.
    std::vector<std::string> type_tokens;
    bool ok = true;
    while (i < fn.body_end) {
      const Token& tok = tokens[i];
      if (tok.ident()) {
        if (is_statement_keyword(tok.text) &&
            !is_builtin_type_word(tok.text)) {
          ok = false;
          break;
        }
        // Is this the declarator name?  Peek at the next token.
        const std::string& next = tokens[i + 1].text;
        const bool was_type_so_far = !type_tokens.empty();
        if (was_type_so_far &&
            (next == "=" || next == ";" || next == "," || next == "(" ||
             next == "{" || next == ":" || next == "[")) {
          break;  // tokens[i] is the name
        }
        type_tokens.push_back(tok.text);
        ++i;
        continue;
      }
      if (tok.text == "::" || tok.text == "*" || tok.text == "&" ||
          tok.text == "&&") {
        type_tokens.push_back(tok.text);
        ++i;
        continue;
      }
      if (tok.text == "<") {
        const std::size_t past = skip_template_args(tokens, i);
        if (past == i + 1) {
          ok = false;  // not a template argument list -> expression
          break;
        }
        type_tokens.push_back("<>");
        i = past;
        continue;
      }
      ok = false;
      break;
    }
    if (!ok || i >= fn.body_end || !tokens[i].ident() || type_tokens.empty()) {
      continue;
    }
    // Builtin-only check: if no builtin/known word and only one type token,
    // `a b;` style declarations of unknown classes still count (obs::Span
    // span(...)), so accept.
    const Width width = classify_type(type_tokens);

    // First declarator + any comma-separated siblings.
    for (;;) {
      if (i >= fn.body_end || !tokens[i].ident()) break;
      const std::string& next = tokens[i + 1].text;
      if (!(next == "=" || next == ";" || next == "," || next == "(" ||
            next == "{" || next == ":" || next == "[")) {
        break;
      }
      VarDecl d;
      d.name = tokens[i].text;
      d.decl_index = i;
      d.width = width;
      for (const std::string& tt : type_tokens) {
        if (!d.type_text.empty()) d.type_text += ' ';
        d.type_text += tt;
      }
      decls.push_back(std::move(d));
      // Skip to the next ',' at depth 0 or end of declaration.
      std::size_t j = i + 1;
      int depth = 0;
      bool more = false;
      while (j < fn.body_end) {
        const std::string& t = tokens[j].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") {
          if (depth == 0) break;  // end of for-init or enclosing group
          --depth;
        }
        if (t == ";" && depth == 0) break;
        if (t == "," && depth == 0) {
          more = true;
          break;
        }
        ++j;
      }
      if (!more) break;
      i = j + 1;
      // Allow `*`/`&` before the next declarator.
      while (i < fn.body_end &&
             (tokens[i].text == "*" || tokens[i].text == "&")) {
        ++i;
      }
    }
  }

  std::sort(decls.begin(), decls.end(),
            [](const VarDecl& a, const VarDecl& b) {
              return a.decl_index < b.decl_index;
            });
  return decls;
}

Width width_of(const std::vector<VarDecl>& decls, const std::string& name,
               std::size_t at) {
  Width found = Width::Unknown;
  for (const VarDecl& d : decls) {
    if (d.decl_index > at) break;
    if (d.name == name) found = d.width;
  }
  return found;
}

bool is_declared(const std::vector<VarDecl>& decls, const std::string& name,
                 std::size_t at) {
  for (const VarDecl& d : decls) {
    if (d.decl_index > at) break;
    if (d.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

Suppressions::Suppressions(const LexedFile& file) {
  for (const auto& [line, text] : file.comments) {
    if (file.comment_only.count(line) && file.comment_only.at(line)) {
      comment_only_lines_.insert(line);
    }
    // Legacy guarded-state syntax (tools/check_guarded.sh compatible).
    // Block ranges are resolved in a second pass below.
    if (text.find("sched-exempt:") != std::string::npos) {
      line_allows_[line].insert("unguarded-member");
    }
    // pico-lint: allow(check-a, check-b): reason
    // pico-lint: allow-file(check): reason
    std::size_t pos = 0;
    while ((pos = text.find("pico-lint:", pos)) != std::string::npos) {
      pos += 10;
      std::size_t d = text.find_first_not_of(" \t", pos);
      if (d == std::string::npos) break;
      bool file_wide = false;
      if (text.compare(d, 10, "allow-file") == 0) {
        file_wide = true;
        d += 10;
      } else if (text.compare(d, 5, "allow") == 0) {
        d += 5;
      } else {
        continue;
      }
      const std::size_t open = text.find('(', d);
      if (open == std::string::npos) continue;
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) continue;
      std::string ids = text.substr(open + 1, close - open - 1);
      std::size_t start = 0;
      while (start <= ids.size()) {
        std::size_t comma = ids.find(',', start);
        if (comma == std::string::npos) comma = ids.size();
        std::string id = ids.substr(start, comma - start);
        // trim
        const std::size_t a = id.find_first_not_of(" \t");
        const std::size_t b = id.find_last_not_of(" \t");
        if (a != std::string::npos) {
          id = id.substr(a, b - a + 1);
          if (file_wide) {
            file_allows_.insert(id);
          } else {
            line_allows_[line].insert(id);
          }
        }
        start = comma + 1;
      }
      pos = close;
    }
  }

  // sched-exempt-begin/end blocks: exempt every line between the markers.
  int block_begin = -1;
  for (const auto& [line, text] : file.comments) {
    if (text.find("sched-exempt-begin") != std::string::npos) {
      block_begin = line;
    }
    if (text.find("sched-exempt-end") != std::string::npos &&
        block_begin >= 0) {
      for (int l = block_begin; l <= line; ++l) {
        line_allows_[l].insert("unguarded-member");
      }
      block_begin = -1;
    }
  }
  if (block_begin >= 0) {
    // Unclosed block: exempt to end of file (match the awk behavior).
    line_allows_[block_begin].insert("unguarded-member");
    unclosed_block_from_ = block_begin;
  }
}

bool Suppressions::allows(const std::string& check, int line) const {
  if (file_allows_.count(check) || file_allows_.count("all")) return true;
  if (unclosed_block_from_ >= 0 && check == "unguarded-member" &&
      line >= unclosed_block_from_) {
    return true;
  }
  auto hit = [&](int l) {
    auto it = line_allows_.find(l);
    if (it == line_allows_.end()) return false;
    return it->second.count(check) > 0 || it->second.count("all") > 0;
  };
  if (hit(line)) return true;
  // A comment-only line directly above covers the next code line.
  int above = line - 1;
  while (above > 0 && comment_only_lines_.count(above)) {
    if (hit(above)) return true;
    --above;
  }
  return false;
}

}  // namespace pico::lint
