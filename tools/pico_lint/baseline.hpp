// Baseline: committed fingerprints of accepted pre-existing findings.
//
// A fingerprint is `check|relpath|fnv1a(excerpt)` — the excerpt is the
// whitespace-normalized source line, so fingerprints survive unrelated
// edits that shift line numbers.  `pico_lint --write-baseline` regenerates
// the file; the default run exits non-zero only on findings NOT in the
// baseline (new debt), printing known-but-unfixed counts separately.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "checks.hpp"

namespace pico::lint {

/// Stable fingerprint for one finding (line-number independent).
std::string fingerprint(const Finding& f);

/// Parse a baseline file: one fingerprint per line, `#` comments and blank
/// lines ignored.  Missing file yields an empty set (with ok=false).
std::set<std::string> load_baseline(const std::string& path, bool& ok);

/// Serialize findings into baseline format (sorted, deduplicated, with a
/// header comment and one trailing `# context:` comment per entry).
std::string render_baseline(const std::vector<Finding>& findings);

}  // namespace pico::lint
