// unguarded-member: every mutable data member of a concurrent runtime class
// must carry an explicit concurrency discipline.
//
// This is the AST promotion of tools/check_guarded.sh (which stays as the
// no-clang fallback in CI): same policy, but resolved over declarations
// instead of line regexes — multi-line declarations, brace initializers and
// template types are classified by their parsed type, not by what happens
// to share a line.  A member passes iff it is PICO_GUARDED_BY-annotated,
// std::atomic, const, static, a synchronization primitive itself, or
// carries a `// sched-exempt: <reason>` / `pico-lint: allow(...)` exemption
// (block form `sched-exempt-begin/end` also honored).
#include "checks.hpp"

namespace pico::lint {

void check_guarded(const LexedFile& file, const FileModel& model,
                   const Suppressions& sup, const std::string& relpath,
                   std::vector<Finding>& out) {
  (void)relpath;
  for (const ClassInfo& cls : model.classes) {
    const std::vector<MemberDecl> members = class_members(file, cls);
    for (const MemberDecl& m : members) {
      if (m.has_guard || m.is_static || m.is_const || m.is_atomic ||
          m.is_mutex_like) {
        continue;
      }
      if (sup.allows("unguarded-member", m.line)) continue;

      Finding f;
      f.check = "unguarded-member";
      f.line = m.line;
      f.message = "mutable member '" + m.name + "' of " +
                  (cls.name.empty() ? "anonymous class" : "class " + cls.name) +
                  " (type: " + m.type_text + ") has no concurrency discipline";
      f.hint =
          "annotate PICO_GUARDED_BY(<mutex>), make it std::atomic or const, "
          "or document why it needs neither with `// sched-exempt: <reason>`";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace pico::lint
