// pico_lint — project-wide symbol table and call graph.
//
// Built once over the whole lexed input set (every file the driver was
// given), on top of the per-file micro-AST (model.hpp).  Nodes are function
// definitions — free functions, member functions (with the `Cls::fn` /
// in-class qualifier recovered when present), and lambda expressions, which
// become pseudo-functions named `<lambda relpath:line>`.  Edges are direct
// calls matched by simple name (overloads conservatively merge into one
// name bucket) plus an indirect-call approximation: a call through a
// variable or member whose declared type mentions `function` (std::function
// and friends) fans out to every lambda in the project with a matching
// parameter count.
//
// The graph intentionally over-approximates: a name-matched edge may join
// two unrelated functions that happen to share a method name.  For the
// consumers here (the signal-safety closure walk) over-approximation is the
// sound direction — a path we walk that cannot happen at runtime costs a
// whitelist entry, a path we miss costs a crashing crash handler.
//
// The `// pico-lint: signal-root` annotation (on the definition's first
// line, or on comment-only lines directly above it) marks a function as an
// entry point of the async-signal-safe world; check_signal_safety.cpp walks
// the closure of every root.  See DESIGN.md §12.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "model.hpp"

namespace pico::lint {

struct CallSite {
  std::string callee;   // simple (unqualified) name; "new" / "throw" for
                        // the operator-new and throw pseudo-calls
  std::string qualifier;  // `Cls` of a `Cls::fn(...)` call site — narrows
                          // resolution to same-qualifier definitions
  int line = 0;
  std::size_t token = 0;  // index of the callee token in its file
  int arg_count = 0;      // top-level comma count + 1 (0 for `()`)
  bool via_function_var = false;  // call through a std::function-typed
                                  // variable/member (indirect)
  bool is_method = false;         // preceded by `.` / `->`
};

struct FunctionNode {
  std::string name;       // simple name; lambdas get "<lambda file:line>"
  std::string qualifier;  // `Cls` of an out-of-line `Cls::fn` definition
  std::string relpath;
  int file_index = 0;  // into the file list given to build_callgraph
  int line = 0;        // line of the definition's opening brace
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int param_count = 0;
  bool is_lambda = false;
  bool signal_root = false;
  std::vector<CallSite> calls;
  // Block-scope declarations (locals + params) of this function's body —
  // shared with the interprocedural checks so they are collected once.
  std::vector<VarDecl> decls;
};

struct CallGraph {
  std::vector<FunctionNode> nodes;
  // simple name -> node indices (all same-named definitions project-wide)
  std::multimap<std::string, std::size_t> by_name;
  // param count -> lambda node indices (signature buckets for the
  // std::function indirect-call approximation)
  std::multimap<int, std::size_t> lambdas_by_arity;
  const std::vector<LexedFile>* files = nullptr;
  std::vector<std::string> relpaths;

  const LexedFile& file_of(const FunctionNode& node) const {
    return (*files)[static_cast<std::size_t>(node.file_index)];
  }
};

/// Build the project call graph.  `files` and `relpaths` are parallel.
/// The returned graph borrows `files` — keep it alive.
CallGraph build_callgraph(const std::vector<LexedFile>& files,
                          const std::vector<std::string>& relpaths);

/// Lambda expressions of one function body, for checks that inspect
/// captures: token index of '[', of the matching ']', and of the lambda
/// body's '{' / matching '}'.  Detected at expression positions only
/// (after `( , = return ; && || ! { ? :`), so subscripts don't match.
struct LambdaExpr {
  std::size_t capture_begin = 0;  // '['
  std::size_t capture_end = 0;    // matching ']'
  std::size_t body_begin = 0;     // '{'
  std::size_t body_end = 0;       // matching '}'
  int param_count = 0;
  int line = 0;
};
std::vector<LambdaExpr> find_lambdas(const std::vector<Token>& tokens,
                                     std::size_t begin, std::size_t end);

}  // namespace pico::lint
