// narrow-mul: int×int multiplies over extents/strides that feed a wide
// context must be computed in 64 bits.
//
// Motivating bugs: the obs bucket_index int-overflow UB (PR 2) and the
// im2col patch-matrix extent overflow (PR 3) — both were a 32-bit multiply
// whose *result* was used as a 64-bit offset/size, so the product wrapped
// before the widening happened.  The check flags `a * b` where both
// operands are declared 32-bit integers (or literals) and the product is
//   (a) assigned/initialized into a 64-bit variable,
//   (b) added to a pointer,
//   (c) used as an array subscript, or
//   (d) passed to an allocation/copy-length call
//       (resize/reserve/memcpy/memset/malloc/calloc/assign).
// Products kept in narrow contexts (coordinate math like `oy * sh - ph`
// bounded by tensor dims) are intentionally not flagged.
#include "checks.hpp"

namespace pico::lint {

namespace {

const std::set<std::string>& alloc_callees() {
  static const std::set<std::string> kAlloc = {
      "resize", "reserve", "memcpy",  "memmove", "memset",
      "malloc", "calloc",  "realloc", "assign",  "alloca",
  };
  return kAlloc;
}

const std::set<std::string>& wide_words() {
  static const std::set<std::string> kWide = {
      "long",    "int64_t", "uint64_t",  "size_t",   "ptrdiff_t",
      "ssize_t", "intptr_t", "uintptr_t", "streamsize",
  };
  return kWide;
}

struct Group {
  char open;           // '(' or '['
  std::string callee;  // identifier before '(' if any
};

bool is_stmt_boundary(const std::string& t) {
  return t == ";" || t == "{" || t == "}";
}

}  // namespace

void check_narrowing(const LexedFile& file, const FileModel& model,
                     const Suppressions& sup, const std::string& relpath,
                     std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;

  for (const FunctionInfo& fn : model.functions) {
    const std::vector<VarDecl> decls = collect_decls(file, fn);
    std::vector<Group> groups;

    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& tok = tokens[i];
      if (tok.text == "(" || tok.text == "[") {
        Group g;
        g.open = tok.text[0];
        if (tok.text == "(" && i > 0 && tokens[i - 1].ident()) {
          g.callee = tokens[i - 1].text;
        }
        groups.push_back(std::move(g));
        continue;
      }
      if (tok.text == ")" || tok.text == "]") {
        if (!groups.empty()) groups.pop_back();
        continue;
      }
      if (tok.text != "*") continue;

      // Binary multiply with simple operands on both sides.
      const Token& lhs = tokens[i - 1];
      const Token& rhs = tokens[i + 1];
      const bool lhs_simple =
          lhs.ident() || lhs.kind == Token::Kind::Number;
      const bool rhs_simple =
          rhs.ident() || rhs.kind == Token::Kind::Number;
      if (!lhs_simple || !rhs_simple) continue;
      // Member access / qualified names / calls make width unknowable here.
      if (lhs.ident() && i >= 2 &&
          (tokens[i - 2].text == "." || tokens[i - 2].text == "->" ||
           tokens[i - 2].text == "::")) {
        continue;
      }
      if (rhs.ident() &&
          (tokens[i + 2].text == "." || tokens[i + 2].text == "->" ||
           tokens[i + 2].text == "::" || tokens[i + 2].text == "(")) {
        continue;
      }
      // Chained multiply `X * a * b`: left-to-right evaluation means the
      // left factor's width decides — if X is wide the whole chain is wide,
      // and if X is narrow the earlier `*` already got flagged.
      if (i >= 2 && tokens[i - 2].text == "*") continue;

      auto operand_narrow = [&](const Token& t) {
        if (t.kind == Token::Kind::Number) {
          // Literals with a wide suffix widen the product.
          const std::string& s = t.text;
          for (char c : s) {
            if (c == 'l' || c == 'L') return false;
          }
          return true;
        }
        return width_of(decls, t.text, i) == Width::Narrow;
      };
      const bool lhs_narrow = operand_narrow(lhs);
      const bool rhs_narrow = operand_narrow(rhs);
      // Require both operands narrow and at least one declared variable
      // (two literals never overflow surprisingly at these magnitudes).
      const bool has_var = (lhs.ident() &&
                            width_of(decls, lhs.text, i) == Width::Narrow) ||
                           (rhs.ident() &&
                            width_of(decls, rhs.text, i) == Width::Narrow);
      if (!lhs_narrow || !rhs_narrow || !has_var) continue;

      // --- context (c): subscript ---
      std::string context;
      if (!groups.empty() && groups.back().open == '[') {
        context = "array subscript";
      }
      // --- context (d): allocation/copy-length argument ---
      if (context.empty()) {
        for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
          if (it->open != '(') break;
          if (alloc_callees().count(it->callee)) {
            context = "argument of " + it->callee + "()";
            break;
          }
          if (!it->callee.empty()) break;  // some other call: stop there
        }
      }
      // --- context (b): pointer addition `ptr + a * b` ---
      if (context.empty() && i >= 3 && tokens[i - 2].text == "+") {
        const Token& base = tokens[i - 3];
        const bool ptr_var =
            base.ident() &&
            width_of(decls, base.text, i) == Width::Pointer;
        // `v.data() + a * b` — tokens: ... data ( ) + a * b
        const bool data_call = base.text == ")" && i >= 6 &&
                               tokens[i - 5].text == "data" &&
                               tokens[i - 4].text == "(";
        if (ptr_var || data_call) context = "pointer offset";
      }
      // --- context (a): assigned/initialized into a wide variable ---
      if (context.empty()) {
        // Scan back to the statement start looking for a top-level '='.
        std::size_t j = i - 1;
        int depth = 0;
        std::size_t eq = 0;
        while (j > fn.body_begin) {
          const std::string& t = tokens[j].text;
          if (t == ")" || t == "]") ++depth;
          if (t == "(" || t == "[") {
            if (depth == 0) break;  // multiply is inside a call argument
            --depth;
          }
          if (is_stmt_boundary(t)) break;
          if (t == "=" && depth == 0) {
            eq = j;
            break;
          }
          --j;
        }
        if (eq != 0) {
          // LHS: wide declared variable, or a declaration whose type
          // tokens contain a wide word.
          const Token& before_eq = tokens[eq - 1];
          if (before_eq.ident() &&
              width_of(decls, before_eq.text, i) == Width::Wide) {
            context = "assignment to 64-bit '" + before_eq.text + "'";
          } else {
            std::size_t k = eq;
            while (k > fn.body_begin) {
              --k;
              const std::string& t = tokens[k].text;
              if (is_stmt_boundary(t)) break;
              if (wide_words().count(t)) {
                context = "initialization of a 64-bit variable";
                break;
              }
            }
          }
        }
      }
      if (context.empty()) continue;
      if (sup.allows("narrow-mul", tok.line)) continue;

      Finding f;
      f.check = "narrow-mul";
      f.line = tok.line;
      f.message = "32-bit multiply '" + lhs.text + " * " + rhs.text +
                  "' feeds a wide context (" + context +
                  "); the product can overflow before widening";
      f.hint = "compute in 64 bits first: static_cast<std::int64_t>(" +
               (lhs.ident() ? lhs.text : rhs.text) + ") * " +
               (lhs.ident() ? rhs.text : lhs.text) +
               " (size_t for allocation sizes)";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace pico::lint
