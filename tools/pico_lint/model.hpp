// pico_lint — micro-AST over the token stream.
//
// Recovers exactly the structure the checks need and nothing more:
//   - function bodies (free, member, including bodies with init lists),
//   - class/struct bodies and their data-member declarations,
//   - block-scoped variable/parameter declarations with a coarse width
//     classification (narrow 32-bit integer, wide 64-bit integer, pointer,
//     other) driving the narrowing-arithmetic and taint checks,
//   - per-line suppression comments (`pico-lint: allow(...)`,
//     `sched-exempt`), resolved the same way tools/check_guarded.sh does.
//
// This is intentionally heuristic — the Clang frontend (clang_frontend.cpp,
// built when Clang dev libraries are found) resolves the same questions with
// a real AST.  The heuristics are tuned to this repo's style (Google-style
// trailing-underscore members, braces-on-same-line) and covered by the
// fixture corpus in tests/pico_lint_fixtures/.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace pico::lint {

enum class Width { Narrow, Wide, Pointer, Other, Unknown };

struct FunctionInfo {
  std::string name;
  std::size_t params_begin = 0;  // index of '(' of the parameter list
  std::size_t body_begin = 0;    // index of '{'
  std::size_t body_end = 0;      // index of matching '}'
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
  int line = 0;
};

struct MemberDecl {
  std::string name;
  std::string type_text;   // leading tokens up to the declarator name
  int line = 0;
  std::size_t name_index = 0;  // token index of the declarator name
  bool has_guard = false;      // PICO_GUARDED_BY / GUARDED_BY present
  bool is_static = false;
  bool is_const = false;
  bool is_atomic = false;
  bool is_mutex_like = false;  // Mutex / CondVar / std::mutex / cv
};

struct VarDecl {
  std::string name;
  std::string type_text;
  Width width = Width::Unknown;
  std::size_t decl_index = 0;  // token index where the name appears
};

struct FileModel {
  const LexedFile* file = nullptr;
  std::vector<FunctionInfo> functions;
  std::vector<ClassInfo> classes;
};

FileModel build_model(const LexedFile& file);

/// Data members of a class (token-level heuristic; see header comment).
std::vector<MemberDecl> class_members(const LexedFile& file,
                                      const ClassInfo& cls);

/// Block-scope declarations (locals, for-init, parameters of the function
/// and of lambdas nested in the body).  Ordered by token index.
std::vector<VarDecl> collect_decls(const LexedFile& file,
                                   const FunctionInfo& fn);

/// Coarse width classification of a declaration's type tokens.
Width classify_type(const std::vector<std::string>& type_tokens);

/// Last declaration of `name` at or before token index `at`, or Unknown.
Width width_of(const std::vector<VarDecl>& decls, const std::string& name,
               std::size_t at);
bool is_declared(const std::vector<VarDecl>& decls, const std::string& name,
                 std::size_t at);

/// Index of the matching close token for the open token at `open`
/// (handles (), [], {}).  Returns tokens.size()-1 if unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open);

// --- suppressions -----------------------------------------------------------

class Suppressions {
 public:
  explicit Suppressions(const LexedFile& file);

  /// True if a finding of `check` on `line` is suppressed by a
  /// `pico-lint: allow(check)` comment on the same line or on a
  /// comment-only line directly above, a file-wide
  /// `pico-lint: allow-file(check)`, or (for check "unguarded-member")
  /// the legacy `sched-exempt` comment forms.
  bool allows(const std::string& check, int line) const;

 private:
  std::map<int, std::set<std::string>> line_allows_;
  std::set<std::string> file_allows_;
  std::set<int> comment_only_lines_;
  int unclosed_block_from_ = -1;
};

}  // namespace pico::lint
