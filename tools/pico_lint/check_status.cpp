// unchecked-status: discarded result of a status-returning call.
//
// Motivating class: silent failures in worker/transport shutdown paths —
// POSIX errno-style calls (`::shutdown`, `::close`, `::setsockopt`, ...)
// whose failure is invisible when the result is dropped on the floor, plus
// any repo function declared [[nodiscard]] or returning an Error/Status
// type.  A discard must be explicit: either handle the result, or annotate
// the line with `// pico-lint: allow(unchecked-status): <reason>` (a
// leading `(void)` cast is also accepted as an explicit discard).
#include "checks.hpp"

namespace pico::lint {

namespace {

const std::set<std::string>& posix_status_fns() {
  static const std::set<std::string> kPosix = {
      "close",      "shutdown", "setsockopt", "listen",    "bind",
      "connect",    "fcntl",    "unlink",     "ftruncate", "fsync",
      "fdatasync",  "fclose",   "fflush",     "chmod",     "kill",
      "sigaction",  "dup2",     "pipe",       "mkdir",     "rmdir",
      "rename",     "remove",   "msync",      "munmap",    "chdir",
  };
  return kPosix;
}

}  // namespace

void collect_status_decls(const LexedFile& file,
                          std::set<std::string>& status_fns) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    // [[nodiscard]] ... name (
    if (tokens[i].is("[") && tokens[i + 1].is("[") &&
        tokens[i + 2].is("nodiscard")) {
      for (std::size_t j = i + 3; j < std::min(tokens.size(), i + 24); ++j) {
        if (tokens[j].ident() && j + 1 < tokens.size() &&
            tokens[j + 1].is("(")) {
          // Skip attribute-internal or macro-ish all-caps names.
          status_fns.insert(tokens[j].text);
          break;
        }
        if (tokens[j].is(";") || tokens[j].is("{")) break;
      }
    }
    // Error/Status-returning declaration: `Error name(` / `Status name(`
    // at a declaration position (not new/throw/return expressions).
    const std::string& t = tokens[i].text;
    if ((t == "Error" || t == "Status" || t == "ErrorCode") &&
        tokens[i + 1].ident() && tokens[i + 2].is("(")) {
      const std::string& prev = i > 0 ? tokens[i - 1].text : "";
      if (prev == "new" || prev == "throw" || prev == "return" ||
          prev == "class" || prev == "struct" || prev == "public" ||
          prev == "." || prev == "->") {
        continue;
      }
      status_fns.insert(tokens[i + 1].text);
    }
  }
}

void check_status(const LexedFile& file, const FileModel& model,
                  const Suppressions& sup, const std::string& relpath,
                  const std::set<std::string>& status_fns,
                  std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;

  // Methods this file declares as returning void shadow same-named POSIX
  // calls when invoked unqualified (`close();` inside a class means
  // `this->close()`, not `::close(fd)`), so bare calls to them are clean.
  std::set<std::string> void_fns;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!tokens[i].is("void") || !tokens[i + 1].ident()) continue;
    // `void name(` or a qualified definition `void Class::name(`.
    std::size_t j = i + 1;
    while (j + 2 < tokens.size() && tokens[j + 1].is("::") &&
           tokens[j + 2].ident()) {
      j += 2;
    }
    if (j + 1 < tokens.size() && tokens[j + 1].is("(")) {
      void_fns.insert(tokens[j].text);
    }
  }

  for (const FunctionInfo& fn : model.functions) {
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      // Statement start?
      const std::string& prev = tokens[i - 1].text;
      if (!(prev == ";" || prev == "{" || prev == "}")) continue;

      std::size_t j = i;
      bool qualified = false;
      if (tokens[j].is("::")) {
        qualified = true;
        ++j;
      }
      if (!tokens[j].ident()) continue;
      const std::string callee = tokens[j].text;
      if (!tokens[j + 1].is("(")) continue;
      const std::size_t close = match_forward(tokens, j + 1);
      if (close + 1 >= tokens.size() || !tokens[close + 1].is(";")) {
        continue;  // not a bare expression-statement call
      }

      const bool posix_hit =
          posix_status_fns().count(callee) > 0;  // bare or ::-qualified only
      const bool repo_hit = status_fns.count(callee) > 0;
      if (!posix_hit && !repo_hit) continue;
      // An unqualified call to a name this file declares as a void method
      // resolves to the member (`close();` == `this->close()`), not POSIX.
      if (posix_hit && !repo_hit && !qualified && void_fns.count(callee)) {
        continue;
      }
      if (sup.allows("unchecked-status", tokens[j].line)) continue;

      Finding f;
      f.check = "unchecked-status";
      f.line = tokens[j].line;
      f.message = "result of status-returning call '" +
                  std::string(qualified ? "::" : "") + callee +
                  "' is discarded";
      f.hint =
          "handle the return value, or make the discard explicit with "
          "`// pico-lint: allow(unchecked-status): <why best-effort>`";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace pico::lint
