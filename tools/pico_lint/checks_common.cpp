#include <algorithm>

#include "checks.hpp"

namespace pico::lint {

const std::vector<std::string>& all_check_ids() {
  static const std::vector<std::string> kIds = {
      "narrow-mul",       "unchecked-status", "blocking-under-lock",
      "unguarded-member", "wire-taint",       "signal-unsafe",
      "escape-to-thread", "use-after-move",
  };
  return kIds;
}

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

bool check_in_scope(const std::string& check, const std::string& relpath) {
  // Scoping mirrors the bug classes' habitats (ISSUE 6): extent arithmetic
  // lives in the kernel/tensor/partition math, the guarded-state rule covers
  // the concurrent runtime headers (same file set as check_guarded.sh), and
  // the taint check covers the transport decode surface.
  if (check == "narrow-mul") {
    return starts_with(relpath, "src/nn/") ||
           starts_with(relpath, "src/tensor/") ||
           starts_with(relpath, "src/partition/");
  }
  if (check == "unguarded-member") {
    return (starts_with(relpath, "src/runtime/") &&
            relpath.size() > 4 &&
            relpath.compare(relpath.size() - 4, 4, ".hpp") == 0) ||
           relpath == "src/common/thread_pool.hpp";
  }
  if (check == "wire-taint") {
    return starts_with(relpath, "src/runtime/") ||
           relpath == "src/obs/remote.cpp";
  }
  // unchecked-status, blocking-under-lock, signal-unsafe, escape-to-thread,
  // use-after-move: the whole library tree.
  return starts_with(relpath, "src/");
}

std::string line_excerpt(const LexedFile& file, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > file.lines.size()) {
    return {};
  }
  const std::string& raw = file.lines[static_cast<std::size_t>(line - 1)];
  std::string out;
  bool in_space = true;
  for (char c : raw) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<Finding> run_checks(const LexedFile& file,
                                const std::string& relpath,
                                const CheckOptions& options) {
  const FileModel model = build_model(file);
  const Suppressions sup(file);
  std::vector<Finding> out;

  auto enabled = [&](const std::string& id) {
    if (!options.enabled.empty() && !options.enabled.count(id)) return false;
    return options.scope_all || check_in_scope(id, relpath);
  };

  if (enabled("narrow-mul")) {
    check_narrowing(file, model, sup, relpath, out);
  }
  if (enabled("unchecked-status")) {
    check_status(file, model, sup, relpath, options.status_fns, out);
  }
  if (enabled("blocking-under-lock")) {
    check_locking(file, model, sup, relpath, out);
  }
  if (enabled("unguarded-member")) {
    check_guarded(file, model, sup, relpath, out);
  }
  if (enabled("wire-taint")) {
    check_taint(file, model, sup, relpath, out);
  }
  if (enabled("escape-to-thread")) {
    check_escape(file, model, sup, relpath, out);
  }
  if (enabled("use-after-move")) {
    check_move(file, model, sup, relpath, out);
  }
  // signal-unsafe is project-level (needs the cross-file call graph); the
  // driver runs it via check_signal_safety after the per-file passes.

  for (Finding& f : out) {
    f.path = file.path;
    f.relpath = relpath;
    f.excerpt = line_excerpt(file, f.line);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace pico::lint
