// signal-unsafe: call-graph proof that the crash postmortem path stays
// async-signal-safe.
//
// PR 9 built the crash dump (obs/postmortem.cpp) on a convention: nothing
// transitively reachable from the fatal-signal handler, the PICO_CHECK
// failure hook, or the terminate handler may allocate, touch stdio/iostream,
// take a lock, throw, or construct a dynamic container.  That held by code
// review only.  This check turns the convention into an enforced proof:
//
//   roots      functions annotated `// pico-lint: signal-root`
//   walk       BFS over the project call graph (callgraph.hpp), following
//              name-matched direct calls, qualified `Cls::fn` calls narrowed
//              to same-qualifier definitions, and std::function indirect
//              calls approximated by lambda arity
//   violation  any reachable function that calls an allocating / stdio /
//              locking primitive, uses `new` / `throw`, declares a lock
//              guard or a dynamic container local, or touches cout/cerr
//   leaves     a small whitelist of async-signal-safe syscalls (openat,
//              write, raise, ...) — everything the dump path is allowed to
//              end in; unresolved external callees outside both lists are
//              assumed safe and listed in the report for audit
//
// The diagnostic prints the offending call chain from the root, so a
// `malloc` smuggled three helpers deep reads as
// `postmortem_signal_handler -> write_postmortem -> helper: calls malloc`.
// A second, independent gate cross-validates the proof at link level:
// tools/check_postmortem_syms.sh rejects forbidden undefined symbols in the
// dump-path object file.
#include <algorithm>
#include <map>

#include "callgraph.hpp"
#include "checks.hpp"

namespace pico::lint {

namespace {

/// Calls that are forbidden on the signal path even when a project
/// function shadows the name (a reachable `lock`/`wait` is a violation no
/// matter whose it is).
const std::set<std::string>& forbidden_calls() {
  static const std::set<std::string> kForbidden = {
      // allocation
      "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc",
      "posix_memalign", "make_unique", "make_shared", "to_string",
      // stdio / iostream plumbing
      "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "vprintf",
      "vfprintf", "puts", "fputs", "putc", "putchar", "fwrite", "fread",
      "fopen", "fclose", "fflush", "fgets", "perror", "syslog",
      // locks and condition variables
      "lock", "unlock", "try_lock", "wait", "wait_for", "wait_until",
      "notify_one", "notify_all", "pthread_mutex_lock",
      "pthread_mutex_unlock", "pthread_cond_wait", "pthread_cond_signal",
      "pthread_cond_broadcast", "sem_wait",
      // dynamic containers growing
      "push_back", "emplace_back", "emplace", "resize", "reserve", "insert",
      "append", "substr",
      // process / environment machinery that is not async-signal-safe
      "getenv", "setenv", "exit", "atexit", "quick_exit", "dlopen",
      // PICO_CHECK throws (and formats through an ostringstream)
      "PICO_CHECK", "PICO_CHECK_MSG",
  };
  return kForbidden;
}

/// Async-signal-safe leaves the dump path may call (POSIX 2017 list,
/// trimmed to what the repo uses, plus the string.h pure functions).
const std::set<std::string>& whitelisted_leaves() {
  static const std::set<std::string> kSafe = {
      "write",    "read",        "open",     "openat",   "close",
      "lseek",    "fsync",       "fdatasync", "unlink",  "faccessat",
      "fstat",    "stat",        "readlink", "getpid",   "getppid",
      "gettid",   "raise",       "kill",     "sigaction", "signal",
      "sigemptyset", "sigfillset", "sigaddset", "sigprocmask",
      "clock_gettime", "time",   "abort",    "_exit",    "_Exit",
      "memset",   "memcpy",      "memmove",  "memchr",   "strlen",
      "strcmp",   "strncmp",     "strcpy",   "strncpy",  "strchr",
      "strrchr",  "waitpid",     "dup",      "dup2",
  };
  return kSafe;
}

/// Lock-guard types whose mere construction acquires a mutex.
const std::set<std::string>& guard_type_names() {
  static const std::set<std::string> kGuards = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
  };
  return kGuards;
}

/// Dynamic-container type tokens whose local construction allocates.
const std::set<std::string>& container_type_names() {
  static const std::set<std::string> kContainers = {
      "vector", "string", "wstring", "map", "multimap", "set", "multiset",
      "deque", "list", "unordered_map", "unordered_set", "ostringstream",
      "istringstream", "stringstream", "function",
  };
  return kContainers;
}

/// Stream objects whose use means iostream.
const std::set<std::string>& stream_idents() {
  static const std::set<std::string> kStreams = {
      "cout", "cerr", "clog", "wcout", "wcerr",
  };
  return kStreams;
}

std::string node_label(const FunctionNode& node) {
  std::string label =
      node.qualifier.empty() ? node.name : node.qualifier + "::" + node.name;
  return label + " (" + node.relpath + ":" + std::to_string(node.line) + ")";
}

}  // namespace

void check_signal_safety(const CallGraph& graph,
                         const std::vector<LexedFile>& files,
                         std::vector<Finding>& out,
                         std::string* report_out) {
  // --- roots ---------------------------------------------------------------
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].signal_root) roots.push_back(i);
  }

  // --- BFS closure with parent links for chain printing --------------------
  struct Visit {
    std::size_t parent = SIZE_MAX;  // node we came from (SIZE_MAX = root)
    std::size_t root = 0;
  };
  std::map<std::size_t, Visit> visited;
  std::vector<std::size_t> queue;
  for (std::size_t r : roots) {
    visited.emplace(r, Visit{SIZE_MAX, r});
    queue.push_back(r);
  }
  std::set<std::string> safe_leaves_hit;
  std::set<std::string> unknown_leaves_hit;
  while (!queue.empty()) {
    const std::size_t current = queue.back();
    queue.pop_back();
    const FunctionNode& node = graph.nodes[current];
    for (const CallSite& call : node.calls) {
      if (call.callee == "new" || call.callee == "throw") continue;
      if (forbidden_calls().count(call.callee)) continue;  // flagged below
      bool resolved = false;
      auto [first, last] = graph.by_name.equal_range(call.callee);
      // Resolution narrowing (each rule prunes a real false-chain class):
      //   `::fn(` global-scope calls never hit members,
      //   `obj.fn(` method calls never hit free functions,
      //   `Cls::fn(` prefers same-qualifier definitions when any exist.
      bool has_qualified_match = false;
      if (!call.qualifier.empty() && call.qualifier != "::") {
        for (auto it = first; it != last; ++it) {
          if (graph.nodes[it->second].qualifier == call.qualifier) {
            has_qualified_match = true;
            break;
          }
        }
      }
      for (auto it = first; it != last; ++it) {
        const FunctionNode& candidate = graph.nodes[it->second];
        if (call.qualifier == "::" && !candidate.qualifier.empty()) continue;
        if (call.is_method && candidate.qualifier.empty() &&
            !candidate.is_lambda) {
          continue;
        }
        if (has_qualified_match && candidate.qualifier != call.qualifier) {
          continue;
        }
        resolved = true;
        if (visited.emplace(it->second, Visit{current, visited[current].root})
                .second) {
          queue.push_back(it->second);
        }
      }
      if (call.via_function_var) {
        auto [lf, ll] = graph.lambdas_by_arity.equal_range(call.arg_count);
        for (auto it = lf; it != ll; ++it) {
          resolved = true;
          if (visited
                  .emplace(it->second, Visit{current, visited[current].root})
                  .second) {
            queue.push_back(it->second);
          }
        }
      }
      if (!resolved) {
        if (whitelisted_leaves().count(call.callee)) {
          safe_leaves_hit.insert(call.callee);
        } else {
          unknown_leaves_hit.insert(call.callee);
        }
      }
    }
  }

  // --- flag forbidden primitives inside the closure ------------------------
  auto chain_text = [&](std::size_t node_index) {
    std::vector<std::string> parts;
    for (std::size_t n = node_index; n != SIZE_MAX;
         n = visited.at(n).parent) {
      const FunctionNode& node = graph.nodes[n];
      parts.push_back(node.qualifier.empty()
                          ? node.name
                          : node.qualifier + "::" + node.name);
      if (visited.at(n).parent == SIZE_MAX) break;
    }
    std::reverse(parts.begin(), parts.end());
    std::string text;
    for (const std::string& p : parts) {
      if (!text.empty()) text += " -> ";
      text += p;
    }
    return text;
  };

  std::size_t finding_count = 0;
  std::map<std::size_t, Suppressions> sups;  // file index -> suppressions
  auto sup_for = [&](int file_index) -> const Suppressions& {
    const auto key = static_cast<std::size_t>(file_index);
    auto it = sups.find(key);
    if (it == sups.end()) {
      it = sups.emplace(key, Suppressions(files[key])).first;
    }
    return it->second;
  };

  auto report_violation = [&](const FunctionNode& node, std::size_t index,
                              int line, const std::string& what) {
    if (sup_for(node.file_index).allows("signal-unsafe", line)) return;
    const LexedFile& file = graph.file_of(node);
    Finding f;
    f.check = "signal-unsafe";
    f.path = file.path;
    f.relpath = node.relpath;
    f.line = line;
    f.excerpt = line_excerpt(file, line);
    f.message = what + " on the async-signal path: " + chain_text(index);
    f.hint =
        "the crash/postmortem path may only use openat/write-style "
        "syscalls and hand-rolled formatting; hoist the work out of the "
        "handler closure, or annotate with `// pico-lint: "
        "allow(signal-unsafe): <why safe>`";
    out.push_back(std::move(f));
    ++finding_count;
  };

  for (const auto& [index, visit] : visited) {
    (void)visit;
    const FunctionNode& node = graph.nodes[index];
    const LexedFile& file = graph.file_of(node);
    const std::vector<Token>& tokens = file.tokens;

    for (const CallSite& call : node.calls) {
      if (call.callee == "new") {
        report_violation(node, index, call.line, "heap allocation via 'new'");
      } else if (call.callee == "throw") {
        report_violation(node, index, call.line,
                         "'throw' (unwinding allocates and may terminate)");
      } else if (forbidden_calls().count(call.callee)) {
        report_violation(node, index, call.line,
                         "call to '" + call.callee + "'");
      }
    }
    // Lock guards and dynamic-container locals constructed in the body.
    for (const VarDecl& d : node.decls) {
      if (d.decl_index <= node.body_begin || d.decl_index >= node.body_end) {
        continue;  // parameters don't construct
      }
      if (d.type_text.find('&') != std::string::npos ||
          d.type_text.find('*') != std::string::npos) {
        continue;  // references/pointers to containers don't allocate
      }
      const int line = tokens[d.decl_index].line;
      // Tokenize the recorded type text on spaces for exact-word matching
      // (`string_view` must not match `string`).
      std::string word;
      std::vector<std::string> words;
      for (char c : d.type_text + " ") {
        if (c == ' ') {
          if (!word.empty()) words.push_back(word);
          word.clear();
        } else {
          word += c;
        }
      }
      for (const std::string& w : words) {
        if (guard_type_names().count(w)) {
          report_violation(node, index, line,
                           "lock guard '" + w + "' constructed");
          break;
        }
        if (container_type_names().count(w)) {
          report_violation(
              node, index, line,
              "dynamic container '" + w + "' ('" + d.name + "') constructed");
          break;
        }
      }
    }
    // iostream globals used anywhere in the body.
    for (std::size_t i = node.body_begin + 1; i < node.body_end; ++i) {
      if (tokens[i].ident() && stream_idents().count(tokens[i].text)) {
        report_violation(node, index, tokens[i].line,
                         "iostream object '" + tokens[i].text + "' used");
      }
    }
  }

  // --- report --------------------------------------------------------------
  if (report_out != nullptr) {
    std::string& r = *report_out;
    r += "# pico_lint signal-safety call-graph report\n";
    std::size_t lambda_count = 0;
    for (const FunctionNode& n : graph.nodes) {
      if (n.is_lambda) ++lambda_count;
    }
    r += "functions: " + std::to_string(graph.nodes.size()) + " (" +
         std::to_string(lambda_count) + " lambdas) across " +
         std::to_string(files.size()) + " file(s)\n";
    r += "signal roots: " + std::to_string(roots.size()) + "\n";
    for (std::size_t root : roots) {
      r += "  root " + node_label(graph.nodes[root]) + "\n";
    }
    r += "reachable closure: " + std::to_string(visited.size()) +
         " function(s)\n";
    std::vector<std::string> labels;
    for (const auto& [index, visit] : visited) {
      (void)visit;
      labels.push_back("  " + node_label(graph.nodes[index]));
    }
    std::sort(labels.begin(), labels.end());
    for (const std::string& label : labels) r += label + "\n";
    r += "whitelisted leaves called: ";
    bool first = true;
    for (const std::string& leaf : safe_leaves_hit) {
      if (!first) r += ", ";
      first = false;
      r += leaf;
    }
    r += first ? "(none)\n" : "\n";
    r += "unresolved external callees (assumed safe — audit): ";
    first = true;
    for (const std::string& leaf : unknown_leaves_hit) {
      if (!first) r += ", ";
      first = false;
      r += leaf;
    }
    r += first ? "(none)\n" : "\n";
    r += "findings: " + std::to_string(finding_count) + "\n";
    if (roots.empty()) {
      r += "verdict: NO-ROOTS (annotate handlers with `// pico-lint: "
           "signal-root`)\n";
    } else if (finding_count == 0) {
      r += "verdict: PROOF-OK — no signal-unsafe call reachable from any "
           "root\n";
    } else {
      r += "verdict: UNSAFE\n";
    }
  }
}

}  // namespace pico::lint
