// pico_lint — static analyzer codifying this repo's shipped bug classes.
//
// Self-contained token/micro-AST engine (no compiler dependency); an
// optional Clang-AST frontend with the same check set and reporting format
// builds as `pico_lint_clang` when Clang dev libraries are present (see
// clang_frontend.cpp and DESIGN.md §12).
//
// Usage:
//   pico_lint --src-root <repo> [files...]        lint files (default: src/)
//   pico_lint --src-root <repo> --compdb build/compile_commands.json
//   pico_lint ... --baseline tools/pico_lint/baseline.txt
//   pico_lint ... --write-baseline <path>         regenerate the baseline
//   pico_lint ... --check <id>                    run one check (repeatable)
//   pico_lint ... --scope-all                     ignore path scoping rules
//   pico_lint ... --json                          machine-readable output
//   pico_lint --list-checks
//
// Exit codes: 0 clean (or all findings baselined), 1 usage/IO error,
// 2 findings not present in the baseline.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "checks.hpp"
#include "lexer.hpp"

namespace fs = std::filesystem;
using namespace pico::lint;

namespace {

struct Options {
  std::string src_root;
  std::string compdb;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string callgraph_report_path;  // "-" = stdout
  std::vector<std::string> files;
  CheckOptions checks;
  bool json = false;
  bool list_checks = false;
};

void usage(std::ostream& out) {
  out << "usage: pico_lint --src-root <repo> [options] [files...]\n"
         "  --compdb <file>          enumerate sources from "
         "compile_commands.json\n"
         "  --baseline <file>        suppress fingerprints listed in <file>\n"
         "  --write-baseline <file>  write current findings as the baseline\n"
         "  --check <id>             run only <id> (repeatable)\n"
         "  --callgraph-report <f>   write the signal-safety call-graph\n"
         "                           report to <f> ('-' = stdout)\n"
         "  --scope-all              ignore per-check path scoping\n"
         "  --json                   JSON lines output\n"
         "  --list-checks            print check ids and exit\n";
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "pico_lint: missing value for " << arg << "\n";
        return false;
      }
      into = argv[++i];
      return true;
    };
    if (arg == "--src-root") {
      if (!next(opt.src_root)) return false;
    } else if (arg == "--compdb") {
      if (!next(opt.compdb)) return false;
    } else if (arg == "--baseline") {
      if (!next(opt.baseline_path)) return false;
    } else if (arg == "--write-baseline") {
      if (!next(opt.write_baseline_path)) return false;
    } else if (arg == "--callgraph-report") {
      if (!next(opt.callgraph_report_path)) return false;
    } else if (arg == "--check") {
      std::string id;
      if (!next(id)) return false;
      const auto& ids = all_check_ids();
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        std::cerr << "pico_lint: unknown check '" << id << "'\n";
        return false;
      }
      opt.checks.enabled.insert(id);
    } else if (arg == "--scope-all") {
      opt.checks.scope_all = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-checks") {
      opt.list_checks = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pico_lint: unknown option " << arg << "\n";
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Minimal compile_commands.json scan: extract every `"file": "<path>"`.
std::vector<std::string> compdb_files(const std::string& path, bool& ok) {
  std::vector<std::string> out;
  std::ifstream in(path);
  ok = in.good();
  if (!ok) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text.find('"', text.find(':', pos));
    if (pos == std::string::npos) break;
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    out.push_back(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return out;
}

std::string relative_to_root(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path abs_file = fs::weakly_canonical(file, ec);
  const fs::path abs_root = fs::weakly_canonical(root, ec);
  const fs::path rel = abs_file.lexically_relative(abs_root);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) {
    return file.generic_string();  // outside the root: use as-is
  }
  return rel.generic_string();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(std::cerr);
    return 1;
  }
  if (opt.list_checks) {
    for (const std::string& id : all_check_ids()) std::cout << id << "\n";
    return 0;
  }
  if (opt.src_root.empty()) {
    std::cerr << "pico_lint: --src-root is required\n";
    usage(std::cerr);
    return 1;
  }
  const fs::path root = opt.src_root;
  if (!fs::is_directory(root)) {
    std::cerr << "pico_lint: src-root '" << opt.src_root
              << "' is not a directory\n";
    return 1;
  }

  // --- enumerate inputs --------------------------------------------------
  std::vector<std::string> inputs = opt.files;
  if (!opt.compdb.empty()) {
    bool ok = false;
    std::vector<std::string> from_db = compdb_files(opt.compdb, ok);
    if (!ok) {
      std::cerr << "pico_lint: cannot read compdb " << opt.compdb << "\n";
      return 1;
    }
    inputs.insert(inputs.end(), from_db.begin(), from_db.end());
  }
  if (inputs.empty()) {
    const fs::path src = root / "src";
    if (!fs::is_directory(src)) {
      std::cerr << "pico_lint: no inputs and no src/ under " << root << "\n";
      return 1;
    }
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        inputs.push_back(entry.path().string());
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());

  // --- lex everything, collect status-returning declarations -------------
  std::vector<LexedFile> lexed;
  lexed.reserve(inputs.size());
  for (const std::string& path : inputs) {
    if (!lintable(fs::path(path))) continue;
    try {
      lexed.push_back(lex_file(path));
    } catch (const std::exception& e) {
      std::cerr << "pico_lint: " << e.what() << "\n";
      return 1;
    }
  }
  for (const LexedFile& file : lexed) {
    collect_status_decls(file, opt.checks.status_fns);
  }

  // --- run checks --------------------------------------------------------
  std::vector<Finding> findings;
  std::vector<std::string> relpaths;
  relpaths.reserve(lexed.size());
  for (const LexedFile& file : lexed) {
    const std::string rel = relative_to_root(file.path, root);
    relpaths.push_back(rel);
    std::vector<Finding> here = run_checks(file, rel, opt.checks);
    findings.insert(findings.end(), here.begin(), here.end());
  }

  // Project-level pass: the signal-safety closure walk needs the whole-input
  // call graph, so it runs once over everything the per-file loop lexed.
  const bool signal_enabled =
      opt.checks.enabled.empty() || opt.checks.enabled.count("signal-unsafe");
  if (signal_enabled) {
    const CallGraph graph = build_callgraph(lexed, relpaths);
    std::string report;
    std::vector<Finding> project;
    check_signal_safety(graph, lexed, project,
                        opt.callgraph_report_path.empty() ? nullptr
                                                          : &report);
    for (Finding& f : project) {
      if (opt.checks.scope_all || check_in_scope(f.check, f.relpath)) {
        findings.push_back(std::move(f));
      }
    }
    if (!opt.callgraph_report_path.empty()) {
      if (opt.callgraph_report_path == "-") {
        std::cout << report;
      } else {
        std::ofstream rout(opt.callgraph_report_path);
        if (!rout.good()) {
          std::cerr << "pico_lint: cannot write "
                    << opt.callgraph_report_path << "\n";
          return 1;
        }
        rout << report;
      }
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.relpath != b.relpath) return a.relpath < b.relpath;
                     return a.line < b.line;
                   });

  // --- write-baseline mode ------------------------------------------------
  if (!opt.write_baseline_path.empty()) {
    std::ofstream out(opt.write_baseline_path);
    if (!out.good()) {
      std::cerr << "pico_lint: cannot write " << opt.write_baseline_path
                << "\n";
      return 1;
    }
    out << render_baseline(findings);
    std::cout << "pico_lint: wrote " << findings.size() << " finding(s) to "
              << opt.write_baseline_path << "\n";
    return 0;
  }

  // --- baseline filtering -------------------------------------------------
  std::set<std::string> baseline;
  if (!opt.baseline_path.empty()) {
    bool ok = false;
    baseline = load_baseline(opt.baseline_path, ok);
    if (!ok) {
      std::cerr << "pico_lint: cannot read baseline " << opt.baseline_path
                << "\n";
      return 1;
    }
  }
  std::size_t known = 0;
  std::vector<const Finding*> fresh;
  for (const Finding& f : findings) {
    if (baseline.count(fingerprint(f))) {
      ++known;
    } else {
      fresh.push_back(&f);
    }
  }

  // --- report --------------------------------------------------------------
  for (const Finding* f : fresh) {
    if (opt.json) {
      std::cout << "{\"check\":\"" << json_escape(f->check) << "\","
                << "\"file\":\"" << json_escape(f->relpath) << "\","
                << "\"line\":" << f->line << ","
                << "\"message\":\"" << json_escape(f->message) << "\","
                << "\"hint\":\"" << json_escape(f->hint) << "\","
                << "\"fingerprint\":\"" << json_escape(fingerprint(*f))
                << "\"}\n";
    } else {
      std::cout << f->relpath << ":" << f->line << ": [" << f->check << "] "
                << f->message << "\n"
                << "    " << f->excerpt << "\n"
                << "    fix: " << f->hint << "\n";
    }
  }
  if (!opt.json) {
    std::cout << "pico_lint: " << lexed.size() << " file(s), "
              << fresh.size() << " new finding(s)";
    if (!opt.baseline_path.empty()) {
      std::cout << ", " << known << " baselined";
    }
    std::cout << "\n";
  }
  return fresh.empty() ? 0 : 2;
}
