#include "baseline.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

namespace pico::lint {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string fingerprint(const Finding& f) {
  return f.check + "|" + f.relpath + "|" + hex16(fnv1a(f.excerpt));
}

std::set<std::string> load_baseline(const std::string& path, bool& ok) {
  std::set<std::string> out;
  std::ifstream in(path);
  ok = in.good();
  if (!ok) return out;
  std::string line;
  while (std::getline(in, line)) {
    // Strip trailing CR and surrounding whitespace.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    std::string entry = line.substr(start);
    // Inline context comments: `fingerprint  # relpath:line excerpt`.
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry.resize(hash);
    while (!entry.empty() &&
           (entry.back() == ' ' || entry.back() == '\t')) {
      entry.pop_back();
    }
    if (!entry.empty()) out.insert(entry);
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  // fingerprint -> one representative context comment
  std::map<std::string, std::string> entries;
  for (const Finding& f : findings) {
    std::ostringstream ctx;
    ctx << f.relpath << ":" << f.line << " " << f.excerpt;
    entries.emplace(fingerprint(f), ctx.str());
  }
  std::ostringstream out;
  out << "# pico_lint baseline — accepted pre-existing findings.\n"
      << "# One fingerprint per line: check|relpath|hash(normalized line).\n"
      << "# Regenerate with: pico_lint --src-root <repo> --write-baseline "
         "<this file>\n"
      << "# Entries are line-number independent; fix the code and rerun\n"
      << "# --write-baseline to retire an entry.\n";
  for (const auto& [fp, ctx] : entries) {
    out << fp << "  # " << ctx << "\n";
  }
  return out.str();
}

}  // namespace pico::lint
