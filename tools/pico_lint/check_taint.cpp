// wire-taint: allocation sizes, loop bounds and indices derived from
// decoded wire bytes must pass a bounds check before use.
//
// Motivating surface: the PIC2 frame decoder and the TraceDump span codec.
// A malicious or corrupt peer controls every decoded field; a decoded count
// or shape that reaches an allocation (or a loop bound, or an index) before
// being range-checked turns one bad frame into an OOM or memory smash.
// The upcoming multi-client serve layer multiplies this surface (ROADMAP).
//
// Lightweight intraprocedural forward data-flow over the token stream:
//   sources:   get<T>(...), take<T>(...), take_string(...), cursor.u32(),
//              connection.recv(), read_all(fd, &x, n) (taints x),
//              decode_*(...) results
//   transfer:  x = e / x += e taints x if e mentions a tainted name
//              (std::min/std::clamp wrappers launder — they impose a bound)
//   sanitize:  a PICO_CHECK / PICO_CHECK_MSG / if(...)-guard that compares
//              the tainted name clears it
//   sinks:     resize/reserve/assign/memcpy/memmove/memset/malloc/calloc,
//              Tensor(...) construction, vector/string paren-construction,
//              new T[n], array subscripts, for/while loop bounds
#include "checks.hpp"

namespace pico::lint {

namespace {

const std::set<std::string>& sink_callees() {
  static const std::set<std::string> kSinks = {
      "resize", "reserve", "assign",  "memcpy", "memmove",
      "memset", "malloc",  "calloc",  "realloc", "strncpy",
      "Tensor",
  };
  return kSinks;
}

const std::set<std::string>& decoder_methods() {
  static const std::set<std::string> kMethods = {
      "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
      "read_u8", "read_u16", "read_u32", "read_u64", "recv",
  };
  return kMethods;
}

bool is_comparison(const std::string& t) {
  return t == "<" || t == "<=" || t == ">" || t == ">=" || t == "==" ||
         t == "!=";
}

/// Read a dotted chain starting at token index i: `a.b->c`.
/// Returns the flat name and sets `end` to one past the last token.
std::string read_chain(const std::vector<Token>& tokens, std::size_t i,
                       std::size_t& end) {
  std::string name = tokens[i].text;
  std::size_t j = i + 1;
  while (j + 1 < tokens.size() &&
         (tokens[j].is(".") || tokens[j].is("->")) && tokens[j + 1].ident()) {
    name += "." + tokens[j + 1].text;
    j += 2;
  }
  end = j;
  return name;
}

struct TaintSet {
  std::set<std::string> names;

  static std::string head(const std::string& chain) {
    const std::size_t dot = chain.find('.');
    return dot == std::string::npos ? chain : chain.substr(0, dot);
  }

  /// Family rule (used for taint PROPAGATION): any shared root object
  /// carries taint — `shape.elements` is dirty if `shape.channels` is.
  bool tainted(const std::string& chain) const {
    if (names.count(chain)) return true;
    const std::string h = head(chain);
    for (const std::string& n : names) {
      if (head(n) == h) return true;
    }
    return false;
  }

  /// Strict rule (used for SINKS): the chain itself, an ancestor, or a
  /// descendant must be a recorded entry.  Mere same-root siblings don't
  /// fire — `message.stage_index` being dirty doesn't make
  /// `message.tensor.data()` a dangerous memcpy argument.
  bool tainted_strict(const std::string& chain) const {
    if (names.count(chain)) return true;
    for (const std::string& n : names) {
      if (n.size() > chain.size() && n.compare(0, chain.size(), chain) == 0 &&
          n[chain.size()] == '.') {
        return true;
      }
      if (chain.size() > n.size() && chain.compare(0, n.size(), n) == 0 &&
          chain[n.size()] == '.') {
        return true;
      }
    }
    return false;
  }
  void add(const std::string& chain) { names.insert(chain); }
  /// Overwrite: clears this exact chain and everything below it.
  void clear_name(const std::string& chain) {
    names.erase(chain);
    for (auto it = names.begin(); it != names.end();) {
      if (it->size() > chain.size() &&
          it->compare(0, chain.size(), chain) == 0 &&
          (*it)[chain.size()] == '.') {
        it = names.erase(it);
      } else {
        ++it;
      }
    }
  }
  /// Bounds-check laundering: a guard that inspects any part of the object
  /// vouches for the object — clear every entry rooted at the same head.
  void clear_family(const std::string& chain) {
    const std::string h = head(chain);
    for (auto it = names.begin(); it != names.end();) {
      if (head(*it) == h) {
        it = names.erase(it);
      } else {
        ++it;
      }
    }
  }
};

}  // namespace

void check_taint(const LexedFile& file, const FileModel& model,
                 const Suppressions& sup, const std::string& relpath,
                 std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;

  for (const FunctionInfo& fn : model.functions) {
    const std::vector<VarDecl> decls = collect_decls(file, fn);
    TaintSet taint;

    // Chunk the body on ; { } — for-header clauses become pseudo-chunks,
    // which is exactly what the loop-bound sink wants.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::size_t begin = fn.body_begin + 1;
    for (std::size_t i = fn.body_begin + 1; i <= fn.body_end; ++i) {
      const std::string& t = tokens[i].text;
      if (t == ";" || t == "{" || t == "}" || i == fn.body_end) {
        if (i > begin) chunks.emplace_back(begin, i);
        begin = i + 1;
      }
    }

    auto range_has_source = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const Token& tok = tokens[i];
        if (!tok.ident()) continue;
        if ((tok.is("get") || tok.is("take")) && i + 1 < e &&
            tokens[i + 1].is("<")) {
          return true;
        }
        if (tok.is("take_string") && i + 1 < e && tokens[i + 1].is("(")) {
          return true;
        }
        if (tok.text.rfind("decode_", 0) == 0 && i + 1 < e &&
            tokens[i + 1].is("(")) {
          return true;
        }
        if (decoder_methods().count(tok.text) && i > fn.body_begin &&
            (tokens[i - 1].is(".") || tokens[i - 1].is("->")) &&
            i + 1 < e && tokens[i + 1].is("(")) {
          return true;
        }
      }
      return false;
    };

    auto range_has_taint = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (!tokens[i].ident()) continue;
        if (i > b && (tokens[i - 1].is(".") || tokens[i - 1].is("->"))) {
          continue;  // only consider chain heads
        }
        std::size_t end_idx;
        const std::string chain = read_chain(tokens, i, end_idx);
        if (taint.tainted(chain)) return true;
      }
      return false;
    };

    auto report = [&](int line, const std::string& name,
                      const std::string& what) {
      if (sup.allows("wire-taint", line)) return;
      Finding f;
      f.check = "wire-taint";
      f.line = line;
      f.message = "'" + name + "' is derived from untrusted wire bytes and "
                  "reaches " + what + " without a bounds check";
      f.hint =
          "PICO_CHECK the decoded value against a plausible bound (e.g. "
          "remaining buffer size) before using it as a size/bound/index";
      out.push_back(std::move(f));
    };

    for (const auto& [cb, ce] : chunks) {
      // --- 1. sanitization -------------------------------------------------
      bool has_guard_kw = false, has_cmp = false;
      for (std::size_t i = cb; i < ce; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "PICO_CHECK" || t == "PICO_CHECK_MSG" || t == "if" ||
            t == "assert") {
          has_guard_kw = true;
        }
        if (is_comparison(t)) has_cmp = true;
      }
      if (has_guard_kw && has_cmp) {
        for (std::size_t i = cb; i < ce; ++i) {
          if (!tokens[i].ident()) continue;
          if (i > cb && (tokens[i - 1].is(".") || tokens[i - 1].is("->"))) {
            continue;
          }
          std::size_t end_idx;
          const std::string chain = read_chain(tokens, i, end_idx);
          if (taint.tainted(chain)) taint.clear_family(chain);
        }
        continue;  // a guard statement is not itself a sink
      }

      // --- 2. sinks --------------------------------------------------------
      // Walk with a group stack to know subscript / call-arg contexts.
      struct Group {
        char open;
        std::string callee;
        bool callee_is_alloc_decl = false;
      };
      std::vector<Group> groups;
      bool loop_chunk = true;  // candidate `i < bound` pseudo-chunk
      for (std::size_t i = cb; i < ce; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "if" || t == "PICO_CHECK" || t == "PICO_CHECK_MSG") {
          loop_chunk = false;
        }
      }
      for (std::size_t i = cb; i < ce; ++i) {
        const Token& tok = tokens[i];
        if (tok.text == "(" || tok.text == "[") {
          Group g;
          g.open = tok.text[0];
          if (tok.text == "(" && i > cb && tokens[i - 1].ident()) {
            g.callee = tokens[i - 1].text;
            // Declaration-with-paren-init of an allocating type:
            // `std::vector<uint8_t> payload(length)`.
            for (const VarDecl& d : decls) {
              if (d.decl_index == i - 1 &&
                  (d.type_text.find("vector") != std::string::npos ||
                   d.type_text.find("string") != std::string::npos ||
                   d.type_text.find("Tensor") != std::string::npos)) {
                g.callee_is_alloc_decl = true;
              }
            }
          }
          groups.push_back(std::move(g));
          continue;
        }
        if (tok.text == ")" || tok.text == "]") {
          if (!groups.empty()) groups.pop_back();
          continue;
        }
        if (!tok.ident()) continue;
        if (i > cb && (tokens[i - 1].is(".") || tokens[i - 1].is("->"))) {
          continue;
        }
        std::size_t end_idx;
        const std::string chain = read_chain(tokens, i, end_idx);
        if (!taint.tainted_strict(chain)) continue;

        std::string what;
        if (!groups.empty() && groups.back().open == '[') {
          what = "an array subscript";
        } else {
          for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
            if (it->open != '(') continue;
            if (sink_callees().count(it->callee)) {
              what = "an allocation/copy via " + it->callee + "()";
              break;
            }
            if (it->callee_is_alloc_decl) {
              what = "a container construction size";
              break;
            }
          }
        }
        // Loop bound: `x < tainted` inside a bare condition chunk.
        if (what.empty() && loop_chunk && i > cb &&
            is_comparison(tokens[i - 1].text)) {
          what = "a loop bound";
        }
        if (what.empty()) continue;
        report(tok.line, chain, what);
        taint.clear_family(chain);  // one report per value per function
      }

      // --- 3. taint transfer ----------------------------------------------
      // Top-level assignment in this chunk.
      int depth = 0;
      for (std::size_t i = cb; i < ce; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "(" || t == "[") ++depth;
        if (t == ")" || t == "]") --depth;
        if (depth != 0) continue;
        const bool plain = t == "=";
        const bool compound = t == "+=" || t == "-=" || t == "*=" ||
                              t == "/=" || t == "%=" || t == "|=" ||
                              t == "&=";
        if (!plain && !compound) continue;
        // LHS chain ending at i-1: walk back in `ident (./-> ident)*`
        // steps so type qualifiers (`const auto x = ...`) are not swallowed.
        if (i == cb || !tokens[i - 1].ident()) break;  // complex lhs
        std::size_t lhs_start = i - 1;
        while (lhs_start >= cb + 2 &&
               (tokens[lhs_start - 1].is(".") ||
                tokens[lhs_start - 1].is("->")) &&
               tokens[lhs_start - 2].ident()) {
          lhs_start -= 2;
        }
        std::size_t end_idx;
        const std::string lhs = read_chain(tokens, lhs_start, end_idx);
        if (end_idx != i) break;  // should not happen; bail safely
        const bool rhs_dirty =
            range_has_source(i + 1, ce) || range_has_taint(i + 1, ce);
        bool laundered = false;
        for (std::size_t j = i + 1; j < ce; ++j) {
          if ((tokens[j].is("min") || tokens[j].is("clamp")) &&
              j + 1 < ce && tokens[j + 1].is("(")) {
            laundered = true;  // min/clamp impose an upper bound
          }
        }
        if (rhs_dirty && !laundered) {
          taint.add(lhs);
        } else if (plain) {
          taint.clear_name(lhs);  // overwritten with a clean value
        }
        break;
      }
      // Declarations with paren/brace initializers: `T x(expr)`.
      for (const VarDecl& d : decls) {
        if (d.decl_index < cb || d.decl_index >= ce) continue;
        const std::size_t after = d.decl_index + 1;
        if (after >= ce) continue;
        if (tokens[after].is("(") || tokens[after].is("{")) {
          const std::size_t close = match_forward(tokens, after);
          if (range_has_source(after + 1, std::min(close, ce)) ||
              range_has_taint(after + 1, std::min(close, ce))) {
            taint.add(d.name);
          }
        }
      }
      // read_all(fd, &x, n): the out-parameter is wire data.
      for (std::size_t i = cb; i + 2 < ce; ++i) {
        if (tokens[i].is("read_all") && tokens[i + 1].is("(")) {
          const std::size_t close = match_forward(tokens, i + 1);
          for (std::size_t j = i + 2; j < std::min(close, ce); ++j) {
            if (tokens[j].is("&") && tokens[j + 1].ident()) {
              std::size_t end_idx;
              taint.add(read_chain(tokens, j + 1, end_idx));
            }
          }
        }
      }
    }
  }
}

}  // namespace pico::lint
