// pico_lint — C++ tokenizer for the fallback (no-clang) analysis engine.
//
// Produces a comment-free token stream plus a per-line comment map (the
// comments carry the `pico-lint: allow(...)` / `sched-exempt` suppression
// syntax, so they are kept out of band rather than discarded).  This is a
// *lexer*, not a parser: the micro-AST layer (model.hpp) recovers just
// enough structure (functions, classes, declarations) for the checks.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pico::lint {

struct Token {
  enum class Kind { Ident, Number, String, Char, Punct, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 0;  // 1-based

  bool is(std::string_view t) const { return text == t; }
  bool ident() const { return kind == Kind::Ident; }
};

struct LexedFile {
  std::string path;           // as passed to lex()
  std::vector<Token> tokens;  // comments and preprocessor lines stripped
  // line number -> concatenated comment text appearing on that line.
  std::map<int, std::string> comments;
  // lines that contain only comments / whitespace (no code tokens).
  std::map<int, bool> comment_only;
  // raw source lines (index 0 = line 1), for excerpts and fingerprints.
  std::vector<std::string> lines;
};

/// Tokenize `content`.  Handles //, /* */, string/char literals (with
/// escapes), raw strings, digit separators, and preprocessor directives
/// (skipped, including line continuations).
LexedFile lex(std::string path, std::string_view content);

/// Convenience: read the file at `path` and lex it.  Throws std::runtime_error
/// if the file cannot be read.
LexedFile lex_file(const std::string& path);

}  // namespace pico::lint
