// blocking-under-lock: socket/thread/sleep blocking calls inside a lock
// scope.
//
// Motivating class: the runtime's close/recv races and shutdown deadlocks —
// a blocking transport call made while holding a pico::Mutex serializes the
// whole runtime behind one peer (and can deadlock with the peer's own lock
// order).  The sched explorer (DESIGN §11) finds these dynamically when a
// model covers the path; this check rejects them statically everywhere.
//
// A lock scope starts at a guard declaration (MutexLock, std::lock_guard,
// std::unique_lock, std::scoped_lock, std::shared_lock) or a manual
// `x.lock()` call and ends at the enclosing block's close brace (or the
// matching `x.unlock()`).  CondVar::wait is allowed — it releases the lock.
#include "checks.hpp"

namespace pico::lint {

namespace {

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
  };
  return kGuards;
}

const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> kBlocking = {
      "send",     "recv",       "recvfrom",  "sendto",     "accept",
      "connect",  "join",       "sleep_for", "sleep_until", "usleep",
      "nanosleep", "sleep",     "poll",      "select",     "epoll_wait",
      "getaddrinfo", "system",  "popen",     "flock",
  };
  return kBlocking;
}

struct LockScope {
  std::string guard;      // guard variable / mutex expression text
  int line = 0;           // acquisition line
  std::size_t scope_end;  // token index of the block's closing brace
};

}  // namespace

void check_locking(const LexedFile& file, const FileModel& model,
                   const Suppressions& sup, const std::string& relpath,
                   std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;

  for (const FunctionInfo& fn : model.functions) {
    std::vector<std::size_t> brace_close;  // enclosing blocks' close indices
    brace_close.push_back(fn.body_end);
    std::vector<LockScope> locks;

    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& tok = tokens[i];
      if (tok.text == "{") {
        brace_close.push_back(match_forward(tokens, i));
        continue;
      }
      if (tok.text == "}") {
        if (brace_close.size() > 1) brace_close.pop_back();
        while (!locks.empty() && locks.back().scope_end <= i) {
          locks.pop_back();
        }
        continue;
      }
      if (!tok.ident()) continue;

      // Guard declaration: `MutexLock lock(mutex_);` / std::lock_guard<...>
      if (guard_types().count(tok.text) &&
          (tokens[i + 1].ident() || tokens[i + 1].is("<"))) {
        // Find the declared guard name: next identifier followed by '('
        // or '{' or ';'.
        std::size_t j = i + 1;
        if (tokens[j].is("<")) {
          while (j < fn.body_end && !tokens[j].is(">")) ++j;
          ++j;
        }
        if (j < fn.body_end && tokens[j].ident()) {
          LockScope ls;
          ls.guard = tokens[j].text;
          ls.line = tok.line;
          ls.scope_end = brace_close.back();
          locks.push_back(std::move(ls));
        }
        continue;
      }
      // Manual lock: `x.lock();` — active until `x.unlock()` or scope end.
      if (tok.is("lock") && i >= 2 && tokens[i + 1].is("(") &&
          (tokens[i - 1].is(".") || tokens[i - 1].is("->")) &&
          tokens[i - 2].ident()) {
        LockScope ls;
        ls.guard = tokens[i - 2].text;
        ls.line = tok.line;
        ls.scope_end = brace_close.back();
        locks.push_back(std::move(ls));
        continue;
      }
      if (tok.is("unlock") && i >= 2 && tokens[i + 1].is("(") &&
          (tokens[i - 1].is(".") || tokens[i - 1].is("->")) &&
          tokens[i - 2].ident()) {
        const std::string owner = tokens[i - 2].text;
        for (std::size_t k = locks.size(); k-- > 0;) {
          if (locks[k].guard == owner) {
            locks.erase(locks.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          }
        }
        continue;
      }

      if (locks.empty()) continue;

      // Blocking call while a lock is active?
      if (!blocking_calls().count(tok.text)) continue;
      if (!tokens[i + 1].is("(")) continue;
      // CondVar::wait and wrapper-internal operations are fine; also skip
      // declarations (`int send(...)`) — require a call position: previous
      // token is a statement boundary, `.`, `->`, `::`, `=`, `(`, `,`, or
      // an operator.
      const std::string& prev = tokens[i - 1].text;
      const bool call_position =
          prev == ";" || prev == "{" || prev == "}" || prev == "." ||
          prev == "->" || prev == "::" || prev == "=" || prev == "(" ||
          prev == "," || prev == "return" || prev == "&&" || prev == "||" ||
          prev == "!";
      if (!call_position) continue;
      if (sup.allows("blocking-under-lock", tok.line)) continue;

      Finding f;
      f.check = "blocking-under-lock";
      f.line = tok.line;
      f.message = "blocking call '" + tok.text + "' while holding lock '" +
                  locks.back().guard + "' (acquired line " +
                  std::to_string(locks.back().line) + ")";
      f.hint =
          "move the blocking call outside the critical section (copy the "
          "state out under the lock), or annotate with "
          "`// pico-lint: allow(blocking-under-lock): <reason>`";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace pico::lint
