// escape-to-thread: lambda captures that outlive the captured object.
//
// All three of this repo's worst shipped bugs were the same shape: a lambda
// capturing by reference (or capturing `this`) handed to another thread,
// where the captured object's lifetime could end before the thread stopped
// using it — the simulator use-after-free across a plan switch, the
// TLS-destruction-order UAF in the telemetry harvester, and the
// TcpConnection fd race.  The sched explorer (PR 5) finds these only on
// explored schedules; this check finds the shape statically on every path.
//
// For each lambda handed to a spawn site we classify the captures and ask
// whether anything proves the thread stops before the captured scope ends:
//
//   spawn sites   std::thread / std::jthread / SchedThread / ManagedThread
//                 constructors; submit/enqueue/post/spawn/async/defer/
//                 dispatch calls (thread pools, executors, callback queues).
//                 parallel_for is excluded — it blocks until completion, so
//                 `[&]` captures cannot escape it.
//
//   containment   thread object stored in a LOCAL and `.join()`ed anywhere
//                 later in the same function: safe (the join bounds the
//                 thread inside the captured scope).  Stored in a MEMBER
//                 (`thread_` / `this->thread_`): `this` is safe — the
//                 owning object joins in its destructor, the PR 8
//                 SchedThread contract — but a by-reference capture of a
//                 function LOCAL is flagged: the member thread outlives the
//                 call frame.  `.detach()`, a temporary, or a pool submit:
//                 nothing bounds the thread, reference captures and `this`
//                 (for detached) are flagged.
//
//   captures      flagged: `&` default, `&local`; plus `this` when nothing
//                 contains the thread.  Value captures are safe.  Init
//                 captures (`x = expr`) are skipped — rebinding is usually
//                 the deliberate fix for exactly this bug.
#include "callgraph.hpp"
#include "checks.hpp"

namespace pico::lint {

namespace {

bool is_thread_ctor(const std::string& name) {
  static const std::set<std::string> kThreadTypes = {
      "thread", "jthread", "SchedThread", "ManagedThread",
  };
  return kThreadTypes.count(name) > 0;
}

bool is_submit_call(const std::string& name) {
  static const std::set<std::string> kSubmits = {
      "submit", "enqueue", "post", "spawn", "async", "defer", "dispatch",
  };
  return kSubmits.count(name) > 0;
}

struct Capture {
  std::string name;  // empty for the `&` / `=` defaults and `this`
  bool by_ref = false;
  bool is_this = false;
  bool is_default_ref = false;  // `[&]`
  int line = 0;
};

/// Parse the capture list between '[' at `open` and its matching ']'.
/// Init captures (`name = expr`, `&name = expr`) are dropped.
std::vector<Capture> parse_captures(const std::vector<Token>& tokens,
                                    std::size_t open, std::size_t close) {
  std::vector<Capture> out;
  std::size_t i = open + 1;
  while (i < close) {
    Capture c;
    c.line = tokens[i].line;
    if (tokens[i].is("&")) {
      c.by_ref = true;
      ++i;
      if (i < close && tokens[i].ident()) {
        c.name = tokens[i].text;
        ++i;
      } else {
        c.is_default_ref = true;  // bare `&`
      }
    } else if (tokens[i].is("=")) {
      ++i;  // `[=]` value default: safe
      while (i < close && !tokens[i].is(",")) ++i;
      if (i < close) ++i;
      continue;
    } else if (tokens[i].is("this")) {
      c.is_this = true;
      ++i;
    } else if (tokens[i].is("*") && i + 1 < close &&
               tokens[i + 1].is("this")) {
      i += 2;  // `*this` copies: safe
      while (i < close && !tokens[i].is(",")) ++i;
      if (i < close) ++i;
      continue;
    } else if (tokens[i].ident()) {
      c.name = tokens[i].text;  // value capture
      ++i;
    } else {
      ++i;
      continue;
    }
    // Init capture? (`x = expr` / `&x = expr`): skip to the next top-level
    // comma and drop the capture.
    if (i < close && tokens[i].is("=")) {
      int depth = 0;
      while (i < close) {
        const std::string& t = tokens[i].text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        if (t == "," && depth == 0) break;
        ++i;
      }
      if (i < close) ++i;
      continue;
    }
    if (c.by_ref || c.is_this || c.is_default_ref) out.push_back(c);
    if (i < close && tokens[i].is(",")) ++i;
  }
  return out;
}

enum class SpawnKind { None, ThreadCtor, Submit };

struct Spawn {
  SpawnKind kind = SpawnKind::None;
  std::string receiver;    // local/member the thread lands in ("" = temp)
  bool member_receiver = false;
  bool detached = false;
};

/// Walk back from the lambda's '[' to the call it is an argument of and
/// classify the spawn.  Returns kind None when the enclosing call is not a
/// spawn site (or the lambda is not a call argument at all).
Spawn classify_spawn(const std::vector<Token>& tokens, std::size_t body_begin,
                     std::size_t capture_begin) {
  Spawn spawn;
  // Find the '(' this lambda's argument list belongs to.
  int depth = 0;
  std::size_t j = capture_begin;
  std::size_t open = 0;
  bool found = false;
  while (j > body_begin) {
    --j;
    const std::string& t = tokens[j].text;
    if (t == ")" || t == "]" || t == "}") ++depth;
    if (t == "(" || t == "[" || t == "{") {
      if (depth == 0 && t == "(") {
        open = j;
        found = true;
        break;
      }
      --depth;
    }
    if (depth == 0 && (t == ";")) break;
  }
  if (!found || open == 0) return spawn;
  const Token& callee = tokens[open - 1];
  if (!callee.ident()) return spawn;

  if (callee.text == "parallel_for") return spawn;  // blocks: contained

  if (is_submit_call(callee.text)) {
    spawn.kind = SpawnKind::Submit;
    return spawn;
  }
  if (is_thread_ctor(callee.text)) {
    // `Type(lambda)` temporary, or `name = Type(lambda)` assignment.
    spawn.kind = SpawnKind::ThreadCtor;
    std::size_t k = open - 1;  // the ctor type token
    // Skip a `std ::` qualifier backwards.
    while (k >= 2 && tokens[k - 1].is("::") && tokens[k - 2].ident()) k -= 2;
    if (k >= 2 && tokens[k - 1].is("=") && tokens[k - 2].ident()) {
      spawn.receiver = tokens[k - 2].text;
      if (k >= 4 && tokens[k - 3].is("->") && tokens[k - 4].is("this")) {
        spawn.member_receiver = true;
      }
    }
  } else if (open >= 2 && tokens[open - 2].ident() &&
             is_thread_ctor(tokens[open - 2].text)) {
    // `Type name(lambda)` declaration with paren init: callee is the
    // declared NAME, the type precedes it (possibly `std :: thread name (`,
    // where tokens[open-2] is still the type token).
    spawn.kind = SpawnKind::ThreadCtor;
    spawn.receiver = callee.text;
  }
  if (!spawn.receiver.empty() && spawn.receiver.back() == '_') {
    spawn.member_receiver = true;  // trailing-underscore member convention
  }
  return spawn;
}

/// `recv . join ( )` / `recv . detach ( )` anywhere in [from, to).
bool method_called_on(const std::vector<Token>& tokens, std::size_t from,
                      std::size_t to, const std::string& recv,
                      const std::string& method) {
  for (std::size_t i = from; i + 3 < to; ++i) {
    if (tokens[i].ident() && tokens[i].text == recv &&
        (tokens[i + 1].is(".") || tokens[i + 1].is("->")) &&
        tokens[i + 2].is(method) && tokens[i + 3].is("(")) {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_escape(const LexedFile& file, const FileModel& model,
                  const Suppressions& sup, const std::string& relpath,
                  std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;
  for (const FunctionInfo& fn : model.functions) {
    const std::vector<VarDecl> decls = collect_decls(file, fn);
    for (const LambdaExpr& lambda :
         find_lambdas(tokens, fn.body_begin + 1, fn.body_end)) {
      Spawn spawn = classify_spawn(tokens, fn.body_begin, lambda.capture_begin);
      if (spawn.kind == SpawnKind::None) continue;

      const std::vector<Capture> captures =
          parse_captures(tokens, lambda.capture_begin, lambda.capture_end);
      if (captures.empty()) continue;

      // Containment: a local receiver joined later in this function bounds
      // the thread inside every captured scope.
      bool joined = false;
      if (spawn.kind == SpawnKind::ThreadCtor && !spawn.receiver.empty() &&
          !spawn.member_receiver) {
        joined = method_called_on(tokens, lambda.body_end, fn.body_end,
                                  spawn.receiver, "join");
        spawn.detached = method_called_on(tokens, lambda.body_end,
                                          fn.body_end, spawn.receiver,
                                          "detach");
      }
      if (joined) continue;

      const bool detached_or_temp =
          spawn.detached ||
          (spawn.kind == SpawnKind::ThreadCtor && spawn.receiver.empty());

      for (const Capture& c : captures) {
        std::string what;
        if (c.is_default_ref) {
          what = "`[&]` default reference capture";
        } else if (c.is_this) {
          // `this` is safe when the thread lands in a member of the same
          // object: the owner's destructor joins it (SchedThread contract).
          if (spawn.member_receiver && !spawn.detached) continue;
          if (spawn.kind == SpawnKind::Submit) continue;
          if (!detached_or_temp) continue;
          what = "`this` captured into a detached/unowned thread";
        } else if (c.by_ref) {
          // Only locals of this function can dangle; a by-ref capture of a
          // name we can't resolve to a local is left to the clang frontend.
          if (!is_declared(decls, c.name, lambda.capture_begin)) continue;
          what = "`&" + c.name + "` captures a local by reference";
        } else {
          continue;
        }
        if (sup.allows("escape-to-thread", c.line)) continue;
        Finding f;
        f.check = "escape-to-thread";
        f.line = c.line;
        std::string where;
        switch (spawn.kind) {
          case SpawnKind::ThreadCtor:
            where = spawn.member_receiver
                        ? "a member thread that outlives this call frame"
                        : (detached_or_temp
                               ? "a detached/unowned thread"
                               : "a thread not joined in this scope");
            break;
          case SpawnKind::Submit:
            where = "a pool/executor task with no drain before scope exit";
            break;
          case SpawnKind::None:
            break;
        }
        f.message = what + " escapes to " + where;
        f.hint =
            "capture by value (or init-capture a copy/shared_ptr), join the "
            "thread before the captured scope ends, or annotate with "
            "`// pico-lint: allow(escape-to-thread): <lifetime argument>`";
        out.push_back(std::move(f));
      }
    }
  }
}

}  // namespace pico::lint
