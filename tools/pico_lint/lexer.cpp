#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pico::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so greedy matching works.
constexpr const char* kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", ".*",
};

}  // namespace

LexedFile lex(std::string path, std::string_view content) {
  LexedFile out;
  out.path = std::move(path);
  {
    std::size_t pos = 0;
    while (pos <= content.size()) {
      std::size_t nl = content.find('\n', pos);
      if (nl == std::string_view::npos) nl = content.size();
      out.lines.emplace_back(content.substr(pos, nl - pos));
      if (nl == content.size()) break;
      pos = nl + 1;
    }
  }
  std::size_t i = 0;
  const std::size_t n = content.size();
  int line = 1;
  // Per-line flag: saw a non-comment token on this line.
  std::map<int, bool> line_has_code;

  auto record_comment = [&](int at_line, std::string_view text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot.append(text);
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' &&
        (out.tokens.empty() || out.tokens.back().line != line ||
         !line_has_code[line])) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (content[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      record_comment(line, content.substr(start, i - start));
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      // Attribute the whole comment text to every line it spans, so
      // same-line / previous-line suppression lookups both work.
      const std::string_view text = content.substr(start, i - start);
      for (int l = start_line; l <= line; ++l) record_comment(l, text);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = content.find(closer, j);
      if (end == std::string_view::npos) end = n;
      const std::size_t stop = std::min(n, end + closer.size());
      Token t;
      t.kind = Token::Kind::String;
      t.text = std::string(content.substr(i, stop - i));
      t.line = line;
      for (std::size_t k = i; k < stop; ++k) {
        if (content[k] == '\n') ++line;
      }
      i = stop;
      line_has_code[t.line] = true;
      out.tokens.push_back(std::move(t));
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;
        if (content[i] == '\n') ++line;  // unterminated; keep line count sane
        ++i;
      }
      if (i < n) ++i;  // closing quote
      Token t;
      t.kind = quote == '"' ? Token::Kind::String : Token::Kind::Char;
      t.text = std::string(content.substr(start, i - start));
      t.line = line;
      line_has_code[line] = true;
      out.tokens.push_back(std::move(t));
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(content[i])) ++i;
      Token t;
      t.kind = Token::Kind::Ident;
      t.text = std::string(content.substr(start, i - start));
      t.line = line;
      line_has_code[line] = true;
      out.tokens.push_back(std::move(t));
      continue;
    }
    // Number (accepts hex, digit separators, suffixes, exponents, dots).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      const std::size_t start = i;
      while (i < n && (ident_char(content[i]) || content[i] == '\'' ||
                       content[i] == '.' ||
                       ((content[i] == '+' || content[i] == '-') && i > start &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                         content[i - 1] == 'p' || content[i - 1] == 'P')))) {
        ++i;
      }
      Token t;
      t.kind = Token::Kind::Number;
      t.text = std::string(content.substr(start, i - start));
      t.line = line;
      line_has_code[line] = true;
      out.tokens.push_back(std::move(t));
      continue;
    }
    // Punctuator: longest match.
    {
      Token t;
      t.kind = Token::Kind::Punct;
      t.line = line;
      std::string_view rest = content.substr(i);
      std::string matched;
      for (const char* p : kPuncts) {
        const std::string_view sv(p);
        if (rest.substr(0, sv.size()) == sv) {
          matched = std::string(sv);
          break;
        }
      }
      if (matched.empty()) matched = std::string(1, c);
      t.text = matched;
      i += matched.size();
      line_has_code[line] = true;
      out.tokens.push_back(std::move(t));
      continue;
    }
  }

  for (const auto& [l, text] : out.comments) {
    out.comment_only[l] = !line_has_code.count(l) || !line_has_code[l];
    (void)text;
  }
  Token end;
  end.kind = Token::Kind::End;
  end.line = line;
  out.tokens.push_back(std::move(end));
  return out;
}

LexedFile lex_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) {
    throw std::runtime_error("pico_lint: cannot read " + path);
  }
  std::ostringstream ss;
  ss << file.rdbuf();
  const std::string content = ss.str();
  return lex(path, content);
}

}  // namespace pico::lint
