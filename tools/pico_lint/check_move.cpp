// use-after-move: moved-from locals read before reassignment.
//
// `std::move(x)` leaves `x` in a valid-but-unspecified state; the only
// operations this repo's style permits afterwards are reassignment and the
// state-resetting members (clear / reset / assign / swap / operator=).
// Reading a moved-from value — `x.size()`, passing `x` to a function,
// returning it — is the bug.  The token-level state machine here tracks
// block-scope locals only (members and globals are the clang frontend's
// job) and is built to stay quiet on the common benign shapes:
//
//   - a move inside a conditional block expires when the block closes (the
//     branch may not have run),
//   - a brace-less `if (...) consume(std::move(x));` expires at the `;`,
//   - `x = ...`, `x.clear()`, `x.reset(...)`, `x.assign(...)`, `x.swap(...)`
//     and `&x` (out-parameter reinitialization) all clear the moved state,
//   - the move expression's own tokens are not counted as a use,
//   - a name declared in a lambda's capture list shadows the local inside
//     that lambda's body (`[fn = std::move(fn)] { fn(); }` is the idiom,
//     not a bug — the inner `fn` is the capture).
#include "callgraph.hpp"
#include "checks.hpp"

namespace pico::lint {

namespace {

bool is_reinit_method(const std::string& name) {
  static const std::set<std::string> kReinit = {
      "clear", "reset", "assign", "swap", "emplace",
  };
  return kReinit.count(name) > 0;
}

}  // namespace

void check_move(const LexedFile& file, const FileModel& model,
                const Suppressions& sup, const std::string& relpath,
                std::vector<Finding>& out) {
  (void)relpath;
  const std::vector<Token>& tokens = file.tokens;
  for (const FunctionInfo& fn : model.functions) {
    const std::vector<VarDecl> decls = collect_decls(file, fn);
    const std::vector<LambdaExpr> lambdas =
        find_lambdas(tokens, fn.body_begin + 1, fn.body_end);
    // Inside a lambda body, a name its capture list declares refers to the
    // capture, not the enclosing local.  (Collecting every ident in the
    // capture range over-approximates — init-capture initializers can name
    // other locals — which only costs missed findings, never false ones.)
    auto shadowed = [&](std::size_t at, const std::string& name) {
      for (const LambdaExpr& lambda : lambdas) {
        if (at <= lambda.body_begin || at >= lambda.body_end) continue;
        for (std::size_t c = lambda.capture_begin + 1;
             c < lambda.capture_end; ++c) {
          if (tokens[c].ident() && tokens[c].text == name) return true;
        }
      }
      return false;
    };

    struct Moved {
      int line = 0;       // line of the move
      int depth = 0;      // brace depth at the move
      bool braceless_if = false;  // expires at the next ';'
    };
    std::map<std::string, Moved> moved;
    int depth = 0;
    // Depth of each brace-less `if`/`else` statement currently open is not
    // tracked structurally; instead a move recorded while `pending_if` is
    // set expires at the next `;`.
    bool pending_if = false;

    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& tok = tokens[i];

      if (tok.is("{")) {
        ++depth;
        pending_if = false;
        continue;
      }
      if (tok.is("}")) {
        // Conditional moves die with their block: the branch that moved
        // may not have executed on the path that reads the name later.
        for (auto it = moved.begin(); it != moved.end();) {
          if (it->second.depth >= depth) {
            it = moved.erase(it);
          } else {
            ++it;
          }
        }
        --depth;
        continue;
      }
      if (tok.is(";")) {
        pending_if = false;
        for (auto it = moved.begin(); it != moved.end();) {
          if (it->second.braceless_if) {
            it = moved.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }
      if (tok.is("if") || tok.is("else")) {
        // `if (...)` without `{` → the next statement is conditional.
        std::size_t j = i + 1;
        if (j < fn.body_end && tokens[j].is("(")) {
          j = match_forward(tokens, j) + 1;
        }
        if (j < fn.body_end && !tokens[j].is("{")) pending_if = true;
        continue;
      }

      // `std :: move ( name )` / bare `move ( name )` (not `.move(`).
      if (tok.is("move") && i + 3 < fn.body_end && tokens[i + 1].is("(") &&
          tokens[i + 2].ident() && tokens[i + 3].is(")") &&
          (i == 0 || (!tokens[i - 1].is(".") && !tokens[i - 1].is("->")))) {
        const std::string& name = tokens[i + 2].text;
        if (is_declared(decls, name, i)) {
          // (`x = std::move(y)` clears x via the generic `=` rule when the
          // scan visited the LHS token, before reaching `move` here.)
          Moved m;
          m.line = tokens[i + 2].line;
          m.depth = depth;
          m.braceless_if = pending_if;
          moved[name] = m;
        }
        i += 3;  // skip `( name )` so the argument isn't counted as a use
        continue;
      }

      if (!tok.ident()) continue;
      auto it = moved.find(tok.text);
      if (it == moved.end()) continue;
      if (shadowed(i, tok.text)) continue;

      const std::string next = i + 1 < fn.body_end ? tokens[i + 1].text : "";
      const std::string prev = i > 0 ? tokens[i - 1].text : "";

      // Reassignment / reinitialization clears the moved state.
      if (next == "=" && (i + 2 >= fn.body_end || !tokens[i + 2].is("="))) {
        moved.erase(it);
        continue;
      }
      if (prev == "&" || prev == ">>") {
        // `&x` out-param reinit; `cin >> x`-style reads refill the value.
        moved.erase(it);
        continue;
      }
      if ((next == "." || next == "->") && i + 2 < fn.body_end &&
          is_reinit_method(tokens[i + 2].text)) {
        moved.erase(it);
        continue;
      }
      if (prev == "." || prev == "->" || prev == "::") {
        continue;  // a member/namespace named like the local, not the local
      }

      if (sup.allows("use-after-move", tok.line)) {
        moved.erase(it);
        continue;
      }
      Finding f;
      f.check = "use-after-move";
      f.line = tok.line;
      f.message = "'" + tok.text + "' read after being moved from (moved on "
                  "line " + std::to_string(it->second.line) + ")";
      f.hint =
          "reassign or .clear()/.reset() before reuse, move later, or "
          "annotate with `// pico-lint: allow(use-after-move): <why valid>`";
      out.push_back(std::move(f));
      moved.erase(it);  // one diagnostic per move
    }
  }
}

}  // namespace pico::lint
