// pico_lint_clang — Clang-AST frontend for the pico_lint check set.
//
// Builds only where the Clang development libraries are installed (the CMake
// target is gated on find_package(Clang)); the self-contained token engine
// in pico_lint.cpp is the always-available, authoritative gate.  This
// frontend resolves the same eight checks, using the real AST where it
// removes the token engine's heuristics for declaration/width/scope
// recognition and delegating to the shared engine where it wouldn't:
//
//   narrow-mul           an implicit integral cast to a 64-bit type whose
//                        operand is a 32-bit multiply, or a 32-bit multiply
//                        added to a pointer — exact types from Sema.
//   unchecked-status     a call whose non-void result is an unused
//                        expression-statement, filtered to the POSIX
//                        errno-set and Error/Status-returning functions.
//   blocking-under-lock  a blocking call lexically inside the scope of a
//                        lock guard variable.
//   unguarded-member     a mutable field without a guarded_by attribute in
//                        the concurrent runtime headers.
//   wire-taint           delegated to the shared intraprocedural token
//                        engine — the data-flow is identical either way.
//   escape-to-thread     delegated to the token engine: lambda-capture
//   use-after-move       lifetime and moved-from tracking are token-level
//                        analyses the AST adds nothing to.
//   signal-unsafe        delegated to the token engine's project-wide call
//                        graph (callgraph.hpp) — the closure walk needs all
//                        files at once, which per-TU AST traversal can't see.
//
// Reporting, suppression comments, scoping and the baseline format are all
// shared with the token engine (same Finding/fingerprint code), so the two
// frontends are drop-in interchangeable in CI.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/JSONCompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "baseline.hpp"
#include "callgraph.hpp"
#include "checks.hpp"
#include "lexer.hpp"

namespace fs = std::filesystem;
using namespace pico::lint;

namespace {

struct ToolConfig {
  std::string src_root;
  std::string compdb;
  std::string baseline_path;
};

// Findings accumulate across translation units (headers are seen many
// times); dedup on fingerprint+line.
struct Sink {
  std::vector<Finding> findings;
  std::set<std::string> seen;
  const ToolConfig* config = nullptr;

  void add(Finding f) {
    const std::string key = fingerprint(f) + ":" + std::to_string(f.line);
    if (seen.insert(key).second) findings.push_back(std::move(f));
  }
};

const std::set<std::string>& posix_status_fns() {
  static const std::set<std::string> kPosix = {
      "close",      "shutdown", "setsockopt", "listen",    "bind",
      "connect",    "fcntl",    "unlink",     "ftruncate", "fsync",
      "fdatasync",  "fclose",   "fflush",     "chmod",     "kill",
      "sigaction",  "dup2",     "pipe",       "mkdir",     "rmdir",
      "rename",     "remove",   "msync",      "munmap",    "chdir",
  };
  return kPosix;
}

const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> kBlocking = {
      "send",     "recv",       "recvfrom",  "sendto",      "accept",
      "connect",  "join",       "sleep_for", "sleep_until", "usleep",
      "nanosleep", "sleep",     "poll",      "select",      "epoll_wait",
      "getaddrinfo", "system",  "popen",     "flock",
  };
  return kBlocking;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
  };
  return kGuards;
}

bool type_name_contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

class Visitor : public clang::RecursiveASTVisitor<Visitor> {
 public:
  Visitor(clang::ASTContext& ctx, Sink& sink)
      : ctx_(ctx), sm_(ctx.getSourceManager()), sink_(sink) {}

  // Location helpers ------------------------------------------------------

  /// Repo-relative path for a location, or empty when outside src_root.
  std::string relpath(clang::SourceLocation loc) {
    if (loc.isInvalid()) return {};
    const clang::SourceLocation spelling = sm_.getSpellingLoc(loc);
    const std::string file = sm_.getFilename(spelling).str();
    if (file.empty()) return {};
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(file, ec);
    const fs::path root = fs::weakly_canonical(sink_.config->src_root, ec);
    const fs::path rel = abs.lexically_relative(root);
    if (rel.empty() || rel.native().rfind("..", 0) == 0) return {};
    return rel.generic_string();
  }

  int line_of(clang::SourceLocation loc) {
    return static_cast<int>(
        sm_.getSpellingLineNumber(sm_.getSpellingLoc(loc)));
  }

  void report(const std::string& check, clang::SourceLocation loc,
              const std::string& message, const std::string& hint) {
    const std::string rel = relpath(loc);
    if (rel.empty() || !check_in_scope(check, rel)) return;
    const int line = line_of(loc);
    // Comment suppressions live in the lexed file.
    const LexedFile* lf = lexed(rel);
    if (lf != nullptr) {
      const Suppressions sup(*lf);
      if (sup.allows(check, line)) return;
    }
    Finding f;
    f.check = check;
    f.relpath = rel;
    f.path = rel;
    f.line = line;
    f.message = message;
    f.hint = hint;
    if (lf != nullptr) f.excerpt = line_excerpt(*lf, line);
    sink_.add(std::move(f));
  }

  // narrow-mul ------------------------------------------------------------

  bool is_narrow_int(clang::QualType qt) {
    return !qt.isNull() && qt->isIntegerType() && !qt->isBooleanType() &&
           ctx_.getTypeSize(qt) <= 32;
  }

  const clang::BinaryOperator* narrow_mul_operand(const clang::Expr* e) {
    if (e == nullptr) return nullptr;
    const auto* mul =
        llvm::dyn_cast<clang::BinaryOperator>(e->IgnoreParenImpCasts());
    if (mul == nullptr || mul->getOpcode() != clang::BO_Mul) return nullptr;
    if (!is_narrow_int(mul->getType())) return nullptr;
    return mul;
  }

  bool VisitImplicitCastExpr(const clang::ImplicitCastExpr* cast) {
    if (cast->getCastKind() != clang::CK_IntegralCast) return true;
    const clang::QualType to = cast->getType();
    if (!to->isIntegerType() || ctx_.getTypeSize(to) < 64) return true;
    const clang::BinaryOperator* mul = narrow_mul_operand(cast->getSubExpr());
    if (mul == nullptr) return true;
    report("narrow-mul", mul->getOperatorLoc(),
           "32-bit multiply widened to " + to.getAsString() +
               " after the fact; the product can overflow before widening",
           "compute in 64 bits first: static_cast<std::int64_t>(lhs) * rhs");
    return true;
  }

  bool VisitBinaryOperator(const clang::BinaryOperator* op) {
    // Pointer offset: `ptr + a * b` with a 32-bit product.
    if (op->getOpcode() != clang::BO_Add &&
        op->getOpcode() != clang::BO_Sub) {
      return true;
    }
    const clang::Expr* lhs = op->getLHS();
    const clang::Expr* rhs = op->getRHS();
    if (lhs == nullptr || rhs == nullptr) return true;
    if (!lhs->getType()->isPointerType()) return true;
    const clang::BinaryOperator* mul = narrow_mul_operand(rhs);
    if (mul == nullptr) return true;
    report("narrow-mul", mul->getOperatorLoc(),
           "32-bit multiply used as a pointer offset; the product can "
           "overflow before the pointer arithmetic widens it",
           "compute in 64 bits first: static_cast<std::ptrdiff_t>(lhs) * "
           "rhs");
    return true;
  }

  // unchecked-status ------------------------------------------------------

  bool VisitCompoundStmt(const clang::CompoundStmt* block) {
    for (const clang::Stmt* stmt : block->body()) {
      const auto* call = llvm::dyn_cast<clang::CallExpr>(stmt);
      if (call == nullptr) continue;  // (void)-cast discards don't match
      const clang::FunctionDecl* callee = call->getDirectCallee();
      if (callee == nullptr) continue;
      if (callee->getReturnType()->isVoidType()) continue;
      const std::string name = callee->getNameAsString();
      const std::string ret = callee->getReturnType().getAsString();
      const bool posix_hit = posix_status_fns().count(name) > 0 &&
                             !llvm::isa<clang::CXXMemberCallExpr>(call);
      const bool repo_hit = callee->hasAttr<clang::WarnUnusedResultAttr>() ||
                            type_name_contains(ret, "Error") ||
                            type_name_contains(ret, "Status");
      if (!posix_hit && !repo_hit) continue;
      report("unchecked-status", call->getBeginLoc(),
             "result of status-returning call '" + name + "' is discarded",
             "handle the return value, or make the discard explicit with "
             "`// pico-lint: allow(unchecked-status): <why best-effort>`");
    }
    return true;
  }

  // blocking-under-lock ---------------------------------------------------

  bool VisitFunctionDecl(const clang::FunctionDecl* fn) {
    if (!fn->hasBody()) return true;
    const auto* body = llvm::dyn_cast<clang::CompoundStmt>(fn->getBody());
    if (body == nullptr) return true;
    scan_lock_scopes(body, /*lock_active=*/false, "");
    return true;
  }

  void scan_lock_scopes(const clang::CompoundStmt* block, bool lock_active,
                        std::string guard_name) {
    for (const clang::Stmt* stmt : block->body()) {
      // A guard declaration makes the REST of this block a lock scope.
      if (const auto* decl_stmt = llvm::dyn_cast<clang::DeclStmt>(stmt)) {
        for (const clang::Decl* d : decl_stmt->decls()) {
          const auto* vd = llvm::dyn_cast<clang::VarDecl>(d);
          if (vd == nullptr) continue;
          const std::string type_name = vd->getType().getAsString();
          for (const std::string& guard : guard_types()) {
            if (type_name_contains(type_name, guard.c_str())) {
              lock_active = true;
              guard_name = vd->getNameAsString();
            }
          }
        }
        continue;
      }
      if (lock_active) flag_blocking_calls(stmt, guard_name);
      // Nested blocks inherit the current lock state.
      if (const auto* nested = llvm::dyn_cast<clang::CompoundStmt>(stmt)) {
        scan_lock_scopes(nested, lock_active, guard_name);
      }
    }
  }

  void flag_blocking_calls(const clang::Stmt* stmt,
                           const std::string& guard_name) {
    if (stmt == nullptr) return;
    if (const auto* call = llvm::dyn_cast<clang::CallExpr>(stmt)) {
      const clang::FunctionDecl* callee = call->getDirectCallee();
      if (callee != nullptr) {
        const std::string name = callee->getNameAsString();
        if (blocking_calls().count(name) > 0) {
          report("blocking-under-lock", call->getBeginLoc(),
                 "blocking call '" + name + "' while holding lock '" +
                     guard_name + "'",
                 "move the blocking call outside the critical section, or "
                 "annotate with `// pico-lint: allow(blocking-under-lock): "
                 "<reason>`");
        }
      }
    }
    if (llvm::isa<clang::CompoundStmt>(stmt)) return;  // handled by caller
    for (const clang::Stmt* child : stmt->children()) {
      flag_blocking_calls(child, guard_name);
    }
  }

  // unguarded-member ------------------------------------------------------

  bool VisitFieldDecl(const clang::FieldDecl* field) {
    const std::string rel = relpath(field->getLocation());
    if (rel.empty() || !check_in_scope("unguarded-member", rel)) return true;
    const std::string name = field->getNameAsString();
    // Policy mirror of tools/check_guarded.sh: only trailing-underscore
    // members participate.
    if (name.empty() || name.back() != '_') return true;
    const clang::QualType qt = field->getType();
    const std::string type_name = qt.getAsString();
    if (qt.isConstQualified() || qt->isAtomicType() ||
        type_name_contains(type_name, "atomic") ||
        type_name_contains(type_name, "Mutex") ||
        type_name_contains(type_name, "CondVar") ||
        type_name_contains(type_name, "mutex") ||
        type_name_contains(type_name, "condition_variable")) {
      return true;
    }
    if (field->hasAttr<clang::GuardedByAttr>() ||
        field->hasAttr<clang::PtGuardedByAttr>()) {
      return true;
    }
    const clang::RecordDecl* parent = field->getParent();
    const std::string cls =
        parent != nullptr ? parent->getNameAsString() : "";
    report("unguarded-member", field->getLocation(),
           "mutable member '" + name + "' of class " + cls + " (type: " +
               type_name + ") has no concurrency discipline",
           "annotate PICO_GUARDED_BY(<mutex>), make it std::atomic or "
           "const, or document why with `// sched-exempt: <reason>`");
    return true;
  }

 private:
  const LexedFile* lexed(const std::string& rel) {
    auto it = lexed_.find(rel);
    if (it != lexed_.end()) return it->second.get();
    const fs::path full = fs::path(sink_.config->src_root) / rel;
    std::unique_ptr<LexedFile> lf;
    try {
      lf = std::make_unique<LexedFile>(lex_file(full.string()));
    } catch (const std::exception&) {
      lf = nullptr;
    }
    const LexedFile* raw = lf.get();
    lexed_.emplace(rel, std::move(lf));
    return raw;
  }

  clang::ASTContext& ctx_;
  clang::SourceManager& sm_;
  Sink& sink_;
  std::map<std::string, std::unique_ptr<LexedFile>> lexed_;
};

class Consumer : public clang::ASTConsumer {
 public:
  explicit Consumer(Sink& sink) : sink_(sink) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    Visitor visitor(ctx, sink_);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  Sink& sink_;
};

class Action : public clang::ASTFrontendAction {
 public:
  explicit Action(Sink& sink) : sink_(sink) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<Consumer>(sink_);
  }

 private:
  Sink& sink_;
};

class ActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit ActionFactory(Sink& sink) : sink_(sink) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<Action>(sink_);
  }

 private:
  Sink& sink_;
};

/// wire-taint, escape-to-thread and use-after-move run per-file on the
/// shared token engine; signal-unsafe runs once over the project call graph
/// built from the same lexed files.  Identical analyses to the token CLI.
void run_token_engine(const ToolConfig& config, Sink& sink) {
  const fs::path src = fs::path(config.src_root) / "src";
  if (!fs::is_directory(src)) return;
  std::vector<LexedFile> lexed;
  std::vector<std::string> relpaths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    std::error_code ec;
    const std::string rel =
        fs::weakly_canonical(entry.path(), ec)
            .lexically_relative(fs::weakly_canonical(config.src_root, ec))
            .generic_string();
    CheckOptions options;
    options.enabled = {"wire-taint", "escape-to-thread", "use-after-move"};
    try {
      LexedFile file = lex_file(entry.path().string());
      for (Finding& f : run_checks(file, rel, options)) {
        sink.add(std::move(f));
      }
      lexed.push_back(std::move(file));
      relpaths.push_back(rel);
    } catch (const std::exception&) {
      // Unreadable file: the token engine gate reports it.
    }
  }
  // Project-level signal-safety proof over everything just lexed.
  const CallGraph graph = build_callgraph(lexed, relpaths);
  std::vector<Finding> project;
  check_signal_safety(graph, lexed, project, nullptr);
  for (Finding& f : project) {
    if (check_in_scope(f.check, f.relpath)) sink.add(std::move(f));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ToolConfig config;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& into) {
      if (i + 1 >= argc) {
        std::cerr << "pico_lint_clang: missing value for " << arg << "\n";
        std::exit(1);
      }
      into = argv[++i];
    };
    if (arg == "--src-root") {
      next(config.src_root);
    } else if (arg == "--compdb") {
      next(config.compdb);
    } else if (arg == "--baseline") {
      next(config.baseline_path);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pico_lint_clang --src-root <repo> --compdb "
                   "<compile_commands.json> [--baseline <file>] [files...]\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (config.src_root.empty() || config.compdb.empty()) {
    std::cerr << "pico_lint_clang: --src-root and --compdb are required\n";
    return 1;
  }

  std::string error;
  std::unique_ptr<clang::tooling::CompilationDatabase> db =
      clang::tooling::JSONCompilationDatabase::loadFromFile(
          config.compdb, error,
          clang::tooling::JSONCommandLineSyntax::AutoDetect);
  if (db == nullptr) {
    std::cerr << "pico_lint_clang: cannot load compdb: " << error << "\n";
    return 1;
  }
  if (files.empty()) {
    for (const std::string& f : db->getAllFiles()) {
      // Only lint the repo's own library tree.
      if (f.find("/src/") != std::string::npos) files.push_back(f);
    }
  }

  Sink sink;
  sink.config = &config;
  clang::tooling::ClangTool tool(*db, files);
  ActionFactory factory(sink);
  if (tool.run(&factory) != 0) {
    std::cerr << "pico_lint_clang: some translation units failed to parse\n";
    // Keep going: findings from parsed TUs are still valid.
  }
  run_token_engine(config, sink);

  std::set<std::string> baseline;
  if (!config.baseline_path.empty()) {
    bool ok = false;
    baseline = load_baseline(config.baseline_path, ok);
    if (!ok) {
      std::cerr << "pico_lint_clang: cannot read baseline "
                << config.baseline_path << "\n";
      return 1;
    }
  }

  std::stable_sort(sink.findings.begin(), sink.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.relpath != b.relpath) return a.relpath < b.relpath;
                     return a.line < b.line;
                   });
  std::size_t known = 0, fresh = 0;
  for (const Finding& f : sink.findings) {
    if (baseline.count(fingerprint(f))) {
      ++known;
      continue;
    }
    ++fresh;
    std::cout << f.relpath << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n    " << f.excerpt << "\n    fix: "
              << f.hint << "\n";
  }
  std::cout << "pico_lint_clang: " << fresh << " new finding(s), " << known
            << " baselined\n";
  return fresh == 0 ? 0 : 2;
}
