#include "callgraph.hpp"

#include <algorithm>

namespace pico::lint {

namespace {

bool is_call_excluded_keyword(const std::string& t) {
  static const std::set<std::string> kNotCallees = {
      "if",          "for",         "while",      "switch",
      "catch",       "return",      "sizeof",     "alignof",
      "decltype",    "static_cast", "const_cast", "dynamic_cast",
      "reinterpret_cast", "typeid", "noexcept",   "alignas",
      "static_assert", "defined",   "co_await",   "co_yield",
      "co_return",   "throw",       "new",        "delete",
      "case",        "default",     "assert",
  };
  return kNotCallees.count(t) > 0;
}

/// Top-level comma count inside the group opened at `open` -> argument
/// count (0 for an empty list).
int count_args(const std::vector<Token>& tokens, std::size_t open) {
  const std::size_t close = match_forward(tokens, open);
  if (close == open + 1) return 0;
  int args = 1, depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == "," && depth == 0) ++args;
  }
  return args;
}

/// First line of the definition whose parameter list opens at
/// `params_begin`: walk back to the previous statement/scope boundary.
int definition_first_line(const std::vector<Token>& tokens,
                          std::size_t params_begin) {
  std::size_t j = params_begin;
  while (j > 0) {
    --j;
    const std::string& t = tokens[j].text;
    if (t == ";" || t == "{" || t == "}") return tokens[j + 1].line;
  }
  return tokens[0].line;
}

/// `// pico-lint: signal-root` on any line of the definition's introducer
/// span, or on comment-only lines directly above it.
bool has_signal_root_annotation(const LexedFile& file, int first_line,
                                int brace_line) {
  auto contains = [&](int line) {
    const auto it = file.comments.find(line);
    return it != file.comments.end() &&
           it->second.find("pico-lint: signal-root") != std::string::npos;
  };
  for (int l = first_line; l <= brace_line; ++l) {
    if (contains(l)) return true;
  }
  int above = first_line - 1;
  while (above > 0 && file.comment_only.count(above) &&
         file.comment_only.at(above)) {
    if (contains(above)) return true;
    --above;
  }
  return false;
}

/// Last class-like identifier of a declaration's recorded type text
/// ("FlightRecorder *" -> FlightRecorder, "std :: shared_ptr < ThreadBuffer
/// >" -> ThreadBuffer — right for `->` access through smart pointers).
/// Empty when the type has no project-class-shaped (uppercase) token.
std::string class_token_of(const std::string& type_text) {
  static const std::set<std::string> kNotClasses = {
      "T", "U", "V",  // common template parameter names
  };
  std::string word, last;
  for (char c : type_text + " ") {
    if (c == ' ') {
      if (!word.empty() && word[0] >= 'A' && word[0] <= 'Z' &&
          !kNotClasses.count(word)) {
        last = word;
      }
      word.clear();
    } else {
      word += c;
    }
  }
  return last;
}

/// Record the direct calls inside [begin, end): `callee(`, `.method(`,
/// `Type name(ctor-args)`, `f<T>(`, plus `new` and `throw` pseudo-calls.
void scan_calls(const std::vector<Token>& tokens, std::size_t begin,
                std::size_t end, const std::vector<VarDecl>& decls,
                std::vector<CallSite>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = tokens[i];
    if (tok.is("new")) {
      // `new T(...)` / `new T[n]` — allocation regardless of what follows.
      CallSite c;
      c.callee = "new";
      c.line = tok.line;
      c.token = i;
      out.push_back(std::move(c));
      continue;
    }
    if (tok.is("throw")) {
      CallSite c;
      c.callee = "throw";
      c.line = tok.line;
      c.token = i;
      out.push_back(std::move(c));
      continue;
    }
    if (i + 1 >= end || !tokens[i + 1].is("(")) continue;

    std::size_t callee_index = i;
    if (tok.is(">")) {
      // `f<T>(...)`: walk back over the template argument list.
      int depth = 0;
      std::size_t j = i;
      while (j > begin) {
        const std::string& t = tokens[j].text;
        if (t == ">") ++depth;
        if (t == "<") {
          --depth;
          if (depth == 0) break;
        }
        if (t == ";" || t == "{" || t == "}") break;
        --j;
      }
      if (j == begin || !tokens[j].is("<") || !tokens[j - 1].ident()) {
        continue;
      }
      callee_index = j - 1;
    } else if (!tok.ident()) {
      continue;
    }

    const Token& callee = tokens[callee_index];
    if (is_call_excluded_keyword(callee.text)) continue;

    CallSite c;
    c.line = callee.line;
    c.token = callee_index;
    c.arg_count = count_args(tokens, i + 1);
    const std::string prev =
        callee_index > 0 ? tokens[callee_index - 1].text : "";
    c.is_method = prev == "." || prev == "->";
    if (c.is_method && callee_index >= 2 && tokens[callee_index - 2].ident()) {
      // `recv.method(` / `recv->method(`: when `recv` is a declared local,
      // its type narrows resolution to that class's definitions (keeps
      // `recorder->record(...)` from merging with every `record` method in
      // the project).
      const std::string& recv = tokens[callee_index - 2].text;
      for (const VarDecl& d : decls) {
        if (d.decl_index >= callee_index) break;
        if (d.name != recv) continue;
        const std::string cls = class_token_of(d.type_text);
        if (!cls.empty()) c.qualifier = cls;
      }
    }
    if (callee_index > 0 && !c.is_method && prev != "::" &&
        tokens[callee_index - 1].ident() &&
        !is_call_excluded_keyword(prev)) {
      // `Type name(args)` — a declaration with paren init: the executed
      // code is Type's constructor, not a function named `name`.
      c.callee = prev;
    } else {
      c.callee = callee.text;
      if (prev == "::") {
        if (callee_index >= 2 && tokens[callee_index - 2].ident() &&
            tokens[callee_index - 2].text != "std") {
          c.qualifier = tokens[callee_index - 2].text;
        } else if (callee_index < 2 || !tokens[callee_index - 2].ident()) {
          // `::close(fd)` — explicit global scope: the libc function, never
          // a member (keeps `::close` from merging with Cls::close).
          c.qualifier = "::";
        }
      }
    }
    // Indirect: a call through a variable whose declared type mentions
    // `function` (std::function / move_only_function).
    for (const VarDecl& d : decls) {
      if (d.decl_index >= c.token) break;
      if (d.name == c.callee &&
          d.type_text.find("function") != std::string::npos) {
        c.via_function_var = true;
      }
    }
    out.push_back(std::move(c));
  }
}

}  // namespace

std::vector<LambdaExpr> find_lambdas(const std::vector<Token>& tokens,
                                     std::size_t begin, std::size_t end) {
  std::vector<LambdaExpr> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (!tokens[i].is("[")) continue;
    if (i == 0) continue;
    const std::string& prev = tokens[i - 1].text;
    const bool expr_position =
        prev == "(" || prev == "," || prev == "=" || prev == "return" ||
        prev == ";" || prev == "{" || prev == "&&" || prev == "||" ||
        prev == "!" || prev == "?" || prev == ":";
    if (!expr_position) continue;
    const std::size_t close = match_forward(tokens, i);
    if (close <= i || close + 1 >= end) continue;
    LambdaExpr lambda;
    lambda.capture_begin = i;
    lambda.capture_end = close;
    lambda.line = tokens[i].line;
    std::size_t j = close + 1;
    if (j < end && tokens[j].is("(")) {
      lambda.param_count = count_args(tokens, j);
      j = match_forward(tokens, j) + 1;
    }
    // Skip specifiers: mutable, noexcept(...), -> Type.
    while (j < end && (tokens[j].is("mutable") || tokens[j].is("noexcept") ||
                       tokens[j].is("->") || tokens[j].is("constexpr") ||
                       tokens[j].ident() || tokens[j].is("::") ||
                       tokens[j].is("<") || tokens[j].is(">") ||
                       tokens[j].is("*") || tokens[j].is("&"))) {
      if (tokens[j].is("noexcept") && j + 1 < end && tokens[j + 1].is("(")) {
        j = match_forward(tokens, j + 1) + 1;
        continue;
      }
      ++j;
    }
    if (j >= end || !tokens[j].is("{")) continue;
    lambda.body_begin = j;
    lambda.body_end = match_forward(tokens, j);
    out.push_back(lambda);
  }
  return out;
}

CallGraph build_callgraph(const std::vector<LexedFile>& files,
                          const std::vector<std::string>& relpaths) {
  CallGraph graph;
  graph.files = &files;
  graph.relpaths = relpaths;

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const LexedFile& file = files[fi];
    const std::vector<Token>& tokens = file.tokens;
    const FileModel model = build_model(file);

    for (const FunctionInfo& fn : model.functions) {
      FunctionNode node;
      node.name = fn.name;
      node.relpath = fi < relpaths.size() ? relpaths[fi] : file.path;
      node.file_index = static_cast<int>(fi);
      node.line = fn.line;
      node.body_begin = fn.body_begin;
      node.body_end = fn.body_end;
      node.param_count =
          fn.params_begin > 0 ? count_args(tokens, fn.params_begin) : 0;
      node.decls = collect_decls(file, fn);

      // Qualifier: `Cls :: fn (` out-of-line, else the enclosing class of
      // an in-class definition.
      if (fn.params_begin >= 3 && tokens[fn.params_begin - 2].is("::") &&
          tokens[fn.params_begin - 3].ident()) {
        node.qualifier = tokens[fn.params_begin - 3].text;
      } else {
        for (const ClassInfo& cls : model.classes) {
          if (cls.body_begin < fn.body_begin && fn.body_end < cls.body_end) {
            node.qualifier = cls.name;  // innermost wins (later classes
                                        // in the list are nested deeper)
          }
        }
      }

      const int first_line =
          fn.params_begin > 0 ? definition_first_line(tokens, fn.params_begin)
                              : fn.line;
      node.signal_root =
          has_signal_root_annotation(file, first_line, fn.line);

      scan_calls(tokens, fn.body_begin + 1, fn.body_end, node.decls,
                 node.calls);

      const std::size_t index = graph.nodes.size();
      graph.by_name.emplace(node.name, index);
      graph.nodes.push_back(std::move(node));

      // Lambdas become pseudo-functions keyed by arity, the targets of the
      // std::function indirect-call approximation.  Their bodies are also
      // part of the enclosing function's token range (scan_calls above
      // already covered them) — that double-count is deliberate: a lambda
      // defined inside a reachable function is conservatively assumed to
      // run there.
      for (const LambdaExpr& lambda :
           find_lambdas(tokens, fn.body_begin + 1, fn.body_end)) {
        FunctionNode ln;
        ln.name = "<lambda " +
                  (fi < relpaths.size() ? relpaths[fi] : file.path) + ":" +
                  std::to_string(lambda.line) + ">";
        ln.relpath = fi < relpaths.size() ? relpaths[fi] : file.path;
        ln.file_index = static_cast<int>(fi);
        ln.line = lambda.line;
        ln.body_begin = lambda.body_begin;
        ln.body_end = lambda.body_end;
        ln.param_count = lambda.param_count;
        ln.is_lambda = true;
        ln.decls = graph.nodes[index].decls;  // share the encloser's scope
        scan_calls(tokens, lambda.body_begin + 1, lambda.body_end, ln.decls,
                   ln.calls);
        const std::size_t lambda_index = graph.nodes.size();
        graph.lambdas_by_arity.emplace(lambda.param_count, lambda_index);
        graph.nodes.push_back(std::move(ln));
      }
    }
  }
  return graph;
}

}  // namespace pico::lint
