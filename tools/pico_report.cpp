// pico_report — run a plan on the real threaded runtime and compare the
// paper's cost model (Eq. 5–11) against observed behaviour.
//
// Loads a model (.cfg), plans it with a named scheme, runs N inferences
// through PipelineRuntime with metrics + tracing on, then prints a
// per-stage predicted-vs-measured table (stage compute Eq. 6 / comm Eq. 8 /
// total Eq. 9 vs the runtime's histograms) and the headline period (Eq. 10)
// vs achieved inter-completion gap.  Also writes the run's span trace as
// Chrome about://tracing JSON and, optionally, a Prometheus-style metrics
// dump.
//
// Measured/predicted ratios far from 1 are expected on a development host:
// the cost model is calibrated for the paper's Raspberry-Pi cluster, while
// the runtime executes on whatever machine runs this tool.  The *relative*
// shape across stages is what validates the model.
//
// Examples:
//   pico_report --model configs/vgg16.cfg --scheme pico
//   pico_report --model configs/vgg16.cfg --scheme pico --input-size 64
//       --tasks 8 --transport tcp --json  (one command line)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "models/cfg.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: pico_report --model <model.cfg> [options]

plan:
  --scheme <name>        PICO (default), LW, EFL or OFL (case-insensitive)
  --tlim <seconds>       pipeline latency bound T_lim (default: none)

cluster (default: the paper's 8-Pi heterogeneous testbed):
  --cluster paper        2x1.2GHz + 2x0.8GHz + 4x0.6GHz Raspberry Pis
  --cluster homog:<n>x<ghz>   n identical Pi-class devices
  --cluster pi:<f1,f2,...>    Pi-class devices at the given GHz
  --bandwidth-mbps <b>   shared uplink bandwidth (default 50)

run:
  --tasks <n>            inferences to run (default 4)
  --input-size <n>       override the [net] height/width (toy inputs for CI)
  --transport <kind>     inproc (default) or tcp

output:
  --json                 emit a JSON report instead of the text table
  --no-trace             disable span tracing (no trace file)
  --trace-out <file>     Chrome trace path (default pico_trace.json)
  --metrics-out <file>   also dump Prometheus-style metrics text
)";

struct Args {
  std::string model;
  std::string scheme = "PICO";
  std::string cluster = "paper";
  double bandwidth_mbps = 50.0;
  double tlim = 0.0;  // 0 = unset
  int tasks = 4;
  int input_size = 0;  // 0 = keep the cfg's native size
  std::string transport = "inproc";
  bool json = false;
  bool trace = true;
  std::string trace_out = "pico_trace.json";
  std::string metrics_out;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pico_report: " << message << "\n";
  std::exit(1);
}

double parse_double(const std::string& text, const std::string& flag) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail("bad numeric value '" + text + "' for " + flag);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& flag = tokens[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= tokens.size()) fail("missing value for " + flag);
      return tokens[++i];
    };
    if (flag == "--model" || flag == "--cfg") {
      args.model = value();
    } else if (flag == "--scheme") {
      args.scheme = value();
      for (char& c : args.scheme) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    } else if (flag == "--cluster") {
      args.cluster = value();
    } else if (flag == "--bandwidth-mbps") {
      args.bandwidth_mbps = parse_double(value(), flag);
    } else if (flag == "--tlim") {
      args.tlim = parse_double(value(), flag);
    } else if (flag == "--tasks") {
      args.tasks = static_cast<int>(parse_double(value(), flag));
      if (args.tasks < 1) fail("--tasks must be >= 1");
    } else if (flag == "--input-size") {
      args.input_size = static_cast<int>(parse_double(value(), flag));
      if (args.input_size < 1) fail("--input-size must be >= 1");
    } else if (flag == "--transport") {
      args.transport = value();
      if (args.transport != "inproc" && args.transport != "tcp") {
        fail("--transport must be inproc or tcp");
      }
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--no-trace") {
      args.trace = false;
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--metrics-out") {
      args.metrics_out = value();
    } else if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else {
      fail("unknown flag '" + flag + "'\n" + kUsage);
    }
  }
  if (args.model.empty()) {
    fail(std::string("--model is required\n") + kUsage);
  }
  return args;
}

pico::Cluster parse_cluster(const std::string& spec) {
  using pico::Cluster;
  if (spec == "paper") return Cluster::paper_heterogeneous();
  if (spec.rfind("homog:", 0) == 0) {
    const std::string body = spec.substr(6);
    const std::size_t x = body.find('x');
    if (x == std::string::npos) fail("--cluster homog:<n>x<ghz>");
    const int count =
        static_cast<int>(parse_double(body.substr(0, x), "--cluster"));
    const double ghz = parse_double(body.substr(x + 1), "--cluster");
    if (count < 1) fail("cluster needs at least one device");
    return Cluster::paper_homogeneous(count, ghz);
  }
  if (spec.rfind("pi:", 0) == 0) {
    std::vector<double> freqs;
    std::stringstream body(spec.substr(3));
    std::string item;
    while (std::getline(body, item, ',')) {
      freqs.push_back(parse_double(item, "--cluster"));
    }
    if (freqs.empty()) fail("--cluster pi:<f1,f2,...>");
    return Cluster::raspberry_pi(freqs);
  }
  fail("unknown cluster spec '" + spec + "'");
}

/// Load the cfg, optionally rewriting the [net] height/width so CI can run
/// the full pipeline on a toy input without a separate config file.
pico::nn::Graph load_model(const std::string& path, int input_size) {
  std::ifstream file(path);
  if (!file.good()) fail("cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  if (input_size > 0) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    bool in_net = false;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '[') {
        in_net = line.rfind("[net]", 0) == 0;
      }
      if (in_net && (line.rfind("height=", 0) == 0 ||
                     line.rfind("width=", 0) == 0)) {
        out << line.substr(0, line.find('=') + 1) << input_size << '\n';
      } else {
        out << line << '\n';
      }
    }
    text = out.str();
  }
  return pico::models::parse_cfg(text);
}

pico::partition::Plan make_plan(const Args& args,
                                const pico::nn::Graph& graph,
                                const pico::Cluster& cluster,
                                const pico::NetworkModel& network) {
  namespace partition = pico::partition;
  partition::SchemeOptions options;
  if (args.tlim > 0.0) options.latency_limit = args.tlim;
  if (args.scheme == "PICO") {
    return partition::pico_plan(graph, cluster, network, options);
  }
  if (args.scheme == "LW") return partition::lw_plan(graph, cluster, options);
  if (args.scheme == "EFL") {
    return partition::efl_plan(graph, cluster, options);
  }
  if (args.scheme == "OFL") {
    return partition::ofl_plan(graph, cluster, network, options);
  }
  fail("unknown scheme '" + args.scheme + "' (PICO, LW, EFL, OFL)");
}

std::string num(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string fmt(double value, int decimals = 4) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

struct StageRow {
  std::size_t stage = 0;
  int devices = 0;
  double pred_compute = 0.0, pred_comm = 0.0, pred_total = 0.0;
  double meas_compute = 0.0;   ///< mean critical-path device compute
  double meas_transfer = 0.0;  ///< mean scatter + gather
  double meas_service = 0.0;   ///< mean end-to-end stage service
};

struct DeviceRow {
  pico::DeviceId device = -1;
  long long requests = 0;
  long long bytes_sent = 0, bytes_received = 0;
};

struct Report {
  std::string model, scheme, cluster, transport;
  int tasks = 0;
  double pred_period = 0.0, pred_latency = 0.0;
  double meas_period = 0.0;
  double meas_latency_mean = 0.0, meas_latency_p95 = 0.0,
         meas_latency_p99 = 0.0;
  std::vector<StageRow> stages;
  std::vector<DeviceRow> devices;
  std::string trace_file;  ///< empty when tracing is off
  long long spans = 0;
};

void print_text(const Report& report) {
  std::printf("pico_report: %s, scheme %s, cluster %s, %d tasks (%s)\n",
              report.model.c_str(), report.scheme.c_str(),
              report.cluster.c_str(), report.tasks,
              report.transport.c_str());
  std::printf(
      "\npredicted (paper cost model, Pi-calibrated) vs measured (this "
      "host):\n");
  std::printf("%6s %5s | %12s %12s %12s | %12s %12s %12s | %8s\n", "stage",
              "devs", "pred comp", "pred comm", "pred total", "meas comp",
              "meas comm", "meas total", "ratio");
  for (const StageRow& row : report.stages) {
    const double ratio =
        row.pred_total > 0.0 ? row.meas_service / row.pred_total : 0.0;
    std::printf(
        "%6zu %5d | %12s %12s %12s | %12s %12s %12s | %8s\n", row.stage,
        row.devices, fmt(row.pred_compute).c_str(),
        fmt(row.pred_comm).c_str(), fmt(row.pred_total).c_str(),
        fmt(row.meas_compute).c_str(), fmt(row.meas_transfer).c_str(),
        fmt(row.meas_service).c_str(), fmt(ratio, 3).c_str());
  }
  std::printf("\n%-34s %12s %12s\n", "", "predicted", "measured");
  std::printf("%-34s %12s %12s\n", "period (s/task, Eq. 10)",
              fmt(report.pred_period).c_str(),
              fmt(report.meas_period).c_str());
  std::printf("%-34s %12s %12s\n", "latency (s, Eq. 11 vs mean)",
              fmt(report.pred_latency).c_str(),
              fmt(report.meas_latency_mean).c_str());
  std::printf("%-34s %12s %12s\n", "latency p95 / p99 (s)",
              fmt(report.meas_latency_p95).c_str(),
              fmt(report.meas_latency_p99).c_str());

  std::printf("\nper-device totals (coordinator-side):\n");
  std::printf("%8s %10s %14s %14s\n", "device", "requests", "bytes sent",
              "bytes recvd");
  for (const DeviceRow& row : report.devices) {
    std::printf("%8d %10lld %14lld %14lld\n", row.device, row.requests,
                row.bytes_sent, row.bytes_received);
  }
  if (!report.trace_file.empty()) {
    std::printf("\nwrote %lld spans to %s\n", report.spans,
                report.trace_file.c_str());
  }
}

void print_json(std::ostream& os, const Report& report) {
  os << "{\n";
  os << "  \"model\": \"" << report.model << "\",\n";
  os << "  \"scheme\": \"" << report.scheme << "\",\n";
  os << "  \"cluster\": \"" << report.cluster << "\",\n";
  os << "  \"transport\": \"" << report.transport << "\",\n";
  os << "  \"tasks\": " << report.tasks << ",\n";
  os << "  \"predicted\": {\"period_s\": " << num(report.pred_period)
     << ", \"latency_s\": " << num(report.pred_latency) << "},\n";
  os << "  \"measured\": {\"period_s\": " << num(report.meas_period)
     << ", \"latency_mean_s\": " << num(report.meas_latency_mean)
     << ", \"latency_p95_s\": " << num(report.meas_latency_p95)
     << ", \"latency_p99_s\": " << num(report.meas_latency_p99) << "},\n";
  os << "  \"stages\": [";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const StageRow& row = report.stages[i];
    os << (i ? "," : "") << "\n    {\"stage\": " << row.stage
       << ", \"devices\": " << row.devices
       << ", \"predicted_compute_s\": " << num(row.pred_compute)
       << ", \"predicted_comm_s\": " << num(row.pred_comm)
       << ", \"predicted_total_s\": " << num(row.pred_total)
       << ", \"measured_compute_s\": " << num(row.meas_compute)
       << ", \"measured_transfer_s\": " << num(row.meas_transfer)
       << ", \"measured_total_s\": " << num(row.meas_service) << "}";
  }
  os << "\n  ],\n  \"devices\": [";
  for (std::size_t i = 0; i < report.devices.size(); ++i) {
    const DeviceRow& row = report.devices[i];
    os << (i ? "," : "") << "\n    {\"device\": " << row.device
       << ", \"requests\": " << row.requests
       << ", \"bytes_sent\": " << row.bytes_sent
       << ", \"bytes_received\": " << row.bytes_received << "}";
  }
  os << "\n  ],\n";
  os << "  \"trace\": "
     << (report.trace_file.empty() ? "null"
                                   : "\"" + report.trace_file + "\"")
     << ",\n";
  os << "  \"spans\": " << report.spans << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    namespace obs = pico::obs;
    namespace runtime = pico::runtime;

    const pico::nn::Graph graph = load_model(args.model, args.input_size);
    const pico::Cluster cluster = parse_cluster(args.cluster);
    pico::NetworkModel network;
    network.bandwidth = args.bandwidth_mbps * 1e6 / 8.0;
    const pico::partition::Plan plan =
        make_plan(args, graph, cluster, network);
    const pico::partition::PlanCost predicted =
        pico::partition::plan_cost(graph, cluster, network, plan);

    // Fresh observability state for this run.
    obs::Registry& registry = obs::Registry::global();
    registry.reset_values();
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    if (args.trace) tracer.set_enabled(true);

    runtime::RuntimeOptions options;
    options.transport = args.transport == "tcp"
                            ? runtime::TransportKind::Tcp
                            : runtime::TransportKind::InProcess;

    const pico::Shape in_shape =
        graph.node(plan.stages.front().first).in_shape;
    pico::Tensor input(in_shape);
    pico::Rng rng(7);
    input.randomize(rng);

    std::vector<double> completion_s(static_cast<std::size_t>(args.tasks));
    {
      runtime::PipelineRuntime rt(graph, plan, options);
      std::vector<std::future<pico::Tensor>> futures;
      futures.reserve(static_cast<std::size_t>(args.tasks));
      for (int i = 0; i < args.tasks; ++i) futures.push_back(rt.submit(input));
      const auto epoch = std::chrono::steady_clock::now();
      for (int i = 0; i < args.tasks; ++i) {
        futures[static_cast<std::size_t>(i)].get();
        completion_s[static_cast<std::size_t>(i)] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          epoch)
                .count();
      }
      rt.shutdown();  // publishes per-device totals into the registry
    }

    Report report;
    report.model = args.model;
    report.scheme = plan.scheme;
    report.cluster = args.cluster;
    report.transport = args.transport;
    report.tasks = args.tasks;
    report.pred_period = predicted.period;
    report.pred_latency = predicted.latency;
    report.meas_period =
        args.tasks > 1
            ? (completion_s.back() - completion_s.front()) / (args.tasks - 1)
            : completion_s.back();

    const obs::Histogram& latency =
        registry.histogram("pico_task_latency_seconds");
    report.meas_latency_mean = latency.mean();
    report.meas_latency_p95 = latency.percentile(0.95);
    report.meas_latency_p99 = latency.percentile(0.99);

    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      StageRow row;
      row.stage = s;
      for (const pico::partition::DeviceSlice& slice :
           plan.stages[s].assignments) {
        if (slice.out_region.empty() && slice.branches.empty()) continue;
        ++row.devices;
      }
      const pico::partition::StageCost cost = predicted.stages[s];
      row.pred_compute = cost.compute;
      row.pred_comm = cost.comm;
      row.pred_total = cost.total();
      const std::vector<obs::Label> labels{
          {"stage", std::to_string(s)}};
      row.meas_compute =
          registry.histogram("pico_stage_compute_critical_seconds", labels)
              .mean();
      row.meas_service =
          registry.histogram("pico_stage_service_seconds", labels).mean();
      // The coordinator's gather wait is dominated by remote compute, so
      // measured comm/overhead is what's left of the service time after
      // the critical-path compute — the same decomposition as Eq. 9.
      row.meas_transfer =
          std::max(0.0, row.meas_service - row.meas_compute);
      report.stages.push_back(row);
    }

    std::vector<pico::DeviceId> devices;
    for (const pico::partition::Stage& stage : plan.stages) {
      for (const pico::partition::DeviceSlice& slice : stage.assignments) {
        bool seen = false;
        for (const pico::DeviceId id : devices) seen |= id == slice.device;
        if (!seen) devices.push_back(slice.device);
      }
    }
    std::sort(devices.begin(), devices.end());
    for (const pico::DeviceId id : devices) {
      DeviceRow row;
      row.device = id;
      const std::vector<obs::Label> labels{
          {"device", std::to_string(id)}};
      row.requests =
          registry.counter("pico_device_requests_total", labels).value();
      row.bytes_sent =
          registry.counter("pico_net_bytes_sent_total", labels).value();
      row.bytes_received =
          registry.counter("pico_net_bytes_received_total", labels).value();
      report.devices.push_back(row);
    }

    if (args.trace) {
      const std::vector<obs::SpanRecord> spans = tracer.snapshot();
      report.spans = static_cast<long long>(spans.size());
      report.trace_file = args.trace_out;
      std::map<std::int64_t, std::string> track_names;
      track_names[obs::task_track()] = "tasks";
      for (std::size_t s = 0; s < plan.stages.size(); ++s) {
        track_names[obs::stage_track(static_cast<int>(s))] =
            "stage " + std::to_string(s);
      }
      for (const pico::DeviceId id : devices) {
        track_names[obs::device_track(id)] =
            "device " + std::to_string(id);
      }
      track_names[obs::net_track()] = "net";
      obs::write_chrome_trace_file(args.trace_out, spans, track_names);
    }
    if (!args.metrics_out.empty()) {
      std::ofstream out(args.metrics_out, std::ios::trunc);
      if (!out.good()) fail("cannot write " + args.metrics_out);
      registry.write_prometheus(out);
    }

    if (args.json) {
      print_json(std::cout, report);
    } else {
      print_text(report);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "pico_report: " << error.what() << "\n";
    return 1;
  }
}
