#!/usr/bin/env bash
# Link-time backstop for the postmortem dump path's async-signal-safety.
#
# pico_lint's signal-unsafe check proves at the SOURCE level that nothing
# reachable from the crash handlers allocates, locks or touches stdio.  This
# script cross-validates that proof at the SYMBOL level: it inspects the
# undefined symbols of postmortem.cpp's object file (the dump-path-only
# translation unit — the allocating parse-back lives in
# postmortem_reader.cpp) and fails if any forbidden primitive is referenced.
# The two gates fail independently: a malloc smuggled in through a macro or
# an inlined header still shows up here even if the token-level analyzer
# misses it.
#
# Usage: check_postmortem_syms.sh <postmortem.cpp.o>
set -u

obj="${1:-}"
if [[ -z "$obj" || ! -f "$obj" ]]; then
    echo "usage: $0 <postmortem-object-file>" >&2
    echo "check_postmortem_syms: object file not found: '$obj'" >&2
    exit 1
fi

NM="${NM:-nm}"
if ! command -v "$NM" >/dev/null 2>&1; then
    echo "check_postmortem_syms: nm not available" >&2
    exit 1
fi

# Undefined symbols = everything this TU expects other code to provide.
# -C demangles so operator new / std::mutex members are matchable by name.
undef="$("$NM" -u -C "$obj")" || {
    echo "check_postmortem_syms: nm failed on $obj" >&2
    exit 1
}

# Forbidden reference patterns (extended regex, matched per symbol line):
#   heap        malloc/calloc/realloc/free, every operator new flavor
#   stdio       printf family, puts/fwrite/fopen, C++ iostreams (std::cout
#               and the ostream inserters)
#   locks       pthread mutex/condvar ops, std::mutex lock/unlock
#   unwinding   __cxa_throw / __cxa_allocate_exception
forbidden='(^|[^a-zA-Z0-9_])(malloc|calloc|realloc|free|strdup)($|[^a-zA-Z0-9_])'
forbidden+='|operator new'
forbidden+='|(^|[^a-zA-Z0-9_])(printf|fprintf|sprintf|snprintf|vfprintf|puts|fputs|fwrite|fopen|fclose|fflush|perror)($|[^a-zA-Z0-9_])'
forbidden+='|std::basic_ostream|std::cout|std::cerr|std::basic_stringstream|std::basic_ostringstream'
forbidden+='|pthread_mutex_lock|pthread_mutex_unlock|pthread_cond_wait|pthread_cond_signal|pthread_cond_broadcast'
forbidden+='|std::mutex::lock|std::mutex::unlock|std::condition_variable'
forbidden+='|__cxa_throw|__cxa_allocate_exception'

hits="$(printf '%s\n' "$undef" | grep -E "$forbidden" || true)"

if [[ -n "$hits" ]]; then
    echo "check_postmortem_syms: FORBIDDEN symbols referenced from the dump path ($obj):" >&2
    printf '%s\n' "$hits" >&2
    echo "" >&2
    echo "The postmortem dump must stay async-signal-safe: no allocation," >&2
    echo "stdio, locks or throws.  Move the offending code out of" >&2
    echo "postmortem.cpp (parse-back belongs in postmortem_reader.cpp)." >&2
    exit 1
fi

count="$(printf '%s\n' "$undef" | grep -c . || true)"
echo "check_postmortem_syms: OK — $count undefined symbol(s) in $(basename "$obj"), none forbidden"
exit 0
