#!/usr/bin/env bash
# clang-format gate: verifies (never rewrites) formatting of every C++ file
# under src/, tests/, bench/, examples/ and tools/.
#
# usage: tools/check_format.sh [--fix]
#
# Without --fix runs clang-format --dry-run --Werror (CI mode); with --fix
# rewrites files in place.  SKIPs cleanly when clang-format is unavailable
# (the GCC-only container), mirroring tools/run_tidy.sh.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
format_bin="${CLANG_FORMAT:-clang-format}"
mode="--dry-run --Werror"
[ "${1:-}" = "--fix" ] && mode="-i"

if ! command -v "$format_bin" >/dev/null 2>&1; then
  echo "check_format: $format_bin not found — SKIP (install clang-format to enable)"
  exit 0
fi

mapfile -t files < <(find "$repo_root/src" "$repo_root/tests" \
  "$repo_root/bench" "$repo_root/examples" "$repo_root/tools" \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

echo "check_format: ${#files[@]} file(s)"
# shellcheck disable=SC2086  # $mode is intentionally word-split
"$format_bin" --style=file --fallback-style=Google $mode "${files[@]}"
