// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§II / §V); these helpers pin the common experimental setup —
// the 50 Mbps WiFi model and the Raspberry-Pi cluster calibration — and
// provide fixed-width table printing so the output reads like the paper's
// rows/series.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"

namespace pico::bench {

/// The paper's network: one 50 Mbps WiFi access point.
inline NetworkModel paper_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string fmt_pct(double fraction, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals,
                fraction * 100.0);
  return buffer;
}

/// Machine-readable companion to the printed tables: accumulates named
/// sample series and writes `BENCH_<name>.json` on destruction — into
/// $PICO_BENCH_JSON_DIR when set, else the working directory — with
/// count/mean/p50/p99 per series so CI can diff bench results across runs.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() {
    // Best effort: a bench must never fail because its JSON sidecar can't
    // be written.
    try {
      write();
    } catch (...) {
    }
  }

  void param(const std::string& key, const std::string& value) {
    params_[key] = "\"" + escape(value) + "\"";
  }
  void param(const std::string& key, double value) {
    params_[key] = number(value);
  }

  void sample(const std::string& series, double value) {
    series_[series].push_back(value);
  }

  void write() const {
    const char* dir = std::getenv("PICO_BENCH_JSON_DIR");
    std::string file_stem;
    for (const char c : name_) {
      file_stem.push_back(std::isalnum(static_cast<unsigned char>(c))
                              ? c
                              : '_');
    }
    const std::string path = (dir && *dir ? std::string(dir) + "/" : "") +
                             "BENCH_" + file_stem + ".json";
    std::ofstream file(path, std::ios::trunc);
    if (!file.good()) return;
    file << "{\n  \"name\": \"" << escape(name_) << "\",\n  \"params\": {";
    bool first = true;
    for (const auto& [key, value] : params_) {
      file << (first ? "" : ",") << "\n    \"" << escape(key)
           << "\": " << value;
      first = false;
    }
    file << (params_.empty() ? "" : "\n  ") << "},\n  \"series\": {";
    first = true;
    for (const auto& [key, values] : series_) {
      double sum = 0.0;
      for (const double v : values) sum += v;
      const double mean =
          values.empty() ? 0.0 : sum / static_cast<double>(values.size());
      file << (first ? "" : ",") << "\n    \"" << escape(key)
           << "\": {\"count\": " << values.size()
           << ", \"mean\": " << number(mean)
           << ", \"p50\": " << number(percentile(values, 0.5))
           << ", \"p99\": " << number(percentile(values, 0.99)) << "}";
      first = false;
    }
    file << (series_.empty() ? "" : "\n  ") << "}\n}\n";
  }

 private:
  static std::string escape(const std::string& text) {
    std::string out;
    for (const char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  /// JSON has no inf/nan literals; clamp to null.
  static std::string number(double value) {
    if (!(value == value) || value > 1e308 || value < -1e308) return "null";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
  }

  std::string name_;
  std::map<std::string, std::string> params_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace pico::bench
