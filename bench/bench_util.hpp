// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§II / §V); these helpers pin the common experimental setup —
// the 50 Mbps WiFi model and the Raspberry-Pi cluster calibration — and
// provide fixed-width table printing so the output reads like the paper's
// rows/series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace pico::bench {

/// The paper's network: one 50 Mbps WiFi access point.
inline NetworkModel paper_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string fmt_pct(double fraction, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals,
                fraction * 100.0);
  return buffer;
}

}  // namespace pico::bench
