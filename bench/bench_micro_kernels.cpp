// Microbenchmarks (google-benchmark) for the hot paths behind the paper's
// system: convolution kernels, overlapped split/stitch, receptive-field
// propagation, the PICO DP planner, message serialization, and the
// discrete-event simulator.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "nn/receptive.hpp"
#include "partition/pico_dp.hpp"
#include "partition/splitter.hpp"
#include "partition/schemes.hpp"
#include "runtime/message.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"
#include "tensor/slice.hpp"

namespace {

using namespace pico;

NetworkModel paper_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

void BM_Conv3x3(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  nn::Graph g;
  int x = g.add_input({16, size, size});
  g.add_conv(x, 16, 3, 1, 1);
  g.finalize();
  Rng rng(1);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::execute(g, input));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["GFLOP/s"] = benchmark::Counter(
      cost::node_flops_full(g, 1) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv3x3)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv1x1(benchmark::State& state) {
  nn::Graph g;
  int x = g.add_input({64, 56, 56});
  g.add_conv(x, 64, 1, 1, 0);
  g.finalize();
  Rng rng(2);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::execute(g, input));
  }
}
BENCHMARK(BM_Conv1x1);

void BM_SplitStitch(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  Rng rng(3);
  Tensor map({64, 112, 112});
  map.randomize(rng);
  const auto strips = partition::split_rows_equal(112, 112, parts);
  for (auto _ : state) {
    std::vector<Placed> pieces;
    pieces.reserve(strips.size());
    for (const Region& strip : strips) {
      if (strip.empty()) continue;
      // Overlapped extraction: one halo row on each side, like a 3x3 conv.
      const Region haloed =
          Region{strip.row_begin - 1, strip.row_end + 1, 0, 112}.clamp(112,
                                                                       112);
      Tensor piece = extract(map, haloed);
      pieces.push_back({strip, extract(map, strip)});
      benchmark::DoNotOptimize(piece);
    }
    benchmark::DoNotOptimize(stitch(map.shape(), pieces));
  }
}
BENCHMARK(BM_SplitStitch)->Arg(2)->Arg(4)->Arg(8);

void BM_ReceptiveFieldVgg16(benchmark::State& state) {
  const nn::Graph g = models::vgg16();
  const Shape out = g.output_shape();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::segment_input_region(
        g, 1, g.size() - 1, Region::rows(0, out.height / 2, out.width)));
  }
}
BENCHMARK(BM_ReceptiveFieldVgg16);

void BM_PicoPlannerVgg16(benchmark::State& state) {
  const nn::Graph g = models::vgg16();
  const Cluster cluster =
      Cluster::paper_homogeneous(static_cast<int>(state.range(0)), 1.0);
  const NetworkModel net = paper_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::pico_plan(g, cluster, net));
  }
}
BENCHMARK(BM_PicoPlannerVgg16)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_OflPlannerYolov2(benchmark::State& state) {
  const nn::Graph g = models::yolov2();
  const Cluster cluster = Cluster::paper_homogeneous(8, 1.0);
  const NetworkModel net = paper_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::ofl_plan(g, cluster, net));
  }
}
BENCHMARK(BM_OflPlannerYolov2)->Unit(benchmark::kMillisecond);

void BM_MessageSerialize(benchmark::State& state) {
  runtime::Message m;
  m.type = runtime::MessageType::WorkRequest;
  m.tensor = Tensor({64, 56, 56});
  Rng rng(4);
  m.tensor.randomize(rng);
  for (auto _ : state) {
    const auto bytes = runtime::serialize(m);
    benchmark::DoNotOptimize(
        runtime::deserialize(bytes.data(), bytes.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.tensor.size()) * 4);
}
BENCHMARK(BM_MessageSerialize);

void BM_SimulatorSaturated(benchmark::State& state) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel net = paper_network();
  const auto plan = partition::pico_plan(g, cluster, net);
  const auto arrivals =
      sim::back_to_back_arrivals(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_plan(g, cluster, net, plan, arrivals));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorSaturated)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
