// Observability overhead: what the always-on metrics/trace plumbing, the
// flight recorder and the continuous harvest loop cost the serving path.
//
// Four configurations of the same loopback two-worker EFL pipeline:
//   off      — tracer disabled, flight recorder disabled, no harvest;
//   recorder — flight recorder ON, everything else still off: isolates the
//              always-on black box (the ≤1% budget this PR gates);
//   shutdown — metrics + tracer + recorder on, one harvest round at
//              shutdown only (the pre-continuous-harvest default);
//   live     — metrics + tracer + recorder on, background harvester pulling
//              every worker's metrics/trace/event deltas mid-run
//              (PICO_HARVEST_MS equivalent: harvest_ms = 5).
// Records per-inference wall time for each and writes
// BENCH_obs_overhead.json.  Wall-clock deltas on a 40-task run are noisy,
// so the recorder gate is budget-based: a tight record() micro-loop prices
// one journal write (ns_per_event), the run counts how many events one
// inference actually journals (events_per_task), and
//   recorder_budget_pct = 100 × events_per_task × ns_per_event / infer_ns
// must stay under 1 — CI reads that key.  overhead_live_pct still keeps the
// harvest loop honest (cursor protocol + connection gates should hold it in
// the low single digits).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"

namespace {

using namespace pico;

struct Config {
  const char* name;
  bool tracer;
  bool recorder;
  bool harvest;
  int harvest_ms;
};

double run_config(const nn::Graph& graph, const partition::Plan& plan,
                  const Tensor& input, const Config& config, int tasks,
                  bench::BenchJson& json, double* events_per_task) {
  obs::Registry::global().reset_values();
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(config.tracer);
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  recorder.set_enabled(config.recorder);

  runtime::RuntimeOptions options;
  options.harvest_telemetry = config.harvest;
  options.harvest_ms = config.harvest_ms;
  runtime::PipelineRuntime rt(graph, plan, options);
  rt.infer(input);  // warm-up: first task pays thread/queue start-up

  const std::uint64_t seq_before = recorder.next_seq();
  double total = 0.0;
  for (int i = 0; i < tasks; ++i) {
    const auto start = std::chrono::steady_clock::now();
    rt.infer(input);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    json.sample(std::string("infer_seconds_") + config.name, elapsed);
    total += elapsed;
  }
  if (events_per_task != nullptr) {
    // Steady-state journal rate (shutdown/teardown events excluded).
    *events_per_task =
        static_cast<double>(recorder.next_seq() - seq_before) / tasks;
  }
  rt.shutdown();
  if (config.harvest_ms > 0) {
    json.sample("harvest_rounds_live",
                static_cast<double>(rt.health().rounds));
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  recorder.set_enabled(true);
  return total / tasks;
}

/// Price one journal write with a tight loop (enabled, ring wrapping —
/// the steady-state path).
double measure_ns_per_event() {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  constexpr int kWarm = 10'000;
  constexpr int kIters = 400'000;
  for (int i = 0; i < kWarm; ++i) {
    obs::record_event(obs::EventCode::TaskAccept, i);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    obs::record_event(obs::EventCode::TaskAccept, i, i, i);
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  recorder.clear();
  return seconds * 1e9 / kIters;
}

}  // namespace

int main() {
  using namespace pico;
  bench::BenchJson json("obs_overhead");

  nn::Graph graph = models::toy_mnist({.input_size = 48});
  Rng rng(17);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan = partition::efl_plan(graph, cluster);
  Tensor input(graph.input_shape());
  input.randomize(rng);

  constexpr int kTasks = 40;
  json.param("model", "toy_mnist_48");
  json.param("tasks", static_cast<double>(kTasks));
  json.param("harvest_ms_live", 5.0);

  const double ns_per_event = measure_ns_per_event();
  json.sample("ns_per_event", ns_per_event);

  const Config configs[] = {
      {"off", false, false, false, 0},
      {"recorder", false, true, false, 0},
      {"shutdown", true, true, true, 0},
      {"live", true, true, true, 5},
  };

  bench::print_header(
      "Observability overhead — loopback 2-worker EFL, toy_mnist@48");
  std::printf("journal write: %.1f ns/event\n", ns_per_event);
  bench::print_row({"config", "mean_ms", "overhead"});
  double baseline = std::numeric_limits<double>::quiet_NaN();
  double events_per_task = 0.0;
  for (const Config& config : configs) {
    const bool is_recorder = config.name == std::string("recorder");
    const double mean =
        run_config(graph, plan, input, config, kTasks, json,
                   is_recorder ? &events_per_task : nullptr);
    if (config.name == std::string("off")) baseline = mean;
    const double overhead = mean / baseline - 1.0;
    json.sample(std::string("mean_seconds_") + config.name, mean);
    if (config.name != std::string("off")) {
      json.sample(std::string("overhead_") + config.name + "_pct",
                  overhead * 100.0);
    }
    bench::print_row({config.name, bench::fmt(mean * 1e3, 3),
                      bench::fmt_pct(overhead, 1)});
  }

  // The deterministic gate: journal writes per inference × cost per write,
  // as a share of the baseline inference itself.
  const double budget_pct =
      baseline > 0.0
          ? 100.0 * events_per_task * ns_per_event / (baseline * 1e9)
          : 0.0;
  json.sample("events_per_task", events_per_task);
  json.sample("recorder_budget_pct", budget_pct);
  std::printf(
      "\nflight recorder: %.1f event(s)/task x %.1f ns = %.4f%% of one "
      "inference (budget: 1%%)\n",
      events_per_task, ns_per_event, budget_pct);

  std::printf(
      "\nReading: 'recorder' prices the always-on flight recorder alone\n"
      "(CI gates recorder_budget_pct <= 1, computed from the ns/event\n"
      "micro-loop — wall-clock deltas at this scale are noise); 'shutdown'\n"
      "adds counters/histograms and span recording; 'live' adds the mid-run\n"
      "harvest loop (pings + MetricsDump/TraceDump/EventDump every 5 ms —\n"
      "far more aggressive than a real deployment).  The shutdown->live\n"
      "delta is the price of continuous cluster health, paid outside the\n"
      "compute critical path.\n");
  return 0;
}
