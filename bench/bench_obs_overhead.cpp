// Observability overhead: what the always-on metrics/trace plumbing and
// the continuous harvest loop cost the serving path.
//
// Three configurations of the same loopback two-worker EFL pipeline:
//   off      — tracer disabled, no telemetry harvest at all;
//   shutdown — metrics + tracer on, one harvest round at shutdown only
//              (the pre-continuous-harvest default);
//   live     — metrics + tracer on, background harvester pulling every
//              worker's metrics/trace deltas mid-run (PICO_HARVEST_MS
//              equivalent: harvest_ms = 5).
// Records per-inference wall time for each and writes
// BENCH_obs_overhead.json; CI reads overhead_live_pct to keep the live
// harvest loop honest (the cursor protocol and connection gates should
// keep it in the low single digits — the harvester round trips ride
// between scatter/gather exchanges, not inside them).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"

namespace {

using namespace pico;

struct Config {
  const char* name;
  bool tracer;
  bool harvest;
  int harvest_ms;
};

double run_config(const nn::Graph& graph, const partition::Plan& plan,
                  const Tensor& input, const Config& config, int tasks,
                  bench::BenchJson& json) {
  obs::Registry::global().reset_values();
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(config.tracer);

  runtime::RuntimeOptions options;
  options.harvest_telemetry = config.harvest;
  options.harvest_ms = config.harvest_ms;
  runtime::PipelineRuntime rt(graph, plan, options);
  rt.infer(input);  // warm-up: first task pays thread/queue start-up

  double total = 0.0;
  for (int i = 0; i < tasks; ++i) {
    const auto start = std::chrono::steady_clock::now();
    rt.infer(input);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    json.sample(std::string("infer_seconds_") + config.name, elapsed);
    total += elapsed;
  }
  rt.shutdown();
  if (config.harvest_ms > 0) {
    json.sample("harvest_rounds_live",
                static_cast<double>(rt.health().rounds));
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  return total / tasks;
}

}  // namespace

int main() {
  using namespace pico;
  bench::BenchJson json("obs_overhead");

  nn::Graph graph = models::toy_mnist({.input_size = 48});
  Rng rng(17);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan = partition::efl_plan(graph, cluster);
  Tensor input(graph.input_shape());
  input.randomize(rng);

  constexpr int kTasks = 40;
  json.param("model", "toy_mnist_48");
  json.param("tasks", static_cast<double>(kTasks));
  json.param("harvest_ms_live", 5.0);

  const Config configs[] = {
      {"off", false, false, 0},
      {"shutdown", true, true, 0},
      {"live", true, true, 5},
  };

  bench::print_header(
      "Observability overhead — loopback 2-worker EFL, toy_mnist@48");
  bench::print_row({"config", "mean_ms", "overhead"});
  double baseline = std::numeric_limits<double>::quiet_NaN();
  for (const Config& config : configs) {
    const double mean =
        run_config(graph, plan, input, config, kTasks, json);
    if (config.name == std::string("off")) baseline = mean;
    const double overhead = mean / baseline - 1.0;
    json.sample(std::string("mean_seconds_") + config.name, mean);
    if (config.name != std::string("off")) {
      json.sample(std::string("overhead_") + config.name + "_pct",
                  overhead * 100.0);
    }
    bench::print_row({config.name, bench::fmt(mean * 1e3, 3),
                      bench::fmt_pct(overhead, 1)});
  }
  std::printf(
      "\nReading: 'shutdown' prices the always-on counters/histograms and\n"
      "span recording; 'live' adds the mid-run harvest loop (pings +\n"
      "MetricsDump/TraceDump every 5 ms — far more aggressive than a real\n"
      "deployment would run).  The delta between the two is the price of\n"
      "continuous cluster health, paid outside the compute critical path.\n");
  return 0;
}
