// Shared harness for Figures 8 and 9: cluster capacity (pipeline period and
// saturated throughput) for one model across schemes, device counts and CPU
// frequencies.
#pragma once

#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace pico::bench {

inline void capacity_figure(models::ModelId model, const char* figure) {
  const nn::Graph graph = models::build(model);
  const NetworkModel network = paper_network();
  const std::vector<double> frequencies{0.6, 0.8, 1.2};
  const std::vector<int> device_counts{2, 4, 6, 8};
  const std::vector<Scheme> schemes{Scheme::LayerWise, Scheme::EarlyFused,
                                    Scheme::OptimalFused, Scheme::Pico};

  BenchJson json(std::string(figure) + "_" + models::model_name(model) +
                 "_capacity");
  json.param("model", models::model_name(model));

  for (const double freq : frequencies) {
    print_header(std::string(figure) + " — inference period (s), " +
                 models::model_name(model) + " @ " + fmt(freq, 1) + " GHz");
    std::vector<std::string> head{"devices"};
    for (const Scheme s : schemes) head.push_back(scheme_name(s));
    print_row(head);
    for (const int devices : device_counts) {
      const Cluster cluster = Cluster::paper_homogeneous(devices, freq);
      std::vector<std::string> row{std::to_string(devices)};
      for (const Scheme scheme : schemes) {
        const auto p = plan(graph, cluster, network, scheme);
        const auto cost = evaluate(graph, cluster, network, p);
        json.sample(std::string(scheme_name(scheme)) + "_period_s",
                    cost.period);
        row.push_back(fmt(cost.period, 2));
      }
      print_row(row);
    }
  }

  // Last panel: tasks per minute with 8 devices (simulated, saturated).
  print_header(std::string(figure) + " — throughput (tasks/min), " +
               models::model_name(model) + ", 8 devices");
  std::vector<std::string> head{"freq"};
  for (const Scheme s : schemes) head.push_back(scheme_name(s));
  print_row(head);
  for (const double freq : frequencies) {
    const Cluster cluster = Cluster::paper_homogeneous(8, freq);
    std::vector<std::string> row{fmt(freq, 1) + "GHz"};
    for (const Scheme scheme : schemes) {
      const auto p = plan(graph, cluster, network, scheme);
      const auto arrivals = sim::back_to_back_arrivals(40);
      const auto result =
          sim::simulate_plan(graph, cluster, network, p, arrivals);
      json.sample(std::string(scheme_name(scheme)) + "_tasks_per_min",
                  result.throughput() * 60.0);
      row.push_back(fmt(result.throughput() * 60.0, 2));
    }
    print_row(row);
  }
}

}  // namespace pico::bench
