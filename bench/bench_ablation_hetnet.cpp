// Ablation (beyond the paper): heterogeneous link bandwidth.
//
// The paper assumes every device sees the same bandwidth b (§III-A, "This
// assumption covers most cases...").  Real WLANs are messier: a device far
// from the AP may only sustain a fraction of b.  This ablation degrades one
// fast device's link and compares:
//   - PICO: Algorithm 1+2 are bandwidth-blind by design (the DP uses the
//     nominal link, the greedy sorts by compute capacity only), so the
//     degraded device still lands in a hot stage;
//   - BFS: stage costs see per-device links, so the search routes around
//     the slow link.
// The gap measures how much the paper's uniform-b assumption costs.
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "partition/plan_cost.hpp"

int main() {
  using namespace pico;
  const nn::Graph graph = models::toy_mnist();
  const Cluster cluster = Cluster::raspberry_pi({1.2, 1.2, 0.8, 0.8, 0.6, 0.6});

  bench::print_header(
      "Ablation — one degraded WiFi link, toy model, 6 devices");
  bench::print_row(
      {"link scale", "PICO period", "BFS period", "BFS/PICO"});
  for (const double scale : {1.0, 0.5, 0.25, 0.1}) {
    NetworkModel network = bench::paper_network();
    // Degrade device 0 — the fastest CPU, which Alg. 2 will still assign to
    // the hottest stage.
    network.device_bandwidth_scale = {scale, 1.0, 1.0, 1.0, 1.0, 1.0};

    const auto pico_plan = plan(graph, cluster, network, Scheme::Pico);
    const Seconds pico_period =
        evaluate(graph, cluster, network, pico_plan).period;

    partition::BfsOptions options;
    options.memoize = true;
    options.time_budget = 30.0;
    const auto bfs =
        partition::bfs_optimal_plan(graph, cluster, network, options);

    bench::print_row({bench::fmt(scale, 2), bench::fmt(pico_period, 3),
                      bench::fmt(bfs.period, 3),
                      bench::fmt(bfs.period / pico_period, 2)});
  }
  std::printf(
      "\nExpectation: at scale 1.0 the two agree (BFS slightly better).  As\n"
      "the link degrades, bandwidth-blind PICO's period inflates while the\n"
      "bandwidth-aware search sheds or demotes the degraded device, widening\n"
      "the gap — evidence that extending Algorithm 2 with link awareness is\n"
      "worthwhile future work.\n");
  return 0;
}
