// Shared harness for Figures 10 and 11: average inference latency under
// Poisson workloads between 40% and 150% of the cluster capacity (defined,
// as in the paper, as the throughput of the Early-Fused-Layer scheme), on
// the heterogeneous 8-device cluster.  Each point simulates 10 minutes of
// traffic and averages 3 repeats with different seeds.
#pragma once

#include <cstdio>

#include "adaptive/apico.hpp"
#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace pico::bench {

struct LatencyPoint {
  double load = 0.0;       ///< fraction of EFL capacity
  Seconds efl = 0.0, ofl = 0.0, pico = 0.0, apico = 0.0;
};

inline Seconds mean_over_seeds(
    const nn::Graph& graph, const Cluster& cluster,
    const NetworkModel& network, const partition::Plan& plan, double lambda,
    Seconds horizon, int repeats, BenchJson& json,
    const std::string& series) {
  double sum = 0.0;
  for (int seed = 0; seed < repeats; ++seed) {
    Rng rng(1000 + static_cast<std::uint64_t>(seed));
    const auto arrivals = sim::poisson_arrivals(rng, lambda, horizon);
    if (arrivals.empty()) continue;
    const auto result =
        sim::simulate_plan(graph, cluster, network, plan, arrivals);
    json.sample(series, result.mean_latency());
    sum += result.mean_latency();
  }
  return sum / repeats;
}

inline Seconds apico_mean(const nn::Graph& graph, const Cluster& cluster,
                          const NetworkModel& network, double lambda,
                          Seconds horizon, Seconds window, int repeats,
                          BenchJson& json, const std::string& series) {
  double sum = 0.0;
  for (int seed = 0; seed < repeats; ++seed) {
    Rng rng(1000 + static_cast<std::uint64_t>(seed));
    const auto arrivals = sim::poisson_arrivals(rng, lambda, horizon);
    if (arrivals.empty()) continue;
    sim::ClusterSimulator simulator(graph, cluster, network);
    auto controller = adaptive::ApicoController::make_default(
        graph, cluster, network, {.beta = 0.3, .window = window});
    controller.attach(simulator);
    simulator.add_arrivals(arrivals);
    const auto result = simulator.run();
    json.sample(series, result.mean_latency());
    sum += result.mean_latency();
  }
  return sum / repeats;
}

inline void latency_figure(models::ModelId model, const char* figure,
                           Seconds horizon = 600.0, int repeats = 3) {
  const nn::Graph graph = models::build(model);
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = paper_network();

  const auto efl = plan(graph, cluster, network, Scheme::EarlyFused);
  const auto ofl = plan(graph, cluster, network, Scheme::OptimalFused);
  const auto pico = plan(graph, cluster, network, Scheme::Pico);
  // Cluster capacity = EFL throughput (paper §V-A).
  const double capacity =
      1.0 / evaluate(graph, cluster, network, efl).period;
  const Seconds window = 10.0 / capacity;

  BenchJson json(std::string(figure) + "_" + models::model_name(model) +
                 "_latency");
  json.param("model", models::model_name(model));
  json.param("horizon_s", horizon);
  json.param("repeats", static_cast<double>(repeats));
  json.param("capacity_tasks_per_s", capacity);

  print_header(std::string(figure) + " — average inference latency (s), " +
               models::model_name(model) +
               ", heterogeneous 8-device cluster");
  std::printf("cluster capacity (EFL throughput): %.3f tasks/s\n", capacity);
  print_row({"workload", "EFL", "OFL", "PICO", "APICO"});
  for (const double load :
       {0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5}) {
    const double lambda = load * capacity;
    const std::string at = "@" + fmt_pct(load, 0);
    LatencyPoint point;
    point.load = load;
    point.efl = mean_over_seeds(graph, cluster, network, efl, lambda,
                                horizon, repeats, json, "EFL" + at);
    point.ofl = mean_over_seeds(graph, cluster, network, ofl, lambda,
                                horizon, repeats, json, "OFL" + at);
    point.pico = mean_over_seeds(graph, cluster, network, pico, lambda,
                                 horizon, repeats, json, "PICO" + at);
    point.apico = apico_mean(graph, cluster, network, lambda, horizon,
                             window, repeats, json, "APICO" + at);
    print_row({fmt_pct(point.load, 0), fmt(point.efl, 2),
               fmt(point.ofl, 2), fmt(point.pico, 2),
               fmt(point.apico, 2)});
  }
}

}  // namespace pico::bench
