// Ablation (beyond the paper): sensitivity of APICO to the EWMA weight β
// (Eq. 15) and to the control window under bursty traffic.
//
// The paper introduces β as "a hyper-parameter used to denote the impact of
// the current workload" but never evaluates it.  Under a two-state bursty
// arrival process (calm 20% / burst 120% of pipeline capacity), a small β
// reacts too slowly to bursts (queues build before the switch to the
// pipeline) while β ≈ 1 chases noise (one quiet window flips the scheme
// back).  The sweep locates the useful middle and reports the switch count
// as the chattiness measure.
#include <cstdio>

#include "adaptive/apico.hpp"
#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace pico;
  const nn::Graph graph = models::vgg16();
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = bench::paper_network();

  const auto pico_cost =
      evaluate(graph, cluster, network, plan(graph, cluster, network,
                                             Scheme::Pico));
  const double capacity = 1.0 / pico_cost.period;

  // Shared bursty trace: calm at 20%, bursts at 120% of pipeline capacity,
  // ~8-minute calm phases, ~4-minute bursts, one simulated hour x 3 seeds.
  const Seconds horizon = 3600.0;
  const Seconds window = 30.0;

  bench::print_header(
      "Ablation — APICO vs EWMA weight beta, bursty VGG16 traffic");
  std::printf("calm 20%% / burst 120%% of pipeline capacity, window %.0fs\n",
              window);
  bench::print_row({"beta", "mean lat(s)", "p95 lat(s)", "switches"});
  for (const double beta : {0.05, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    double latency_sum = 0.0, p95_sum = 0.0;
    int switches = 0;
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(500 + static_cast<std::uint64_t>(seed));
      const auto arrivals = sim::bursty_arrivals(
          rng, 0.2 * capacity, 1.2 * capacity, 480.0, 240.0, horizon);
      sim::ClusterSimulator simulator(graph, cluster, network);
      auto controller = adaptive::ApicoController::make_default(
          graph, cluster, network, {.beta = beta, .window = window});
      controller.attach(simulator);
      simulator.add_arrivals(arrivals);
      const auto result = simulator.run();
      latency_sum += result.mean_latency();
      p95_sum += result.percentile_latency(0.95);
      switches += result.plan_switches;
    }
    bench::print_row({bench::fmt(beta, 2), bench::fmt(latency_sum / 3, 2),
                      bench::fmt(p95_sum / 3, 2),
                      std::to_string(switches / 3)});
  }

  // Fixed-scheme baselines on the same traces.
  bench::print_header("Fixed-scheme baselines on the same bursty traces");
  bench::print_row({"scheme", "mean lat(s)", "p95 lat(s)"});
  for (const Scheme scheme : {Scheme::OptimalFused, Scheme::Pico}) {
    const auto p = plan(graph, cluster, network, scheme);
    double latency_sum = 0.0, p95_sum = 0.0;
    for (int seed = 0; seed < 3; ++seed) {
      Rng rng(500 + static_cast<std::uint64_t>(seed));
      const auto arrivals = sim::bursty_arrivals(
          rng, 0.2 * capacity, 1.2 * capacity, 480.0, 240.0, horizon);
      const auto result =
          sim::simulate_plan(graph, cluster, network, p, arrivals);
      latency_sum += result.mean_latency();
      p95_sum += result.percentile_latency(0.95);
    }
    bench::print_row({scheme_name(scheme), bench::fmt(latency_sum / 3, 2),
                      bench::fmt(p95_sum / 3, 2)});
  }
  std::printf(
      "\nExpectation: mean latency is U-shaped in beta (sluggish below 0.1,\n"
      "slightly worse again at 1.0) while the switch count rises\n"
      "monotonically — each switch drains the pipeline, which is the cost\n"
      "of adaptivity.  On burst-dominated traces the fixed pipeline wins\n"
      "overall (switch drains are pure overhead there); APICO's value is\n"
      "that it also matches the one-stage scheme at light load (Fig. 10)\n"
      "while staying within ~20%% of fixed PICO here — and far from OFL's\n"
      "collapse.\n");
  return 0;
}
