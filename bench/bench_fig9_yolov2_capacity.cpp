// Figure 9: the cluster capacity when executing YOLOv2 (23 conv + 5 pool,
// 448x448 input) — same panels as Figure 8.
//
// Paper shape: same ordering as VGG16, but YOLOv2's nearly-double layer
// count makes layer-wise parallelization pay so much communication that at
// high CPU frequency adding devices stops helping LW at all (the paper's
// "gain ... offset by communication overhead" observation).
#include "bench_capacity.hpp"

#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"

int main() {
  using namespace pico;
  bench::capacity_figure(models::ModelId::Yolov2, "Figure 9");

  // The paper's LW anomaly: at the highest frequency, compare LW period with
  // 2 vs 8 devices — the improvement should be marginal or negative.
  const nn::Graph graph = models::yolov2();
  const NetworkModel network = bench::paper_network();
  const auto period_at = [&](int devices) {
    const Cluster cluster = Cluster::paper_homogeneous(devices, 1.2);
    const auto plan = partition::lw_plan(graph, cluster);
    return partition::plan_cost(graph, cluster, network, plan).period;
  };
  std::printf(
      "\nLW @1.2GHz: period(2 dev)=%.2fs, period(8 dev)=%.2fs — speedup "
      "%.2fx\n(paper: LW gains vanish for YOLOv2 at high frequency)\n",
      period_at(2), period_at(8), period_at(2) / period_at(8));
  return 0;
}
