// Figure 4: computation overhead of the fused-layer scheme on VGG16 under
// different partition settings.
//
//  (a) FLOPs per device as the number of devices and fused layers vary
//  (b) total FLOPs over all devices (redundant work included)
//
// Paper shape: fused-layer works fine for small settings, but the redundant
// computation grows quickly when the fusion depth or device count grows.
#include <cstdio>

#include "bench_util.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "partition/splitter.hpp"

namespace {

using namespace pico;

}  // namespace

int main() {
  const nn::Graph g = models::vgg16();

  // Fused prefixes end after each conv/pool layer; count conv layers fused.
  std::vector<int> prefix_last_node;  // node id ending a prefix of k convs
  for (int id = 1; id < g.size(); ++id) {
    if (g.node(id).kind == nn::OpKind::Conv) prefix_last_node.push_back(id);
  }

  const std::vector<int> device_counts{1, 2, 4, 6, 8};

  bench::print_header(
      "Figure 4a — FLOPs per device (GFLOPs), VGG16 fused prefix");
  {
    std::vector<std::string> head{"fused convs"};
    for (int d : device_counts) head.push_back(std::to_string(d) + " dev");
    bench::print_row(head);
    for (std::size_t k = 0; k < prefix_last_node.size(); ++k) {
      const int last = prefix_last_node[k];
      const Shape out = g.node(last).out_shape;
      std::vector<std::string> row{std::to_string(k + 1)};
      for (int devices : device_counts) {
        const auto strips =
            partition::split_rows_equal(out.height, out.width, devices);
        Flops worst = 0.0;
        for (const Region& strip : strips) {
          if (strip.empty()) continue;
          worst = std::max(worst, cost::segment_flops(g, 1, last, strip));
        }
        row.push_back(bench::fmt(worst / 1e9, 3));
      }
      bench::print_row(row);
    }
  }

  bench::print_header(
      "Figure 4b — total FLOPs over all devices (GFLOPs), VGG16");
  {
    std::vector<std::string> head{"fused convs"};
    for (int d : device_counts) head.push_back(std::to_string(d) + " dev");
    head.push_back("no-redund");
    bench::print_row(head);
    for (std::size_t k = 0; k < prefix_last_node.size(); ++k) {
      const int last = prefix_last_node[k];
      const Shape out = g.node(last).out_shape;
      std::vector<std::string> row{std::to_string(k + 1)};
      for (int devices : device_counts) {
        const auto strips =
            partition::split_rows_equal(out.height, out.width, devices);
        Flops total = 0.0;
        for (const Region& strip : strips) {
          if (strip.empty()) continue;
          total += cost::segment_flops(g, 1, last, strip);
        }
        row.push_back(bench::fmt(total / 1e9, 3));
      }
      row.push_back(bench::fmt(cost::segment_flops_full(g, 1, last) / 1e9, 3));
      bench::print_row(row);
    }
  }

  std::printf(
      "\nShape check vs paper: per-device FLOPs shrink with more devices but\n"
      "the total grows past the no-redundancy column, and the growth\n"
      "accelerates with fusion depth (Fig. 4's 'quickly grows on deeper CNN').\n");
  return 0;
}
