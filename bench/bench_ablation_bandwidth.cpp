// Ablation (beyond the paper): sensitivity to the shared-AP bandwidth — the
// "various network settings" of the paper's headline, swept explicitly.
//
// Communication cost divides every scheme differently: LW pays per layer,
// the fused schemes per block, PICO per stage boundary.  Low bandwidth
// should collapse everything toward single-device execution; high bandwidth
// should make LW competitive again and let PICO pipeline more finely.
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"

int main() {
  using namespace pico;
  const nn::Graph graph = models::vgg16();
  const Cluster cluster = Cluster::paper_heterogeneous();

  bench::print_header(
      "Ablation — period (s) vs WiFi bandwidth, VGG16, 8 devices");
  bench::print_row({"Mbps", "LW", "EFL", "OFL", "PICO", "PICO stages"});
  for (const double mbps : {5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0}) {
    NetworkModel network;
    network.bandwidth = mbps * 1e6 / 8.0;
    network.per_message_overhead = 1e-3;
    std::vector<std::string> row{bench::fmt(mbps, 0)};
    int pico_stages = 0;
    for (const Scheme scheme : {Scheme::LayerWise, Scheme::EarlyFused,
                                Scheme::OptimalFused, Scheme::Pico}) {
      const auto p = plan(graph, cluster, network, scheme);
      row.push_back(
          bench::fmt(evaluate(graph, cluster, network, p).period, 2));
      if (scheme == Scheme::Pico) pico_stages = p.stage_count();
    }
    row.push_back(std::to_string(pico_stages));
    bench::print_row(row);
  }
  std::printf(
      "\nExpectation: at 5 Mbps every cooperative scheme is throttled by\n"
      "the AP; as bandwidth grows LW improves the most in relative terms\n"
      "(its per-layer gathers stop dominating) and PICO adds stages, so the\n"
      "paper's 1.8-6.2x throughput band is widest at low bandwidth.\n");
  return 0;
}
