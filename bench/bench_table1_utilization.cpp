// Table I: per-device computing-resource utilization and redundancy ratios
// on the heterogeneous cluster (2x1.2GHz, 2x800MHz, 4x600MHz) for VGG16 and
// YOLOv2 under LW / EFL / OFL / PICO, measured over a saturated run.
//
// Paper shape: LW has minimal redundancy but the worst utilization (devices
// idle during per-layer communication); the fused schemes keep devices busy
// but waste a large share on redundant halo work (EFL up to ~45% on
// YOLOv2); PICO keeps utilization high (77%/95% average) with single-digit
// redundancy because stages use device subsets with capacity-proportional
// strips.
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

void table_for(models::ModelId model) {
  const nn::Graph graph = models::build(model);
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = bench::paper_network();

  bench::BenchJson json(std::string("table1_") + models::model_name(model) +
                        "_utilization");
  json.param("model", models::model_name(model));
  json.param("devices", static_cast<double>(cluster.size()));

  bench::print_header(std::string("Table I — ") + models::model_name(model) +
                      " on 2x1.2GHz + 2x800MHz + 4x600MHz");
  std::vector<std::string> head{"scheme", "metric"};
  for (const Device& d : cluster.devices()) {
    head.push_back(bench::fmt(d.frequency_ghz, 1) + "GHz");
  }
  head.push_back("average");
  bench::print_row(head, 10);

  for (const Scheme scheme : {Scheme::LayerWise, Scheme::EarlyFused,
                              Scheme::OptimalFused, Scheme::Pico}) {
    const auto p = plan(graph, cluster, network, scheme);
    const auto arrivals = sim::back_to_back_arrivals(40);
    const auto result =
        sim::simulate_plan(graph, cluster, network, p, arrivals,
                           sim::CommModel::Overlapped);

    std::vector<std::string> util_row{scheme_name(scheme), "Utili"};
    std::vector<std::string> redu_row{"", "Redu"};
    double util_sum = 0.0, redu_sum = 0.0;
    int redu_count = 0;
    for (const Device& d : cluster.devices()) {
      const double util = result.utilization(d.id);
      util_sum += util;
      json.sample(std::string(scheme_name(scheme)) + "_utilization", util);
      util_row.push_back(bench::fmt_pct(util, 1));
      double redu = 0.0;
      bool found = false;
      for (const auto& usage : result.devices) {
        if (usage.device == d.id) {
          redu = usage.redundancy_ratio();
          found = true;
          break;
        }
      }
      redu_row.push_back(found ? bench::fmt_pct(redu, 1) : "idle");
      if (found) {
        json.sample(std::string(scheme_name(scheme)) + "_redundancy", redu);
        redu_sum += redu;
        ++redu_count;
      }
    }
    util_row.push_back(bench::fmt_pct(util_sum / cluster.size(), 1));
    redu_row.push_back(
        bench::fmt_pct(redu_count ? redu_sum / redu_count : 0.0, 1));
    bench::print_row(util_row, 10);
    bench::print_row(redu_row, 10);
  }
}

}  // namespace

int main() {
  table_for(models::ModelId::Vgg16);
  table_for(models::ModelId::Yolov2);
  std::printf(
      "\nShape check vs paper: LW = low redundancy, lowest utilization;\n"
      "EFL = busy but heavily redundant (worst on YOLOv2); OFL in between;\n"
      "PICO = highest utilization with single-digit redundancy.\n");
  return 0;
}
