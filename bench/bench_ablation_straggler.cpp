// Ablation (beyond the paper): a straggler appears mid-run.
//
// Edge devices throttle (thermals, co-located workloads).  Halfway through
// a saturated VGG16 run, the fastest device's capacity drops 4x.  Three
// policies:
//   - oblivious: keep running the original PICO plan (the degraded device
//     still owns its big strip -> its stage becomes the bottleneck);
//   - rebalance: keep the stage structure but re-run Algorithm 2's
//     proportional split against the degraded capacities;
//   - replan:   run the full PICO planner against the degraded cluster.
// The recovered throughput fraction quantifies how much of PICO's
// heterogeneity machinery (Alg. 2 vs the DP) matters for fault response.
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/greedy_adapt.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

Cluster degraded(const Cluster& cluster, DeviceId victim, double factor) {
  std::vector<Device> devices = cluster.devices();
  devices[static_cast<std::size_t>(victim)].capacity *= factor;
  return Cluster(devices);
}

}  // namespace

int main() {
  const nn::Graph graph = models::vgg16();
  const Cluster healthy = Cluster::paper_heterogeneous();
  const NetworkModel network = bench::paper_network();
  const DeviceId victim = healthy.fastest();
  const Cluster sick = degraded(healthy, victim, 0.25);

  const auto plan_healthy = plan(graph, healthy, network, Scheme::Pico);
  const Seconds healthy_period =
      evaluate(graph, healthy, network, plan_healthy).period;

  struct Policy {
    const char* name;
    partition::Plan plan;
  };
  const Policy policies[] = {
      {"oblivious", plan_healthy},
      // Keep stages, redo Alg. 2 against the degraded capacities.
      {"rebalance", partition::greedy_adapt(
                        graph, sick,
                        partition::pico_homogeneous_plan(graph, healthy,
                                                         network))},
      {"replan", plan(graph, sick, network, Scheme::Pico)},
  };

  bench::print_header(
      "Ablation — fastest device throttles to 25% mid-run, VGG16");
  std::printf("healthy PICO period: %.2fs\n", healthy_period);
  bench::print_row({"policy", "degraded period", "vs healthy"});
  for (const Policy& policy : policies) {
    const Seconds period =
        evaluate(graph, sick, network, policy.plan).period;
    bench::print_row({policy.name, bench::fmt(period, 2) + "s",
                      bench::fmt(healthy_period / period * 100.0, 0) + "%"});
  }

  // Timeline simulation: throttle at t = half the run, policies react (or
  // not) via recluster().
  bench::print_header("Timeline — saturated run, throttle at task 30 of 60");
  bench::print_row({"policy", "throughput", "makespan"});
  for (const Policy& policy : policies) {
    sim::ClusterSimulator simulator(graph, healthy, network);
    simulator.set_plan(plan_healthy);
    const auto arrivals = sim::back_to_back_arrivals(60);
    simulator.add_arrivals(arrivals);
    // React when roughly half the work is done.
    const Seconds react_at = 30.0 * healthy_period;
    bool reacted = false;
    simulator.set_controller(
        react_at, [&](sim::ClusterSimulator& s, Seconds, int) {
          if (reacted) return;
          reacted = true;
          s.recluster(sick, network, policy.plan);
        });
    const auto result = simulator.run();
    bench::print_row({policy.name,
                      bench::fmt(result.throughput() * 60.0, 2) + "/min",
                      bench::fmt(result.makespan, 1) + "s"});
  }
  std::printf(
      "\nExpectation: oblivious loses roughly the victim's share of the\n"
      "bottleneck stage; rebalancing recovers most of it (smaller strip for\n"
      "the throttled device); a full replan can also move the device to a\n"
      "lighter stage and recovers the most.\n");
  return 0;
}
