// Figure 8: the cluster capacity when executing VGG16 — inference period per
// scheme across device counts and CPU frequencies, plus throughput with 8
// devices.
//
// Paper shape: PICO has the shortest period everywhere; OFL beats EFL (it
// optimizes the fusion points); adding devices helps every scheme but the
// fused schemes flatten past ~4 devices (redundancy), and LW is held back by
// per-layer communication.
#include "bench_capacity.hpp"

int main() {
  pico::bench::capacity_figure(pico::models::ModelId::Vgg16, "Figure 8");
  std::printf(
      "\nShape check vs paper: PICO < OFL < EFL < LW in period at every\n"
      "setting; fused-layer gains flatten beyond 4 devices; higher CPU\n"
      "frequency shrinks compute and makes LW's communication share worse.\n");
  return 0;
}
