// Zoo overview: every model in the library under the paper's testbed — its
// size, how well PICO parallelizes it on 8 heterogeneous devices, and its
// redundancy.  Extends the paper's four models with MobileNetV1 (depthwise
// convolutions: very few FLOPs per byte of activations, so cooperative
// inference is communication-bound) and SqueezeNet (fire blocks).
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"

int main() {
  using namespace pico;
  const Cluster cluster = Cluster::paper_heterogeneous();
  const Cluster single = Cluster::paper_homogeneous(1, 1.2);
  const NetworkModel network = bench::paper_network();

  bench::print_header(
      "Model zoo under PICO — 2x1.2GHz + 2x800MHz + 4x600MHz, 50 Mbps");
  bench::print_row({"model", "GFLOPs", "Mparams", "1-dev(s)", "PICO(s)",
                    "speedup", "stages", "redund"},
                   11);
  for (const auto id :
       {models::ModelId::Vgg16, models::ModelId::Yolov2,
        models::ModelId::Resnet34, models::ModelId::Inception,
        models::ModelId::MobileNetV1, models::ModelId::SqueezeNet,
        models::ModelId::ToyMnist}) {
    const nn::Graph graph = models::build(id);
    const auto single_plan =
        plan(graph, single, network, Scheme::OptimalFused);
    const Seconds base =
        evaluate(graph, single, network, single_plan).period;
    const auto pico = plan(graph, cluster, network, Scheme::Pico);
    const Seconds period = evaluate(graph, cluster, network, pico).period;
    bench::print_row(
        {models::model_name(id), bench::fmt(cost::model_flops(graph) / 1e9, 2),
         bench::fmt(static_cast<double>(graph.parameter_count()) / 1e6, 1),
         bench::fmt(base, 2), bench::fmt(period, 2),
         bench::fmt(base / period, 2) + "x",
         std::to_string(pico.stage_count()),
         bench::fmt_pct(partition::plan_redundancy_ratio(graph, pico), 1)},
        11);
  }
  std::printf(
      "\nReading: compute-heavy chains (VGG16, YOLOv2) pipeline best; \n"
      "MobileNetV1's depthwise layers carry so few FLOPs per activation byte\n"
      "that the 50 Mbps AP, not the CPUs, bounds its speedup — cooperative\n"
      "inference pays off least exactly where the model is already cheap.\n");
  return 0;
}
