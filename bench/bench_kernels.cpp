// Intra-device kernel scaling: wall time of a VGG-scale conv layer versus
// the ExecOptions thread count, against the single-threaded baseline.
//
// The paper's capacity term ϑ(d_k) (Eq. 5) describes a quad-core device
// running all cores; this bench records the speedup the thread-pooled
// kernels actually deliver, plus a bit-identity check that parallelism
// never changes arithmetic.  CI gates on speedup_t4 >= 2 in
// BENCH_kernels.json.
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "cost/flops.hpp"
#include "nn/executor.hpp"

namespace {

using namespace pico;

double time_execute(const nn::Graph& graph, const Tensor& input,
                    const nn::ExecOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const Tensor out = nn::execute(graph, input, options);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return out.size() > 0 ? elapsed : -1.0;
}

}  // namespace

int main() {
  using namespace pico;
  bench::BenchJson json("kernels");

  // VGG-16's conv2-block shape: 64 -> 64 channels, 3x3, on a 112x112 map.
  nn::Graph graph;
  const int in = graph.add_input({64, 112, 112});
  graph.add_conv(in, 64, 3, 1, 1);
  graph.finalize();
  Rng rng(7);
  graph.randomize_weights(rng);
  Tensor input(graph.input_shape());
  input.randomize(rng);

  const double gflop = cost::model_flops(graph) / 1e9;
  json.param("layer", "conv3x3_64to64_112");
  json.param("gflop", gflop);
  json.param("hardware_parallelism",
             static_cast<double>(ThreadPool::default_parallelism()));

  constexpr int kRepeats = 5;
  const std::vector<int> thread_counts{1, 2, 4};
  const Tensor reference = nn::execute(graph, input, {.threads = 1});

  bench::print_header("Kernel scaling — conv 64->64 3x3 @ 112x112 (" +
                      bench::fmt(gflop, 2) + " GFLOP)");
  bench::print_row({"threads", "best_s", "GFLOP/s", "speedup", "max|diff|"});

  std::vector<double> best(thread_counts.size(),
                           std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const nn::ExecOptions options{.threads = thread_counts[t]};
    const Tensor out = nn::execute(graph, input, options);  // warm-up
    const float diff = Tensor::max_abs_diff(out, reference);
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const double elapsed = time_execute(graph, input, options);
      json.sample("conv_seconds_t" + std::to_string(thread_counts[t]),
                  elapsed);
      best[t] = std::min(best[t], elapsed);
    }
    const double speedup = best[0] / best[t];
    if (thread_counts[t] > 1) {
      json.sample("speedup_t" + std::to_string(thread_counts[t]), speedup);
    }
    json.sample("bit_identical", diff == 0.0f ? 1.0 : 0.0);
    bench::print_row({std::to_string(thread_counts[t]),
                      bench::fmt(best[t], 4), bench::fmt(gflop / best[t], 2),
                      bench::fmt(speedup, 2), bench::fmt(diff, 1)});
  }
  return 0;
}
