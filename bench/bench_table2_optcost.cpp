// Table II: optimization wall-time of PICO's heuristic vs the BFS optimal
// search for synthetic chains of (layers, devices) matching the paper's
// grid.  BFS gets a wall-clock budget; rows that exceed it print "> Ns",
// mirroring the paper's "> 1h" entries.
//
// Paper shape: PICO stays under a second everywhere; BFS explodes with the
// device count (subset enumeration) and layer count (composition
// enumeration).  A memoized BFS column is included as an ablation beyond the
// paper.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "partition/pico_dp.hpp"

namespace {

using namespace pico;

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const NetworkModel network = bench::paper_network();
  constexpr double kBudget = 10.0;  // seconds per BFS cell

  bench::print_header(
      "Table II — planner wall time, synthetic 3x3-conv chains");
  std::printf("BFS budget per cell: %.0fs (rows print '> %.0fs' on abort)\n",
              kBudget, kBudget);
  bench::print_row(
      {"(L, D)", "PICO", "BFS (paper)", "BFS+prune", "BFS+memo",
       "BFS states"},
      14);

  // The paper's grid plus two larger cells where even a C++ exhaustive
  // search (ours is ~80M states/s; the paper's ran on far slower stock)
  // visibly exceeds the budget.
  const std::pair<int, int> grid[] = {{4, 4},  {8, 4},  {12, 4}, {16, 4},
                                      {8, 6},  {10, 6}, {12, 6}, {8, 8},
                                      {10, 8}, {12, 8}};
  for (const auto& [layers, devices] : grid) {
    const nn::Graph graph = models::synthetic_chain(layers, 64, 16);
    const Cluster cluster =
        Cluster::paper_homogeneous(devices, 1.0);

    const double pico_time = time_seconds([&] {
      (void)partition::pico_plan(graph, cluster, network);
    });

    // The paper's baseline: plain exhaustive enumeration, no pruning.
    partition::BfsResult plain;
    const double plain_time = time_seconds([&] {
      partition::BfsOptions options;
      options.time_budget = kBudget;
      options.prune = false;
      plain = partition::bfs_optimal_plan(graph, cluster, network, options);
    });
    // Ablations beyond the paper: branch-and-bound, then + memoization.
    partition::BfsResult pruned;
    const double pruned_time = time_seconds([&] {
      pruned = partition::bfs_optimal_plan(graph, cluster, network,
                                           {.time_budget = kBudget});
    });
    partition::BfsResult memoized;
    const double memo_time = time_seconds([&] {
      partition::BfsOptions options;
      options.time_budget = kBudget;
      options.memoize = true;
      memoized =
          partition::bfs_optimal_plan(graph, cluster, network, options);
    });

    const auto cell_time = [&](const partition::BfsResult& result,
                               double seconds) {
      return result.timed_out ? ("> " + bench::fmt(kBudget, 0) + "s")
                              : bench::fmt(seconds, 3) + "s";
    };
    char cell[32];
    std::snprintf(cell, sizeof(cell), "(%d, %d)", layers, devices);
    bench::print_row({cell, bench::fmt(pico_time, 3) + "s",
                      cell_time(plain, plain_time),
                      cell_time(pruned, pruned_time),
                      cell_time(memoized, memo_time),
                      std::to_string(plain.states_explored)},
                     14);
  }
  std::printf(
      "\nShape check vs paper: PICO < 1s everywhere; the paper's plain\n"
      "exhaustive search explodes with the device count and hits the budget\n"
      "where the paper reports minutes-to-hours.  Branch-and-bound and\n"
      "memoization (our ablations) push the feasible range much further.\n");
  return 0;
}
