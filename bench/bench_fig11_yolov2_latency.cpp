// Figure 11: average inference latency of YOLOv2 under Poisson workloads
// (Fig. 10's panels for the deeper model), plus the paper's 100%-workload
// breakdown of latency into waiting time and processing time.
#include "bench_latency.hpp"

#include "sim/queueing.hpp"

int main() {
  using namespace pico;
  bench::latency_figure(models::ModelId::Yolov2, "Figure 11");

  // Panel (b): waiting vs processing at 100% workload.
  const nn::Graph graph = models::yolov2();
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = bench::paper_network();
  const auto efl = plan(graph, cluster, network, Scheme::EarlyFused);
  const double capacity =
      1.0 / evaluate(graph, cluster, network, efl).period;

  bench::print_header(
      "Figure 11b — latency breakdown at 100% workload, YOLOv2");
  bench::print_row({"scheme", "waiting", "processing", "total"});
  for (const Scheme scheme :
       {Scheme::EarlyFused, Scheme::OptimalFused, Scheme::Pico}) {
    const auto p = plan(graph, cluster, network, scheme);
    Rng rng(42);
    const auto arrivals = sim::poisson_arrivals(rng, capacity, 600.0);
    const auto result =
        sim::simulate_plan(graph, cluster, network, p, arrivals);
    double waiting = 0.0, processing = 0.0;
    for (const auto& task : result.tasks) {
      waiting += task.waiting();
      processing += task.completion - task.start;
    }
    const double n = static_cast<double>(result.tasks.size());
    bench::print_row({scheme_name(scheme), bench::fmt(waiting / n, 2),
                      bench::fmt(processing / n, 2),
                      bench::fmt((waiting + processing) / n, 2)});
  }
  std::printf(
      "\nShape check vs paper: at 100%% of EFL-capacity the waiting time\n"
      "dominates EFL's latency, while PICO's total stays near its pipeline\n"
      "latency (Theorem 2: waiting explodes as period -> 1/lambda).\n");
  return 0;
}
