// Ablation (beyond the paper): how far is PICO's two-step heuristic from a
// local optimum?
//
// The homogenized DP (Alg. 1) fixes the stage structure before it ever sees
// the real capacities; Alg. 2 then only re-balances within that structure.
// Hill-climbing over device moves/swaps and boundary shifts measures the
// remaining slack — and, on small instances, the exhaustive optimum anchors
// the scale.
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "partition/local_search.hpp"
#include "partition/plan_cost.hpp"

int main() {
  using namespace pico;
  const NetworkModel network = bench::paper_network();

  bench::print_header(
      "Ablation — PICO vs PICO+local-search vs optimum (period, s)");
  bench::print_row({"model", "devices", "PICO", "+search", "gain", "BFS"},
                   12);
  struct Case {
    const char* name;
    models::ModelId model;
    int devices;
    bool bfs_feasible;
  };
  const Case cases[] = {
      {"toy", models::ModelId::ToyMnist, 6, true},
      {"VGG16", models::ModelId::Vgg16, 8, false},
      {"YOLOv2", models::ModelId::Yolov2, 8, false},
      {"ResNet34", models::ModelId::Resnet34, 8, false},
  };
  for (const Case& c : cases) {
    const nn::Graph graph = models::build(c.model);
    const Cluster cluster = Cluster::paper_heterogeneous().prefix(c.devices);
    const auto pico = plan(graph, cluster, network, Scheme::Pico);
    const auto refined = partition::refine_plan(graph, cluster, network,
                                                pico, {.seed = 7});
    std::string bfs_cell = "-";
    if (c.bfs_feasible) {
      partition::BfsOptions options;
      options.memoize = true;
      options.time_budget = 60.0;
      const auto bfs =
          partition::bfs_optimal_plan(graph, cluster, network, options);
      if (!bfs.timed_out) bfs_cell = bench::fmt(bfs.period, 3);
    }
    bench::print_row(
        {c.name, std::to_string(c.devices),
         bench::fmt(refined.initial_period, 3),
         bench::fmt(refined.final_period, 3),
         bench::fmt_pct(1.0 - refined.final_period / refined.initial_period,
                        1),
         bfs_cell},
        12);
  }
  std::printf(
      "\nReading: the gap local search closes is the cost of homogenizing\n"
      "the cluster in Algorithm 1.  Single-digit percentages mean the\n"
      "paper's 'acceptable' claim (Sec. V-C) holds beyond the toy model;\n"
      "anything larger marks instances where the DP's structure choice was\n"
      "wrong for the real capacities.\n");
  return 0;
}
