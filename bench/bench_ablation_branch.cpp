// Ablation (the paper's future work, implemented): intra-block branch
// parallelism.
//
// §V-B: "the optimal model partition is more likely to exist within
// [inception] blocks.  And PICO currently does not support such a
// partition, which leads to a smaller speedup ratio."  We implemented that
// partition (branches.hpp) and let the DP choose per stage between the
// spatial split and whole-branch assignment.
//
// Finding (worth reporting honestly): on InceptionV3 over 50 Mbps WiFi the
// DP never picks branch mode — correctly.  Branch mode ships the *full*
// block input to every participating device, while a spatial strip ships
// only 1/q plus halo; and inception branches are unbalanced, so the
// heaviest branch bounds the makespan.  The regime where intra-block
// partitioning genuinely wins is deep-branch blocks on small feature maps
// (halo redundancy ~ the whole map) with a fast local network — panel 2
// demonstrates it.
#include <cstdio>

#include "bench_util.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"

namespace {

using namespace pico;
using partition::StageKind;

int branch_stage_count(const partition::Plan& plan) {
  int count = 0;
  for (const auto& stage : plan.stages) {
    count += stage.kind == StageKind::Branch;
  }
  return count;
}

void row_for(const nn::Graph& graph, const Cluster& cluster,
             const NetworkModel& network, const std::string& label) {
  const auto spatial = partition::pico_plan(graph, cluster, network);
  const auto branchy = partition::pico_plan(
      graph, cluster, network, {.enable_branch_parallel = true});
  const Seconds ps =
      partition::plan_cost(graph, cluster, network, spatial).period;
  const Seconds pb =
      partition::plan_cost(graph, cluster, network, branchy).period;
  bench::print_row({label, bench::fmt(ps * 1e3, 2) + "ms",
                    bench::fmt(pb * 1e3, 2) + "ms",
                    bench::fmt_pct(1.0 - pb / ps, 1),
                    std::to_string(branch_stage_count(branchy)) + "/" +
                        std::to_string(branchy.stage_count())},
                   14);
}

/// Blocks of 4 branches x `depth` chained 3x3 convs on a small map — deep
/// per-branch receptive fields make spatial halos cover nearly the whole
/// map, the regime where whole-branch assignment wins.
nn::Graph deep_branch_net(int input, int blocks, int depth) {
  nn::Graph g;
  int x = g.add_input({64, input, input});
  for (int i = 0; i < blocks; ++i) {
    std::vector<int> outs;
    for (int b = 0; b < 4; ++b) {
      int y = x;
      for (int d = 0; d < depth; ++d) y = g.add_conv(y, 16, 3, 1, 1);
      outs.push_back(y);
    }
    x = g.add_concat(outs);
  }
  g.finalize();
  return g;
}

}  // namespace

int main() {
  const Cluster cluster = Cluster::paper_homogeneous(8, 1.2);

  bench::print_header(
      "Ablation 1 — InceptionV3 at the paper's settings (50 Mbps WiFi)");
  bench::print_row({"bandwidth", "PICO", "PICO+branch", "gain", "b-stages"},
                   14);
  {
    const nn::Graph graph = models::inception();
    for (const double mbps : {50.0, 250.0}) {
      NetworkModel network;
      network.bandwidth = mbps * 1e6 / 8.0;
      network.per_message_overhead = 1e-3;
      row_for(graph, cluster, network, bench::fmt(mbps, 0) + "Mbps");
    }
  }
  std::printf(
      "\nOn real Inception over WiFi the planner (correctly) keeps the\n"
      "spatial split: branch mode would broadcast the whole block input to\n"
      "every device and is bounded by the heaviest (unbalanced) branch.\n");

  bench::print_header(
      "Ablation 2 — deep-branch blocks on small maps (4x3-conv branches)");
  bench::print_row({"input/bw", "PICO", "PICO+branch", "gain", "b-stages"},
                   14);
  for (const int input : {7, 14}) {
    for (const double mbps : {250.0, 1000.0}) {
      const nn::Graph graph = deep_branch_net(input, 4, 3);
      NetworkModel network;
      network.bandwidth = mbps * 1e6 / 8.0;
      network.per_message_overhead = 1e-4;
      row_for(graph, cluster, network,
              std::to_string(input) + "px/" + bench::fmt(mbps, 0) + "M");
    }
  }
  std::printf(
      "\nWith 3-conv-deep branches at 7x7, a spatial strip's halo spans\n"
      "nearly the whole map (pure redundancy); whole-branch assignment\n"
      "removes it and cuts the period by double digits once the network can\n"
      "carry the input broadcast — quantifying exactly when the paper's\n"
      "proposed extension pays off.\n");
  return 0;
}
