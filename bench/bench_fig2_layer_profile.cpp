// Figure 2: per-layer communication and computation share for VGG16 and
// YOLOv2.
//
// Paper series: for each layer, the percentage of the model's total
// computation (FLOPs, Eq. 2) and of the total communication volume (output
// feature-map bytes) contributed by that layer; plus the headline statistic
// that conv layers provide 99.19% (VGG16) / 99.59% (YOLOv2) of computation.
#include <cstdio>

#include "bench_util.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"

namespace {

using namespace pico;

void profile(models::ModelId id) {
  const nn::Graph g = models::build(id);
  bench::BenchJson json(std::string("fig2_") + models::model_name(id) +
                        "_layer_profile");
  json.param("model", models::model_name(id));
  Flops total_flops = 0.0, conv_flops = 0.0;
  Bytes total_bytes = 0.0;
  for (int node = 1; node < g.size(); ++node) {
    const Flops f = cost::node_flops_full(g, node);
    total_flops += f;
    if (g.node(node).kind == nn::OpKind::Conv) conv_flops += f;
    total_bytes += cost::node_output_bytes(g, node);
  }

  bench::print_header(std::string("Figure 2 — layer profile: ") +
                      models::model_name(id));
  bench::print_row({"layer", "type", "out shape", "comp%", "comm%"}, 14);
  for (int node = 1; node < g.size(); ++node) {
    json.sample("comp_share",
                cost::node_flops_full(g, node) / total_flops);
    json.sample("comm_share",
                cost::node_output_bytes(g, node) / total_bytes);
    const nn::Node& n = g.node(node);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%dx%dx%d", n.out_shape.channels,
                  n.out_shape.height, n.out_shape.width);
    bench::print_row(
        {n.name, nn::op_name(n.kind), shape,
         bench::fmt_pct(cost::node_flops_full(g, node) / total_flops),
         bench::fmt_pct(cost::node_output_bytes(g, node) / total_bytes)},
        14);
  }
  json.param("conv_comp_share", conv_flops / total_flops);
  std::printf("\nconv share of computation: %s (paper: %s)\n",
              bench::fmt_pct(conv_flops / total_flops).c_str(),
              id == models::ModelId::Vgg16 ? "99.19%" : "99.59%");
  std::printf("total: %.2f GFLOPs, %.2f MB of inter-layer features\n",
              total_flops / 1e9, total_bytes / 1e6);
}

}  // namespace

int main() {
  profile(models::ModelId::Vgg16);
  profile(models::ModelId::Yolov2);
  return 0;
}
