// Figure 12: PICO's speedup on graph-based CNNs (ResNet34, InceptionV3-
// style) — saturated throughput with N devices over single-device
// throughput, per CPU frequency.
//
// Paper shape: near-5x speedup for ResNet34 and ~4x for Inception at 8
// devices; the speedup is larger at low CPU frequency (compute-bound, so
// extra devices help more), and ResNet34 beats Inception because inception
// blocks are bigger atomic units (PICO cannot cut inside a block, §IV-B).
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

double saturated_throughput(const nn::Graph& graph, const Cluster& cluster,
                            const NetworkModel& network,
                            const partition::Plan& plan) {
  const auto arrivals = sim::back_to_back_arrivals(40);
  return sim::simulate_plan(graph, cluster, network, plan, arrivals)
      .throughput();
}

void speedup_panel(models::ModelId model) {
  const nn::Graph graph = models::build(model);
  const NetworkModel network = bench::paper_network();
  bench::print_header(std::string("Figure 12 — PICO speedup, ") +
                      models::model_name(model));
  bench::print_row({"devices", "0.6GHz", "0.8GHz", "1.2GHz"});
  for (const int devices : {2, 4, 6, 8}) {
    std::vector<std::string> row{std::to_string(devices)};
    for (const double freq : {0.6, 0.8, 1.2}) {
      const Cluster single = Cluster::paper_homogeneous(1, freq);
      const Cluster cluster = Cluster::paper_homogeneous(devices, freq);
      // Single device: the whole model as one stage on one device.
      const auto single_plan =
          plan(graph, single, network, Scheme::OptimalFused);
      const auto pico_plan = plan(graph, cluster, network, Scheme::Pico);
      const double base =
          saturated_throughput(graph, single, network, single_plan);
      const double with_pico =
          saturated_throughput(graph, cluster, network, pico_plan);
      row.push_back(bench::fmt(with_pico / base, 2) + "x");
    }
    bench::print_row(row);
  }
}

}  // namespace

int main() {
  speedup_panel(models::ModelId::Resnet34);
  speedup_panel(models::ModelId::Inception);
  std::printf(
      "\nShape check vs paper: ~4-5x at 8 devices, larger at lower CPU\n"
      "frequency, and ResNet34 > Inception because inception blocks are\n"
      "coarser atomic units for the pipeline planner.\n");
  return 0;
}
