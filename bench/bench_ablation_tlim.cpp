// Ablation (beyond the paper): the period/latency frontier traced by the
// latency bound T_lim (Eq. 1's constraint, which the paper never sweeps).
//
// PICO minimizes the pipeline period subject to T(S) <= T_lim.  Sweeping
// T_lim from just above the single-stage cost to infinity exposes the
// trade-off: tighter bounds force fewer/fatter stages (lower latency, longer
// period); loose bounds let the DP pipeline deeply (shorter period, more
// accumulated transfer latency).
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"

int main() {
  using namespace pico;
  const NetworkModel network = bench::paper_network();

  for (const auto model : {models::ModelId::Vgg16, models::ModelId::Yolov2}) {
    const nn::Graph graph = models::build(model);
    const Cluster cluster = Cluster::paper_heterogeneous();

    // Anchor the sweep on the unbounded optimum's latency.
    const auto unbounded = plan(graph, cluster, network, Scheme::Pico);
    const auto unbounded_cost = evaluate(graph, cluster, network, unbounded);

    bench::print_header(
        std::string("Ablation — T_lim frontier, ") +
        models::model_name(model) + " (unbounded: period " +
        bench::fmt(unbounded_cost.period, 2) + "s, latency " +
        bench::fmt(unbounded_cost.latency, 2) + "s)");
    bench::print_row({"T_lim", "stages", "period(s)", "latency(s)"});
    for (const double factor : {0.5, 0.65, 0.8, 0.9, 1.0, 1.2}) {
      const Seconds limit = unbounded_cost.latency * factor;
      try {
        const auto p = plan(graph, cluster, network, Scheme::Pico,
                            {.latency_limit = limit});
        const auto cost = evaluate(graph, cluster, network, p);
        bench::print_row({bench::fmt(limit, 2) + "s",
                          std::to_string(p.stage_count()),
                          bench::fmt(cost.period, 2),
                          bench::fmt(cost.latency, 2)});
      } catch (const Error&) {
        bench::print_row({bench::fmt(limit, 2) + "s", "-", "infeasible", "-"});
      }
    }
  }
  std::printf(
      "\nExpectation: as T_lim tightens, the stage count falls and the\n"
      "period rises monotonically; below the best single-stage cost the\n"
      "problem is infeasible.  This is Eq. 1's constraint made visible.\n");
  return 0;
}
