# Bench harnesses are defined from the root so ${CMAKE_BINARY_DIR}/bench
# contains only runnable binaries (the canonical loop is
# `for b in build/bench/*; do $b; done`).
function(pico_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE pico_core)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pico_bench(bench_fig2_layer_profile)
pico_bench(bench_fig4_redundancy)
pico_bench(bench_fig8_vgg16_capacity)
pico_bench(bench_fig9_yolov2_capacity)
pico_bench(bench_fig10_vgg16_latency)
pico_bench(bench_fig11_yolov2_latency)
pico_bench(bench_fig12_graph_speedup)
pico_bench(bench_table1_utilization)
pico_bench(bench_table2_optcost)
pico_bench(bench_fig13_bfs_compare)

pico_bench(bench_micro_kernels)
target_link_libraries(bench_micro_kernels PRIVATE benchmark::benchmark)

# Intra-device thread-pool scaling (writes BENCH_kernels.json; CI gates on
# the recorded conv speedup at 4 threads).
pico_bench(bench_kernels)

# Ablations beyond the paper (DESIGN.md §7).
pico_bench(bench_ablation_grid)
pico_bench(bench_ablation_tlim)
pico_bench(bench_ablation_bandwidth)
pico_bench(bench_ablation_beta)
pico_bench(bench_ablation_hetnet)
pico_bench(bench_ablation_branch)
pico_bench(bench_ablation_straggler)
pico_bench(bench_zoo_overview)
pico_bench(bench_ablation_contention)
pico_bench(bench_ablation_localsearch)

# Cost of the always-on metrics/trace plumbing and the continuous harvest
# loop (writes BENCH_obs_overhead.json; CI records overhead_live_pct).
pico_bench(bench_obs_overhead)
