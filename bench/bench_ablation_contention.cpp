// Ablation (beyond the paper): shared-AP contention.
//
// Eq. 8–10 price each stage's communication as if transfers of different
// stages never collide, but all eight devices hang off ONE WiFi access
// point.  CommModel::SharedLink routes every stage's transfers through a
// single link server, so a deep pipeline's stages compete for air time.
// The question: does the paper's per-stage pricing overstate PICO's
// throughput, and does it ever change the scheme ranking?
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

double throughput(const nn::Graph& graph, const Cluster& cluster,
                  const NetworkModel& network, const partition::Plan& plan,
                  sim::CommModel comm_model) {
  return sim::simulate_plan(graph, cluster, network, plan,
                            sim::back_to_back_arrivals(60), comm_model)
      .throughput();
}

}  // namespace

int main() {
  using namespace pico;
  const Cluster cluster = Cluster::paper_heterogeneous();

  for (const auto id : {models::ModelId::Vgg16, models::ModelId::Yolov2}) {
    const nn::Graph graph = models::build(id);
    bench::print_header(
        std::string("Ablation — shared-AP contention, ") +
        models::model_name(id) + " PICO pipeline (tasks/min)");
    bench::print_row({"Mbps", "no contention", "shared link", "loss",
                      "Eq.10 predicts"},
                     14);
    for (const double mbps : {10.0, 25.0, 50.0, 100.0, 250.0}) {
      NetworkModel network;
      network.bandwidth = mbps * 1e6 / 8.0;
      network.per_message_overhead = 1e-3;
      const auto plan_pico = plan(graph, cluster, network, Scheme::Pico);
      const double independent = throughput(
          graph, cluster, network, plan_pico, sim::CommModel::Overlapped);
      const double contended = throughput(
          graph, cluster, network, plan_pico, sim::CommModel::SharedLink);
      const double predicted =
          60.0 / evaluate(graph, cluster, network, plan_pico).period;
      bench::print_row({bench::fmt(mbps, 0),
                        bench::fmt(independent * 60.0, 2),
                        bench::fmt(contended * 60.0, 2),
                        bench::fmt_pct(1.0 - contended / independent, 1),
                        bench::fmt(predicted, 2)},
                       14);
    }
  }
  std::printf(
      "\nReading: the AP binds when the SUM of per-stage transfer times\n"
      "exceeds the bottleneck stage's total cost.  At WiFi bandwidths the\n"
      "loss is the price of the paper's per-stage pricing; it shrinks as\n"
      "bandwidth grows.  Scheme *ranking* is unaffected (LW/EFL/OFL are\n"
      "one-at-a-time schemes whose transfers never overlap anyway).\n");
  return 0;
}
