// Figure 13: resource utilization and redundant computation, PICO vs BFS,
// for the paper's tiny model (8 conv + 2 pool, 64x64 input) on a
// heterogeneous 6-device cluster.
//
// Paper shape: both planners keep all 6 devices above ~80% utilization; BFS
// edges out PICO (≈95%) at an optimization cost that makes it impractical
// (Table II) — "the performance of PICO is acceptable".
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace pico;

void panel(const nn::Graph& graph, const Cluster& cluster,
           const NetworkModel& network, const partition::Plan& plan,
           const char* label) {
  const auto arrivals = sim::back_to_back_arrivals(60);
  const auto result =
      sim::simulate_plan(graph, cluster, network, plan, arrivals,
                         sim::CommModel::Overlapped);
  bench::print_header(std::string("Figure 13 — ") + label +
                      " on the toy model (8 conv + 2 pool), 6 devices");
  bench::print_row({"device", "freq", "utilization", "redundancy"});
  double util_sum = 0.0;
  for (const Device& d : cluster.devices()) {
    double redu = 0.0;
    for (const auto& usage : result.devices) {
      if (usage.device == d.id) redu = usage.redundancy_ratio();
    }
    const double util = result.utilization(d.id);
    util_sum += util;
    bench::print_row({std::to_string(d.id),
                      bench::fmt(d.frequency_ghz, 1) + "GHz",
                      bench::fmt_pct(util, 1), bench::fmt_pct(redu, 1)});
  }
  std::printf("average utilization: %s\n",
              bench::fmt_pct(util_sum / cluster.size(), 1).c_str());
}

}  // namespace

int main() {
  const nn::Graph graph = models::toy_mnist();
  const Cluster cluster =
      Cluster::raspberry_pi({1.2, 1.2, 0.8, 0.8, 0.6, 0.6});
  const NetworkModel network = bench::paper_network();

  const auto pico_plan = plan(graph, cluster, network, Scheme::Pico);
  panel(graph, cluster, network, pico_plan, "PICO (heuristic)");

  // Memoized search keeps the optimal comparison tractable inside a bench
  // run (the plain search is Table II's subject).
  partition::BfsOptions bfs_options;
  bfs_options.time_budget = 60.0;
  bfs_options.memoize = true;
  const auto bfs_result =
      partition::bfs_optimal_plan(graph, cluster, network, bfs_options);
  if (bfs_result.timed_out) {
    std::printf("BFS timed out; reporting best-so-far plan\n");
  }
  panel(graph, cluster, network, bfs_result.plan, "BFS (optimal)");

  std::printf(
      "\nShape check vs paper: both keep devices busy (PICO > 80%% on most\n"
      "devices, BFS a few points higher); PICO's plan costs < 1s to compute\n"
      "while BFS needs an exhaustive search (Table II).\n");
  return 0;
}
