// Ablation (beyond the paper): 1-D strips vs DeepThings-style 2-D grid
// partition.
//
// Strips are capacity-proportional but have a full-width halo on both edges;
// grid tiles are equal-sized with roughly half the halo perimeter per tile.
// This ablation quantifies the redundancy and period difference for the
// fused one-stage schemes — and explains why our strip-based EFL/OFL report
// more redundancy than the paper's grid-based DeepThings numbers
// (EXPERIMENTS.md, Table I notes).
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "partition/plan_cost.hpp"

namespace {

using namespace pico;

void panel(models::ModelId model) {
  const nn::Graph graph = models::build(model);
  const NetworkModel network = bench::paper_network();
  bench::print_header(std::string("Ablation — strips vs 2-D grid, ") +
                      models::model_name(model));
  bench::print_row({"devices", "scheme", "mode", "redund%", "period(s)"});
  for (const int devices : {4, 8}) {
    const Cluster cluster = Cluster::paper_homogeneous(devices, 1.0);
    for (const Scheme scheme : {Scheme::EarlyFused, Scheme::OptimalFused}) {
      for (const auto mode : {partition::PartitionMode::Strips,
                              partition::PartitionMode::Grid}) {
        const auto p =
            plan(graph, cluster, network, scheme, {.partition_mode = mode});
        const auto cost = evaluate(graph, cluster, network, p);
        bench::print_row(
            {std::to_string(devices), scheme_name(scheme),
             mode == partition::PartitionMode::Grid ? "grid" : "strips",
             bench::fmt_pct(partition::plan_redundancy_ratio(graph, p), 1),
             bench::fmt(cost.period, 2)});
      }
    }
  }
}

}  // namespace

int main() {
  panel(models::ModelId::Vgg16);
  panel(models::ModelId::Yolov2);
  std::printf(
      "\nExpectation: grid tiles cut the fused schemes' redundant FLOPs\n"
      "(roughly halving the halo perimeter at 8 devices) and shorten the\n"
      "period accordingly; with 4 devices arranged 2x2 the effect is\n"
      "smaller.  DeepThings' grid choice is justified for homogeneous\n"
      "clusters; strips remain necessary for capacity-proportional splits.\n");
  return 0;
}
