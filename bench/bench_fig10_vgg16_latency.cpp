// Figure 10: average inference latency of VGG16 under Poisson workloads
// (40%–150% of the EFL-defined cluster capacity) on the heterogeneous
// 8-device cluster, for EFL / OFL / PICO / APICO.
//
// Paper shape: latency rises with workload for every scheme; EFL degrades
// first (longest period), OFL second; PICO stays nearly flat well past 100%
// because its shorter period keeps the queue stable; APICO matches the
// fused schemes at light load (it uses the whole cluster per task) and
// switches to the pipeline as load grows.
#include "bench_latency.hpp"

int main() {
  pico::bench::latency_figure(pico::models::ModelId::Vgg16, "Figure 10");
  std::printf(
      "\nShape check vs paper: EFL blows up first, then OFL; PICO stays\n"
      "stable past 100%% of EFL-capacity; APICO tracks the best scheme at\n"
      "both ends (one-stage at light load, pipeline at heavy load).\n");
  return 0;
}
