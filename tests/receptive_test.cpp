#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "nn/receptive.hpp"

namespace pico {
namespace {

using nn::Graph;

TEST(Receptive, Conv3x3Pad1NeedsOneRowHalo) {
  Graph g;
  int x = g.add_input({1, 16, 16});
  x = g.add_conv(x, 1, 3, 1, 1);
  g.finalize();
  // Middle strip [4, 8): needs rows [3, 9) of the input.
  EXPECT_EQ(nn::input_region(g, 1, Region::rows(4, 8, 16)),
            (Region{3, 9, 0, 16}));
  // Border strips clamp to the map (padding needs no real input).
  EXPECT_EQ(nn::input_region(g, 1, Region::rows(0, 4, 16)),
            (Region{0, 5, 0, 16}));
  EXPECT_EQ(nn::input_region(g, 1, Region::rows(12, 16, 16)),
            (Region{11, 16, 0, 16}));
}

TEST(Receptive, UnpaddedConvMatchesEq3) {
  // Eq. 3: h_i = (h_{i+1} - 1)·s + k for unpadded full maps.
  Graph g;
  int x = g.add_input({1, 31, 31});
  x = g.add_conv(x, 1, 5, 2, 0);
  g.finalize();
  const Shape out = g.output_shape();
  EXPECT_EQ(out.height, 14);
  const Region need = nn::input_region(
      g, 1, Region::full(out.height, out.width));
  EXPECT_EQ(need.height(), (out.height - 1) * 2 + 5);  // Eq. 3
}

TEST(Receptive, PoolStride2SplitsCleanly) {
  Graph g;
  int x = g.add_input({1, 16, 16});
  x = g.add_maxpool(x, 2, 2);
  g.finalize();
  // Output rows [2, 4) need input rows [4, 8): no overlap across strips.
  EXPECT_EQ(nn::input_region(g, 1, Region::rows(2, 4, 8)),
            (Region{4, 8, 0, 16}));
}

TEST(Receptive, NonSquareKernelAsymmetricHalo) {
  Graph g;
  int x = g.add_input({1, 17, 17});
  x = g.add_conv_window(x, 1, nn::Window{7, 1, 1, 1, 3, 0});  // 7x1 kernel
  g.finalize();
  const Region need = nn::input_region(g, 1, Region{8, 9, 8, 9});
  EXPECT_EQ(need, (Region{5, 12, 8, 9}));  // 3-row halo up/down, none sideways
}

TEST(Receptive, ElementwisePassthrough) {
  Graph g;
  int x = g.add_input({2, 8, 8});
  const int relu = g.add_relu(x);
  const int bn = g.add_batchnorm(relu);
  g.finalize();
  const Region r{1, 3, 2, 5};
  EXPECT_EQ(nn::input_region(g, relu, r), r);
  EXPECT_EQ(nn::input_region(g, bn, r), r);
}

TEST(Receptive, SegmentDemandGrowsThroughFusedConvs) {
  // Three fused 3x3 convs: halo grows by one row per layer.
  Graph g;
  int x = g.add_input({1, 32, 32});
  x = g.add_conv(x, 1, 3, 1, 1);
  x = g.add_conv(x, 1, 3, 1, 1);
  x = g.add_conv(x, 1, 3, 1, 1);
  g.finalize();
  const Region out = Region::rows(10, 20, 32);
  EXPECT_EQ(nn::segment_input_region(g, 1, 3, out), (Region{7, 23, 0, 32}));
  const auto demand = nn::segment_demand(g, 1, 3, out);
  EXPECT_EQ(demand[2], out);
  EXPECT_EQ(demand[1], (Region{9, 21, 0, 32}));
  EXPECT_EQ(demand[0], (Region{8, 22, 0, 32}));
}

TEST(Receptive, ResidualBlockUnionsBothPaths) {
  // conv(3x3) -> add with identity shortcut: the add needs the region from
  // both the conv path (haloed) and the shortcut (exact), so the external
  // demand is the union = the haloed one.
  Graph g;
  int x = g.add_input({4, 16, 16});
  const int conv = g.add_conv(x, 4, 3, 1, 1, false);
  const int add = g.add_add(conv, x, true);
  g.finalize();
  const Region out = Region::rows(6, 10, 16);
  EXPECT_EQ(nn::segment_input_region(g, conv, add, out),
            (Region{5, 11, 0, 16}));
}

TEST(Receptive, SegmentInputRegionOnGraphModels) {
  const nn::Graph g = models::resnet34({.input_size = 64});
  // A residual block as a whole: demand must cover its internal halo.
  // Nodes 3..8 are the first basic block (conv,bn,conv,bn,add after stem).
  const Shape out = g.node(8).out_shape;
  const Region need = nn::segment_input_region(
      g, 3, 8, Region::rows(0, out.height / 2, out.width));
  EXPECT_GE(need.height(), out.height / 2);
  EXPECT_LE(need.row_begin, 0);
}

TEST(Receptive, ValidSegments) {
  Graph g;
  int x = g.add_input({4, 16, 16});
  const int c1 = g.add_conv(x, 4, 3, 1, 1, false);
  const int add = g.add_add(c1, x, true);
  const int c2 = g.add_conv(add, 8, 3, 1, 1);
  g.finalize();
  EXPECT_TRUE(nn::is_valid_segment(g, c1, add));   // whole block
  EXPECT_TRUE(nn::is_valid_segment(g, c1, c2));    // block + conv
  EXPECT_FALSE(nn::is_valid_segment(g, add, c2));  // needs x AND c1: invalid
  // [c1, c1] is a well-formed segment in isolation (its only external input
  // is the graph input), even though no stage can legally *follow* it —
  // which is exactly what the previous expectation shows.
  EXPECT_TRUE(nn::is_valid_segment(g, c1, c1));
  EXPECT_TRUE(nn::is_valid_segment(g, c2, c2));
  EXPECT_FALSE(nn::is_valid_segment(g, 0, c1));    // includes input node
}

TEST(Receptive, FcSegmentsInvalid) {
  Graph g;
  int x = g.add_input({2, 4, 4});
  const int fc = g.add_fc(x, 7);
  g.finalize();
  EXPECT_FALSE(nn::is_valid_segment(g, fc, fc));
}

}  // namespace
}  // namespace pico
