// Flight recorder + crash postmortem tests: ring wraparound and gap
// semantics, multi-thread interleave ordering, the intern and thread-name
// tables, the PEV1 wire codec (round trip + truncation), the pending-span
// table, the PICO_CHECK journal hook, and the signal-handler dump round
// trip (fork a child, SIGSEGV it, parse the artifact it left behind).
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"

namespace obs = pico::obs;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PICO_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PICO_UNDER_SANITIZER 1
#endif
#endif

namespace {

/// One temp dir per test-binary run, exported as PICO_POSTMORTEM_DIR
/// *before* the first dump path runs (the handlers read it once).
const std::string& postmortem_dir() {
  static const std::string dir = [] {
    char tmpl[] = "/tmp/pico_postmortem_test_XXXXXX";
    const char* made = mkdtemp(tmpl);
    std::string out = made != nullptr ? made : ".";
    ::setenv("PICO_POSTMORTEM_DIR", out.c_str(), 1);
    return out;
  }();
  return dir;
}

}  // namespace

TEST(FlightRecorderTest, RecordAndSnapshot) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  obs::record_event(obs::EventCode::TaskAccept, 7);
  obs::record_event(obs::EventCode::TaskComplete, 7, 1, 2, 3);
  const std::vector<obs::EventRecord> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(events[0].code,
            static_cast<std::uint16_t>(obs::EventCode::TaskAccept));
  EXPECT_EQ(events[0].args[0], 7);
  EXPECT_EQ(events[1].args[3], 3);
  EXPECT_GE(events[1].t_ns, events[0].t_ns);
  EXPECT_EQ(events[0].category,
            static_cast<std::uint16_t>(obs::EventCategory::Task));
}

TEST(FlightRecorderTest, DisabledRecorderIsFree) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  recorder.set_enabled(false);
  const std::uint64_t before = recorder.next_seq();
  obs::record_event(obs::EventCode::TaskAccept, 1);
  EXPECT_EQ(recorder.next_seq(), before);
  EXPECT_TRUE(recorder.snapshot().empty());
  recorder.set_enabled(true);
  obs::record_event(obs::EventCode::TaskAccept, 2);
  EXPECT_EQ(recorder.snapshot().size(), 1u);
}

TEST(FlightRecorderTest, RingWraparoundKeepsNewest) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  const int total = obs::FlightRecorder::kRingSize + 50;
  for (int i = 0; i < total; ++i) {
    obs::record_event(obs::EventCode::TaskAccept, i);
  }
  const obs::EventChunk chunk = recorder.chunk(0);
  // This thread's ring holds exactly the newest kRingSize events.
  ASSERT_EQ(chunk.events.size(),
            static_cast<std::size_t>(obs::FlightRecorder::kRingSize));
  EXPECT_EQ(chunk.events.back().args[0], total - 1);
  EXPECT_EQ(chunk.events.front().args[0], 50);
  // The overwritten prefix shows up as a cursor gap: base > cursor + 1.
  EXPECT_GT(chunk.base, 1u);
  EXPECT_EQ(chunk.next, chunk.events.back().seq);
}

TEST(FlightRecorderTest, ChunkCursorReturnsOnlyNewer) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  for (int i = 0; i < 10; ++i) {
    obs::record_event(obs::EventCode::TaskAccept, i);
  }
  const obs::EventChunk all = recorder.chunk(0);
  ASSERT_EQ(all.events.size(), 10u);
  const std::uint64_t cursor = all.events[4].seq;
  const obs::EventChunk tail = recorder.chunk(cursor);
  ASSERT_EQ(tail.events.size(), 5u);
  for (const obs::EventRecord& event : tail.events) {
    EXPECT_GT(event.seq, cursor);
  }
  EXPECT_EQ(tail.next, all.next);
  // A cursor at the tip yields an empty chunk whose next stays put.
  const obs::EventChunk empty = recorder.chunk(all.next);
  EXPECT_TRUE(empty.events.empty());
  EXPECT_EQ(empty.next, all.next);
}

TEST(FlightRecorderTest, MultiThreadInterleaveIsTotallyOrdered) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;  // < kRingSize: nothing overwritten
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        obs::record_event(obs::EventCode::TaskAccept, t, i);
      }
      // Hold the ring claim until every writer is done: a thread that
      // exits releases its ring for reuse (by design — contents kept for
      // postmortems), and a fast sequential schedule would then funnel
      // later threads through the same ring, overwriting history.
      finished.fetch_add(1);
      while (finished.load() < kThreads) std::this_thread::yield();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const std::vector<obs::EventRecord> events = recorder.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seqs;
  std::uint64_t last = 0;
  std::set<std::uint32_t> tids;
  for (const obs::EventRecord& event : events) {
    EXPECT_GT(event.seq, last);  // strictly increasing merge order
    last = event.seq;
    seqs.insert(event.seq);
    tids.insert(event.tid);
  }
  EXPECT_EQ(seqs.size(), events.size());  // no duplicate sequence numbers
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // Per-thread program order survives the merge.
  for (int t = 0; t < kThreads; ++t) {
    int expect = 0;
    for (const obs::EventRecord& event : events) {
      if (event.args[0] == t) {
        EXPECT_EQ(event.args[1], expect++);
      }
    }
    EXPECT_EQ(expect, kPerThread);
  }
}

TEST(FlightRecorderTest, EventCodeNamesRoundTrip) {
  for (int code = 1; code <= 24; ++code) {
    const auto typed = static_cast<obs::EventCode>(code);
    const char* name = obs::event_code_name(typed);
    EXPECT_STRNE(name, "?") << "code " << code;
    EXPECT_EQ(obs::event_code_from_name(name), typed) << name;
  }
  EXPECT_EQ(obs::event_code_from_name("no_such_event"),
            obs::EventCode::None);
  EXPECT_STREQ(obs::event_code_name(static_cast<obs::EventCode>(999)), "?");
}

TEST(FlightRecorderTest, InternDedupsAndSurvivesLookup) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  const std::uint16_t a = recorder.intern("PICO");
  const std::uint16_t b = recorder.intern("LW");
  const std::uint16_t again = recorder.intern("PICO");
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, again);
  EXPECT_STREQ(recorder.string_at(a), "PICO");
  EXPECT_STREQ(recorder.string_at(b), "LW");
  EXPECT_STREQ(recorder.string_at(0), "");
  EXPECT_STREQ(recorder.string_at(9999), "");
}

TEST(FlightRecorderTest, ThreadNameReachesOsAndJournal) {
  std::thread worker([] {
    obs::set_current_thread_name("pico-unit");
    EXPECT_STREQ(obs::FlightRecorder::global().current_thread_name(),
                 "pico-unit");
    char os_name[32] = {};
    ASSERT_EQ(pthread_getname_np(pthread_self(), os_name, sizeof(os_name)),
              0);
    EXPECT_STREQ(os_name, "pico-unit");
  });
  worker.join();
  bool named = false;
  for (const obs::FlightRecorder::ThreadName& entry :
       obs::FlightRecorder::global().thread_names()) {
    named |= std::string(entry.name) == "pico-unit";
  }
  EXPECT_TRUE(named);
}

TEST(FlightRecorderTest, CheckFailedIsJournaled) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  bool threw = false;
  try {
    PICO_CHECK_MSG(false, "deliberate test failure");
  } catch (const pico::Error&) {
    threw = true;
  }
  ASSERT_TRUE(threw);
  bool journaled = false;
  for (const obs::EventRecord& event : recorder.snapshot()) {
    if (event.code != static_cast<std::uint16_t>(obs::EventCode::CheckFailed)) {
      continue;
    }
    journaled = true;
    EXPECT_GT(event.args[0], 0);  // line number
    EXPECT_STREQ(
        recorder.string_at(static_cast<std::uint16_t>(event.args[1])),
        "flight_recorder_test.cpp");
  }
  EXPECT_TRUE(journaled);
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(EventCodecTest, RoundTrip) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  obs::record_event(obs::EventCode::EpochStart, 0, 4);
  obs::record_event(obs::EventCode::WorkerServe, 11, 0, 2);
  obs::record_event(obs::EventCode::TaskComplete, 11);
  const obs::EventChunk chunk = recorder.chunk(0);
  const std::vector<std::uint8_t> wire = obs::encode_events(chunk);
  const obs::EventChunk back = obs::decode_events(wire.data(), wire.size());
  EXPECT_EQ(back.base, chunk.base);
  EXPECT_EQ(back.next, chunk.next);
  ASSERT_EQ(back.events.size(), chunk.events.size());
  for (std::size_t i = 0; i < chunk.events.size(); ++i) {
    EXPECT_EQ(back.events[i].seq, chunk.events[i].seq);
    EXPECT_EQ(back.events[i].t_ns, chunk.events[i].t_ns);
    EXPECT_EQ(back.events[i].tid, chunk.events[i].tid);
    EXPECT_EQ(back.events[i].code, chunk.events[i].code);
    EXPECT_EQ(back.events[i].category, chunk.events[i].category);
    for (int a = 0; a < 4; ++a) {
      EXPECT_EQ(back.events[i].args[a], chunk.events[i].args[a]);
    }
  }
}

TEST(EventCodecTest, TruncationAlwaysThrows) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  for (int i = 0; i < 5; ++i) {
    obs::record_event(obs::EventCode::TaskAccept, i);
  }
  const std::vector<std::uint8_t> wire =
      obs::encode_events(recorder.chunk(0));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_THROW(obs::decode_events(wire.data(), cut), pico::TransportError)
        << "prefix length " << cut;
  }
  // Garbage magic is rejected too.
  std::vector<std::uint8_t> bad = wire;
  bad[0] ^= 0xff;
  EXPECT_THROW(obs::decode_events(bad.data(), bad.size()),
               pico::TransportError);
}

// ---------------------------------------------------------------------------
// Pending spans
// ---------------------------------------------------------------------------

TEST(PendingSpanTest, SpanClaimsAndReleases) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  {
    obs::Span span("unit-pending", "test", 5, 99);
    bool open = false;
    for (const obs::PendingSpanTable::Entry& entry :
         obs::PendingSpanTable::global().snapshot()) {
      open |= std::string(entry.name) == "unit-pending" &&
              entry.task_id == 99 && entry.track == 5;
    }
    EXPECT_TRUE(open);
  }
  bool open = false;
  for (const obs::PendingSpanTable::Entry& entry :
       obs::PendingSpanTable::global().snapshot()) {
    open |= std::string(entry.name) == "unit-pending";
  }
  EXPECT_FALSE(open);
  tracer.set_enabled(false);
  tracer.clear();
}

TEST(PendingSpanTest, TableFullFailsOpen) {
  obs::PendingSpanTable& table = obs::PendingSpanTable::global();
  obs::PendingSpanTable::Entry entry;
  std::snprintf(entry.name, sizeof(entry.name), "fill");
  std::vector<int> claimed;
  for (int i = 0; i < obs::PendingSpanTable::kSlots + 8; ++i) {
    const int slot = table.claim(entry);
    if (slot >= 0) claimed.push_back(slot);
  }
  EXPECT_LE(claimed.size(),
            static_cast<std::size_t>(obs::PendingSpanTable::kSlots));
  const int overflow = table.claim(entry);
  EXPECT_EQ(overflow, -1);  // full table refuses, never blocks
  for (const int slot : claimed) table.release(slot);
  EXPECT_GE(table.claim(entry), 0);  // slots come back after release
  // Release the one we just re-claimed (scan for it: claim order is free).
  for (int slot = 0; slot < table.slot_count(); ++slot) {
    obs::PendingSpanTable::Entry out;
    if (table.read_slot(slot, &out)) table.release(slot);
  }
  EXPECT_TRUE(table.snapshot().empty());
}

// ---------------------------------------------------------------------------
// Postmortem round trips
// ---------------------------------------------------------------------------

TEST(PostmortemTest, WriteNowRoundTrip) {
  postmortem_dir();
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  obs::set_current_thread_name("pico-main");
  obs::record_event(obs::EventCode::PlanSwitch, recorder.intern("PICO"),
                    recorder.intern("LW"), 1);
  obs::record_event(obs::EventCode::TaskAccept, 1234);
  obs::install_postmortem_handlers();
  ASSERT_TRUE(obs::write_postmortem_now("unit-test"));
  const obs::Postmortem pm = obs::load_postmortem(obs::postmortem_path());
  EXPECT_EQ(pm.pid, static_cast<int>(getpid()));
  EXPECT_EQ(pm.reason, "unit-test");
  EXPECT_EQ(pm.signal_number, 0);
  bool accept = false;
  bool plan_switch = false;
  for (const obs::PostmortemEvent& event : pm.events) {
    if (event.name == "task_accept" && event.args[0] == 1234) accept = true;
    if (event.name == "plan_switch") {
      plan_switch = true;
      ASSERT_LT(static_cast<std::size_t>(event.args[0]), pm.strings.size());
      EXPECT_EQ(pm.strings[static_cast<std::size_t>(event.args[0])], "PICO");
    }
  }
  EXPECT_TRUE(accept);
  EXPECT_TRUE(plan_switch);
  // Events arrive sorted by seq.
  for (std::size_t i = 1; i < pm.events.size(); ++i) {
    EXPECT_LT(pm.events[i - 1].seq, pm.events[i].seq);
  }
  bool main_named = false;
  for (const obs::PostmortemThread& thread : pm.threads) {
    main_named |= thread.name == "pico-main";
  }
  EXPECT_TRUE(main_named);
}

TEST(PostmortemTest, LoadRejectsGarbage) {
  const std::string path = postmortem_dir() + "/not_a_postmortem.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"something\": [1, 2,", f);
    std::fclose(f);
  }
  EXPECT_THROW(obs::load_postmortem(path), pico::Error);
  EXPECT_THROW(obs::load_postmortem(postmortem_dir() + "/missing.json"),
               pico::Error);
}

TEST(PostmortemTest, ForkSigsegvDumpRoundTrip) {
#ifdef PICO_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtimes intercept SIGSEGV themselves";
#else
  postmortem_dir();
  obs::install_postmortem_handlers();
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: journal the "in-flight work", then die the hard way.  The
    // inherited handler must write an artifact under the *child's* pid.
    obs::record_event(obs::EventCode::WorkerServe, 42, 7, 3);
    obs::record_event(obs::EventCode::TransportConnect, 9999);
    ::raise(SIGSEGV);
    _exit(97);  // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string path = postmortem_dir() + "/pico_postmortem_" +
                           std::to_string(pid) + ".json";
  const obs::Postmortem pm = obs::load_postmortem(path);
  EXPECT_EQ(pm.pid, static_cast<int>(pid));
  EXPECT_EQ(pm.reason, "SIGSEGV");
  EXPECT_EQ(pm.signal_number, SIGSEGV);
  bool serve = false;
  bool connect = false;
  for (const obs::PostmortemEvent& event : pm.events) {
    serve |= event.name == "worker_serve" && event.args[0] == 42;
    connect |= event.name == "transport_connect" && event.args[0] == 9999;
  }
  EXPECT_TRUE(serve);
  EXPECT_TRUE(connect);
#endif
}

// Keep last: floods the intern table to its capacity sentinel, which would
// perturb the string expectations of the tests above.
TEST(FlightRecorderTest, InternOverflowReturnsSentinel) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  std::uint16_t last = 0;
  for (int i = 0; i < obs::FlightRecorder::kMaxStrings + 8; ++i) {
    const std::string text = "overflow_" + std::to_string(i);
    last = recorder.intern(text.c_str());
  }
  EXPECT_EQ(last, 0);  // capacity exhausted -> empty-string sentinel
  // Oversized strings are truncated, not rejected.
  const std::string longer(obs::FlightRecorder::kStringBytes + 10, 'x');
  const std::uint16_t idx = recorder.intern(longer.c_str());
  EXPECT_EQ(idx, 0);  // table is full; but the call must not corrupt state
  EXPECT_STREQ(recorder.string_at(0), "");
}
