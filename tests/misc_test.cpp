// Coverage for the small supporting pieces: the logger, plan description,
// engine edge cases, worker statistics, queue stress, and region printing.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan.hpp"
#include "partition/schemes.hpp"
#include "runtime/channel.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"
#include "sim/engine.hpp"
#include "tensor/region.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(Log, LevelGatesEmission) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  // Below-threshold macro must not evaluate its stream arguments.
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return "x";
  };
  PICO_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 0);
  PICO_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  log::set_level(saved);
}

TEST(Log, OffSilencesEverything) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Off);
  PICO_LOG(Error) << "nobody hears this";
  log::set_level(saved);
  SUCCEED();
}

TEST(Region, StreamOutput) {
  std::ostringstream os;
  os << Region{1, 4, 2, 8};
  EXPECT_EQ(os.str(), "[1,4)x[2,8)");
}

TEST(DescribePlan, MentionsSchemeStagesAndDevices) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::paper_heterogeneous();
  const auto plan = partition::pico_plan(g, c, test_network());
  const std::string text = partition::describe_plan(g, plan);
  EXPECT_NE(text.find("PICO"), std::string::npos);
  EXPECT_NE(text.find("pipelined"), std::string::npos);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  EXPECT_NE(text.find("device"), std::string::npos);
}

TEST(DescribePlan, MarksBranchStages) {
  nn::Graph g;
  const int in = g.add_input({4, 8, 8});
  const int stem = g.add_conv(in, 4, 3, 1, 1);
  const int a = g.add_conv(stem, 2, 1, 1, 0);
  const int b = g.add_conv(stem, 2, 3, 1, 1);
  g.add_concat({a, b});
  g.finalize();
  partition::Plan plan;
  plan.scheme = "X";
  plan.pipelined = true;
  const Cluster c = Cluster::homogeneous(3, 1e9);
  plan.stages.push_back(partition::make_stage(g, c, 1, 1, {0}));
  partition::Stage branch;
  branch.first = 2;
  branch.last = 4;
  branch.kind = partition::StageKind::Branch;
  branch.assignments.push_back({1, {}, {0}});
  branch.assignments.push_back({2, {}, {1}});
  plan.stages.push_back(branch);
  const std::string text = partition::describe_plan(g, plan);
  EXPECT_NE(text.find("branch-parallel"), std::string::npos);
  EXPECT_NE(text.find("branches {0}"), std::string::npos);
}

TEST(Engine, RunOnEmptyQueueReturnsNow) {
  sim::Engine engine;
  EXPECT_DOUBLE_EQ(engine.run(), 0.0);
  EXPECT_TRUE(engine.empty());
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_DOUBLE_EQ(engine.run(), 5.0);  // idempotent once drained
}

TEST(Engine, RejectsSchedulingIntoThePast) {
  sim::Engine engine;
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), InvariantError);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), InvariantError);
}

TEST(Worker, CountsServedRequests) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  Rng rng(2);
  g.randomize_weights(rng);
  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  runtime::Worker worker(g, std::move(worker_end));
  worker.start();

  Tensor input(g.input_shape());
  input.randomize(rng);
  const Shape out = g.output_shape();
  for (int i = 0; i < 3; ++i) {
    runtime::Message request;
    request.type = runtime::MessageType::WorkRequest;
    request.first_node = 1;
    request.last_node = g.size() - 1;
    request.in_region =
        Region::full(g.input_shape().height, g.input_shape().width);
    request.out_region = Region::full(out.height, out.width);
    request.tensor = input;
    coordinator_end->send(request);
    const runtime::Message reply = coordinator_end->recv();
    EXPECT_EQ(reply.type, runtime::MessageType::WorkResult);
  }
  worker.stop();
  EXPECT_EQ(worker.requests_served(), 3);
}

TEST(Channel, MultiProducerMultiConsumerStress) {
  runtime::BoundedQueue<int> queue(16);
  constexpr int kProducers = 4, kPerProducer = 500;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }
  for (int consumer = 0; consumer < 2; ++consumer) {
    threads.emplace_back([&] {
      while (auto value = queue.pop()) {
        sum += *value;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  threads[4].join();
  threads[5].join();
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(Stats, ParameterCountMatchesManualSum) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  long long manual = 0;
  for (const auto& node : g.nodes()) {
    manual += static_cast<long long>(node.weights.size() + node.bias.size() +
                                     node.bn_scale.size() +
                                     node.bn_shift.size());
  }
  EXPECT_EQ(g.parameter_count(), manual);
  EXPECT_GT(manual, 0);
}

}  // namespace
}  // namespace pico
