#include <gtest/gtest.h>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "partition/plan.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"

namespace pico {
namespace {

using partition::Plan;
using partition::Stage;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(ValidatePlan, AcceptsSchemes) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  partition::validate_plan(g, c, partition::lw_plan(g, c));
  partition::validate_plan(g, c, partition::efl_plan(g, c));
  partition::validate_plan(g, c,
                           partition::ofl_plan(g, c, test_network()));
}

TEST(ValidatePlan, RejectsGapInNodeCoverage) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::lw_plan(g, c);
  plan.stages.erase(plan.stages.begin() + 2);
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(ValidatePlan, RejectsNonTilingRegions) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::efl_plan(g, c, {.efl_fused_units = 10});
  plan.stages[0].assignments[0].out_region.row_end -= 1;  // gap
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(ValidatePlan, RejectsDeviceReuseAcrossPipelinedStages) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan;
  plan.pipelined = true;
  plan.scheme = "bad";
  plan.stages.push_back(partition::make_stage(g, c, 1, 5, {0}));
  plan.stages.push_back(
      partition::make_stage(g, c, 6, g.size() - 1, {0}));
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
  plan.pipelined = false;  // sequential plans may reuse devices
  partition::validate_plan(g, c, plan);
}

TEST(ValidatePlan, RejectsBadDeviceId) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::lw_plan(g, c);
  plan.stages[0].assignments[0].device = 9;
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(Schemes, LwOneStagePerUnit) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const Plan plan = partition::lw_plan(g, c);
  EXPECT_EQ(plan.stage_count(), g.size() - 1);
  EXPECT_FALSE(plan.pipelined);
  for (const Stage& stage : plan.stages) {
    EXPECT_EQ(stage.device_count(), 4);
  }
}

TEST(Schemes, EflFusesEarlyUnits) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const Plan plan = partition::efl_plan(g, c);
  ASSERT_EQ(plan.stage_count(), 2);
  EXPECT_EQ(plan.stages[0].device_count(), 4);
  EXPECT_EQ(plan.stages[1].device_count(), 1);
  // The fused head stops once maps shrink to <= 14 (224/16).
  EXPECT_LE(g.node(plan.stages[0].last).out_shape.height, 14);
  EXPECT_GT(g.node(plan.stages[0].last - 1).out_shape.height, 14);
}

TEST(Schemes, EflExplicitPrefix) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(2, 1.0);
  const Plan plan = partition::efl_plan(g, c, {.efl_fused_units = 3});
  ASSERT_EQ(plan.stage_count(), 2);
  EXPECT_EQ(plan.stages[0].last, 3);
}

TEST(Schemes, EflTailRunsOnFastestDevice) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::raspberry_pi({0.6, 1.2, 0.8});
  const Plan plan = partition::efl_plan(g, c);
  ASSERT_EQ(plan.stage_count(), 2);
  EXPECT_EQ(plan.stages[1].assignments[0].device, 1);
}

TEST(Schemes, OflFusesMoreThanLw) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const NetworkModel net = test_network();
  const Plan ofl = partition::ofl_plan(g, c, net);
  const Plan lw = partition::lw_plan(g, c);
  EXPECT_LT(ofl.stage_count(), lw.stage_count());
  // OFL (DP over fusion points) can never lose to LW (every-layer cuts):
  const Seconds ofl_latency =
      partition::plan_cost(g, c, net, ofl).latency;
  const Seconds lw_latency = partition::plan_cost(g, c, net, lw).latency;
  EXPECT_LE(ofl_latency, lw_latency + 1e-9);
}

TEST(Schemes, OflAdaptsToBandwidth) {
  // Fast network -> communication is cheap -> fusing is less valuable:
  // stage count should not decrease when bandwidth grows.
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  NetworkModel slow = test_network();
  NetworkModel fast = test_network();
  fast.bandwidth = 1e9;
  const int slow_stages =
      partition::ofl_plan(g, c, slow).stage_count();
  const int fast_stages =
      partition::ofl_plan(g, c, fast).stage_count();
  EXPECT_GE(fast_stages, slow_stages);
}

TEST(Schemes, GridModeProducesValidPlans) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(8, 1.0);
  const NetworkModel net = test_network();
  const partition::SchemeOptions grid{
      .latency_limit = std::numeric_limits<double>::infinity(),
      .efl_fused_units = 0,
      .partition_mode = partition::PartitionMode::Grid};
  for (const Plan& plan :
       {partition::lw_plan(g, c, grid), partition::efl_plan(g, c, grid),
        partition::ofl_plan(g, c, net, grid)}) {
    partition::validate_plan(g, c, plan);
    // 8 devices -> 4x2 or 2x4 tiles: some assignment must not span all cols.
    bool has_2d_tile = false;
    for (const auto& slice : plan.stages[0].assignments) {
      const Shape out = g.node(plan.stages[0].last).out_shape;
      has_2d_tile |= slice.out_region.width() < out.width &&
                     slice.out_region.height() < out.height;
    }
    EXPECT_TRUE(has_2d_tile) << plan.scheme;
  }
}

TEST(Schemes, GridCutsFusedRedundancyVsStrips) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_homogeneous(8, 1.0);
  const partition::SchemeOptions grid{
      .latency_limit = std::numeric_limits<double>::infinity(),
      .efl_fused_units = 0,
      .partition_mode = partition::PartitionMode::Grid};
  const double strips_redundancy =
      partition::plan_redundancy_ratio(g, partition::efl_plan(g, c));
  const double grid_redundancy =
      partition::plan_redundancy_ratio(g, partition::efl_plan(g, c, grid));
  EXPECT_LT(grid_redundancy, strips_redundancy);
}

TEST(Schemes, GridStageTilesExactly) {
  const nn::Graph g = models::toy_mnist({.input_size = 48});
  for (const int devices : {1, 2, 3, 4, 6, 8}) {
    std::vector<DeviceId> ids;
    for (int i = 0; i < devices; ++i) ids.push_back(i);
    const partition::Stage stage =
        partition::make_stage_grid(g, 1, 4, ids);
    const Shape out = g.node(4).out_shape;
    std::vector<Region> regions;
    for (const auto& slice : stage.assignments) {
      regions.push_back(slice.out_region);
    }
    EXPECT_TRUE(
        tiles_exactly(Region::full(out.height, out.width), regions))
        << devices << " devices";
  }
}

TEST(PlanCost, SequentialPeriodEqualsLatency) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const NetworkModel net = test_network();
  const auto cost = partition::plan_cost(g, c, net, partition::lw_plan(g, c));
  EXPECT_DOUBLE_EQ(cost.period, cost.latency);
}

TEST(PlanCost, StageDecomposition) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const NetworkModel net = test_network();
  const Plan plan = partition::efl_plan(g, c);
  const auto cost = partition::plan_cost(g, c, net, plan);
  ASSERT_EQ(cost.stages.size(), plan.stages.size());
  Seconds sum = 0.0;
  for (const auto& s : cost.stages) {
    EXPECT_GT(s.compute, 0.0);
    EXPECT_GT(s.comm, 0.0);
    sum += s.total();
  }
  EXPECT_DOUBLE_EQ(sum, cost.latency);
}

TEST(PlanCost, FasterClusterLowersCompute) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const NetworkModel net = test_network();
  const auto slow = partition::plan_cost(
      g, Cluster::paper_homogeneous(4, 0.6), net,
      partition::lw_plan(g, Cluster::paper_homogeneous(4, 0.6)));
  const auto fast = partition::plan_cost(
      g, Cluster::paper_homogeneous(4, 1.2), net,
      partition::lw_plan(g, Cluster::paper_homogeneous(4, 1.2)));
  EXPECT_LT(fast.latency, slow.latency);
}

TEST(DeviceWork, LwHasNoModeledRedundancy) {
  // Per-layer partition duplicates no computation in the cost model: each
  // device computes only its disjoint strip of each layer (the overlap is in
  // the *inputs it receives*, not in FLOPs).  The paper's measured ~2%
  // (Table I) reflects system-level effects our model deliberately excludes.
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const Plan lw = partition::lw_plan(g, c);
  const double redundancy = partition::plan_redundancy_ratio(g, lw);
  EXPECT_DOUBLE_EQ(redundancy, 0.0);
}

TEST(DeviceWork, EflRedundancyExceedsLw) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const double lw = partition::plan_redundancy_ratio(g, partition::lw_plan(g, c));
  const double efl =
      partition::plan_redundancy_ratio(g, partition::efl_plan(g, c));
  EXPECT_GT(efl, lw);
  EXPECT_GT(efl, 0.05);  // fusing deep prefixes costs real halo FLOPs
}

TEST(DeviceWork, PerDeviceAccountingConsistent) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const Plan plan = partition::efl_plan(g, c);
  const auto work = partition::plan_device_work(g, c, plan);
  Flops executed = 0.0, redundant = 0.0;
  for (const auto& w : work) {
    EXPECT_GE(w.redundant, 0.0);
    EXPECT_LE(w.redundant, w.total);
    executed += w.total;
    redundant += w.redundant;
  }
  // Aggregate identity: executed - redundant == one full execution of the
  // plan's segments.
  Flops essential = 0.0;
  for (const Stage& stage : plan.stages) {
    essential += cost::segment_flops_full(g, stage.first, stage.last);
  }
  EXPECT_NEAR(executed - redundant, essential, essential * 1e-9);
}

}  // namespace
}  // namespace pico
