#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/slice.hpp"
#include "tensor/tensor.hpp"

namespace pico {
namespace {

Tensor sequential(Shape shape) {
  Tensor t(shape);
  float v = 0.0f;
  for (int c = 0; c < shape.channels; ++c)
    for (int y = 0; y < shape.height; ++y)
      for (int x = 0; x < shape.width; ++x) t.at(c, y, x) = v++;
  return t;
}

TEST(Tensor, ConstructAndIndex) {
  Tensor t({2, 3, 4}, 1.5f);
  EXPECT_EQ(t.shape(), (Shape{2, 3, 4}));
  EXPECT_EQ(t.size(), 24);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 1.5f);
  t.at(1, 2, 3) = -2.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), -2.0f);
}

TEST(Tensor, ChannelPointer) {
  Tensor t = sequential({3, 2, 2});
  EXPECT_FLOAT_EQ(t.channel(1)[0], 4.0f);
  EXPECT_FLOAT_EQ(t.channel(2)[3], 11.0f);
}

TEST(Tensor, FillAndRandomize) {
  Tensor t({1, 4, 4});
  Rng rng(3);
  t.randomize(rng, -1.0f, 1.0f);
  bool any_nonzero = false;
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
    any_nonzero |= v != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  t.fill(0.25f);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 0.25f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({1, 2, 2}, 1.0f), b({1, 2, 2}, 1.0f);
  b.at(0, 1, 1) = 3.5f;
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 2.5f);
  Tensor c({1, 2, 3});
  EXPECT_THROW(Tensor::max_abs_diff(a, c), InvariantError);
}

TEST(Slice, ExtractCopiesRegion) {
  const Tensor t = sequential({2, 4, 4});
  const Region r{1, 3, 2, 4};
  const Tensor piece = extract(t, r);
  EXPECT_EQ(piece.shape(), (Shape{2, 2, 2}));
  for (int c = 0; c < 2; ++c)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x)
        EXPECT_FLOAT_EQ(piece.at(c, y, x), t.at(c, y + 1, x + 2));
}

TEST(Slice, ExtractRejectsOutOfBounds) {
  const Tensor t({1, 4, 4});
  EXPECT_THROW(extract(t, Region{0, 5, 0, 4}), InvariantError);
}

TEST(Slice, StitchRoundTrip) {
  const Tensor t = sequential({3, 8, 5});
  const std::vector<Region> regions{Region::rows(0, 3, 5),
                                    Region::rows(3, 4, 5),
                                    Region::rows(4, 8, 5)};
  std::vector<Placed> pieces;
  for (const Region& r : regions) pieces.push_back({r, extract(t, r)});
  const Tensor rebuilt = stitch(t.shape(), pieces);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(t, rebuilt), 0.0f);
}

TEST(Slice, StitchRejectsGaps) {
  const Tensor t = sequential({1, 4, 4});
  std::vector<Placed> pieces{{Region::rows(0, 2, 4),
                              extract(t, Region::rows(0, 2, 4))}};
  EXPECT_THROW(stitch(t.shape(), pieces), InvariantError);
}

TEST(Slice, StitchRejectsOverlaps) {
  const Tensor t = sequential({1, 4, 4});
  std::vector<Placed> pieces{
      {Region::rows(0, 3, 4), extract(t, Region::rows(0, 3, 4))},
      {Region::rows(2, 4, 4), extract(t, Region::rows(2, 4, 4))}};
  EXPECT_THROW(stitch(t.shape(), pieces), InvariantError);
}

TEST(Slice, StitchLenientAllowsOverlapAndGap) {
  std::vector<Placed> pieces{
      {Region::rows(0, 3, 2), Tensor({1, 3, 2}, 1.0f)},
      {Region::rows(2, 4, 2), Tensor({1, 2, 2}, 2.0f)}};
  const Tensor out = stitch_lenient({1, 6, 2}, pieces);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2, 0), 2.0f);  // later piece wins
  EXPECT_FLOAT_EQ(out.at(0, 5, 0), 0.0f);  // gap stays zero
}

TEST(Slice, VerticalSplitRoundTrip) {
  const Tensor t = sequential({2, 5, 9});
  std::vector<Placed> pieces{
      {{0, 5, 0, 4}, extract(t, {0, 5, 0, 4})},
      {{0, 5, 4, 9}, extract(t, {0, 5, 4, 9})}};
  const Tensor rebuilt = stitch(t.shape(), pieces);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(t, rebuilt), 0.0f);
}

}  // namespace
}  // namespace pico
