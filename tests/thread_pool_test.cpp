// ThreadPool: index coverage, caller participation, exception propagation,
// concurrent and nested parallel_for, and the PICO_THREADS default.  Runs
// under the tsan preset, which is what keeps the ROADMAP's "runtime stays
// TSan-clean" requirement honest for the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace pico {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WritesHappenBeforeReturn) {
  // Plain (non-atomic) writes by tasks must be visible to the caller after
  // parallel_for returns — the guarantee the kernels rely on when strips
  // write into one shared output tensor.
  ThreadPool pool(3);
  std::vector<int> values(64, 0);
  pool.parallel_for(64, [&](int i) {
    values[static_cast<std::size_t>(i)] = i * i;
  });
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(values[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(8, [&](int) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, ZeroOrNegativeCountIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  pool.parallel_for(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](int i) {
                          if (i == 7) throw std::runtime_error("strip 7");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // no cancellation: other tasks finish
  // The pool stays usable after a throwing job.
  std::atomic<int> after{0};
  pool.parallel_for(
      8, [&](int) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  // Several threads using one pool at once — the runtime shape: every
  // Worker thread fans its strips out on the shared global pool.
  ThreadPool pool(4);
  constexpr int kCallers = 4, kCount = 200;
  std::vector<std::atomic<long long>> sums(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.parallel_for(kCount, [&sums, c](int i) {
        sums[static_cast<std::size_t>(c)].fetch_add(
            i, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<std::size_t>(c)].load(),
              kCount * (kCount - 1) / 2);
  }
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(4, [&](int) {
    pool.parallel_for(
        4, [&](int) { leaves.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, RejectsInvalidParallelism) {
  EXPECT_THROW(ThreadPool(0), InvariantError);
  EXPECT_THROW(ThreadPool(ThreadPool::kMaxThreads + 1), InvariantError);
}

TEST(ThreadPool, DefaultParallelismReadsPicoThreadsEnv) {
  const char* saved = std::getenv("PICO_THREADS");
  const std::string restore = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("PICO_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_parallelism(), 3);
  ASSERT_EQ(setenv("PICO_THREADS", "0", 1), 0);  // clamped up to 1
  EXPECT_EQ(ThreadPool::default_parallelism(), 1);
  ASSERT_EQ(setenv("PICO_THREADS", "99999", 1), 0);  // clamped down
  EXPECT_EQ(ThreadPool::default_parallelism(), ThreadPool::kMaxThreads);
  ASSERT_EQ(setenv("PICO_THREADS", "not-a-number", 1), 0);  // ignored
  EXPECT_GE(ThreadPool::default_parallelism(), 1);

  if (saved != nullptr) {
    setenv("PICO_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("PICO_THREADS");
  }
}

}  // namespace
}  // namespace pico
