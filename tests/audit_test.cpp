#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "analysis/audit.hpp"
#include "common/error.hpp"
#include "models/cfg.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan.hpp"
#include "partition/schemes.hpp"

namespace pico {
namespace {

using analysis::AuditOptions;
using analysis::AuditReport;
using analysis::Finding;
using analysis::Severity;
using partition::Plan;
using partition::Stage;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

bool has_error(const AuditReport& report, const std::string& check) {
  for (const Finding& finding : report.findings) {
    if (finding.severity == Severity::Error && finding.check == check) {
      return true;
    }
  }
  return false;
}

std::string config_path(const std::string& name) {
  return std::string(PICO_REPO_DIR) + "/configs/" + name;
}

// -- validate_plan failure modes ------------------------------------------

TEST(ValidatePlanFailures, OverlappingDeviceRegions) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::efl_plan(g, c, {.efl_fused_units = 6});
  ASSERT_GE(plan.stages[0].assignments.size(), 2u);
  // Grow device 0's strip one row into device 1's: overlap, not a tile.
  plan.stages[0].assignments[0].out_region.row_end += 1;
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(ValidatePlanFailures, NonContiguousStageRanges) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::lw_plan(g, c);
  plan.stages[1].first += 1;  // gap between stage 0 and stage 1
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(ValidatePlanFailures, DuplicateDeviceAcrossPipelinedStages) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(3, 1e9);
  Plan plan;
  plan.scheme = "bad";
  plan.pipelined = true;
  plan.stages.push_back(partition::make_stage(g, c, 1, 5, {0, 1}));
  plan.stages.push_back(
      partition::make_stage(g, c, 6, g.size() - 1, {1, 2}));
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(ValidatePlanFailures, DeviceIdOutsideCluster) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  Plan plan = partition::lw_plan(g, c);
  plan.stages[0].assignments[1].device = 7;
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

// -- auditor: accepts real plans ------------------------------------------

TEST(Audit, AcceptsVgg16PicoPlanFromConfig) {
  const nn::Graph g = models::load_cfg(config_path("vgg16.cfg"));
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan plan = partition::pico_plan(g, c, net);
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_TRUE(report.ok()) << analysis::to_text(report);
  EXPECT_TRUE(report.structure_ok);
  EXPECT_GT(report.essential, 0.0);
  EXPECT_GE(report.executed, report.essential);
}

TEST(Audit, AcceptsYolov2PicoPlanFromConfig) {
  const nn::Graph g = models::load_cfg(config_path("yolov2.cfg"));
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan plan = partition::pico_plan(g, c, net);
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_TRUE(report.ok()) << analysis::to_text(report);
  EXPECT_GT(report.period, 0.0);
  EXPECT_GE(report.latency, report.period);
}

TEST(Audit, AcceptsAllBaselineSchemes) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const NetworkModel net = test_network();
  for (const Plan& plan :
       {partition::lw_plan(g, c), partition::efl_plan(g, c),
        partition::ofl_plan(g, c, net), partition::pico_plan(g, c, net)}) {
    const AuditReport report = analysis::audit_plan(g, c, net, plan);
    EXPECT_TRUE(report.ok()) << plan.scheme << "\n"
                             << analysis::to_text(report);
  }
}

// -- auditor: rejects hand-broken plans -----------------------------------

TEST(Audit, RejectsOverlappingRegions) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const NetworkModel net = test_network();
  Plan plan = partition::efl_plan(g, c, {.efl_fused_units = 6});
  plan.stages[0].assignments[0].out_region.row_end += 1;
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "structure")) << analysis::to_text(report);
}

TEST(Audit, RejectsCoverageGap) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const NetworkModel net = test_network();
  Plan plan = partition::lw_plan(g, c);
  plan.stages.pop_back();  // last unit no longer covered
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "structure"));
}

TEST(Audit, RejectsPipelinedDeviceReuse) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(3, 1e9);
  const NetworkModel net = test_network();
  Plan plan;
  plan.scheme = "bad";
  plan.pipelined = true;
  plan.stages.push_back(partition::make_stage(g, c, 1, 5, {0, 1}));
  plan.stages.push_back(
      partition::make_stage(g, c, 6, g.size() - 1, {1, 2}));
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "devices")) << analysis::to_text(report);
  // The same plan run sequentially may reuse devices: no disjointness error.
  plan.pipelined = false;
  EXPECT_TRUE(analysis::audit_plan(g, c, net, plan).ok());
}

TEST(Audit, RejectsBadDeviceId) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const NetworkModel net = test_network();
  Plan plan = partition::lw_plan(g, c);
  plan.stages[0].assignments[1].device = 42;
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "structure"));
}

TEST(Audit, RejectsPlanOverMemoryBudget) {
  const nn::Graph g = models::toy_mnist({.input_size = 64});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const NetworkModel net = test_network();
  const Plan plan = partition::efl_plan(g, c);
  AuditOptions options;
  options.device_memory_limit = 1024.0;  // 1 KB: nothing real fits
  const AuditReport report =
      analysis::audit_plan(g, c, net, plan, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "memory")) << analysis::to_text(report);
  // A roomy budget passes.
  options.device_memory_limit = 512.0 * 1024 * 1024;
  EXPECT_TRUE(analysis::audit_plan(g, c, net, plan, options).ok());
}

TEST(Audit, RejectsPlanOverLatencyLimit) {
  const nn::Graph g = models::toy_mnist({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  const NetworkModel net = test_network();
  const Plan plan = partition::pico_plan(g, c, net);
  AuditOptions options;
  options.latency_limit = 1e-9;
  const AuditReport report =
      analysis::audit_plan(g, c, net, plan, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, "cost"));
}

// -- auditor: halo + accounting detail ------------------------------------

TEST(Audit, FusedStagesShowOverlapAndRedundancy) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const AuditReport efl =
      analysis::audit_plan(g, c, net, partition::efl_plan(g, c));
  ASSERT_FALSE(efl.stages.empty());
  EXPECT_GT(efl.stages[0].overlap_rows, 0);
  EXPECT_GT(efl.stages[0].redundancy(), 0.0);

  // Layer-wise plans still ship overlapping *input* rows (each 3x3 conv
  // needs one halo row per neighbor) but recompute nothing: per-stage
  // redundancy is exactly zero even where overlap_rows > 0.
  const AuditReport lw =
      analysis::audit_plan(g, c, net, partition::lw_plan(g, c));
  for (const analysis::StageAudit& stage : lw.stages) {
    EXPECT_NEAR(stage.redundancy(), 0.0, 1e-9) << "stage " << stage.index;
  }
  // Fusing 10+ layers into one stage multiplies the halo: the EFL head's
  // input overlap must dominate any single-layer stage's.
  int lw_max_overlap = 0;
  for (const analysis::StageAudit& stage : lw.stages) {
    lw_max_overlap = std::max(lw_max_overlap, stage.overlap_rows);
  }
  EXPECT_GT(efl.stages[0].overlap_rows, lw_max_overlap);
}

TEST(Audit, FootprintsCoverEveryActiveDevice) {
  const nn::Graph g = models::toy_mnist({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan plan = partition::pico_plan(g, c, net);
  const AuditReport report = analysis::audit_plan(g, c, net, plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.footprints.empty());
  for (const analysis::DeviceFootprint& fp : report.footprints) {
    EXPECT_GE(fp.weights, 0.0);
    EXPECT_GT(fp.peak_activations, 0.0) << "device " << fp.device;
  }
}

// -- report rendering ------------------------------------------------------

TEST(AuditReportRendering, TextAndJson) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const NetworkModel net = test_network();
  const AuditReport good =
      analysis::audit_plan(g, c, net, partition::lw_plan(g, c));
  const std::string text = analysis::to_text(good);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  const std::string json = analysis::to_json(good);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"device_footprints\":["), std::string::npos);

  Plan broken = partition::lw_plan(g, c);
  broken.stages[0].assignments[1].device = 42;
  const AuditReport bad = analysis::audit_plan(g, c, net, broken);
  EXPECT_NE(analysis::to_text(bad).find("FAIL"), std::string::npos);
  EXPECT_NE(analysis::to_json(bad).find("\"ok\":false"), std::string::npos);
}

}  // namespace
}  // namespace pico
