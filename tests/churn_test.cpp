// Worker-death chaos tests: transport deadlines (TimeoutError paths),
// heartbeat failure detection, and the ResilientRuntime recovery loop —
// kill or wedge a worker mid-stream in a loopback cluster and assert that
// every accepted inference still completes bit-exactly over the survivors.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/flight_recorder.hpp"
#include "partition/pico_dp.hpp"
#include "runtime/message.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/resilient_runtime.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"

namespace pico::runtime {
// Internal (pipeline.cpp) but external-linkage so the stale-frame drain is
// unit-testable.
Message expect_reply(Connection& connection, MessageType want);
}  // namespace pico::runtime

namespace pico {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

/// Chaos hooks are process-global; never leak them past a test (even a
/// failing one).
struct FaultGuard {
  FaultGuard() { runtime::clear_debug_worker_faults(); }
  ~FaultGuard() { runtime::clear_debug_worker_faults(); }
};

// ---------------------------------------------------------------------------
// Transport deadlines
// ---------------------------------------------------------------------------

TEST(TransportTimeout, InProcIdleRecvThrowsTimeout) {
  auto [a, b] = runtime::make_inproc_pair();
  a->set_timeout_ms(50);
  const auto t0 = Clock::now();
  try {
    a->recv();
    FAIL() << "recv did not time out";
  } catch (const TimeoutError& error) {
    EXPECT_FALSE(error.mid_frame());
  }
  EXPECT_GE(Clock::now() - t0, 40ms);
}

TEST(TransportTimeout, TcpIdleRecvThrowsTimeout) {
  runtime::TcpListener listener;
  std::unique_ptr<runtime::Connection> client;
  std::thread connector(
      [&] { client = runtime::tcp_connect(listener.port()); });
  auto server = listener.accept();
  connector.join();
  server->set_timeout_ms(50);
  try {
    server->recv();
    FAIL() << "recv did not time out";
  } catch (const TimeoutError& error) {
    EXPECT_FALSE(error.mid_frame());  // idle: no frame had started
  }
}

TEST(TransportTimeout, TcpMidFrameStallThrowsMidFrameTimeout) {
  // A peer that sends the length prefix and then goes silent has started a
  // frame the stream can never re-synchronize past: the timeout must be
  // flagged mid-frame so callers know the connection is unusable.
  runtime::TcpListener listener;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ASSERT_EQ(1, inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)));
  auto server = listener.accept();
  const std::uint64_t promised_length = 64;  // ...but never send the payload
  ASSERT_EQ(static_cast<ssize_t>(sizeof(promised_length)),
            ::send(fd, &promised_length, sizeof(promised_length), 0));
  server->set_timeout_ms(100);
  try {
    server->recv();
    FAIL() << "recv did not time out";
  } catch (const TimeoutError& error) {
    EXPECT_TRUE(error.mid_frame());
  }
  ::close(fd);
}

TEST(TransportTimeout, ZeroTimeoutStillDeliversFrames) {
  auto [a, b] = runtime::make_inproc_pair();
  a->set_timeout_ms(200);
  runtime::Message ping;
  ping.type = runtime::MessageType::Ping;
  ping.task_id = 7;
  b->send(ping);
  const runtime::Message got = a->recv();
  EXPECT_EQ(got.type, runtime::MessageType::Ping);
  EXPECT_EQ(got.task_id, 7);
}

TEST(Transport, ConnectByExplicitHost) {
  runtime::TcpListener listener;
  std::unique_ptr<runtime::Connection> client;
  std::thread connector(
      [&] { client = runtime::tcp_connect("127.0.0.1", listener.port()); });
  auto server = listener.accept();
  connector.join();
  runtime::Message hello;
  hello.type = runtime::MessageType::Ping;
  client->send(hello);
  EXPECT_EQ(server->recv().type, runtime::MessageType::Ping);
}

TEST(Transport, ConnectToUnresolvableHostThrows) {
  EXPECT_THROW(runtime::tcp_connect("no-such-host.invalid", 1), TransportError);
}

// ---------------------------------------------------------------------------
// expect_reply stale-frame drain
// ---------------------------------------------------------------------------

TEST(ExpectReply, DrainsStaleWorkResultsUpToTheReply) {
  auto [coordinator, worker] = runtime::make_inproc_pair();
  for (int i = 0; i < 3; ++i) {
    runtime::Message stale;
    stale.type = runtime::MessageType::WorkResult;
    stale.task_id = 100 + i;
    worker->send(stale);
  }
  runtime::Message pong;
  pong.type = runtime::MessageType::Pong;
  pong.task_id = 42;
  worker->send(pong);
  const runtime::Message got =
      runtime::expect_reply(*coordinator, runtime::MessageType::Pong);
  EXPECT_EQ(got.type, runtime::MessageType::Pong);
  EXPECT_EQ(got.task_id, 42);
}

TEST(ExpectReply, BoundsTheDrainByStaleFrameCount) {
  // A runaway peer flooding data-plane frames must not starve the control
  // plane forever: the drain gives up after its stale-frame budget.
  auto [coordinator, worker] = runtime::make_inproc_pair();
  for (int i = 0; i < 4096; ++i) {
    runtime::Message stale;
    stale.type = runtime::MessageType::WorkResult;
    stale.task_id = i;
    worker->send(stale);
  }
  EXPECT_THROW(
      runtime::expect_reply(*coordinator, runtime::MessageType::Pong),
      TransportError);
}

// ---------------------------------------------------------------------------
// Heartbeat detection (PipelineRuntime level)
// ---------------------------------------------------------------------------

TEST(Heartbeat, IdleDeathDetectedAndPromotedToDeviceFailure) {
  // A worker that dies *between* tasks produces no data-plane error; only
  // the heartbeat (harvest round trips) can notice.  Device 1's connection
  // is closed from the worker side before any task flows: after
  // heartbeat_missed_rounds consecutive failed round trips the policy must
  // declare it down and poison the runtime.
  nn::Graph graph = models::synthetic_chain(3, 32, 8);
  Rng rng(11);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan =
      partition::pico_plan(graph, cluster, test_network());

  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  std::vector<std::unique_ptr<runtime::Worker>> workers;
  std::vector<DeviceId> devices;
  for (const auto& stage : plan.stages) {
    for (const auto& slice : stage.assignments) {
      if (connections.count(slice.device) != 0) continue;
      devices.push_back(slice.device);
      auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
      if (devices.size() == 1) {
        workers.push_back(std::make_unique<runtime::Worker>(
            graph, std::move(worker_end), slice.device));
        workers.back()->start();
      } else {
        worker_end->close();  // dead on arrival, silently
      }
      connections.emplace(slice.device, std::move(coordinator_end));
    }
  }
  ASSERT_GE(devices.size(), 2u) << "plan must span both devices";
  const DeviceId victim = devices[1];

  runtime::RuntimeOptions options;
  options.harvest_ms = 50;
  options.heartbeat_missed_rounds = 2;
  runtime::PipelineRuntime rt(graph, plan, std::move(connections), options);

  const auto t0 = Clock::now();
  std::vector<DeviceId> failed;
  while (Clock::now() - t0 < 5s) {
    failed = rt.failed_devices();
    if (!failed.empty()) break;
    std::this_thread::sleep_for(10ms);
  }
  const auto detection = Clock::now() - t0;
  ASSERT_EQ(failed, std::vector<DeviceId>{victim});
  // Detection latency is bounded by missed_rounds x harvest period (plus
  // scheduling slack; the factor-of-2 acceptance bound plus margin).
  EXPECT_LT(detection, 2s);

  const obs::HealthSnapshot health = rt.health();
  bool saw_down = false;
  for (const obs::HealthEvent& event : health.events) {
    if (event.kind == obs::HealthEventKind::DeviceDown &&
        event.device == victim) {
      saw_down = true;
    }
  }
  EXPECT_TRUE(saw_down);
  rt.shutdown();
}

TEST(Heartbeat, DeviceDownEventCarriesHarvestedBlackBox) {
  // Both workers live long enough for harvest rounds to pull their flight
  // recorder (EventDump); then the victim dies *between* tasks.  The
  // DeviceDown health event must carry the last harvested journal — the
  // cluster keeps a black box for a device that can no longer dump one.
  nn::Graph graph = models::synthetic_chain(3, 32, 8);
  Rng rng(12);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan =
      partition::pico_plan(graph, cluster, test_network());

  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  std::vector<std::unique_ptr<runtime::Worker>> workers;
  std::vector<DeviceId> devices;
  for (const auto& stage : plan.stages) {
    for (const auto& slice : stage.assignments) {
      if (connections.count(slice.device) != 0) continue;
      devices.push_back(slice.device);
      auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
      workers.push_back(std::make_unique<runtime::Worker>(
          graph, std::move(worker_end), slice.device));
      workers.back()->start();
      connections.emplace(slice.device, std::move(coordinator_end));
    }
  }
  ASSERT_GE(devices.size(), 2u) << "plan must span both devices";
  const DeviceId victim = devices[1];

  runtime::RuntimeOptions options;
  options.harvest_ms = 30;
  options.heartbeat_missed_rounds = 2;
  runtime::PipelineRuntime rt(graph, plan, std::move(connections), options);

  // Let at least two rounds succeed so the harvester has retained a ring.
  const auto t0 = Clock::now();
  while (rt.health().rounds < 2 && Clock::now() - t0 < 5s) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GE(rt.health().rounds, 2) << "harvest rounds never completed";

  workers[1]->stop();  // idle death: only the heartbeat can notice
  std::vector<DeviceId> failed;
  const auto t1 = Clock::now();
  while (Clock::now() - t1 < 5s) {
    failed = rt.failed_devices();
    if (!failed.empty()) break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(failed, std::vector<DeviceId>{victim});

  const obs::HealthSnapshot health = rt.health();
  bool saw_down = false;
  for (const obs::HealthEvent& event : health.events) {
    if (event.kind != obs::HealthEventKind::DeviceDown ||
        event.device != victim) {
      continue;
    }
    saw_down = true;
    EXPECT_FALSE(event.blackbox.empty())
        << "DeviceDown must carry the device's last harvested journal";
    for (const obs::EventRecord& record : event.blackbox) {
      EXPECT_GT(record.seq, 0u);
      EXPECT_NE(obs::event_code_name(
                    static_cast<obs::EventCode>(record.code)),
                std::string("?"));
    }
  }
  EXPECT_TRUE(saw_down);
  rt.shutdown();
}

// ---------------------------------------------------------------------------
// ResilientRuntime recovery
// ---------------------------------------------------------------------------

runtime::ResilientOptions chaos_options(runtime::RuntimeOptions runtime_opts) {
  runtime::ResilientOptions options;
  options.runtime = runtime_opts;
  options.network = test_network();
  return options;
}

DeviceId pick_victim(const partition::Plan& plan) {
  return plan.stages.front().assignments.front().device;
}

TEST(Churn, HardKillMidStreamRecoversAndCompletesEveryTask) {
  FaultGuard guard;
  nn::Graph graph = models::synthetic_chain(6, 48, 8);
  Rng rng(2026);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::raspberry_pi({1.2, 1.0, 0.8});

  constexpr int kTasks = 12;
  std::vector<Tensor> inputs;
  std::vector<Tensor> references;
  for (int i = 0; i < kTasks; ++i) {
    Tensor input(graph.input_shape());
    input.randomize(rng);
    references.push_back(nn::execute(graph, input));
    inputs.push_back(std::move(input));
  }

  runtime::RuntimeOptions runtime_opts;
  runtime_opts.transport = runtime::TransportKind::Tcp;  // loopback cluster
  runtime_opts.harvest_ms = 50;
  runtime::ResilientRuntime rt(graph, cluster,
                               chaos_options(runtime_opts));
  const DeviceId victim = pick_victim(rt.plan());
  // The victim drops its connection on its 3rd request — mid-stream, with
  // tasks queued behind it.  EOF detection needs no timeout.
  runtime::set_debug_worker_kill_after(victim, 3);

  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kTasks; ++i) futures.push_back(rt.submit(inputs[i]));
  for (int i = 0; i < kTasks; ++i) {
    const Tensor out = futures[i].get();  // throws if any task was dropped
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(out, references[i]), 0.0f)
        << "task " << i;
  }

  EXPECT_GE(rt.replans(), 1);
  EXPECT_EQ(rt.dead_devices(), std::vector<DeviceId>{victim});
  EXPECT_EQ(rt.survivors().size(), cluster.size() - 1);
  for (const auto& stage : rt.plan().stages) {
    for (const auto& slice : stage.assignments) {
      EXPECT_NE(slice.device, victim) << "replanned over a dead device";
    }
  }
  rt.shutdown();
  const obs::HealthSnapshot health = rt.health();
  bool saw_down = false;
  for (const obs::HealthEvent& event : health.events) {
    if (event.kind == obs::HealthEventKind::DeviceDown &&
        event.device == victim) {
      saw_down = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_EQ(rt.tasks_completed(), kTasks);
}

TEST(Churn, HungWorkerDetectedByDeadlineWithinBound) {
  FaultGuard guard;
  nn::Graph graph = models::synthetic_chain(4, 32, 8);
  Rng rng(404);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::raspberry_pi({1.2, 1.0, 0.8});

  runtime::RuntimeOptions runtime_opts;
  runtime_opts.transport = runtime::TransportKind::Tcp;
  runtime_opts.net_timeout_ms = 750;  // hang recovery needs a deadline
  runtime_opts.harvest_ms = 150;
  runtime_opts.heartbeat_missed_rounds = 2;
  runtime::ResilientRuntime rt(graph, cluster,
                               chaos_options(runtime_opts));
  const DeviceId victim = pick_victim(rt.plan());

  Tensor input(graph.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(graph, input);
  // Warm-up proves the pipe works before the wedge.
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);

  // Wedge the victim's reply leg: the coordinator sees silence, not EOF.
  runtime::set_debug_worker_stall(victim, true);
  const auto t0 = Clock::now();
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(rt.submit(input));

  std::vector<DeviceId> dead;
  while (Clock::now() - t0 < 15s) {
    dead = rt.dead_devices();
    if (!dead.empty()) break;
    std::this_thread::sleep_for(10ms);
  }
  const double detection_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ASSERT_EQ(dead, std::vector<DeviceId>{victim});
  // Acceptance bound: twice the heartbeat interval, where one interval is
  // missed_rounds x harvest period + the transport deadline.
  const double interval_s = 2 * 0.150 + 0.750;
  EXPECT_LT(detection_s, 2.0 * interval_s);

  runtime::set_debug_worker_stall(victim, false);
  for (auto& future : futures) {
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(future.get(), reference), 0.0f);
  }
  EXPECT_GE(rt.replans(), 1);
  rt.shutdown();
}

TEST(Churn, RejoinRestoresFullMembership) {
  FaultGuard guard;
  nn::Graph graph = models::synthetic_chain(4, 32, 8);
  Rng rng(17);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::raspberry_pi({1.2, 1.0, 0.8});
  Tensor input(graph.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(graph, input);

  runtime::RuntimeOptions runtime_opts;
  runtime_opts.transport = runtime::TransportKind::InProcess;
  runtime::ResilientRuntime rt(graph, cluster,
                               chaos_options(runtime_opts));
  const DeviceId victim = pick_victim(rt.plan());
  runtime::set_debug_worker_kill_after(victim, 1);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
  ASSERT_EQ(rt.dead_devices(), std::vector<DeviceId>{victim});

  runtime::clear_debug_worker_faults();
  rt.rejoin(victim);
  const auto t0 = Clock::now();
  while (Clock::now() - t0 < 10s) {
    // Membership is restored before the rejoin replan is counted; wait for
    // the counter too so the assertions below see the settled state.
    if (rt.dead_devices().empty() && rt.survivors().size() == cluster.size() &&
        rt.replans() >= 2) {
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(rt.dead_devices().empty());
  EXPECT_EQ(rt.survivors().size(), cluster.size());
  EXPECT_GE(rt.replans(), 2);  // death + rejoin each replanned
  // The re-admitted device serves again.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
  }
  rt.shutdown();
}

TEST(Churn, ClusterExhaustionFailsTasksInsteadOfHanging) {
  FaultGuard guard;
  nn::Graph graph = models::synthetic_chain(3, 32, 8);
  Rng rng(5);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  Tensor input(graph.input_shape());
  input.randomize(rng);

  runtime::RuntimeOptions runtime_opts;
  runtime_opts.transport = runtime::TransportKind::InProcess;
  runtime::ResilientRuntime rt(graph, cluster,
                               chaos_options(runtime_opts));
  // Every device dies on its first request, epoch after epoch, until no
  // survivor remains to plan over.
  for (const Device& device : cluster.devices()) {
    runtime::set_debug_worker_kill_after(device.id, 1);
  }
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(rt.submit(input));
  int failures = 0;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (const TransportError&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 3);
  // The runtime is terminal, not wedged: a late submit fails fast too.
  EXPECT_THROW(rt.submit(input).get(), TransportError);
  rt.shutdown();
}

}  // namespace
}  // namespace pico
