// Continuous telemetry harvest: the span-cursor protocol (SpanBuffer,
// PSP2/PSP1 codec, at-least-once dedup in harvest_worker), the rolling
// windows, the straggler / model-drift detectors, and a loopback two-worker
// integration run with one artificially slowed device proving that mid-run
// harvest rounds deliver monotone, non-duplicated span streams and that the
// health engine flags exactly the slow device.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "partition/schemes.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/worker.hpp"

namespace pico {
namespace {

obs::SpanRecord make_span(std::string name, std::int64_t start) {
  obs::SpanRecord span;
  span.name = std::move(name);
  span.category = "worker";
  span.track = obs::device_track(1);
  span.start_ns = start;
  span.duration_ns = 100;
  span.task_id = 4;
  return span;
}

// ---------------------------------------------------------------------------
// SpanBuffer cursor protocol
// ---------------------------------------------------------------------------

TEST(SpanBufferCursor, RecordStampsMonotoneSequenceNumbers) {
  obs::SpanBuffer buffer;
  EXPECT_EQ(buffer.next_seq(), 0u);
  buffer.record(make_span("a", 10));
  buffer.record(make_span("b", 20));
  buffer.record(make_span("c", 30));
  EXPECT_EQ(buffer.next_seq(), 3u);
  const obs::TraceChunk chunk = buffer.chunk(0);
  ASSERT_EQ(chunk.spans.size(), 3u);
  EXPECT_EQ(chunk.base, 0u);
  EXPECT_EQ(chunk.next, 3u);
  EXPECT_EQ(chunk.spans[0].seq, 0);
  EXPECT_EQ(chunk.spans[1].seq, 1);
  EXPECT_EQ(chunk.spans[2].seq, 2);
}

TEST(SpanBufferCursor, ChunkWithoutAckRedeliversForAtLeastOnce) {
  obs::SpanBuffer buffer;
  buffer.record(make_span("a", 10));
  buffer.record(make_span("b", 20));
  // The reply got lost: the coordinator asks again with the same cursor and
  // must see the same spans again.
  const obs::TraceChunk first = buffer.chunk(0);
  const obs::TraceChunk again = buffer.chunk(0);
  ASSERT_EQ(first.spans.size(), 2u);
  ASSERT_EQ(again.spans.size(), 2u);
  EXPECT_EQ(again.spans[0].seq, first.spans[0].seq);
  // Advancing the cursor acknowledges the prefix; only the rest returns.
  const obs::TraceChunk after_ack = buffer.chunk(1);
  ASSERT_EQ(after_ack.spans.size(), 1u);
  EXPECT_EQ(after_ack.base, 1u);
  EXPECT_EQ(after_ack.spans[0].seq, 1);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(SpanBufferCursor, AckPrunesOnlyBelowCursor) {
  obs::SpanBuffer buffer;
  for (int i = 0; i < 5; ++i) buffer.record(make_span("s", i));
  buffer.ack(3);
  EXPECT_EQ(buffer.size(), 2u);
  const obs::TraceChunk chunk = buffer.chunk(3);
  EXPECT_EQ(chunk.base, 3u);
  ASSERT_EQ(chunk.spans.size(), 2u);
  EXPECT_EQ(chunk.spans[0].seq, 3);
  // A stale (lower) cursor must not resurrect anything.
  buffer.ack(1);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(SpanBufferCursor, HostileCursorIsClampedNeverOutOfRange) {
  obs::SpanBuffer buffer;
  buffer.record(make_span("a", 10));
  buffer.record(make_span("b", 20));
  // A corrupt wire cursor far beyond anything recorded: the prune is
  // clamped to the buffer contents and sequence numbering stays sane.
  buffer.ack(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.next_seq(), 2u);
  buffer.record(make_span("c", 30));
  const obs::TraceChunk chunk = buffer.chunk(0);
  ASSERT_EQ(chunk.spans.size(), 1u);
  EXPECT_EQ(chunk.spans[0].seq, 2);
  EXPECT_EQ(chunk.base, 2u);
  EXPECT_EQ(chunk.next, 3u);
}

TEST(SpanBufferCursor, DrainAdvancesBasePastEverything) {
  obs::SpanBuffer buffer;
  buffer.record(make_span("a", 10));
  buffer.record(make_span("b", 20));
  EXPECT_EQ(buffer.drain().size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);
  const obs::TraceChunk chunk = buffer.chunk(0);
  EXPECT_EQ(chunk.base, 2u);
  EXPECT_EQ(chunk.next, 2u);
  EXPECT_TRUE(chunk.spans.empty());
}

// ---------------------------------------------------------------------------
// Span codec: PSP2 carries seq; PSP1 buffers still decode (seq = -1)
// ---------------------------------------------------------------------------

TEST(SpanCodecV2, SequenceNumbersSurviveTheRoundTrip) {
  std::vector<obs::SpanRecord> spans = {make_span("x", 1), make_span("y", 2)};
  spans[0].seq = 41;
  spans[1].seq = 42;
  const auto bytes = obs::encode_spans(spans);
  const auto decoded = obs::decode_spans(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].seq, 41);
  EXPECT_EQ(decoded[1].seq, 42);
}

// Hand-rolled PSP1 buffer, exactly what a pre-cursor worker would emit:
// same layout as PSP2 minus the per-span seq field.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  const auto offset = out.size();
  out.resize(offset + text.size());
  if (!text.empty()) std::memcpy(out.data() + offset, text.data(), text.size());
}

TEST(SpanCodecV2, LegacyPsp1BufferDecodesWithSeqMinusOne) {
  std::vector<std::uint8_t> bytes;
  put<std::uint32_t>(bytes, 0x50535031u);  // "PSP1"
  put<std::uint64_t>(bytes, 1u);
  put_string(bytes, "compute");
  put_string(bytes, "worker");
  put<std::int64_t>(bytes, obs::device_track(2));
  put<std::int64_t>(bytes, 777);   // start_ns
  put<std::int64_t>(bytes, 55);    // duration_ns
  put<std::int64_t>(bytes, 9);     // task_id
  put<std::uint32_t>(bytes, 1u);   // one arg
  put_string(bytes, "stage");
  put_string(bytes, "0");
  const auto decoded = obs::decode_spans(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].name, "compute");
  EXPECT_EQ(decoded[0].start_ns, 777);
  EXPECT_EQ(decoded[0].task_id, 9);
  EXPECT_EQ(decoded[0].seq, -1) << "v1 spans carry no sequence number";
  ASSERT_EQ(decoded[0].args.size(), 1u);
  EXPECT_EQ(decoded[0].args[0].first, "stage");
}

// ---------------------------------------------------------------------------
// harvest_worker: cursor advance, duplicate filtering, partial failure
// ---------------------------------------------------------------------------

obs::TraceChunk chunk_of(std::uint64_t base, std::vector<obs::SpanRecord> s) {
  obs::TraceChunk chunk;
  chunk.base = base;
  chunk.next = base + s.size();
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i].seq = static_cast<std::int64_t>(base + i);
  }
  chunk.spans = std::move(s);
  return chunk;
}

TEST(HarvestWorkerCursor, AdvancesCursorAcrossRounds) {
  obs::HarvestEndpoint endpoint;
  endpoint.device = 1;
  endpoint.fetch_trace_chunk = [](std::uint64_t cursor) {
    EXPECT_EQ(cursor, 0u);
    return chunk_of(0, {make_span("a", 1), make_span("b", 2)});
  };
  const obs::WorkerTelemetry round1 = obs::harvest_worker(endpoint, 0);
  EXPECT_TRUE(round1.reachable);
  EXPECT_EQ(round1.next_cursor, 2u);
  ASSERT_EQ(round1.spans.size(), 2u);

  endpoint.trace_cursor = round1.next_cursor;
  endpoint.fetch_trace_chunk = [](std::uint64_t cursor) {
    EXPECT_EQ(cursor, 2u);
    return chunk_of(2, {make_span("c", 3)});
  };
  const obs::WorkerTelemetry round2 = obs::harvest_worker(endpoint, 0);
  EXPECT_EQ(round2.next_cursor, 3u);
  ASSERT_EQ(round2.spans.size(), 1u);
  EXPECT_EQ(round2.spans[0].seq, 2);
}

TEST(HarvestWorkerCursor, RedeliveredSpansBelowCursorAreFiltered) {
  // A lost reply means the worker re-sends from an older base; everything
  // below the request cursor is a duplicate the caller must never see.
  obs::HarvestEndpoint endpoint;
  endpoint.device = 1;
  endpoint.trace_cursor = 2;
  endpoint.fetch_trace_chunk = [](std::uint64_t) {
    return chunk_of(0, {make_span("a", 1), make_span("b", 2),
                        make_span("c", 3), make_span("d", 4)});
  };
  const obs::WorkerTelemetry telemetry = obs::harvest_worker(endpoint, 0);
  ASSERT_EQ(telemetry.spans.size(), 2u);
  EXPECT_EQ(telemetry.spans[0].seq, 2);
  EXPECT_EQ(telemetry.spans[1].seq, 3);
  EXPECT_EQ(telemetry.next_cursor, 4u);
}

TEST(HarvestWorkerCursor, SpansSurviveWorkerDyingAfterTraceFetch) {
  // Regression: the trace is pulled before the metrics, so spans already on
  // this side of the wire are kept — rebased, cursor advanced — when the
  // worker dies mid-round, instead of being lost to the exception.
  obs::HarvestEndpoint endpoint;
  endpoint.device = 3;
  endpoint.fetch_trace_chunk = [](std::uint64_t) {
    return chunk_of(0, {make_span("kept", 10)});
  };
  endpoint.fetch_metrics = []() -> std::string {
    throw TransportError("peer closed");
  };
  const obs::WorkerTelemetry telemetry = obs::harvest_worker(endpoint, 0);
  EXPECT_FALSE(telemetry.reachable);
  ASSERT_EQ(telemetry.spans.size(), 1u);
  EXPECT_EQ(telemetry.spans[0].name, "kept");
  EXPECT_EQ(telemetry.next_cursor, 1u)
      << "delivered spans must be acknowledged next round";
  EXPECT_TRUE(telemetry.metrics_text.empty());
}

TEST(HarvestWorkerCursor, TraceFailureKeepsCursorForRetry) {
  obs::HarvestEndpoint endpoint;
  endpoint.device = 3;
  endpoint.trace_cursor = 7;
  endpoint.fetch_trace_chunk = [](std::uint64_t) -> obs::TraceChunk {
    throw TransportError("peer closed");
  };
  const obs::WorkerTelemetry telemetry = obs::harvest_worker(endpoint, 0);
  EXPECT_FALSE(telemetry.reachable);
  EXPECT_TRUE(telemetry.spans.empty());
  EXPECT_EQ(telemetry.next_cursor, 7u)
      << "nothing delivered, nothing may be acknowledged";
}

TEST(ClusterTelemetryMerge, RoundsForOneDeviceFoldIntoOneEntry) {
  obs::ClusterTelemetry cluster;
  obs::WorkerTelemetry round1;
  round1.device = 2;
  round1.reachable = true;
  round1.metrics_text = "old 1\n";
  round1.spans = {make_span("a", 1)};
  round1.next_cursor = 1;
  round1.rounds = 1;
  obs::WorkerTelemetry round2;
  round2.device = 2;
  round2.reachable = true;
  round2.metrics_text = "new 2\n";
  round2.spans = {make_span("b", 2)};
  round2.next_cursor = 2;
  round2.rounds = 1;
  cluster.add(std::move(round1));
  cluster.add(std::move(round2));
  const auto workers = cluster.workers();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].spans.size(), 2u) << "spans accumulate";
  EXPECT_EQ(workers[0].metrics_text, "new 2\n") << "cumulative text: latest wins";
  EXPECT_EQ(workers[0].next_cursor, 2u);
  EXPECT_EQ(workers[0].rounds, 2);
}

// ---------------------------------------------------------------------------
// Rolling windows
// ---------------------------------------------------------------------------

TEST(WindowedSeries, WindowHoldsOnlyTheLastWRounds) {
  obs::Histogram histogram;
  obs::WindowedSeries series(&histogram, 2);
  histogram.observe(1.0);
  series.roll();  // round 1: {1.0}
  histogram.observe(2.0);
  series.roll();  // round 2: {2.0}
  EXPECT_EQ(series.window().count, 2);
  EXPECT_DOUBLE_EQ(series.window().sum, 3.0);
  histogram.observe(10.0);
  histogram.observe(10.0);
  series.roll();  // round 3: {10, 10} — round 1 falls out of the window
  EXPECT_EQ(series.window().count, 3);
  EXPECT_DOUBLE_EQ(series.window().sum, 22.0);
  EXPECT_NEAR(series.window().mean(), 22.0 / 3.0, 1e-12);
  series.roll();  // round 4: empty — round 2 falls out too
  EXPECT_EQ(series.window().count, 2);
  EXPECT_DOUBLE_EQ(series.window().sum, 20.0);
}

TEST(WindowedCounter, WindowSumsDeltasAndExposesLastDelta) {
  obs::Counter counter;
  obs::WindowedCounter window(&counter, 3);
  counter.add(5);
  window.roll();
  EXPECT_EQ(window.last_delta(), 5);
  EXPECT_EQ(window.window(), 5);
  counter.add(2);
  window.roll();
  window.roll();  // idle round
  EXPECT_EQ(window.last_delta(), 0);
  EXPECT_EQ(window.window(), 7);
  counter.add(1);
  window.roll();  // the +5 round falls out of the 3-round window
  EXPECT_EQ(window.window(), 3);
}

// ---------------------------------------------------------------------------
// Straggler detection
// ---------------------------------------------------------------------------

TEST(DetectStragglers, TwoDeviceStageUsesPeerRatioFallback) {
  obs::StragglerOptions options;
  const auto verdicts =
      obs::detect_stragglers({{0, 0.030}, {1, 0.090}}, options);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_FALSE(verdicts[0].straggler);
  EXPECT_TRUE(verdicts[1].straggler);
  EXPECT_NEAR(verdicts[1].score, 3.0, 1e-9);
}

TEST(DetectStragglers, BalancedPeersRaiseNothing) {
  obs::StragglerOptions options;
  for (const auto& verdict :
       obs::detect_stragglers({{0, 0.030}, {1, 0.031}}, options)) {
    EXPECT_FALSE(verdict.straggler) << "device " << verdict.device;
  }
}

TEST(DetectStragglers, LargeStageUsesRobustZScore) {
  obs::StragglerOptions options;
  const std::map<int, double> means = {
      {0, 0.0101}, {1, 0.0099}, {2, 0.0100}, {3, 0.0102}, {4, 0.0500}};
  const auto verdicts = obs::detect_stragglers(means, options);
  ASSERT_EQ(verdicts.size(), 5u);
  for (const auto& verdict : verdicts) {
    EXPECT_EQ(verdict.straggler, verdict.device == 4)
        << "device " << verdict.device << " score " << verdict.score;
  }
  // A fast outlier is an easy window, not a straggler.
  const auto fast = obs::detect_stragglers(
      {{0, 0.0101}, {1, 0.0099}, {2, 0.0100}, {3, 0.0102}, {4, 0.0005}},
      options);
  for (const auto& verdict : fast) {
    EXPECT_FALSE(verdict.straggler) << "device " << verdict.device;
  }
}

TEST(DetectStragglers, SingleDeviceHasNoPeersToStraggleBehind) {
  const auto verdicts =
      obs::detect_stragglers({{0, 10.0}}, obs::StragglerOptions{});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].straggler);
}

// ---------------------------------------------------------------------------
// Online model checker + Thm. 2 M/D/1
// ---------------------------------------------------------------------------

TEST(Md1Waiting, MatchesClosedFormAndHandlesEdges) {
  // λ = 5/s, p = 0.1 s: Wq = 0.5·0.1 / (2·(1−0.5)) = 0.05 s.
  EXPECT_NEAR(obs::md1_waiting_seconds(5.0, 0.1), 0.05, 1e-12);
  EXPECT_TRUE(std::isinf(obs::md1_waiting_seconds(11.0, 0.1)))
      << "unstable queue (λp ≥ 1) predicts unbounded waiting";
  EXPECT_EQ(obs::md1_waiting_seconds(0.0, 0.1), 0.0);
  EXPECT_EQ(obs::md1_waiting_seconds(5.0, 0.0), 0.0);
}

obs::StageResidual residual_of(double predicted, double measured) {
  obs::StageResidual r;
  r.stage = 0;
  r.signal = "compute";
  r.predicted = predicted;
  r.measured = measured;
  return r;
}

TEST(ModelChecker, DriftFiresAfterConsecutiveBreachesThenRearms) {
  obs::ModelChecker::Options options;
  options.drift_threshold = 0.5;
  options.consecutive_rounds = 3;
  options.residual_alpha = 1.0;  // no smoothing: residual == newest sample
  obs::ModelChecker checker(options);

  // Accurate rounds: residual 10%, nothing fires.
  EXPECT_TRUE(checker.check(1, {residual_of(0.100, 0.110)}).empty());
  ASSERT_EQ(checker.residuals().size(), 1u);
  EXPECT_NEAR(checker.residuals()[0].residual, 0.1, 1e-9);

  // Model drifts: measured double the prediction (residual 1.0).  The event
  // fires only on the `consecutive_rounds`-th breach, exactly once.
  EXPECT_TRUE(checker.check(2, {residual_of(0.100, 0.200)}).empty());
  EXPECT_TRUE(checker.check(3, {residual_of(0.100, 0.200)}).empty());
  const auto fired = checker.check(4, {residual_of(0.100, 0.200)});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, obs::HealthEventKind::ModelDrift);
  EXPECT_EQ(fired[0].signal, "compute");
  EXPECT_EQ(fired[0].round, 4);
  EXPECT_TRUE(checker.check(5, {residual_of(0.100, 0.200)}).empty())
      << "still drifted, but the event already fired";

  // Recovery re-arms: a fitting round clears the state, renewed drift
  // counts breaches from zero and fires again.
  EXPECT_TRUE(checker.check(6, {residual_of(0.100, 0.101)}).empty());
  EXPECT_TRUE(checker.check(7, {residual_of(0.100, 0.200)}).empty());
  EXPECT_TRUE(checker.check(8, {residual_of(0.100, 0.200)}).empty());
  EXPECT_EQ(checker.check(9, {residual_of(0.100, 0.200)}).size(), 1u);
}

TEST(ModelChecker, InfinitePredictionDisagreesFinitely) {
  obs::ModelChecker::Options options;
  options.consecutive_rounds = 1;
  obs::ModelChecker checker(options);
  obs::StageResidual r = residual_of(
      std::numeric_limits<double>::infinity(), 0.5);
  r.signal = "md1_wait";
  const auto events = checker.check(1, {r});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(std::isfinite(events[0].value));
}

// ---------------------------------------------------------------------------
// Loopback integration: two in-process workers, one artificially slowed.
// Mid-run harvest rounds must be monotone and duplicate-free, and the
// health engine must flag exactly the slow device.
// ---------------------------------------------------------------------------

class HarvestLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().reset_values();
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    runtime::clear_debug_compute_delays();
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
  }
};

TEST_F(HarvestLoopFixture, MidRunHarvestIsMonotoneAndFlagsTheSlowDevice) {
  nn::Graph graph = models::toy_mnist({.input_size = 48});
  Rng rng(11);
  graph.randomize_weights(rng);
  // Homogeneous devices + a spatial (EFL) plan: every stage is split across
  // both devices into equal-time slices, so the devices are within-stage
  // peers and a slowed one is detectable by construction.
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan = partition::efl_plan(graph, cluster);

  constexpr DeviceId kSlow = 1;

  runtime::RuntimeOptions options;
  options.harvest_ms = 0;  // rounds driven by hand — deterministic
  runtime::PipelineRuntime rt(graph, plan, options);
  Tensor input(graph.input_shape());
  input.randomize(rng);

  // Calibrate, then slow: instrumented builds (tsan, sched) inflate the
  // baseline per-slice compute by 10–60×, so no fixed sleep dominates in
  // every config.  Measure the worst-stage compute over three undelayed
  // rounds (min_window_count — fewer and the health engine reports no
  // means yet), then make device 1 sleep 4× that inside its timed compute
  // window: even diluted by the calibration samples still in the rolling
  // window, the ratio-to-best-peer score clears the 2.0 straggler
  // threshold by construction, in any build.
  constexpr int kCalibration = 3;
  constexpr int kDelayed = 4;
  constexpr int kTasks = kCalibration + kDelayed;
  std::vector<obs::HealthSnapshot> snapshots;
  for (int i = 0; i < kCalibration; ++i) {
    rt.infer(input);
    ASSERT_TRUE(rt.harvest_now()) << "calibration task " << i;
    snapshots.push_back(rt.health());
  }
  double base_seconds = 0.0;
  for (const obs::DeviceHealth& device : snapshots.back().devices) {
    base_seconds = std::max(base_seconds, device.window_compute_mean);
  }
  ASSERT_GT(base_seconds, 0.0)
      << "calibration rounds produced no windowed compute means";
  const double delay_ms = std::max(60.0, 4000.0 * base_seconds);
  runtime::set_debug_compute_delay_ms(kSlow, delay_ms);

  for (int i = 0; i < kDelayed; ++i) {
    rt.infer(input);
    ASSERT_TRUE(rt.harvest_now()) << "delayed task " << i;
    snapshots.push_back(rt.health());
  }

  // ≥ 3 genuinely mid-run rounds (here: one per task), strictly ordered.
  ASSERT_GE(snapshots.size(), 3u);
  EXPECT_EQ(snapshots.back().rounds, kTasks);
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_GT(snapshots[i].rounds, snapshots[i - 1].rounds);
  }

  // Per device and per round: span totals and cursors move monotonically —
  // the cursor protocol never loses ground and never re-counts.
  std::map<int, std::int64_t> last_spans;
  std::map<int, std::uint64_t> last_cursor;
  for (const obs::HealthSnapshot& snapshot : snapshots) {
    EXPECT_EQ(snapshot.devices.size(), 2u);
    for (const obs::DeviceHealth& device : snapshot.devices) {
      EXPECT_TRUE(device.reachable) << "device " << device.device;
      EXPECT_GE(device.spans_harvested, last_spans[device.device]);
      EXPECT_GE(device.trace_cursor, last_cursor[device.device]);
      last_spans[device.device] = device.spans_harvested;
      last_cursor[device.device] = device.trace_cursor;
    }
  }
  for (const auto& [device, spans] : last_spans) {
    EXPECT_GT(spans, 0) << "device " << device
                        << " delivered no spans mid-run";
  }

  rt.shutdown();
  const obs::HealthSnapshot health = rt.health();

  // Exactly the slowed device is flagged, with the straggler event to match.
  ASSERT_EQ(health.devices.size(), 2u);
  for (const obs::DeviceHealth& device : health.devices) {
    EXPECT_EQ(device.straggler, device.device == kSlow)
        << "device " << device.device << " score " << device.straggler_score;
  }
  EXPECT_FALSE(health.healthy());
  // At least one straggler event for the slowed device.  (Events are
  // edge-triggered per round; the undelayed calibration rounds measure
  // ms-scale slices where scheduling noise can transiently flag either
  // device, so exact-device strictness lives on the final verdict above.)
  bool straggler_event = false;
  for (const obs::HealthEvent& event : health.events) {
    if (event.kind != obs::HealthEventKind::Straggler) continue;
    straggler_event |= event.device == kSlow;
  }
  EXPECT_TRUE(straggler_event) << "no straggler event raised";

  // Accumulated telemetry: every span delivered exactly once per worker —
  // sequence numbers are unique even though chunks are at-least-once.
  const auto workers = rt.cluster_telemetry().workers();
  ASSERT_EQ(workers.size(), 2u);
  for (const obs::WorkerTelemetry& worker : workers) {
    EXPECT_TRUE(worker.reachable);
    EXPECT_GE(worker.rounds, kTasks) << "device " << worker.device;
    std::set<std::int64_t> seqs;
    for (const obs::SpanRecord& span : worker.spans) {
      ASSERT_GE(span.seq, 0) << span.name;
      EXPECT_TRUE(seqs.insert(span.seq).second)
          << "device " << worker.device << " delivered seq " << span.seq
          << " twice";
    }
    // compute + serve per request on this worker, at minimum.
    EXPECT_GE(worker.spans.size(), static_cast<std::size_t>(kTasks));
  }

  // Shutdown-ack regression: the worker's graceful flush into the global
  // tracer must cover only spans no harvest round delivered — per track,
  // every stamped sequence number appears exactly once in the merged trace.
  std::map<std::int64_t, std::set<std::int64_t>> seen;
  for (const obs::SpanRecord& span : obs::Tracer::global().snapshot()) {
    if (span.seq < 0) continue;  // coordinator-side spans are unstamped
    EXPECT_TRUE(seen[span.track].insert(span.seq).second)
        << span.name << " seq " << span.seq << " duplicated on track "
        << span.track;
  }
}

TEST_F(HarvestLoopFixture, HarvestNowRefusesAfterShutdown) {
  nn::Graph graph = models::toy_mnist({.input_size = 16});
  Rng rng(3);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan = partition::efl_plan(graph, cluster);
  runtime::PipelineRuntime rt(graph, plan);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  rt.infer(input);
  EXPECT_TRUE(rt.harvest_now());
  rt.shutdown();
  EXPECT_FALSE(rt.harvest_now());
  EXPECT_GE(rt.health().rounds, 1);
}

TEST_F(HarvestLoopFixture, PeriodicThreadHarvestsWithoutManualRounds) {
  // The background loop alone (no harvest_now calls) must complete mid-run
  // rounds while tasks flow.
  nn::Graph graph = models::toy_mnist({.input_size = 32});
  Rng rng(5);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  const partition::Plan plan = partition::efl_plan(graph, cluster);
  runtime::RuntimeOptions options;
  options.harvest_ms = 5;
  runtime::PipelineRuntime rt(graph, plan, options);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  std::int64_t mid_run_rounds = 0;
  for (int i = 0; i < 40 && mid_run_rounds < 3; ++i) {
    rt.infer(input);
    mid_run_rounds = rt.health().rounds;
  }
  EXPECT_GE(mid_run_rounds, 3) << "periodic harvester made too few rounds";
  rt.shutdown();
}

}  // namespace
}  // namespace pico
