#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/queueing.hpp"
#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(Engine, FiresInTimeOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, EqualTimesFifo) {
  sim::Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksCanSchedule) {
  sim::Engine engine;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) engine.schedule_in(1.0, tick);
  };
  engine.schedule_at(0.0, tick);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(Engine, RunUntilStopsEarly) {
  sim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run(2.0);
  EXPECT_EQ(fired, 1);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Arrivals, PoissonMeanRate) {
  Rng rng(3);
  const auto arrivals = sim::poisson_arrivals(rng, 5.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / 2000.0, 5.0, 0.2);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
}

TEST(Arrivals, BurstyRateBetweenPhases) {
  Rng rng(9);
  const double base = 1.0, burst = 20.0;
  const auto arrivals =
      sim::bursty_arrivals(rng, base, burst, 50.0, 50.0, 20000.0);
  const double rate = static_cast<double>(arrivals.size()) / 20000.0;
  // Long-run rate ~ average of the two phases (equal dwell means).
  EXPECT_GT(rate, base);
  EXPECT_LT(rate, burst);
  EXPECT_NEAR(rate, (base + burst) / 2.0, 2.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
}

TEST(Arrivals, BurstyIsBurstierThanPoisson) {
  // Coefficient of variation of inter-arrival times: MMPP > Poisson (=1).
  Rng rng(11);
  const auto arrivals =
      sim::bursty_arrivals(rng, 0.5, 25.0, 100.0, 30.0, 30000.0);
  RunningStats gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.add(arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_GT(gaps.stddev() / gaps.mean(), 1.3);
}

TEST(Arrivals, BurstyZeroBaseRateAllowed) {
  Rng rng(13);
  const auto arrivals =
      sim::bursty_arrivals(rng, 0.0, 10.0, 50.0, 50.0, 5000.0);
  EXPECT_FALSE(arrivals.empty());
}

TEST(Arrivals, BackToBackAllZero) {
  const auto arrivals = sim::back_to_back_arrivals(10);
  EXPECT_EQ(arrivals.size(), 10u);
  for (Seconds t : arrivals) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Queueing, StabilityBoundary) {
  EXPECT_TRUE(sim::md1_stable(1.0, 0.5));
  EXPECT_FALSE(sim::md1_stable(1.0, 1.0));
  EXPECT_TRUE(std::isinf(sim::md1_waiting_time(1.0, 1.1)));
}

TEST(Queueing, Theorem2Decomposition) {
  // p(2 - pλ)/(2(1 - pλ)) == p + Wq for the M/D/1 queue.
  const Seconds p = 0.4;
  const double lambda = 1.2;
  const Seconds t = 1.0;
  EXPECT_NEAR(sim::theorem2_latency(p, t, lambda),
              p + sim::md1_waiting_time(p, lambda) + t, 1e-12);
}

TEST(Queueing, LatencyGrowsWithLoad) {
  Seconds previous = 0.0;
  for (double lambda = 0.1; lambda < 0.95; lambda += 0.1) {
    const Seconds latency = sim::theorem2_latency(1.0, 2.0, lambda);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

class SimFixture : public ::testing::Test {
 protected:
  SimFixture()
      : graph_(models::vgg16({.input_size = 64})),
        cluster_(Cluster::paper_heterogeneous()),
        network_(test_network()) {}

  nn::Graph graph_;
  Cluster cluster_;
  NetworkModel network_;
};

TEST_F(SimFixture, SaturatedThroughputMatchesPeriod) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  const auto arrivals = sim::back_to_back_arrivals(200);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  ASSERT_EQ(result.tasks.size(), 200u);
  // Steady-state throughput -> 1 / period (pipeline fill is amortized).
  EXPECT_NEAR(result.throughput() * cost.period, 1.0, 0.05);
}

TEST_F(SimFixture, SequentialThroughputMatchesLatency) {
  const auto plan = partition::ofl_plan(graph_, cluster_, network_);
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  const auto arrivals = sim::back_to_back_arrivals(50);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  EXPECT_NEAR(result.throughput() * cost.latency, 1.0, 0.05);
}

TEST_F(SimFixture, LightLoadLatencyEqualsPipelineLatency) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  // Arrivals far apart: no queueing, latency == pipeline traversal.
  std::vector<Seconds> arrivals;
  for (int i = 0; i < 10; ++i) arrivals.push_back(i * cost.latency * 10.0);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  for (const auto& task : result.tasks) {
    EXPECT_NEAR(task.latency(), cost.latency, cost.latency * 1e-9);
    EXPECT_DOUBLE_EQ(task.waiting(), 0.0);
  }
}

TEST_F(SimFixture, PoissonLatencyTracksQueueingPrediction) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  const double lambda = 0.5 / cost.period;  // 50% load
  Rng rng(17);
  const auto arrivals = sim::poisson_arrivals(rng, lambda, 4000.0 * cost.period);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  // Exact prediction Wq + t tracks the tandem-queue simulation closely; the
  // paper's Theorem-2 expression adds one extra bottleneck service, so it
  // upper-bounds the measurement.
  const Seconds exact =
      sim::md1_sojourn_latency(cost.period, cost.latency, lambda);
  const Seconds theorem2 =
      sim::theorem2_latency(cost.period, cost.latency, lambda);
  EXPECT_NEAR(result.mean_latency() / exact, 1.0, 0.15);
  EXPECT_LT(result.mean_latency(), theorem2 * 1.05);
}

TEST_F(SimFixture, UtilizationBoundedAndBottleneckBusy) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  const auto arrivals = sim::back_to_back_arrivals(200);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  double best = 0.0;
  for (const auto& usage : result.devices) {
    const double u = result.utilization(usage.device);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    best = std::max(best, u);
  }
  EXPECT_GT(best, 0.5);  // the bottleneck stage keeps its devices busy
}

TEST_F(SimFixture, UnstableLoadQueueGrows) {
  const auto plan = partition::ofl_plan(graph_, cluster_, network_);
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  const double lambda = 1.5 / cost.period;  // 150% load
  Rng rng(23);
  const auto arrivals =
      sim::poisson_arrivals(rng, lambda, 200.0 * cost.period);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  // Mean latency far above the no-queue latency.
  EXPECT_GT(result.mean_latency(), 5.0 * cost.latency);
  // Later tasks wait longer (queue keeps growing).
  EXPECT_GT(result.tasks.back().waiting(), result.tasks.front().waiting());
}

TEST_F(SimFixture, PlanSwitchDrainsThenApplies) {
  const auto pico = partition::pico_plan(graph_, cluster_, network_);
  const auto ofl = partition::ofl_plan(graph_, cluster_, network_);
  sim::ClusterSimulator simulator(graph_, cluster_, network_);
  simulator.set_plan(ofl);
  std::vector<Seconds> arrivals;
  for (int i = 0; i < 40; ++i) arrivals.push_back(0.01 * i);
  simulator.add_arrivals(arrivals);
  bool switched = false;
  simulator.set_controller(
      1.0, [&](sim::ClusterSimulator& s, Seconds, int) {
        if (!switched) {
          s.set_plan(pico);
          switched = true;
        }
      });
  const auto result = simulator.run();
  EXPECT_EQ(result.plan_switches, 1);
  ASSERT_EQ(result.tasks.size(), 40u);
  bool saw_ofl = false, saw_pico = false;
  for (const auto& task : result.tasks) {
    saw_ofl |= task.scheme == "OFL";
    saw_pico |= task.scheme == "PICO";
  }
  EXPECT_TRUE(saw_ofl);
  EXPECT_TRUE(saw_pico);
}

TEST_F(SimFixture, SharedLinkNeverBeatsIndependentLinks) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  const auto arrivals = sim::back_to_back_arrivals(80);
  const auto independent =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals,
                         sim::CommModel::Overlapped);
  const auto contended =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals,
                         sim::CommModel::SharedLink);
  EXPECT_LE(contended.throughput(), independent.throughput() * (1.0 + 1e-9));

  // The AP itself bounds throughput: at most one task can cross the link
  // per sum-of-stage-comm seconds.
  Seconds total_comm = 0.0;
  const auto cost = partition::plan_cost(graph_, cluster_, network_, plan);
  for (const auto& stage : cost.stages) total_comm += stage.comm;
  EXPECT_LE(contended.throughput(), 1.0 / total_comm * (1.0 + 0.05));
}

TEST_F(SimFixture, SharedLinkMatchesOverlappedForSingleStage) {
  // With one pipelined stage there is nothing to contend with: shared-link
  // throughput equals the overlapped model's.
  std::vector<DeviceId> ids;
  for (int i = 0; i < cluster_.size(); ++i) ids.push_back(i);
  partition::Plan single;
  single.scheme = "single";
  single.pipelined = true;
  single.stages.push_back(
      partition::make_stage(graph_, cluster_, 1, graph_.size() - 1, ids));
  const auto arrivals = sim::back_to_back_arrivals(40);
  const auto a = sim::simulate_plan(graph_, cluster_, network_, single,
                                    arrivals, sim::CommModel::Overlapped);
  const auto b = sim::simulate_plan(graph_, cluster_, network_, single,
                                    arrivals, sim::CommModel::SharedLink);
  EXPECT_NEAR(a.throughput(), b.throughput(), a.throughput() * 1e-9);
}

TEST_F(SimFixture, ReclusterSlowsServiceAfterDrain) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  // Degrade every device 4x halfway through a saturated run.
  std::vector<Device> devices = cluster_.devices();
  for (auto& d : devices) d.capacity *= 0.25;
  const Cluster degraded(devices);

  sim::ClusterSimulator simulator(graph_, cluster_, network_);
  simulator.set_plan(plan);
  simulator.add_arrivals(sim::back_to_back_arrivals(40));
  const auto healthy_cost =
      partition::plan_cost(graph_, cluster_, network_, plan);
  bool reacted = false;
  simulator.set_controller(
      10.0 * healthy_cost.period,
      [&](sim::ClusterSimulator& s, Seconds, int) {
        if (reacted) return;
        reacted = true;
        s.recluster(degraded, network_, plan);
      });
  const auto result = simulator.run();
  ASSERT_TRUE(reacted);
  ASSERT_EQ(result.tasks.size(), 40u);
  EXPECT_EQ(result.plan_switches, 1);
  // Early tasks complete at the healthy cadence; late tasks are much
  // slower than early ones (capacity fell 4x -> compute stretches 4x).
  const Seconds early_gap =
      result.tasks[8].completion - result.tasks[7].completion;
  const Seconds late_gap =
      result.tasks[39].completion - result.tasks[38].completion;
  EXPECT_GT(late_gap, early_gap * 2.0);
}

TEST_F(SimFixture, TasksCompleteInOrderWithinScheme) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  Rng rng(5);
  const auto arrivals = sim::poisson_arrivals(rng, 0.1, 100.0);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  for (std::size_t i = 1; i < result.tasks.size(); ++i) {
    EXPECT_LE(result.tasks[i - 1].completion, result.tasks[i].completion);
  }
}

TEST_F(SimFixture, TraceCsvRoundTrip) {
  const auto plan = partition::pico_plan(graph_, cluster_, network_);
  Rng rng(3);
  const auto arrivals = sim::poisson_arrivals(rng, 0.2, 50.0);
  const auto result =
      sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);

  std::ostringstream tasks;
  sim::write_task_csv(tasks, result);
  const std::string task_csv = tasks.str();
  // Header + one line per task.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(task_csv.begin(), task_csv.end(), '\n')),
            result.tasks.size() + 1);
  EXPECT_NE(task_csv.find("id,arrival,start,completion"), std::string::npos);
  EXPECT_NE(task_csv.find("PICO"), std::string::npos);

  std::ostringstream devices;
  sim::write_device_csv(devices, result);
  const std::string device_csv = devices.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(device_csv.begin(), device_csv.end(), '\n')),
            result.devices.size() + 1);

  const std::string path = ::testing::TempDir() + "/pico_trace_test.csv";
  sim::write_task_csv_file(path, result);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header,
            "id,arrival,start,completion,waiting,queue_wait,latency,scheme");
  std::remove(path.c_str());
}

TEST(TraceCsv, RejectsUnwritablePath) {
  sim::SimResult empty;
  EXPECT_THROW(sim::write_task_csv_file("/nonexistent/dir/trace.csv", empty),
               Error);
}

}  // namespace
}  // namespace pico
