// Intra-block branch parallelism (the paper's stated future work).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "partition/branches.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/units.hpp"
#include "runtime/pipeline.hpp"

namespace pico {
namespace {

using partition::Branch;
using partition::block_branches;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

/// A hand-built two-branch block: input -> {conv3x3, conv1x1} -> concat.
nn::Graph two_branch_block() {
  nn::Graph g;
  const int in = g.add_input({4, 16, 16});
  const int stem = g.add_conv(in, 8, 3, 1, 1);
  const int a = g.add_conv(stem, 6, 3, 1, 1);
  int b = g.add_conv(stem, 4, 1, 1, 0);
  b = g.add_conv(b, 4, 3, 1, 1);
  g.add_concat({a, b});
  g.finalize();
  return g;
}

TEST(Branches, DetectsTwoBranchBlock) {
  const nn::Graph g = two_branch_block();
  const auto units = partition::partition_units(g);
  ASSERT_EQ(units.size(), 2u);  // stem conv + the block
  const auto branches = block_branches(g, units[1]);
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_EQ(branches[0], (Branch{2, 2, 0, 6}));
  EXPECT_EQ(branches[1], (Branch{3, 4, 6, 4}));
}

TEST(Branches, InceptionBlocksDecompose) {
  const nn::Graph g = models::inception({.input_size = 96});
  const auto units = partition::partition_units(g);
  int decomposable = 0;
  for (const auto& unit : units) {
    const auto branches = block_branches(g, unit);
    if (!branches.empty()) {
      ++decomposable;
      // Channel offsets stack to the concat's channel count.
      int channels = 0;
      for (const Branch& b : branches) {
        EXPECT_EQ(b.channel_offset, channels);
        channels += b.channels;
      }
      EXPECT_EQ(channels, g.node(unit.last).out_shape.channels);
      EXPECT_GE(branches.size(), 3u);
    }
  }
  EXPECT_EQ(decomposable, 7);  // 5 inception + 2 reduction blocks
}

TEST(Branches, ResidualBlocksDoNotDecompose) {
  const nn::Graph g = models::resnet34({.input_size = 64});
  const auto units = partition::partition_units(g);
  for (const auto& unit : units) {
    EXPECT_TRUE(block_branches(g, unit).empty());
  }
}

TEST(Branches, SingleNodeUnitsDoNotDecompose) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const auto units = partition::partition_units(g);
  for (const auto& unit : units) {
    EXPECT_TRUE(block_branches(g, unit).empty());
  }
}

TEST(Branches, FlopsSumToBlockInterior) {
  const nn::Graph g = two_branch_block();
  const auto units = partition::partition_units(g);
  const auto branches = block_branches(g, units[1]);
  Flops total = 0.0;
  for (const Branch& b : branches) total += partition::branch_flops(g, b);
  EXPECT_DOUBLE_EQ(total,
                   cost::segment_flops_full(g, units[1].first,
                                            units[1].last));
}

TEST(Branches, InputRegionCoversHalo) {
  const nn::Graph g = two_branch_block();
  const auto units = partition::partition_units(g);
  const auto branches = block_branches(g, units[1]);
  // Branch 0 is a 3x3 conv: needs the whole map for its full output.
  EXPECT_EQ(partition::branch_input_region(g, branches[0]),
            Region::full(16, 16));
  // Branch 1 starts with 1x1 then 3x3: also the whole map via the 3x3.
  EXPECT_EQ(partition::branch_input_region(g, branches[1]),
            Region::full(16, 16));
}

TEST(Branches, LptAssignmentCoversAll) {
  const nn::Graph g = models::inception({.input_size = 96});
  const auto units = partition::partition_units(g);
  const auto branches = block_branches(g, units[7]);  // first inception block
  ASSERT_FALSE(branches.empty());
  const std::vector<double> capacities{2.0, 1.0};
  const auto assignment =
      partition::assign_branches(g, branches, capacities);
  ASSERT_EQ(assignment.size(), 2u);
  std::vector<bool> seen(branches.size(), false);
  for (const auto& device : assignment) {
    for (const int b : device) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(b)]);
      seen[static_cast<std::size_t>(b)] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  // LPT balance bound: makespan <= 2x a lower bound on the optimum
  // (total work / total capacity, or the heaviest branch on the fastest
  // device).
  Flops fast = 0.0, slow = 0.0, heaviest = 0.0, total = 0.0;
  for (const Branch& b : branches) {
    const Flops f = partition::branch_flops(g, b);
    heaviest = std::max(heaviest, f);
    total += f;
  }
  for (const int b : assignment[0]) {
    fast += partition::branch_flops(g, branches[static_cast<std::size_t>(b)]);
  }
  for (const int b : assignment[1]) {
    slow += partition::branch_flops(g, branches[static_cast<std::size_t>(b)]);
  }
  const double makespan = std::max(fast / 2.0, slow / 1.0);
  const double lower_bound = std::max(total / 3.0, heaviest / 2.0);
  EXPECT_LE(makespan, 2.0 * lower_bound + 1e-9);
  EXPECT_GT(fast, 0.0);
}

TEST(Branches, BranchStageHasZeroRedundancy) {
  nn::Graph g = two_branch_block();
  const Cluster c = Cluster::homogeneous(3, 1e9);
  const auto units = partition::partition_units(g);
  const auto branches = block_branches(g, units[1]);

  partition::Plan plan;
  plan.scheme = "test";
  plan.pipelined = true;
  plan.stages.push_back(partition::make_stage(g, c, 1, 1, {0}));
  partition::Stage branch_stage;
  branch_stage.first = units[1].first;
  branch_stage.last = units[1].last;
  branch_stage.kind = partition::StageKind::Branch;
  branch_stage.assignments.push_back({1, {}, {0}});
  branch_stage.assignments.push_back({2, {}, {1}});
  plan.stages.push_back(branch_stage);
  partition::validate_plan(g, c, plan);
  EXPECT_DOUBLE_EQ(partition::plan_redundancy_ratio(g, plan), 0.0);

  const auto cost = partition::plan_cost(g, c, test_network(), plan);
  EXPECT_GT(cost.stages[1].compute, 0.0);
  EXPECT_GT(cost.stages[1].comm, 0.0);
}

TEST(Branches, ValidationRejectsIncompleteBranchCover) {
  nn::Graph g = two_branch_block();
  const Cluster c = Cluster::homogeneous(3, 1e9);
  partition::Plan plan;
  plan.pipelined = true;
  plan.scheme = "bad";
  plan.stages.push_back(partition::make_stage(g, c, 1, 1, {0}));
  partition::Stage branch_stage;
  branch_stage.first = 2;
  branch_stage.last = 5;
  branch_stage.kind = partition::StageKind::Branch;
  branch_stage.assignments.push_back({1, {}, {0}});  // branch 1 missing
  plan.stages.push_back(branch_stage);
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(Branches, RuntimeBitExactWithBranchStage) {
  nn::Graph g = two_branch_block();
  Rng rng(41);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(g, input);

  const Cluster c = Cluster::homogeneous(3, 1e9);
  partition::Plan plan;
  plan.scheme = "branch";
  plan.pipelined = true;
  plan.stages.push_back(partition::make_stage(g, c, 1, 1, {0}));
  partition::Stage branch_stage;
  branch_stage.first = 2;
  branch_stage.last = 5;
  branch_stage.kind = partition::StageKind::Branch;
  branch_stage.assignments.push_back({1, {}, {0}});
  branch_stage.assignments.push_back({2, {}, {1}});
  plan.stages.push_back(branch_stage);
  partition::validate_plan(g, c, plan);

  runtime::PipelineRuntime rt(g, plan);
  for (int i = 0; i < 3; ++i) {
    const Tensor out = rt.infer(input);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(out, reference), 0.0f);
  }
}

TEST(Branches, PlannerUsesBranchStagesWhenEnabled) {
  const nn::Graph g = models::inception({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const auto spatial = partition::pico_plan(g, c, net);
  const auto with_branches = partition::pico_plan(
      g, c, net, {.enable_branch_parallel = true});
  partition::validate_plan(g, c, with_branches);

  const Seconds spatial_period =
      partition::plan_cost(g, c, net, spatial).period;
  const Seconds branch_period =
      partition::plan_cost(g, c, net, with_branches).period;
  // The branch option can only help (the DP takes the min per stage).
  EXPECT_LE(branch_period, spatial_period + 1e-9);
}

TEST(Branches, DeepBranchRegimeTriggersBranchStages) {
  // 3-conv-deep branches at 7x7 with a fast network: spatial halos cover
  // nearly the whole map, so whole-branch assignment must win and the DP
  // must actually choose it.
  nn::Graph g;
  int x = g.add_input({64, 7, 7});
  for (int block = 0; block < 4; ++block) {
    std::vector<int> outs;
    for (int b = 0; b < 4; ++b) {
      int y = x;
      for (int d = 0; d < 3; ++d) y = g.add_conv(y, 16, 3, 1, 1);
      outs.push_back(y);
    }
    x = g.add_concat(outs);
  }
  g.finalize();

  const Cluster c = Cluster::paper_homogeneous(8, 1.2);
  NetworkModel net;
  net.bandwidth = 1000e6 / 8.0;
  net.per_message_overhead = 1e-4;

  const auto spatial = partition::pico_plan(g, c, net);
  const auto branchy =
      partition::pico_plan(g, c, net, {.enable_branch_parallel = true});
  partition::validate_plan(g, c, branchy);
  int branch_stages = 0;
  for (const auto& stage : branchy.stages) {
    branch_stages += stage.kind == partition::StageKind::Branch;
  }
  EXPECT_GT(branch_stages, 0);
  EXPECT_LT(partition::plan_cost(g, c, net, branchy).period,
            partition::plan_cost(g, c, net, spatial).period);

  // And the chosen plan still computes the exact result.
  Rng rng(47);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  runtime::PipelineRuntime rt(g, branchy);
  EXPECT_FLOAT_EQ(
      Tensor::max_abs_diff(rt.infer(input), nn::execute(g, input)), 0.0f);
}

TEST(Branches, PlannerEndToEndBitExactOnInception) {
  nn::Graph g = models::inception({.input_size = 96});
  Rng rng(43);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(g, input);

  const Cluster c = Cluster::paper_heterogeneous();
  const auto plan = partition::pico_plan(
      g, c, test_network(), {.enable_branch_parallel = true});
  runtime::PipelineRuntime rt(g, plan);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
}

}  // namespace
}  // namespace pico
