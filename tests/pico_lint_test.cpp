// pico_lint engine tests: every check fires on its violating fixture and
// stays quiet on the compliant twin; suppressions and the baseline workflow
// behave as documented (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "checks.hpp"
#include "lexer.hpp"

namespace pico::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(PICO_REPO_DIR) + "/tests/pico_lint_fixtures/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  LexedFile file = lex_file(fixture_path(name));
  CheckOptions options;
  options.scope_all = true;  // fixtures live outside the src/ scoping rules
  collect_status_decls(file, options.status_fns);
  return run_checks(file, name, options);
}

std::vector<Finding> lint_snippet(const std::string& content) {
  LexedFile file = lex("snippet.cpp", content);
  CheckOptions options;
  options.scope_all = true;
  collect_status_decls(file, options.status_fns);
  return run_checks(file, "snippet.cpp", options);
}

std::set<std::string> check_ids(const std::vector<Finding>& findings) {
  std::set<std::string> ids;
  for (const Finding& f : findings) ids.insert(f.check);
  return ids;
}

// signal-unsafe is project-level: build the call graph over the input and
// run the closure walk directly (the CLI wires this up the same way).
std::vector<Finding> lint_signal_files(std::vector<LexedFile> files,
                                       std::vector<std::string> relpaths,
                                       std::string* report = nullptr) {
  const CallGraph graph = build_callgraph(files, relpaths);
  std::vector<Finding> out;
  check_signal_safety(graph, files, out, report);
  return out;
}

std::vector<Finding> lint_signal_fixture(const std::string& name,
                                         std::string* report = nullptr) {
  std::vector<LexedFile> files;
  files.push_back(lex_file(fixture_path(name)));
  return lint_signal_files(std::move(files), {name}, report);
}

std::vector<Finding> lint_signal_snippet(const std::string& content) {
  std::vector<LexedFile> files;
  files.push_back(lex("snippet.cpp", content));
  return lint_signal_files(std::move(files), {"snippet.cpp"});
}

// --- per-check: violation fires, compliant twin is quiet -------------------

TEST(PicoLint, NarrowMulFiresOnViolations) {
  const auto findings = lint_fixture("narrow_mul_bad.cpp");
  ASSERT_EQ(findings.size(), 3u) << "wide-init, resize, pointer-add";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"narrow-mul"});
}

TEST(PicoLint, NarrowMulQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("narrow_mul_ok.cpp").empty());
}

TEST(PicoLint, UncheckedStatusFiresOnViolations) {
  const auto findings = lint_fixture("unchecked_status_bad.cpp");
  ASSERT_EQ(findings.size(), 3u) << "::shutdown, flush_metrics, ::close";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"unchecked-status"});
}

TEST(PicoLint, UncheckedStatusQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("unchecked_status_ok.cpp").empty());
}

TEST(PicoLint, BlockingUnderLockFiresOnViolations) {
  const auto findings = lint_fixture("blocking_under_lock_bad.cpp");
  ASSERT_EQ(findings.size(), 3u) << "send, recv, join";
  EXPECT_EQ(check_ids(findings),
            std::set<std::string>{"blocking-under-lock"});
}

TEST(PicoLint, BlockingUnderLockQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("blocking_under_lock_ok.cpp").empty());
}

TEST(PicoLint, UnguardedMemberFiresOnViolations) {
  const auto findings = lint_fixture("unguarded_member_bad.hpp");
  ASSERT_EQ(findings.size(), 2u) << "pending_count_, last_sequence_";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"unguarded-member"});
}

TEST(PicoLint, UnguardedMemberQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("unguarded_member_ok.hpp").empty());
}

TEST(PicoLint, WireTaintFiresOnViolations) {
  const auto findings = lint_fixture("wire_taint_bad.cpp");
  ASSERT_EQ(findings.size(), 2u) << "reserve(count), memcpy bytes";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"wire-taint"});
}

TEST(PicoLint, WireTaintQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("wire_taint_ok.cpp").empty());
}

TEST(PicoLint, EscapeToThreadFiresOnViolations) {
  const auto findings = lint_fixture("escape_to_thread_bad.cpp");
  ASSERT_EQ(findings.size(), 3u) << "&simulator, this-detach, [&]-submit";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"escape-to-thread"});
}

TEST(PicoLint, EscapeToThreadQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("escape_to_thread_ok.cpp").empty());
}

TEST(PicoLint, UseAfterMoveFiresOnViolations) {
  const auto findings = lint_fixture("use_after_move_bad.cpp");
  ASSERT_EQ(findings.size(), 2u) << "reuse_after_handoff, double_handoff";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"use-after-move"});
}

TEST(PicoLint, UseAfterMoveQuietOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("use_after_move_ok.cpp").empty());
}

// --- signal-unsafe (project-level, call-graph driven) ----------------------

TEST(PicoLint, SignalUnsafeFiresOnViolations) {
  std::string report;
  const auto findings = lint_signal_fixture("signal_unsafe_bad.cpp", &report);
  ASSERT_EQ(findings.size(), 3u) << "malloc, std::string local, throw";
  EXPECT_EQ(check_ids(findings), std::set<std::string>{"signal-unsafe"});

  // The diagnostic must carry the full offending chain from the root, not
  // just the leaf site — that is what makes the finding actionable.
  bool chain_seen = false;
  for (const Finding& f : findings) {
    if (f.message.find(
            "crash_handler -> dump_state -> render_events -> format_event") !=
        std::string::npos) {
      chain_seen = true;
    }
  }
  EXPECT_TRUE(chain_seen) << "no finding carried the malloc call chain";
  EXPECT_NE(report.find("verdict: UNSAFE"), std::string::npos);
}

TEST(PicoLint, SignalUnsafeProvesCompliantTwinClean) {
  std::string report;
  const auto findings = lint_signal_fixture("signal_unsafe_ok.cpp", &report);
  EXPECT_TRUE(findings.empty());
  EXPECT_NE(report.find("PROOF-OK"), std::string::npos);
  // The whitelisted syscall leaves must be reported, so a reviewer can audit
  // exactly which externals the proof leans on.
  EXPECT_NE(report.find("openat"), std::string::npos);
  EXPECT_NE(report.find("write"), std::string::npos);
}

TEST(PicoLint, SignalUnsafeHonorsAllowSuppression) {
  const std::string bare =
      "// pico-lint: signal-root\n"
      "void handler(int sig) { helper(); }\n"
      "void helper() {\n"
      "  char* p = new char[64];\n"
      "  p[0] = 0;\n"
      "}\n";
  ASSERT_EQ(lint_signal_snippet(bare).size(), 1u);

  const std::string allowed =
      "// pico-lint: signal-root\n"
      "void handler(int sig) { helper(); }\n"
      "void helper() {\n"
      "  // pico-lint: allow(signal-unsafe): bounded one-shot arena\n"
      "  char* p = new char[64];\n"
      "  p[0] = 0;\n"
      "}\n";
  EXPECT_TRUE(lint_signal_snippet(allowed).empty());
}

// --- suppressions ----------------------------------------------------------

TEST(PicoLint, SameLineSuppressionSilencesFinding) {
  const std::string bare =
      "#include <vector>\n"
      "void f(std::vector<int>& v, int a, int b) {\n"
      "  v.resize(a * b);\n"
      "}\n";
  ASSERT_EQ(lint_snippet(bare).size(), 1u);

  const std::string allowed =
      "#include <vector>\n"
      "void f(std::vector<int>& v, int a, int b) {\n"
      "  v.resize(a * b);  // pico-lint: allow(narrow-mul): caller bounds\n"
      "}\n";
  EXPECT_TRUE(lint_snippet(allowed).empty());
}

TEST(PicoLint, PrecedingCommentSuppressionSilencesFinding) {
  const std::string allowed =
      "#include <vector>\n"
      "void f(std::vector<int>& v, int a, int b) {\n"
      "  // pico-lint: allow(narrow-mul): extents are single-digit here\n"
      "  v.resize(a * b);\n"
      "}\n";
  EXPECT_TRUE(lint_snippet(allowed).empty());
}

TEST(PicoLint, FileWideSuppressionSilencesWholeFile) {
  const std::string allowed =
      "// pico-lint: allow-file(narrow-mul)\n"
      "#include <vector>\n"
      "void f(std::vector<int>& v, int a, int b) {\n"
      "  v.resize(a * b);\n"
      "}\n";
  EXPECT_TRUE(lint_snippet(allowed).empty());
}

TEST(PicoLint, SuppressionForOtherCheckDoesNotSilence) {
  const std::string wrong_id =
      "#include <vector>\n"
      "void f(std::vector<int>& v, int a, int b) {\n"
      "  v.resize(a * b);  // pico-lint: allow(wire-taint): wrong id\n"
      "}\n";
  EXPECT_EQ(lint_snippet(wrong_id).size(), 1u);
}

// --- baseline workflow -----------------------------------------------------

TEST(PicoLint, BaselineSuppressesKnownFindings) {
  const auto findings = lint_fixture("narrow_mul_bad.cpp");
  ASSERT_FALSE(findings.empty());

  const std::string path =
      ::testing::TempDir() + "pico_lint_test_baseline.txt";
  {
    std::ofstream out(path);
    out << render_baseline(findings);
  }
  bool ok = false;
  const std::set<std::string> baseline = load_baseline(path, ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(baseline.size(), findings.size());
  for (const Finding& f : findings) {
    EXPECT_TRUE(baseline.count(fingerprint(f)))
        << "finding at line " << f.line << " not suppressed by baseline";
  }
  std::remove(path.c_str());
}

TEST(PicoLint, FingerprintIsLineNumberIndependent) {
  Finding a;
  a.check = "narrow-mul";
  a.relpath = "src/nn/kernels.cpp";
  a.line = 42;
  a.excerpt = "out.resize(rows * cols);";
  Finding b = a;
  b.line = 977;  // unrelated edits shifted the file
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.excerpt = "out.resize(static_cast<std::size_t>(rows) * cols);";
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

// --- scoping ----------------------------------------------------------------

TEST(PicoLint, ScopingFollowsBugClassHabitats) {
  EXPECT_TRUE(check_in_scope("narrow-mul", "src/nn/kernels.cpp"));
  EXPECT_TRUE(check_in_scope("narrow-mul", "src/partition/plan.cpp"));
  EXPECT_FALSE(check_in_scope("narrow-mul", "src/runtime/pipeline.cpp"));
  EXPECT_TRUE(check_in_scope("unguarded-member", "src/runtime/channel.hpp"));
  EXPECT_FALSE(check_in_scope("unguarded-member", "src/runtime/worker.cpp"));
  EXPECT_TRUE(check_in_scope("unguarded-member",
                             "src/common/thread_pool.hpp"));
  EXPECT_TRUE(check_in_scope("wire-taint", "src/runtime/message.cpp"));
  EXPECT_TRUE(check_in_scope("wire-taint", "src/obs/remote.cpp"));
  EXPECT_FALSE(check_in_scope("wire-taint", "src/nn/kernels.cpp"));
  EXPECT_TRUE(check_in_scope("unchecked-status", "src/runtime/transport.cpp"));
  EXPECT_FALSE(check_in_scope("unchecked-status", "tools/pico_audit.cpp"));
}

// --- CLI smoke ---------------------------------------------------------------

TEST(PicoLint, CliListChecksSucceeds) {
  const std::string cmd =
      std::string(PICO_LINT_BIN) + " --list-checks > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
}

TEST(PicoLint, CliExitsTwoOnFreshFindings) {
  const std::string cmd = std::string(PICO_LINT_BIN) + " --src-root " +
                          PICO_REPO_DIR + " --scope-all " +
                          fixture_path("narrow_mul_bad.cpp") + " > /dev/null";
  const int status = std::system(cmd.c_str());
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

TEST(PicoLint, CliCleanTreeAgainstCommittedBaseline) {
  const std::string cmd = std::string(PICO_LINT_BIN) + " --src-root " +
                          PICO_REPO_DIR + " --baseline " + PICO_REPO_DIR +
                          "/tools/pico_lint/baseline.txt > /dev/null";
  const int status = std::system(cmd.c_str());
  EXPECT_EQ(WEXITSTATUS(status), 0) << "src/ has findings not in baseline";
}

TEST(PicoLint, CliCallGraphReportProvesPostmortemPath) {
  const std::string report_path =
      ::testing::TempDir() + "pico_lint_callgraph_report.txt";
  const std::string cmd = std::string(PICO_LINT_BIN) + " --src-root " +
                          PICO_REPO_DIR + " --baseline " + PICO_REPO_DIR +
                          "/tools/pico_lint/baseline.txt --callgraph-report " +
                          report_path + " > /dev/null";
  const int status = std::system(cmd.c_str());
  ASSERT_EQ(WEXITSTATUS(status), 0);

  std::ifstream in(report_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string report = buffer.str();
  std::remove(report_path.c_str());

  // The committed tree must carry a machine-checked proof that the crash
  // dump path is async-signal-safe: all three roots present, clean verdict.
  EXPECT_NE(report.find("postmortem_signal_handler"), std::string::npos);
  EXPECT_NE(report.find("postmortem_terminate_handler"), std::string::npos);
  EXPECT_NE(report.find("check_failed_flight_hook"), std::string::npos);
  EXPECT_NE(report.find("verdict: PROOF-OK"), std::string::npos)
      << "signal-safety proof regressed:\n"
      << report;
}

}  // namespace
}  // namespace pico::lint
