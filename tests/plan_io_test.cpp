#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_io.hpp"
#include "partition/schemes.hpp"

namespace pico {
namespace {

using partition::Plan;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

void expect_plans_equal(const Plan& a, const Plan& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.pipelined, b.pipelined);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].first, b.stages[s].first);
    EXPECT_EQ(a.stages[s].last, b.stages[s].last);
    EXPECT_EQ(a.stages[s].kind, b.stages[s].kind);
    ASSERT_EQ(a.stages[s].assignments.size(),
              b.stages[s].assignments.size());
    for (std::size_t d = 0; d < a.stages[s].assignments.size(); ++d) {
      EXPECT_EQ(a.stages[s].assignments[d].device,
                b.stages[s].assignments[d].device);
      EXPECT_EQ(a.stages[s].assignments[d].out_region,
                b.stages[s].assignments[d].out_region);
      EXPECT_EQ(a.stages[s].assignments[d].branches,
                b.stages[s].assignments[d].branches);
    }
  }
}

TEST(PlanIo, RoundTripEverySchemeAndValidateAgainstGraph) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  for (const Plan& plan :
       {partition::lw_plan(g, c), partition::efl_plan(g, c),
        partition::ofl_plan(g, c, net), partition::pico_plan(g, c, net)}) {
    const Plan restored = partition::parse_plan(
        partition::serialize_plan(plan));
    expect_plans_equal(plan, restored);
    partition::validate_plan(g, c, restored);
  }
}

TEST(PlanIo, RoundTripBranchStages) {
  // Deep-branch regime so the planner emits a branch stage (see
  // branches_test).
  nn::Graph g;
  int x = g.add_input({64, 7, 7});
  for (int block = 0; block < 2; ++block) {
    std::vector<int> outs;
    for (int b = 0; b < 4; ++b) {
      int y = x;
      for (int d = 0; d < 3; ++d) y = g.add_conv(y, 16, 3, 1, 1);
      outs.push_back(y);
    }
    x = g.add_concat(outs);
  }
  g.finalize();
  const Cluster c = Cluster::paper_homogeneous(8, 1.2);
  NetworkModel net;
  net.bandwidth = 1000e6 / 8.0;
  net.per_message_overhead = 1e-4;
  const Plan plan =
      partition::pico_plan(g, c, net, {.enable_branch_parallel = true});
  int branch_stages = 0;
  for (const auto& stage : plan.stages) {
    branch_stages += stage.kind == partition::StageKind::Branch;
  }
  ASSERT_GT(branch_stages, 0);

  const Plan restored =
      partition::parse_plan(partition::serialize_plan(plan));
  expect_plans_equal(plan, restored);
  partition::validate_plan(g, c, restored);
}

TEST(PlanIo, RoundTripGridPlans) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(8, 1.0);
  const partition::SchemeOptions grid{
      .latency_limit = std::numeric_limits<double>::infinity(),
      .efl_fused_units = 0,
      .partition_mode = partition::PartitionMode::Grid,
      .enable_branch_parallel = false};
  const Plan plan = partition::efl_plan(g, c, grid);
  const Plan restored =
      partition::parse_plan(partition::serialize_plan(plan));
  expect_plans_equal(plan, restored);
  partition::validate_plan(g, c, restored);
}

TEST(PlanIo, FileRoundTrip) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::paper_heterogeneous();
  const Plan plan = partition::pico_plan(g, c, test_network());
  const std::string path = ::testing::TempDir() + "/pico_plan_test.plan";
  partition::save_plan(plan, path);
  const Plan restored = partition::load_plan(path);
  expect_plans_equal(plan, restored);
  std::remove(path.c_str());
}

TEST(PlanIo, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text, const char* needle) {
    try {
      partition::parse_plan(text);
      FAIL() << "expected parse failure";
    } catch (const Error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };
  expect_error("nonsense\n", "expected header");
  expect_error("pico-plan v1\nscheme X\npipelined 2\n", "pipelined must be");
  expect_error("pico-plan v1\nscheme X\npipelined 1\nwarp 1\n",
               "unknown keyword");
  expect_error("pico-plan v1\nscheme X\npipelined 1\ndevice 0 region 0 1 0 1\n",
               "device before any stage");
  expect_error(
      "pico-plan v1\nscheme X\npipelined 1\nstage 1 2 spatial\n"
      "device 0 branches 0\nend\n",
      "branch slice in a spatial stage");
  expect_error("pico-plan v1\nscheme X\npipelined 1\nstage 1 2 spatial\n",
               "missing 'end'");
  expect_error("pico-plan v1\npipelined 1\nstage 1 2 spatial\nend\n",
               "missing scheme");
  expect_error("pico-plan v1\nscheme X\npipelined 1\nstage 1 2 warp\nend\n",
               "unknown stage kind");
}

TEST(PlanIo, LoadMissingFileThrows) {
  EXPECT_THROW(partition::load_plan("/nonexistent/plan.txt"), Error);
}

}  // namespace
}  // namespace pico
