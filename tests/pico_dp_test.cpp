#include <gtest/gtest.h>

#include "common/error.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "partition/greedy_adapt.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"

namespace pico {
namespace {

using partition::Plan;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(PicoDp, ProducesValidPipelinedPlan) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const Plan plan = partition::pico_plan(g, c, test_network());
  partition::validate_plan(g, c, plan);
  EXPECT_TRUE(plan.pipelined);
  EXPECT_GE(plan.stage_count(), 2);  // pipelining actually happens
}

TEST(PicoDp, PeriodBeatsOneStageSchemes) {
  // PICO's objective is the period; it must be at least as good as every
  // one-stage scheme's (whose period equals its latency).
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Seconds pico =
      partition::plan_cost(g, c, net, partition::pico_plan(g, c, net)).period;
  const Seconds ofl =
      partition::plan_cost(g, c, net, partition::ofl_plan(g, c, net)).period;
  const Seconds efl =
      partition::plan_cost(g, c, net, partition::efl_plan(g, c)).period;
  const Seconds lw =
      partition::plan_cost(g, c, net, partition::lw_plan(g, c)).period;
  EXPECT_LT(pico, ofl);
  EXPECT_LT(pico, efl);
  EXPECT_LT(pico, lw);
}

TEST(PicoDp, HomogeneousDpMatchesBfsOptimum) {
  // On a homogeneous cluster Algorithm 1 is exact: its period must equal the
  // exhaustive-search optimum (same equal-split stage costs).
  const NetworkModel net = test_network();
  for (const int devices : {2, 3, 4}) {
    const nn::Graph g = models::synthetic_chain(6, 32, 8);
    const Cluster c = Cluster::paper_homogeneous(devices, 1.0);
    const Plan dp = partition::pico_homogeneous_plan(g, c, net);
    const partition::BfsResult bfs =
        partition::bfs_optimal_plan(g, c, net, {});
    ASSERT_FALSE(bfs.timed_out);
    const Seconds dp_period = partition::plan_cost(g, c, net, dp).period;
    // The splitters agree on homogeneous clusters (equal == proportional),
    // so periods must match to rounding.
    EXPECT_NEAR(dp_period, bfs.period, bfs.period * 0.02)
        << "devices=" << devices;
    EXPECT_LE(bfs.period, dp_period + 1e-12);
  }
}

TEST(PicoDp, LatencyLimitRespected) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan unbounded = partition::pico_homogeneous_plan(g, c, net);
  const auto unbounded_cost =
      partition::plan_cost(g, c.homogenized(), net, unbounded);

  // The single-stage pipeline is always feasible, so any limit at or above
  // its cost must be honored.  Find that cost via a one-device-per-... no:
  // evaluate the best single stage over all devices directly.
  const partition::Stage single = partition::make_stage(
      g, c.homogenized(), 1, g.size() - 1,
      [&] {
        std::vector<DeviceId> ids;
        for (int i = 0; i < c.size(); ++i) ids.push_back(i);
        return ids;
      }());
  const Seconds single_cost =
      partition::stage_cost(g, c.homogenized(), net, single).total();

  for (const double factor : {1.0, 0.9, 0.5}) {
    const Seconds limit =
        std::max(single_cost, unbounded_cost.latency * factor);
    const Plan bounded =
        partition::pico_homogeneous_plan(g, c, net, {.latency_limit = limit});
    const auto bounded_cost =
        partition::plan_cost(g, c.homogenized(), net, bounded);
    EXPECT_LE(bounded_cost.latency, limit * (1.0 + 1e-9));
    // Tightening the latency bound can only hurt (or not change) the period.
    EXPECT_GE(bounded_cost.period, unbounded_cost.period - 1e-9);
  }
}

TEST(PicoDp, InfeasibleLatencyLimitThrows) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_homogeneous(4, 1.0);
  EXPECT_THROW(partition::pico_homogeneous_plan(g, c, test_network(),
                                                {.latency_limit = 1e-6}),
               InvariantError);
}

TEST(PicoDp, WorksOnGraphModels) {
  const NetworkModel net = test_network();
  for (const auto model :
       {models::ModelId::Resnet34, models::ModelId::Inception}) {
    const int size = model == models::ModelId::Inception ? 96 : 64;
    const nn::Graph g = models::build(model, {.input_size = size});
    const Cluster c = Cluster::paper_heterogeneous();
    const Plan plan = partition::pico_plan(g, c, net);
    partition::validate_plan(g, c, plan);
    EXPECT_GE(plan.stage_count(), 2) << models::model_name(model);
  }
}

TEST(GreedyAdapt, KeepsSegmentsAndSlotCounts) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan homogeneous = partition::pico_homogeneous_plan(g, c, net);
  const Plan adapted = partition::greedy_adapt(g, c, homogeneous);
  ASSERT_EQ(adapted.stage_count(), homogeneous.stage_count());
  for (int s = 0; s < adapted.stage_count(); ++s) {
    EXPECT_EQ(adapted.stages[s].first, homogeneous.stages[s].first);
    EXPECT_EQ(adapted.stages[s].last, homogeneous.stages[s].last);
    EXPECT_EQ(adapted.stages[s].device_count(),
              homogeneous.stages[s].device_count());
  }
  partition::validate_plan(g, c, adapted);
}

TEST(GreedyAdapt, FastestDeviceGoesToHottestStage) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::raspberry_pi({0.6, 0.6, 1.5, 0.6});
  const NetworkModel net = test_network();
  const Plan homogeneous = partition::pico_homogeneous_plan(g, c, net);
  const Plan adapted = partition::greedy_adapt(g, c, homogeneous);
  // Find the stage with the highest per-slot Θ' and confirm it got device 2.
  double best_avg = -1.0;
  int hottest = -1;
  for (int s = 0; s < homogeneous.stage_count(); ++s) {
    const auto& stage = homogeneous.stages[s];
    double theta = 0.0;
    for (const auto& slice : stage.assignments) {
      theta += cost::segment_flops(g, stage.first, stage.last,
                                   slice.out_region);
    }
    const double avg = theta / stage.device_count();
    if (avg > best_avg) {
      best_avg = avg;
      hottest = s;
    }
  }
  ASSERT_GE(hottest, 0);
  bool found = false;
  for (const auto& slice : adapted.stages[static_cast<std::size_t>(hottest)]
                               .assignments) {
    found |= slice.device == 2;
  }
  EXPECT_TRUE(found);
}

TEST(GreedyAdapt, ProportionalSplitBalancesFinishTimes) {
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Plan adapted = partition::pico_plan(g, c, net);
  // Within each multi-device stage, per-device compute times should be
  // within ~2.5x of each other (perfect balance is impossible with integer
  // rows, but capacity-proportional splits keep the spread small).
  for (const auto& stage : adapted.stages) {
    Seconds lo = 1e18, hi = 0.0;
    int active = 0;
    for (const auto& slice : stage.assignments) {
      if (slice.out_region.empty()) continue;
      const Seconds t =
          partition::device_compute_time(g, c, stage, slice);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
      ++active;
    }
    if (active >= 2) {
      EXPECT_LT(hi / lo, 2.5) << "stage [" << stage.first << ","
                              << stage.last << "]";
    }
  }
}

TEST(Bfs, RoutesAroundDegradedLink) {
  // Degrade the fastest device's link; the bandwidth-aware optimum must not
  // be worse than with that device heavily loaded, and must beat
  // bandwidth-blind PICO when the degradation is severe.
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::raspberry_pi({1.2, 0.8, 0.6, 0.6});
  NetworkModel net = test_network();
  net.device_bandwidth_scale = {0.05, 1.0, 1.0, 1.0};

  partition::BfsOptions options;
  options.memoize = true;
  const auto bfs = partition::bfs_optimal_plan(g, c, net, options);
  ASSERT_FALSE(bfs.timed_out);
  const Plan pico = partition::pico_plan(g, c, net);
  const Seconds pico_period = partition::plan_cost(g, c, net, pico).period;
  EXPECT_LT(bfs.period, pico_period);
}

TEST(PicoDp, UnaffectedByLinkScalingOfUnknownDevices) {
  // Algorithm 1 plans with the uniform network; scaling must not change the
  // homogeneous plan (only the final heterogeneous evaluation).
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  NetworkModel scaled = test_network();
  scaled.device_bandwidth_scale = {0.3, 1, 1, 1, 1, 1, 1, 1};
  const Plan plain = partition::pico_homogeneous_plan(g, c, test_network());
  const Plan with_scaling = partition::pico_homogeneous_plan(g, c, scaled);
  ASSERT_EQ(plain.stage_count(), with_scaling.stage_count());
  for (int s = 0; s < plain.stage_count(); ++s) {
    EXPECT_EQ(plain.stages[s].first, with_scaling.stages[s].first);
    EXPECT_EQ(plain.stages[s].last, with_scaling.stages[s].last);
  }
}

TEST(Bfs, FindsOptimalOnTinyInstance) {
  const nn::Graph g = models::synthetic_chain(4, 32, 8);
  const Cluster c = Cluster::raspberry_pi({1.2, 0.6});
  const partition::BfsResult result =
      partition::bfs_optimal_plan(g, c, test_network(), {});
  ASSERT_FALSE(result.timed_out);
  partition::validate_plan(g, c, result.plan);
  EXPECT_GT(result.states_explored, 0);
  // PICO's heuristic can't beat the optimum.
  const Seconds pico_period =
      partition::plan_cost(g, c, test_network(),
                           partition::pico_plan(g, c, test_network()))
          .period;
  EXPECT_LE(result.period, pico_period + 1e-12);
}

TEST(Bfs, TimeBudgetAborts) {
  const nn::Graph g = models::synthetic_chain(16, 32, 8);
  const Cluster c = Cluster::paper_heterogeneous();
  partition::BfsOptions options;
  options.time_budget = 0.005;
  const partition::BfsResult result =
      partition::bfs_optimal_plan(g, c, test_network(), options);
  EXPECT_TRUE(result.timed_out);
}

TEST(Bfs, MemoizedMatchesPlain) {
  const nn::Graph g = models::synthetic_chain(5, 32, 8);
  const Cluster c = Cluster::raspberry_pi({1.2, 0.8, 0.6});
  const NetworkModel net = test_network();
  const auto plain = partition::bfs_optimal_plan(g, c, net, {});
  partition::BfsOptions memo_options;
  memo_options.memoize = true;
  const auto memoized = partition::bfs_optimal_plan(g, c, net, memo_options);
  ASSERT_FALSE(plain.timed_out);
  ASSERT_FALSE(memoized.timed_out);
  EXPECT_DOUBLE_EQ(plain.period, memoized.period);
  EXPECT_LE(memoized.states_explored, plain.states_explored);
}

TEST(Bfs, LatencyLimitRespected) {
  const nn::Graph g = models::synthetic_chain(5, 32, 8);
  const Cluster c = Cluster::raspberry_pi({1.2, 0.8});
  const NetworkModel net = test_network();
  const auto unbounded = partition::bfs_optimal_plan(g, c, net, {});
  ASSERT_FALSE(unbounded.timed_out);
  partition::BfsOptions bounded_options;
  bounded_options.latency_limit = unbounded.latency * 0.9;
  const auto bounded = partition::bfs_optimal_plan(g, c, net, bounded_options);
  if (!bounded.plan.stages.empty()) {
    EXPECT_LE(bounded.latency, bounded_options.latency_limit + 1e-12);
    EXPECT_GE(bounded.period, unbounded.period - 1e-12);
  }
}

}  // namespace
}  // namespace pico
