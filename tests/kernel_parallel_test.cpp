// Parallel-kernel parity suite: every kernel must produce bit-identical
// outputs for every ExecOptions thread count (1, 2, 5) and both conv
// backends, across strided, grouped, padded, 1x1 and asymmetric-halo
// regions.  This is the determinism guarantee the distributed runtime rests
// on — intra-device parallelism changes wall time, never arithmetic.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/receptive.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

const std::vector<int> kThreadCounts{1, 2, 5};

/// Regions exercising interior, border (true zero padding) and
/// asymmetric-halo cases (top strip needs no upper halo but a lower one,
/// and vice versa), plus a narrow column window.
std::vector<Region> parity_regions(const Shape& out) {
  std::vector<Region> regions{
      Region::full(out.height, out.width),
      Region::rows(0, std::max(1, out.height / 3), out.width),
      Region::rows(out.height - std::max(1, out.height / 3), out.height,
                   out.width),
      Region{out.height / 3, std::max(out.height / 3 + 1, 2 * out.height / 3),
             out.width / 4, std::max(out.width / 4 + 1, 3 * out.width / 4)},
  };
  return regions;
}

/// For every region and thread count, compute the region from its minimal
/// haloed input piece and require exact equality with the serial direct
/// reference (sliced from the full map).
void check_parity(nn::Graph& g, int node_id, std::uint64_t seed) {
  g.finalize();
  Rng rng(seed);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);

  const std::vector<Tensor> all =
      nn::execute_all(g, input, {.threads = 1});
  const nn::Node& node = g.node(node_id);

  for (const Region& region : parity_regions(node.out_shape)) {
    if (region.empty()) continue;
    const Tensor expected =
        extract(all[static_cast<std::size_t>(node_id)], region);
    std::vector<Placed> pieces;
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      const Region need =
          nn::input_region(g, node_id, region, static_cast<int>(k));
      const Tensor& producer =
          all[static_cast<std::size_t>(node.inputs[k])];
      pieces.push_back({need, extract(producer, need)});
    }
    for (const int threads : kThreadCounts) {
      const nn::ExecOptions options{.threads = threads};
      const Tensor got = nn::compute_node(node, pieces, region, options);
      EXPECT_EQ(Tensor::max_abs_diff(expected, got), 0.0f)
          << node.name << " region " << region << " threads " << threads;
      if (node.kind == nn::OpKind::Conv) {
        const Tensor direct = nn::conv2d(node, pieces[0], region,
                                         nn::ConvBackend::Direct, options);
        const Tensor im2col = nn::conv2d(node, pieces[0], region,
                                         nn::ConvBackend::Im2col, options);
        EXPECT_EQ(Tensor::max_abs_diff(expected, direct), 0.0f)
            << node.name << " direct, threads " << threads;
        EXPECT_EQ(Tensor::max_abs_diff(expected, im2col), 0.0f)
            << node.name << " im2col, threads " << threads;
      }
    }
  }
}

TEST(KernelParallel, ConvPadded3x3) {
  nn::Graph g;
  const int x = g.add_input({3, 20, 20});
  g.add_conv(x, 8, 3, 1, 1);
  check_parity(g, 1, 500);
}

TEST(KernelParallel, ConvStride2) {
  nn::Graph g;
  const int x = g.add_input({4, 21, 21});
  g.add_conv(x, 6, 3, 2, 1);
  check_parity(g, 1, 501);
}

TEST(KernelParallel, ConvGrouped) {
  nn::Graph g;
  const int x = g.add_input({8, 16, 16});
  g.add_conv_grouped(x, 8, 3, 1, 1, /*groups=*/4);
  check_parity(g, 1, 502);
}

TEST(KernelParallel, ConvDepthwise) {
  nn::Graph g;
  const int x = g.add_input({6, 14, 14});
  g.add_depthwise(x, 3, 1, 1);
  check_parity(g, 1, 503);
}

TEST(KernelParallel, Conv1x1) {
  nn::Graph g;
  const int x = g.add_input({12, 15, 15});
  g.add_conv(x, 5, 1, 1, 0);
  check_parity(g, 1, 504);
}

TEST(KernelParallel, ConvAsymmetricKernel7x1) {
  nn::Graph g;
  const int x = g.add_input({2, 18, 18});
  g.add_conv_window(x, 3, nn::Window{7, 1, 1, 1, 3, 0});
  check_parity(g, 1, 505);
}

TEST(KernelParallel, MaxPool3x3Stride2Padded) {
  nn::Graph g;
  const int x = g.add_input({4, 17, 17});
  g.add_maxpool(x, 3, 2, 1);
  check_parity(g, 1, 506);
}

TEST(KernelParallel, AvgPoolPadded) {
  nn::Graph g;
  const int x = g.add_input({3, 12, 12});
  g.add_avgpool(x, 3, 1, 1);
  check_parity(g, 1, 507);
}

TEST(KernelParallel, ReluAndBatchNorm) {
  {
    nn::Graph g;
    const int x = g.add_input({5, 13, 13});
    const int c = g.add_conv(x, 5, 3, 1, 1, /*fused_relu=*/false);
    g.add_relu(c);
    check_parity(g, 2, 508);
  }
  {
    nn::Graph g;
    const int x = g.add_input({5, 13, 13});
    g.add_batchnorm(x, /*fused_relu=*/true);
    check_parity(g, 1, 509);
  }
}

TEST(KernelParallel, ResidualAdd) {
  nn::Graph g;
  const int x = g.add_input({4, 16, 16});
  const int a = g.add_conv(x, 4, 3, 1, 1, /*fused_relu=*/false);
  const int b = g.add_conv(x, 4, 1, 1, 0, /*fused_relu=*/false);
  g.add_add(a, b, /*fused_relu=*/true);
  check_parity(g, 3, 510);
}

TEST(KernelParallel, ExecuteSegmentDeterministicAcrossThreadCounts) {
  // A conv-pool-conv stack run as one segment on a strip region: every
  // thread count must reproduce the serial result exactly, which is what
  // lets heterogeneous devices with different core counts cooperate on one
  // task without drift.
  nn::Graph g;
  const int x = g.add_input({3, 32, 32});
  const int c1 = g.add_conv(x, 8, 3, 1, 1);
  const int p = g.add_maxpool(c1, 2, 2);
  g.add_conv(p, 8, 3, 1, 1);
  g.finalize();
  Rng rng(511);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);

  const Shape out = g.output_shape();
  const Region out_region = Region::rows(3, out.height - 2, out.width);
  const Region need = nn::segment_input_region(g, 1, 3, out_region);
  const Placed piece{need, extract(input, need)};

  const Tensor reference =
      nn::execute_segment(g, 1, 3, piece, out_region, {.threads = 1});
  for (const int threads : kThreadCounts) {
    const Tensor got =
        nn::execute_segment(g, 1, 3, piece, out_region, {.threads = threads});
    EXPECT_EQ(Tensor::max_abs_diff(reference, got), 0.0f)
        << "threads " << threads;
  }
}

TEST(KernelParallel, FullGraphExecuteMatchesSerial) {
  nn::Graph g;
  const int x = g.add_input({3, 24, 24});
  const int c1 = g.add_conv(x, 8, 3, 1, 1);
  const int p = g.add_maxpool(c1, 2, 2);
  const int c2 = g.add_conv(p, 8, 3, 2, 1);
  g.add_global_avgpool(c2);
  g.finalize();
  Rng rng(512);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);

  const Tensor reference = nn::execute(g, input, {.threads = 1});
  for (const int threads : kThreadCounts) {
    const Tensor got = nn::execute(g, input, {.threads = threads});
    EXPECT_EQ(Tensor::max_abs_diff(reference, got), 0.0f)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace pico
