// Wire-protocol version negotiation (PIC4, reading PIC3 and PIC2).
//
// The decoder is version-gated on the leading magic: this build emits
// "PIC4" (adds the EventDump verb; frame layout identical to v3) and still
// reads "PIC3" (span cursors) and "PIC2" — a v2 frame decodes with both
// cursors zero, which is exactly the legacy full-drain TraceDump
// semantics.  Anything else — most importantly a "PIC1" frame from an older
// build — must be rejected with a TransportError naming both the received
// and the supported versions.  TransportError is the serve loop's
// graceful-exit signal, so a version-skewed peer ends the session cleanly
// instead of the worker dying on a garbled frame mid-decode.  Truncation of
// an otherwise well-versioned frame stays an InvariantError (corruption,
// not skew).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "runtime/message.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"

namespace pico {
namespace {

using runtime::Message;
using runtime::MessageType;

Message sample_request() {
  Message m;
  m.type = MessageType::WorkRequest;
  m.task_id = 7;
  m.stage_index = 1;
  m.first_node = 1;
  m.last_node = 2;
  m.in_region = {0, 4, 0, 8};
  m.out_region = {0, 4, 0, 8};
  m.trace_id = 0xabcdef0123456789ull;
  m.parent_span = 0x42ull;
  m.t_origin_ns = 111;
  m.t_recv_ns = 222;
  m.t_send_ns = 333;
  m.t_compute_start_ns = 444;
  m.t_compute_end_ns = 555;
  m.span_cursor = 96;
  m.span_cursor_base = 64;
  m.blob = {1, 2, 3, 250, 251, 252};
  m.tensor = Tensor({1, 4, 8});
  Rng rng(5);
  m.tensor.randomize(rng);
  return m;
}

/// Serialize, then overwrite the little-endian magic with another value.
std::vector<std::uint8_t> with_magic(const Message& message,
                                     std::uint32_t magic) {
  std::vector<std::uint8_t> bytes = runtime::serialize(message);
  EXPECT_GE(bytes.size(), 4u);
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  return bytes;
}

/// Byte offset of the v3 span-cursor pair in a serialized frame: the fixed
/// header before it is magic(4) + type(4) + task(8) + stage/first/last(12)
/// + compute(8) + trace ctx(16) + five timestamps(40).
constexpr std::size_t kCursorOffset = 92;

/// Rewrite a serialized PIC4 frame as the PIC2 frame an older build would
/// have produced: splice out the two span-cursor u64s and patch the magic.
std::vector<std::uint8_t> as_pic2(std::vector<std::uint8_t> bytes) {
  EXPECT_GE(bytes.size(), kCursorOffset + 16);
  bytes.erase(bytes.begin() + kCursorOffset,
              bytes.begin() + kCursorOffset + 16);
  const std::uint32_t magic = 0x50494332u;
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  return bytes;
}

/// A PIC3 frame is byte-identical to PIC4 apart from the magic: patch only.
std::vector<std::uint8_t> as_pic3(std::vector<std::uint8_t> bytes) {
  const std::uint32_t magic = 0x50494333u;
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  return bytes;
}

TEST(MessageVersion, RoundTripPreservesV2AndV3Fields) {
  const Message original = sample_request();
  const auto bytes = runtime::serialize(original);
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.trace_id, original.trace_id);
  EXPECT_EQ(decoded.parent_span, original.parent_span);
  EXPECT_EQ(decoded.t_origin_ns, original.t_origin_ns);
  EXPECT_EQ(decoded.t_recv_ns, original.t_recv_ns);
  EXPECT_EQ(decoded.t_send_ns, original.t_send_ns);
  EXPECT_EQ(decoded.t_compute_start_ns, original.t_compute_start_ns);
  EXPECT_EQ(decoded.t_compute_end_ns, original.t_compute_end_ns);
  EXPECT_EQ(decoded.span_cursor, original.span_cursor);
  EXPECT_EQ(decoded.span_cursor_base, original.span_cursor_base);
  EXPECT_EQ(decoded.blob, original.blob);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(decoded.tensor, original.tensor),
                  0.0f);
}

TEST(MessageVersion, EmitsPic4Magic) {
  const auto bytes = runtime::serialize(sample_request());
  ASSERT_GE(bytes.size(), 4u);
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  EXPECT_EQ(magic, 0x50494334u);  // 'P','I','C','4' little-endian
}

TEST(MessageVersion, Pic3FrameDecodesWithCursorsIntact) {
  // A v3 peer (span cursors, no EventDump verb) shares the v4 frame layout;
  // its frames must keep decoding untouched.
  const Message original = sample_request();
  const auto bytes = as_pic3(runtime::serialize(original));
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.span_cursor, original.span_cursor);
  EXPECT_EQ(decoded.span_cursor_base, original.span_cursor_base);
  EXPECT_EQ(decoded.task_id, original.task_id);
  EXPECT_EQ(decoded.blob, original.blob);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(decoded.tensor, original.tensor),
                  0.0f);
}

TEST(MessageVersion, EventDumpCursorsRoundTrip) {
  // EventDump (new in v4) reuses the span-cursor fields as event-journal
  // cursors; the frame must survive the wire with type and cursors exact.
  Message request;
  request.type = MessageType::EventDump;
  request.span_cursor = 12345;       // event cursor: "give me seq > 12345"
  request.span_cursor_base = 777;    // base echoed by the worker
  request.blob = {9, 8, 7};          // encoded PEV1 chunk rides in the blob
  const auto bytes = runtime::serialize(request);
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.type, MessageType::EventDump);
  EXPECT_EQ(decoded.span_cursor, 12345u);
  EXPECT_EQ(decoded.span_cursor_base, 777u);
  EXPECT_EQ(decoded.blob, request.blob);
  // The cursor pair sits at the documented fixed offset (the skew matrix
  // below splices there, so the layout is load-bearing for the tests too).
  std::uint64_t at_offset = 0;
  std::memcpy(&at_offset, bytes.data() + kCursorOffset, sizeof(at_offset));
  EXPECT_EQ(at_offset, 12345u);
}

TEST(MessageVersion, Pic1RejectionNamesPic4Too) {
  const auto bytes = with_magic(sample_request(), 0x50494331u);
  try {
    runtime::deserialize(bytes.data(), bytes.size());
    FAIL() << "PIC1 frame was accepted";
  } catch (const TransportError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("PIC4"), std::string::npos) << what;
  }
}

TEST(MessageVersion, Pic2FrameStillDecodesWithZeroCursors) {
  // Backwards compatibility: a v2 peer's frame (no cursor fields) must
  // decode into legacy full-drain semantics — both cursors zero — with
  // every other field intact.
  const Message original = sample_request();
  const auto bytes = as_pic2(runtime::serialize(original));
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.span_cursor, 0u);
  EXPECT_EQ(decoded.span_cursor_base, 0u);
  EXPECT_EQ(decoded.task_id, original.task_id);
  EXPECT_EQ(decoded.trace_id, original.trace_id);
  EXPECT_EQ(decoded.t_compute_end_ns, original.t_compute_end_ns);
  EXPECT_EQ(decoded.blob, original.blob);
  EXPECT_EQ(decoded.in_region, original.in_region);
  EXPECT_EQ(decoded.out_region, original.out_region);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(decoded.tensor, original.tensor),
                  0.0f);
}

TEST(MessageVersion, Pic1FrameRejectedNamingBothVersions) {
  // 'P','I','C','1' little-endian: the magic an old v1 build would send.
  const auto bytes = with_magic(sample_request(), 0x50494331u);
  try {
    runtime::deserialize(bytes.data(), bytes.size());
    FAIL() << "PIC1 frame was accepted";
  } catch (const TransportError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("PIC1"), std::string::npos) << what;
    EXPECT_NE(what.find("PIC3"), std::string::npos) << what;
    EXPECT_NE(what.find("PIC2"), std::string::npos) << what;
  }
}

TEST(MessageVersion, ForeignMagicRejectedAsTransportError) {
  // Non-printable magic renders as hex, and is still a graceful
  // TransportError — never an invariant failure or a crash.
  const auto bytes = with_magic(sample_request(), 0xdeadbeefu);
  try {
    runtime::deserialize(bytes.data(), bytes.size());
    FAIL() << "foreign frame was accepted";
  } catch (const TransportError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("0x"), std::string::npos) << what;
    EXPECT_NE(what.find("PIC3"), std::string::npos) << what;
  }
}

TEST(MessageVersion, TruncationIsCorruptionNotVersionSkew) {
  const auto bytes = runtime::serialize(sample_request());
  EXPECT_THROW(runtime::deserialize(bytes.data(), bytes.size() - 1),
               InvariantError);
  // Shorter than the magic itself: cannot even version-check.
  EXPECT_THROW(runtime::deserialize(bytes.data(), 3), InvariantError);
}

TEST(MessageVersion, BlobLengthIsBoundsChecked) {
  // A frame whose blob length field points past the buffer must be caught
  // by the decoder, not read out of bounds.
  auto bytes = runtime::serialize(sample_request());
  // Chop the frame right after the fixed header; the encoded blob length
  // then exceeds the remaining bytes.
  bytes.resize(bytes.size() - 8);
  EXPECT_THROW(runtime::deserialize(bytes.data(), bytes.size()),
               InvariantError);
}

// The tensor shape is the last wire-controlled allocation driver in the
// frame: three int32 extents followed by elements()*4 payload bytes at the
// tail.  Both corruptions below must be rejected BEFORE Tensor() allocates
// — a negative extent is UB in Shape::elements(), and extreme extents
// (2^31-1 each) would demand a multi-exabyte allocation whose byte count
// also overflows 64-bit arithmetic if computed naively.
std::size_t shape_offset(const std::vector<std::uint8_t>& bytes) {
  const std::size_t payload =
      static_cast<std::size_t>(sample_request().tensor.shape().elements()) * 4;
  return bytes.size() - payload - 12;  // 3 × int32 extents before payload
}

void put_u32(std::vector<std::uint8_t>& bytes, std::size_t at,
             std::uint32_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
}

TEST(MessageVersion, NegativeShapeExtentRejectedBeforeAllocation) {
  auto bytes = runtime::serialize(sample_request());
  put_u32(bytes, shape_offset(bytes), 0x80000001u);  // channels = INT_MIN+1
  EXPECT_THROW(runtime::deserialize(bytes.data(), bytes.size()),
               InvariantError);
}

TEST(MessageVersion, ExtremeShapeExtentsRejectedBeforeAllocation) {
  auto bytes = runtime::serialize(sample_request());
  const std::size_t at = shape_offset(bytes);
  put_u32(bytes, at, 0x7fffffffu);      // channels
  put_u32(bytes, at + 4, 0x7fffffffu);  // height
  put_u32(bytes, at + 8, 0x7fffffffu);  // width: elements() ≈ 2^93
  EXPECT_THROW(runtime::deserialize(bytes.data(), bytes.size()),
               InvariantError);
}

// End to end over a real socket: a "v1 peer" writes a PIC1 frame into a
// serving worker.  The worker's serve loop must exit cleanly (TransportError
// path), not crash or hang.
TEST(MessageVersion, ServeLoopEndsGracefullyOnVersionSkew) {
  nn::Graph graph = models::toy_mnist({.input_size = 16});
  Rng rng(3);
  graph.randomize_weights(rng);

  runtime::TcpListener listener;
  std::thread server([&] {
    auto connection = listener.accept();
    runtime::serve_blocking(graph, *connection, /*device=*/0);
  });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // The transport frames messages as a host-endian u64 length + payload.
  const auto payload = with_magic(sample_request(), 0x50494331u);
  const std::uint64_t length = payload.size();
  ASSERT_EQ(::write(fd, &length, sizeof(length)),
            static_cast<ssize_t>(sizeof(length)));
  ASSERT_EQ(::write(fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));

  // A graceful serve-loop exit closes the connection; join proves no hang.
  server.join();
  ::close(fd);
}

}  // namespace
}  // namespace pico
