// Direct vs im2col convolution: the two backends must agree exactly (the
// accumulation order is identical by construction) across kernel shapes,
// strides, paddings, border/interior regions and haloed input pieces.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/receptive.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

struct ConvCase {
  const char* name;
  int in_channels, in_size, out_channels;
  nn::Window window;
};

class ConvBackends : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvBackends, AgreeOnFullMapAndRegions) {
  const ConvCase param = GetParam();
  nn::Graph g;
  const int in =
      g.add_input({param.in_channels, param.in_size, param.in_size});
  const int conv =
      g.add_conv_window(in, param.out_channels, param.window,
                        /*fused_relu=*/param.in_size % 2 == 0);
  g.finalize();
  Rng rng(2718);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);

  const nn::Node& node = g.node(conv);
  const Shape out = node.out_shape;
  const Region full_in = Region::full(param.in_size, param.in_size);
  const Placed whole{full_in, input};

  // Full map.
  const Tensor direct =
      nn::conv2d(node, whole, Region::full(out.height, out.width),
                 nn::ConvBackend::Direct);
  const Tensor fast =
      nn::conv2d(node, whole, Region::full(out.height, out.width),
                 nn::ConvBackend::Im2col);
  ASSERT_FLOAT_EQ(Tensor::max_abs_diff(direct, fast), 0.0f);

  // A sweep of sub-regions, fed exactly the haloed piece they need.
  const std::vector<Region> regions{
      Region::rows(0, std::max(1, out.height / 3), out.width),
      Region::rows(out.height / 2, out.height, out.width),
      Region{out.height / 4, std::max(out.height / 4 + 1, 3 * out.height / 4),
             out.width / 4, std::max(out.width / 4 + 1, 3 * out.width / 4)},
  };
  for (const Region& region : regions) {
    if (region.empty()) continue;
    const Region need = nn::input_region(g, conv, region);
    const Placed piece{need, extract(input, need)};
    const Tensor d = nn::conv2d(node, piece, region,
                                nn::ConvBackend::Direct);
    const Tensor f = nn::conv2d(node, piece, region,
                                nn::ConvBackend::Im2col);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(d, f), 0.0f)
        << param.name << " region " << region;
    // And against the sliced full-map result.
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(extract(fast, region), f), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvBackends,
    ::testing::Values(
        ConvCase{"k3s1p1", 3, 17, 8, nn::Window::square(3, 1, 1)},
        ConvCase{"k1s1p0", 16, 14, 4, nn::Window::square(1, 1, 0)},
        ConvCase{"k3s2p1", 4, 23, 6, nn::Window::square(3, 2, 1)},
        ConvCase{"k5s1p2", 2, 19, 3, nn::Window::square(5, 1, 2)},
        ConvCase{"k7s2p3", 3, 32, 4, nn::Window::square(7, 2, 3)},
        ConvCase{"k2s2p0", 8, 16, 8, nn::Window::square(2, 2, 0)},
        ConvCase{"k1x7", 4, 15, 4, nn::Window{1, 7, 1, 1, 0, 3}},
        ConvCase{"k7x1", 4, 15, 4, nn::Window{7, 1, 1, 1, 3, 0}},
        ConvCase{"k3s1p0_valid", 5, 11, 5, nn::Window::square(3, 1, 0)}),
    [](const auto& info) { return info.param.name; });

TEST(ConvBackends, BlockedPathCoversMultipleRowBlocks) {
  // Big enough that im2col processes several row blocks (col budget is
  // 2M floats): 64ch * 9 taps * 128 cols = 73728 floats/row -> blocks of
  // ~27 rows over 128 rows.
  nn::Graph g;
  const int in = g.add_input({64, 128, 128});
  g.add_conv(in, 4, 3, 1, 1);
  g.finalize();
  Rng rng(5);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Placed whole{Region::full(128, 128), input};
  const nn::Node& node = g.node(1);
  const Tensor d =
      nn::conv2d(node, whole, Region::full(128, 128), nn::ConvBackend::Direct);
  const Tensor f =
      nn::conv2d(node, whole, Region::full(128, 128), nn::ConvBackend::Im2col);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(d, f), 0.0f);
}

TEST(ConvBackends, ExtremeAspectRatioRegions) {
  // Degenerate block sizing: a single-row output region wide enough that
  // the patch matrix extent kernel_volume * n must be computed in 64 bits,
  // and a many-block tall-thin map.  Regression for the int-overflow /
  // per-group buffer-churn audit of conv_im2col.
  {
    nn::Graph g;
    const int in = g.add_input({8, 3, 4096});
    g.add_conv(in, 4, 3, 1, 1);
    g.finalize();
    Rng rng(91);
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const nn::Node& node = g.node(1);
    const Placed whole{Region::full(3, 4096), input};
    for (const Region region :
         {Region::rows(1, 2, 4096), Region::full(3, 4096)}) {
      const Tensor d =
          nn::conv2d(node, whole, region, nn::ConvBackend::Direct);
      const Tensor f =
          nn::conv2d(node, whole, region, nn::ConvBackend::Im2col);
      ASSERT_FLOAT_EQ(Tensor::max_abs_diff(d, f), 0.0f)
          << "wide region " << region;
    }
  }
  {
    // Tall and one column wide: per-row patch extent is tiny, so the block
    // loop covers thousands of rows per block.
    nn::Graph g;
    const int in = g.add_input({2, 4096, 3});
    g.add_conv(in, 3, 3, 1, 1);
    g.finalize();
    Rng rng(92);
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const nn::Node& node = g.node(1);
    const Placed whole{Region::full(4096, 3), input};
    const Region region{0, 4096, 1, 2};
    const Tensor d = nn::conv2d(node, whole, region, nn::ConvBackend::Direct);
    const Tensor f = nn::conv2d(node, whole, region, nn::ConvBackend::Im2col);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(d, f), 0.0f);
  }
}

TEST(ConvBackends, RandomizedSweep) {
  Rng rng(31337);
  for (int trial = 0; trial < 12; ++trial) {
    const int k = rng.uniform_int(1, 5);
    const int s = rng.uniform_int(1, 2);
    const int p = rng.uniform_int(0, k / 2 + 1);
    const int size = rng.uniform_int(k + 2, 24);
    nn::Graph g;
    const int in = g.add_input({rng.uniform_int(1, 6), size, size});
    g.add_conv(in, rng.uniform_int(1, 6), k, s, p);
    g.finalize();
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const nn::Node& node = g.node(1);
    const Shape out = node.out_shape;
    const Placed whole{Region::full(size, size), input};
    const Tensor d = nn::conv2d(node, whole,
                                Region::full(out.height, out.width),
                                nn::ConvBackend::Direct);
    const Tensor f = nn::conv2d(node, whole,
                                Region::full(out.height, out.width),
                                nn::ConvBackend::Im2col);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(d, f), 0.0f)
        << "k=" << k << " s=" << s << " p=" << p << " size=" << size;
  }
}

}  // namespace
}  // namespace pico
