#include <gtest/gtest.h>

#include <cmath>

#include "adaptive/apico.hpp"
#include "adaptive/selector.hpp"
#include "adaptive/workload.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "sim/arrivals.hpp"
#include "sim/queueing.hpp"

namespace pico {
namespace {

using adaptive::Candidate;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(Ewma, MatchesEq15) {
  adaptive::EwmaEstimator estimator(0.25, 1.0);
  estimator.observe(5.0);
  // λ_t = β·λ̂ + (1-β)·λ_{t-1} = 0.25·5 + 0.75·1
  EXPECT_DOUBLE_EQ(estimator.rate(), 2.0);
  estimator.observe(2.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.25 * 2.0 + 0.75 * 2.0);
}

TEST(Ewma, ConvergesToConstantRate) {
  adaptive::EwmaEstimator estimator(0.3, 0.0);
  for (int i = 0; i < 60; ++i) estimator.observe(4.0);
  EXPECT_NEAR(estimator.rate(), 4.0, 1e-6);
}

TEST(Ewma, HigherBetaReactsFaster) {
  adaptive::EwmaEstimator slow(0.1, 0.0), fast(0.8, 0.0);
  slow.observe(10.0);
  fast.observe(10.0);
  EXPECT_GT(fast.rate(), slow.rate());
}

TEST(Ewma, RejectsBadBeta) {
  EXPECT_THROW(adaptive::EwmaEstimator(0.0), InvariantError);
  EXPECT_THROW(adaptive::EwmaEstimator(1.5), InvariantError);
}

/// Candidates shaped like the paper's: a one-stage scheme (low latency,
/// long period) and a pipeline (short period, higher latency).
std::vector<Candidate> synthetic_candidates() {
  Candidate one_stage;
  one_stage.plan.scheme = "OFL";
  one_stage.period = 2.0;
  one_stage.latency = 2.0;
  Candidate pipeline;
  pipeline.plan.scheme = "PICO";
  pipeline.period = 0.8;
  pipeline.latency = 3.0;
  return {one_stage, pipeline};
}

TEST(Selector, LightLoadPicksOneStage) {
  const auto candidates = synthetic_candidates();
  EXPECT_EQ(adaptive::select_scheme(candidates, 0.01), 0u);
}

TEST(Selector, HeavyLoadPicksPipeline) {
  const auto candidates = synthetic_candidates();
  EXPECT_EQ(adaptive::select_scheme(candidates, 0.45), 1u);
}

TEST(Selector, CrossoverMatchesPrediction) {
  const auto candidates = synthetic_candidates();
  // Find the analytic crossover by scanning; selector must agree on both
  // sides of it.
  double crossover = -1.0;
  for (double lambda = 0.001; lambda < 0.49; lambda += 0.001) {
    const double one = adaptive::predicted_latency(candidates[0], lambda);
    const double pipe = adaptive::predicted_latency(candidates[1], lambda);
    if (pipe < one) {
      crossover = lambda;
      break;
    }
  }
  ASSERT_GT(crossover, 0.0);
  EXPECT_EQ(adaptive::select_scheme(candidates, crossover - 0.01), 0u);
  EXPECT_EQ(adaptive::select_scheme(candidates, crossover + 0.01), 1u);
}

TEST(Selector, SaturatedPicksSmallestPeriod) {
  const auto candidates = synthetic_candidates();
  // Both unstable at λ = 2.0: pipeline (smaller p) wins.
  EXPECT_EQ(adaptive::select_scheme(candidates, 2.0), 1u);
}

TEST(Selector, RealModelCandidates) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const Candidate ofl =
      adaptive::make_candidate(g, c, net, partition::ofl_plan(g, c, net));
  const Candidate pico =
      adaptive::make_candidate(g, c, net, partition::pico_plan(g, c, net));
  EXPECT_LT(pico.period, ofl.period);
  EXPECT_DOUBLE_EQ(ofl.period, ofl.latency);  // one-stage: p == t
  const std::vector<Candidate> candidates{ofl, pico};
  EXPECT_EQ(adaptive::select_scheme(candidates, 1e-6), 0u);
  EXPECT_EQ(adaptive::select_scheme(candidates, 0.99 / pico.period), 1u);
}

TEST(Apico, ControllerSwitchesUnderRisingLoad) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  auto controller = adaptive::ApicoController::make_default(
      g, c, net, {.beta = 0.5, .window = 5.0});
  const Seconds pico_period = controller.candidates()[1].period;

  sim::ClusterSimulator simulator(g, c, net);
  controller.attach(simulator);
  EXPECT_EQ(simulator.current_scheme(), "OFL");

  // Light phase then heavy phase.
  Rng rng(31);
  std::vector<Seconds> arrivals;
  const double light = 0.05 / controller.candidates()[0].period;
  const double heavy = 0.9 / pico_period;
  for (Seconds t : sim::poisson_arrivals(rng, light, 60.0)) {
    arrivals.push_back(t);
  }
  for (Seconds t : sim::poisson_arrivals(rng, heavy, 120.0)) {
    arrivals.push_back(60.0 + t);
  }
  simulator.add_arrivals(arrivals);
  const auto result = simulator.run();

  // The controller must have moved to PICO during the heavy phase.
  bool pico_used = false;
  for (const auto& task : result.tasks) pico_used |= task.scheme == "PICO";
  EXPECT_TRUE(pico_used);
  EXPECT_GE(result.plan_switches, 1);
  // Decisions were recorded.
  EXPECT_FALSE(controller.decisions().empty());
}

TEST(Apico, DecideUpdatesEstimate) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  auto controller = adaptive::ApicoController::make_default(
      g, c, net, {.beta = 1.0, .window = 10.0});
  controller.decide(50);  // 5 tasks/s measured
  EXPECT_DOUBLE_EQ(controller.estimated_rate(), 5.0);
  const Candidate& choice = controller.decide(0);
  EXPECT_DOUBLE_EQ(controller.estimated_rate(), 0.0);
  EXPECT_EQ(choice.plan.scheme, "OFL");  // idle -> one-stage scheme
}

}  // namespace
}  // namespace pico
