// Systematic exploration of the real runtime's concurrency: BoundedQueue
// producer/consumer/close races (exhaustively, with a preemption bound),
// ThreadPool nested self-drain and exception propagation, Worker shutdown
// racing a control-plane harvester, and the pipeline/adaptive runtimes
// under randomized (PCT) schedules.  Pinned decision strings at the bottom
// keep the nastiest interleavings we found as replayable regressions.
// Only built under the PICO_SCHED preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/adaptive_runtime.hpp"
#include "runtime/channel.hpp"
#include "runtime/message.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/resilient_runtime.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"
#include "sched/explorer.hpp"
#include "sched/hooks.hpp"

namespace pico {
namespace {

using runtime::BoundedQueue;
using runtime::Message;
using runtime::MessageType;

// The explorer serializes the managed threads, so real parallelism inside
// a schedule only adds uninstrumented blocking.  Force every inner
// ThreadPool to be inline before any test allocates the global pool.
const bool kForceSingleThread = [] {
  setenv("PICO_THREADS", "1", 1);
  return true;
}();

void expect_clean(const sched::ExploreResult& result, const char* name) {
  if (!result.ok()) sched::write_failure_artifacts(result, name);
  EXPECT_TRUE(result.ok()) << result.summary();
}

// --- BoundedQueue ------------------------------------------------------

// Two threads, capacity 1: the producer fills past capacity (so push
// blocks), then closes; the consumer drains to nullopt.  Small enough to
// explore exhaustively.
void queue_two_thread_body() {
  auto* queue = new BoundedQueue<int>(1);  // leaked if a schedule fails
  sched::name_object(queue, "queue");
  SchedThread producer([queue] {
    queue->push(1);
    queue->push(2);
    queue->close();
  });
  SchedThread consumer([queue] {
    std::vector<int> got;
    while (std::optional<int> value = queue->pop()) got.push_back(*value);
    sched::check(got == std::vector<int>({1, 2}),
                 "consumer must see exactly 1,2 in order");
    sched::check(queue->pop() == std::nullopt,
                 "pop after drained close must stay nullopt");
  });
  producer.join();
  consumer.join();
  delete queue;
}

TEST(SchedRuntime, BoundedQueueTwoThreadsExhaustive) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Exhaustive;
  options.preemption_bound = 2;
  sched::ExploreResult result =
      sched::explore(options, queue_two_thread_body);
  EXPECT_TRUE(result.complete)
      << "exploration did not finish: " << result.summary();
  expect_clean(result, "queue-two-threads");
}

// Three threads racing push/pop/close: close arrives from a third thread
// at an arbitrary point, so pushes may throw TransportError and the
// consumer may see any prefix of 1,2 — but never a reordering, and never
// a value after nullopt.
void queue_close_race_body() {
  auto* queue = new BoundedQueue<int>(1);  // leaked if a schedule fails
  SchedThread producer([queue] {
    try {
      queue->push(1);
      queue->push(2);
    } catch (const TransportError&) {
      // Racing close won; expected.
    }
  });
  SchedThread closer([queue] { queue->close(); });
  SchedThread consumer([queue] {
    std::vector<int> got;
    while (std::optional<int> value = queue->pop()) got.push_back(*value);
    const bool prefix = got.empty() || got == std::vector<int>({1}) ||
                        got == std::vector<int>({1, 2});
    sched::check(prefix, "consumer must see a prefix of 1,2");
  });
  producer.join();
  closer.join();
  consumer.join();
  delete queue;
}

TEST(SchedRuntime, BoundedQueueCloseRaceExhaustive) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Exhaustive;
  options.preemption_bound = 2;
  options.keep_schedules = true;
  sched::ExploreResult result =
      sched::explore(options, queue_close_race_body);
  EXPECT_TRUE(result.complete)
      << "exploration did not finish: " << result.summary();
  expect_clean(result, "queue-close-race");
  if (getenv("PICO_SCHED_PRINT_SCHEDULES") != nullptr) {
    // Dev aid for refreshing PinnedCloseRaceSchedules: dump the deepest
    // decision strings this exhaustive run produced.
    std::vector<std::string> all = result.schedule_decisions;
    std::sort(all.begin(), all.end(),
              [](const std::string& a, const std::string& b) {
                return a.size() > b.size();
              });
    for (std::size_t i = 0; i < all.size() && i < 5; ++i) {
      std::fprintf(stderr, "schedule[%zu] = \"%s\"\n", i, all[i].c_str());
    }
  }
}

// --- ThreadPool --------------------------------------------------------

// A pool task that itself calls parallel_for (the nested caller drains the
// queue, so progress must not depend on a free worker), plus the exception
// path: the first thrown error must come out of the submitting call after
// every task has finished.
void thread_pool_body() {
  auto* pool = new ThreadPool(2);  // leaked if a schedule fails
  auto* outer = new int(0);
  auto* inner = new int(0);
  pool->parallel_for(2, [&](int index) {
    if (index == 0) {
      pool->parallel_for(2, [&](int) { ++*inner; });
    }
    ++*outer;
  });
  sched::check(*outer == 2 && *inner == 2,
               "nested parallel_for must run every task exactly once");
  bool threw = false;
  try {
    pool->parallel_for(2, [](int index) {
      if (index == 1) throw std::runtime_error("task failure");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  sched::check(threw, "parallel_for must rethrow a task exception");
  delete outer;
  delete inner;
  delete pool;  // drains + joins the worker
}

TEST(SchedRuntime, ThreadPoolNestedAndExceptionRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 60;
  options.seed = 7;
  sched::ExploreResult result = sched::explore(options, thread_pool_body);
  expect_clean(result, "thread-pool");
}

// --- Worker shutdown vs control-plane harvest --------------------------

const nn::Graph& worker_graph() {
  static const nn::Graph* graph = [] {
    auto* g = new nn::Graph(models::toy_mnist({.input_size = 16}));
    Rng rng(5);
    g->randomize_weights(rng);
    return g;
  }();
  return *graph;
}

// A harvester thread runs the Ping + TraceDump control plane while the
// owner stops the worker.  Every message op may lose the race to the
// close; TransportError is the documented clean outcome on both sides.
void worker_shutdown_body() {
  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  auto* worker = new runtime::Worker(worker_graph(),
                                     std::move(worker_end), 0);
  auto* harvester_end =
      new std::unique_ptr<runtime::Connection>(std::move(coordinator_end));
  worker->start();
  SchedThread harvester([harvester_end] {
    try {
      Message ping;
      ping.type = MessageType::Ping;
      ping.t_origin_ns = 1;
      (*harvester_end)->send(ping);
      Message pong = (*harvester_end)->recv();
      sched::check(pong.type == MessageType::Pong,
                   "Ping must be answered by Pong");
      sched::check(pong.t_origin_ns == 1, "Pong must echo t1");
      Message dump;
      dump.type = MessageType::TraceDump;
      (*harvester_end)->send(dump);
      Message spans = (*harvester_end)->recv();
      sched::check(spans.type == MessageType::TraceDump,
                   "TraceDump must be answered in kind");
    } catch (const TransportError&) {
      // The worker shut down mid-harvest; expected.
    }
  });
  worker->stop();  // close + join races against the harvest
  harvester.join();
  delete worker;
  delete harvester_end;
}

TEST(SchedRuntime, WorkerShutdownVsHarvestRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 40;
  options.seed = 11;
  options.max_steps = 100000;
  sched::ExploreResult result = sched::explore(options,
                                               worker_shutdown_body);
  expect_clean(result, "worker-shutdown");
}

// --- flight recorder: writes vs crash dump vs black-box harvest --------

// Three consumers of the same seqlock ring race: a writer journaling
// events, a "dumper" taking the full-ring merge the crash handler uses,
// and a harvester pulling EventDump chunks through a live worker while
// the owner stops it.  Under every interleaving the merge must stay a
// consistent, strictly-ordered sequence (no torn slot ever surfaces), a
// chunk must carry only events past its cursor, and the reply cursor
// must never regress.
void event_harvest_body() {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  // next_seq() is the seq the NEXT record takes (seqs keep counting across
  // clear()); every event journaled by this body is therefore > floor.
  const std::uint64_t seq_floor = recorder.next_seq() - 1;
  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  auto* worker = new runtime::Worker(worker_graph(),
                                     std::move(worker_end), 0);
  auto* harvester_end =
      new std::unique_ptr<runtime::Connection>(std::move(coordinator_end));
  worker->start();
  SchedThread writer([] {
    for (int i = 0; i < 6; ++i) {
      obs::record_event(obs::EventCode::TaskAccept, i);
    }
  });
  SchedThread dumper([seq_floor] {
    // The crash handler's read path: a full merge at an arbitrary point.
    const std::vector<obs::EventRecord> events =
        obs::FlightRecorder::global().snapshot();
    std::uint64_t previous = seq_floor;
    for (const obs::EventRecord& event : events) {
      sched::check(event.seq > previous,
                   "snapshot must be a strictly-ordered merge (no tears)");
      previous = event.seq;
    }
  });
  SchedThread harvester([harvester_end, seq_floor] {
    try {
      std::uint64_t cursor = seq_floor;
      for (int round = 0; round < 2; ++round) {
        Message request;
        request.type = MessageType::EventDump;
        request.span_cursor = cursor;
        (*harvester_end)->send(request);
        Message reply = (*harvester_end)->recv();
        sched::check(reply.type == MessageType::EventDump,
                     "EventDump must be answered in kind");
        sched::check(reply.span_cursor >= cursor,
                     "event cursor must never move backwards");
        const obs::EventChunk chunk =
            obs::decode_events(reply.blob.data(), reply.blob.size());
        sched::check(chunk.next == reply.span_cursor,
                     "wire cursor must match the encoded chunk");
        std::uint64_t previous = cursor;
        for (const obs::EventRecord& event : chunk.events) {
          sched::check(event.seq > previous,
                       "a chunk carries only newer events, in order");
          previous = event.seq;
        }
        cursor = reply.span_cursor;
      }
    } catch (const TransportError&) {
      // The worker shut down mid-harvest; expected.
    }
  });
  writer.join();
  dumper.join();
  worker->stop();  // close + join races against the harvest
  harvester.join();
  delete worker;
  delete harvester_end;
}

TEST(SchedRuntime, RecorderWriteVsDumpVsHarvestRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 40;
  options.seed = 13;
  options.max_steps = 100000;
  sched::ExploreResult result = sched::explore(options, event_harvest_body);
  expect_clean(result, "recorder-harvest");
}

// --- Pipeline / adaptive runtime ---------------------------------------

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

struct RuntimeModel {
  nn::Graph graph;
  Cluster cluster;
  Tensor input;
  Tensor reference;
  std::vector<adaptive::Candidate> candidates;

  RuntimeModel()
      : graph(models::toy_mnist({.input_size = 16})),
        cluster(Cluster::paper_heterogeneous()) {
    Rng rng(91);
    graph.randomize_weights(rng);
    input = Tensor(graph.input_shape());
    input.randomize(rng);
    reference = nn::execute(graph, input);
    const NetworkModel net = test_network();
    candidates = {
        adaptive::make_candidate(graph, cluster, net,
                                 plan(graph, cluster, net,
                                      Scheme::OptimalFused)),
        adaptive::make_candidate(graph, cluster, net,
                                 plan(graph, cluster, net, Scheme::Pico)),
    };
  }

  static const RuntimeModel& get() {
    static const RuntimeModel* model = new RuntimeModel;
    return *model;
  }
};

// Real inferences racing the drain: submit, shutdown (which joins every
// coordinator and worker under the model), then collect the futures —
// collecting only after shutdown keeps the root thread off uninstrumented
// std::future waits.  Randomized: the runtime reads wall clocks, so its
// branch structure is not schedule-deterministic.
void pipeline_body() {
  const RuntimeModel& model = RuntimeModel::get();
  auto* rt = new runtime::PipelineRuntime(
      model.graph, model.candidates[1].plan,
      runtime::RuntimeOptions{.harvest_pings = 1});
  auto futures = new std::vector<std::future<Tensor>>;
  futures->push_back(rt->submit(model.input));
  futures->push_back(rt->submit(model.input));
  rt->shutdown();
  for (std::future<Tensor>& f : *futures) {
    sched::check(
        Tensor::max_abs_diff(f.get(), model.reference) == 0.0f,
        "pipeline output must stay bit-exact under every schedule");
  }
  sched::check(rt->tasks_completed() == 2, "both tasks must complete");
  delete futures;
  delete rt;
}

TEST(SchedRuntime, PipelineSubmitVsShutdownRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 8;
  options.seed = 23;
  options.max_steps = 2000000;
  sched::ExploreResult result = sched::explore(options, pipeline_body);
  expect_clean(result, "pipeline");
}

// Mid-run telemetry harvest racing both submit and shutdown.  harvest_now()
// serializes whole worker round trips against the coordinators'
// scatter/gather via the per-device connection gates (and whole rounds via
// the round gate), and shutdown holds the same gates for its Shutdown
// sends — so under every interleaving the inferences stay bit-exact and a
// harvest call lands either as a completed round, a round against already
// stopped workers (clean TransportError inside, workers flagged
// unreachable), or a refusal after the stopped flag.  harvest_ms stays 0:
// rounds are driven by the modeled thread, not a periodic timer.
void harvest_race_body() {
  const RuntimeModel& model = RuntimeModel::get();
  auto* rt = new runtime::PipelineRuntime(
      model.graph, model.candidates[1].plan,
      runtime::RuntimeOptions{.harvest_pings = 1});
  auto futures = new std::vector<std::future<Tensor>>;
  SchedThread harvester([rt] {
    rt->harvest_now();
    rt->harvest_now();
  });
  futures->push_back(rt->submit(model.input));
  futures->push_back(rt->submit(model.input));
  rt->shutdown();
  harvester.join();
  sched::check(!rt->harvest_now(), "harvest after shutdown must refuse");
  for (std::future<Tensor>& f : *futures) {
    sched::check(
        Tensor::max_abs_diff(f.get(), model.reference) == 0.0f,
        "harvest rounds must never corrupt an in-flight inference");
  }
  sched::check(rt->health().rounds >= 1,
               "the shutdown round itself always completes");
  delete futures;
  delete rt;
}

TEST(SchedRuntime, HarvestVsSubmitVsShutdownRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 8;
  options.seed = 37;
  options.max_steps = 2000000;
  sched::ExploreResult result = sched::explore(options, harvest_race_body);
  expect_clean(result, "harvest-race");
}

// Plan switching vs in-flight tasks: a nanosecond window forces a
// re-evaluation on practically every submit, so the drain-then-swap path
// races the tasks still inside the active PipelineRuntime.
void adaptive_body() {
  const RuntimeModel& model = RuntimeModel::get();
  auto* rt = new runtime::AdaptiveRuntime(
      model.graph, model.candidates,
      {.beta = 1.0,
       .window = 1e-9,
       .runtime = runtime::RuntimeOptions{.harvest_pings = 1}});
  auto futures = new std::vector<std::future<Tensor>>;
  for (int i = 0; i < 3; ++i) futures->push_back(rt->submit(model.input));
  rt->shutdown();
  for (std::future<Tensor>& f : *futures) {
    sched::check(
        Tensor::max_abs_diff(f.get(), model.reference) == 0.0f,
        "adaptive output must stay bit-exact across plan switches");
  }
  delete futures;
  delete rt;
}

TEST(SchedRuntime, AdaptiveSwitchVsInFlightRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 6;
  options.seed = 29;
  options.max_steps = 2000000;
  sched::ExploreResult result = sched::explore(options, adaptive_body);
  expect_clean(result, "adaptive");
}

// --- worker death vs live traffic --------------------------------------

// A chaos thread arms a hard kill on the plan's first device at an
// arbitrary schedule point while two inferences flow.  Depending on the
// interleaving the kill lands before, between, or after the tasks — or
// never fires — and under every schedule the resilient layer must deliver
// both results bit-exactly: recovery replans over the survivors and no
// accepted inference is dropped or corrupted.  No transport deadlines and
// liveness_poll_ms = 0 (under exploration CondVar::wait_for models an
// immediate timeout, so a polling completer would spin); the death is
// EOF-detected, which needs no clock.
void churn_body() {
  const RuntimeModel& model = RuntimeModel::get();
  runtime::clear_debug_worker_faults();
  runtime::ResilientOptions options;
  options.network = test_network();
  options.runtime = runtime::RuntimeOptions{.harvest_pings = 1};
  options.liveness_poll_ms = 0;
  auto* rt = new runtime::ResilientRuntime(
      model.graph, Cluster::raspberry_pi({1.2, 0.8}), options);
  const DeviceId victim =
      rt->plan().stages.front().assignments.front().device;
  SchedThread killer(
      [victim] { runtime::set_debug_worker_kill_after(victim, 1); });
  auto futures = new std::vector<std::future<Tensor>>;
  futures->push_back(rt->submit(model.input));
  futures->push_back(rt->submit(model.input));
  killer.join();
  rt->shutdown();
  for (std::future<Tensor>& f : *futures) {
    sched::check(Tensor::max_abs_diff(f.get(), model.reference) == 0.0f,
                 "churn must never corrupt or drop an accepted inference");
  }
  runtime::clear_debug_worker_faults();
  delete futures;
  delete rt;
}

TEST(SchedRuntime, WorkerDeathVsTrafficRandom) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 6;
  options.seed = 41;
  options.max_steps = 2000000;
  sched::ExploreResult result = sched::explore(options, churn_body);
  expect_clean(result, "worker-death");
}

// --- pinned schedules --------------------------------------------------

// The three nastiest passing interleavings the exhaustive close-race run
// produced (most context switches / deepest decision strings), pinned as
// replayable regressions.  If a future change makes any of them fail or
// diverge, the replay prints the full step trace.
TEST(SchedRuntime, PinnedCloseRaceSchedules) {
  const char* pinned[] = {
      "0,0,3,3,2,0,1,1,1,3,3,1,3,3,2,3",
      "0,0,3,3,1,1,1,0,3,3,1,0,2,2,3,3",
      "0,0,3,3,1,1,1,0,2,3,3,1,3,3,2,3",
  };
  for (const char* decisions : pinned) {
    sched::ScheduleFailure outcome =
        sched::replay(decisions, queue_close_race_body);
    EXPECT_EQ(outcome.verdict, sched::Verdict::Ok)
        << "pinned schedule [" << decisions
        << "] no longer passes:\n" << outcome.to_string();
  }
}

// Runs last: across everything above, the pass-through lockdep hooks (the
// ones live even outside explore()) must never have observed a lock-order
// cycle in the real runtime.
TEST(SchedRuntime, ZGlobalLockOrderGraphIsAcyclic) {
  const std::vector<std::string> cycles = sched::global_lock_cycles();
  EXPECT_TRUE(cycles.empty()) << cycles.front();
}

}  // namespace
}  // namespace pico
