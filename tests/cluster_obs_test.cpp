// Cluster-wide observability: clock-offset estimation, the worker span
// buffer + wire codec, the transport-agnostic harvest path, and a loopback
// two-worker integration run proving that the merged trace comes out
// monotonic, rebased, and correctly nested under injected clock skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/remote.hpp"
#include "obs/trace.hpp"
#include "partition/pico_dp.hpp"
#include "runtime/pipeline.hpp"

namespace pico {
namespace {

// ---------------------------------------------------------------------------
// ClockOffsetEstimator
// ---------------------------------------------------------------------------

/// Build the quadruple for one symmetric round trip: one-way delays
/// d1 (request) / d2 (reply), remote clock ahead of local by `offset`.
obs::ClockSample make_sample(std::int64_t t1, std::int64_t offset,
                             std::int64_t d1, std::int64_t d2,
                             std::int64_t service = 1000) {
  obs::ClockSample s;
  s.t1_ns = t1;
  s.t2_ns = t1 + d1 + offset;
  s.t3_ns = s.t2_ns + service;
  s.t4_ns = s.t3_ns - offset + d2;
  return s;
}

TEST(ClockOffsetEstimator, RecoversExactOffsetFromSymmetricSamples) {
  constexpr std::int64_t kOffset = 5'000'000;  // remote 5 ms ahead
  constexpr std::int64_t kDelay = 100'000;     // 100 us each way
  obs::ClockOffsetEstimator estimator;
  EXPECT_FALSE(estimator.valid());
  for (int i = 0; i < 50; ++i) {
    estimator.update(make_sample(i * 1'000'000, kOffset, kDelay, kDelay));
  }
  ASSERT_TRUE(estimator.valid());
  EXPECT_EQ(estimator.offset_ns(), kOffset);
  EXPECT_EQ(estimator.rtt_ns(), 2 * kDelay);
  EXPECT_EQ(estimator.min_rtt_ns(), 2 * kDelay);
  EXPECT_EQ(estimator.error_bound_ns(), kDelay);
  EXPECT_EQ(estimator.samples(), 50);
  EXPECT_EQ(estimator.accepted(), 50);
  EXPECT_EQ(estimator.rebase(1'000'000 + kOffset), 1'000'000);
}

TEST(ClockOffsetEstimator, ConvergesWithinErrorBoundUnderJitter) {
  // Simulated skewed worker with asymmetric per-leg jitter; fixed seed so
  // the trajectory is reproducible.  The estimator must converge to within
  // its own reported error bound, which is at most min_rtt / 2.
  constexpr std::int64_t kOffset = 7'500'000;
  constexpr std::int64_t kBase = 80'000;  // 80 us base one-way delay
  Rng rng(1234);
  obs::ClockOffsetEstimator estimator;
  std::int64_t t1 = 0;
  for (int i = 0; i < 300; ++i) {
    const auto d1 = kBase + static_cast<std::int64_t>(rng.uniform(0, 150'000));
    const auto d2 = kBase + static_cast<std::int64_t>(rng.uniform(0, 150'000));
    estimator.update(make_sample(t1, kOffset, d1, d2));
    t1 += 500'000;
  }
  ASSERT_TRUE(estimator.valid());
  const std::int64_t error = std::abs(estimator.offset_ns() - kOffset);
  EXPECT_LE(error, estimator.error_bound_ns())
      << "offset " << estimator.offset_ns() << " vs true " << kOffset;
  // The bound itself must honor the analytical limit: half the best RTT.
  EXPECT_LE(estimator.error_bound_ns(), estimator.min_rtt_ns() / 2 + 1);
  EXPECT_LE(error, estimator.min_rtt_ns() / 2 + 1);
}

TEST(ClockOffsetEstimator, ImplausibleSamplesAreCountedButIgnored) {
  obs::ClockOffsetEstimator estimator;
  obs::ClockSample backwards;
  backwards.t1_ns = 1000;
  backwards.t2_ns = 500;
  backwards.t3_ns = 400;  // remote clock ran backwards
  backwards.t4_ns = 1500;
  estimator.update(backwards);
  EXPECT_EQ(estimator.samples(), 1);
  EXPECT_EQ(estimator.accepted(), 0);
  EXPECT_FALSE(estimator.valid());
  EXPECT_EQ(estimator.offset_ns(), 0);
}

TEST(ClockOffsetEstimator, RttGateRejectsCongestedSamples) {
  constexpr std::int64_t kOffset = 2'000'000;
  obs::ClockOffsetEstimator estimator;
  for (int i = 0; i < 20; ++i) {
    estimator.update(make_sample(i * 1'000'000, kOffset, 50'000, 50'000));
  }
  const std::int64_t before = estimator.offset_ns();
  // A congested round trip: 100x the RTT, grossly asymmetric — its naive
  // offset would be wildly wrong.  The gate must keep it out of the EWMA.
  estimator.update(
      make_sample(30'000'000, kOffset, 9'500'000, 500'000));
  EXPECT_EQ(estimator.offset_ns(), before);
  EXPECT_EQ(estimator.samples(), 21);
  EXPECT_EQ(estimator.accepted(), 20);
}

// ---------------------------------------------------------------------------
// SpanBuffer + wire codec
// ---------------------------------------------------------------------------

obs::SpanRecord sample_span(std::string name, std::int64_t start) {
  obs::SpanRecord span;
  span.name = std::move(name);
  span.category = "worker";
  span.track = obs::device_track(3);
  span.start_ns = start;
  span.duration_ns = 250;
  span.task_id = 9;
  span.args = {{"stage", "1"}, {"trace", "12345"}};
  return span;
}

TEST(SpanBuffer, RecordDrainAndSize) {
  obs::SpanBuffer buffer;
  EXPECT_EQ(buffer.size(), 0u);
  buffer.record(sample_span("a", 10));
  buffer.record(sample_span("b", 20));
  EXPECT_EQ(buffer.size(), 2u);
  const auto drained = buffer.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].name, "a");
  EXPECT_EQ(drained[1].name, "b");
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(SpanBuffer, FlushToTracerPreservesSpans) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  obs::SpanBuffer buffer;
  buffer.record(sample_span("flushed", 42));
  buffer.flush_to_tracer();
  EXPECT_EQ(buffer.size(), 0u);
  const auto spans = tracer.snapshot();
  const bool found =
      std::any_of(spans.begin(), spans.end(),
                  [](const obs::SpanRecord& s) { return s.name == "flushed"; });
  EXPECT_TRUE(found);
  tracer.clear();
  tracer.set_enabled(false);
}

TEST(SpanCodec, RoundTripPreservesEverything) {
  std::vector<obs::SpanRecord> spans = {sample_span("compute", 100),
                                        sample_span("serve", 90)};
  spans[1].args.clear();
  const auto bytes = obs::encode_spans(spans);
  const auto decoded = obs::decode_spans(bytes.data(), bytes.size());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "compute");
  EXPECT_EQ(decoded[0].category, "worker");
  EXPECT_EQ(decoded[0].track, obs::device_track(3));
  EXPECT_EQ(decoded[0].start_ns, 100);
  EXPECT_EQ(decoded[0].duration_ns, 250);
  EXPECT_EQ(decoded[0].task_id, 9);
  ASSERT_EQ(decoded[0].args.size(), 2u);
  EXPECT_EQ(decoded[0].args[0].first, "stage");
  EXPECT_EQ(decoded[0].args[1].second, "12345");
  EXPECT_TRUE(decoded[1].args.empty());
}

TEST(SpanCodec, EmptyListRoundTrips) {
  const auto bytes = obs::encode_spans({});
  EXPECT_TRUE(obs::decode_spans(bytes.data(), bytes.size()).empty());
}

TEST(SpanCodec, MalformedBuffersThrowTransportError) {
  const auto bytes = obs::encode_spans({sample_span("x", 1)});
  // Truncated at every prefix length must throw, never read out of bounds.
  for (std::size_t size = 0; size < bytes.size(); size += 7) {
    EXPECT_THROW(obs::decode_spans(bytes.data(), size), TransportError)
        << "size " << size;
  }
  // Trailing garbage is corruption too.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(obs::decode_spans(padded.data(), padded.size()),
               TransportError);
  // Foreign magic.
  auto patched = bytes;
  patched[0] ^= 0xff;
  EXPECT_THROW(obs::decode_spans(patched.data(), patched.size()),
               TransportError);
}

TEST(SpanCodec, ImplausibleArgCountRejectedBeforeAllocation) {
  // One span with zero args: the per-span arg-count u32 is the last field
  // in the buffer.  A corrupt count must be rejected by the plausibility
  // bound (each arg costs >= 8 bytes of string prefixes), not drive a
  // 4-billion-entry reserve().
  obs::SpanRecord span = sample_span("x", 1);
  span.args.clear();
  auto bytes = obs::encode_spans({span});
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + bytes.size() - sizeof(huge), &huge,
              sizeof(huge));
  EXPECT_THROW(obs::decode_spans(bytes.data(), bytes.size()),
               TransportError);
}

// ---------------------------------------------------------------------------
// harvest_worker over fake closures
// ---------------------------------------------------------------------------

TEST(HarvestWorker, PingsRebaseAndPullDumps) {
  constexpr std::int64_t kOffset = 3'000'000;
  int pings = 0;
  obs::HarvestEndpoint endpoint;
  endpoint.device = 5;
  endpoint.ping = [&pings] {
    ++pings;
    const std::int64_t t1 = pings * 1'000'000;
    return make_sample(t1, kOffset, 20'000, 20'000);
  };
  endpoint.fetch_metrics = [] {
    return std::string("pico_worker_requests_total 4\n");
  };
  endpoint.fetch_trace = [] {
    std::vector<obs::SpanRecord> spans = {sample_span("compute", 0)};
    spans[0].start_ns = 500'000 + kOffset;  // worker-clock instant
    return spans;
  };
  const obs::WorkerTelemetry telemetry = obs::harvest_worker(endpoint, 6);
  EXPECT_TRUE(telemetry.reachable);
  EXPECT_EQ(telemetry.device, 5);
  EXPECT_EQ(pings, 6);
  EXPECT_EQ(telemetry.offset_ns, kOffset);
  EXPECT_EQ(telemetry.metrics_text, "pico_worker_requests_total 4\n");
  ASSERT_EQ(telemetry.spans.size(), 1u);
  // Rebased onto the local timeline: the offset is subtracted out.
  EXPECT_EQ(telemetry.spans[0].start_ns, 500'000);
}

TEST(HarvestWorker, DeadWorkerReportsUnreachable) {
  obs::HarvestEndpoint endpoint;
  endpoint.device = 2;
  endpoint.ping = []() -> obs::ClockSample {
    throw TransportError("peer closed");
  };
  endpoint.fetch_metrics = [] { return std::string(); };
  endpoint.fetch_trace = [] { return std::vector<obs::SpanRecord>(); };
  const obs::WorkerTelemetry telemetry = obs::harvest_worker(endpoint, 3);
  EXPECT_FALSE(telemetry.reachable);
  EXPECT_EQ(telemetry.device, 2);
  EXPECT_TRUE(telemetry.spans.empty());
}

TEST(ClusterTelemetry, MergedPrometheusCarriesPerWorkerSections) {
  obs::ClusterTelemetry cluster;
  obs::WorkerTelemetry a;
  a.device = 0;
  a.reachable = true;
  a.offset_ns = 123;
  a.metrics_text = "metric_a 1\n";
  obs::WorkerTelemetry b;
  b.device = 3;
  b.reachable = false;
  cluster.add(std::move(a));
  cluster.add(std::move(b));
  const std::string merged = cluster.merged_prometheus("local_metric 7\n");
  EXPECT_NE(merged.find("coordinator"), std::string::npos);
  EXPECT_NE(merged.find("local_metric 7"), std::string::npos);
  EXPECT_NE(merged.find("device=0"), std::string::npos);
  EXPECT_NE(merged.find("metric_a 1"), std::string::npos);
  EXPECT_NE(merged.find("device=3"), std::string::npos);
  EXPECT_EQ(cluster.workers().size(), 2u);
}

// ---------------------------------------------------------------------------
// Loopback cluster integration: two in-process workers with injected clock
// skew; the harvested + merged trace must come out rebased and nested.
// ---------------------------------------------------------------------------

class LoopbackClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().reset_values();
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    obs::set_debug_clock_skew_ns(0);
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
  }
};

TEST_F(LoopbackClusterFixture, SkewedWorkersProduceRebasedNestedTrace) {
  // Workers timestamp on a clock running 2 s ahead of the coordinator; a
  // span that skipped rebasing would land far outside the run window.
  constexpr std::int64_t kSkew = 2'000'000'000;
  obs::set_debug_clock_skew_ns(kSkew);

  nn::Graph graph = models::toy_mnist({.input_size = 32});
  Rng rng(7);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  NetworkModel network;
  network.bandwidth = 1e9;
  const auto plan = partition::pico_plan(graph, cluster, network);

  std::vector<DeviceId> devices;
  for (const auto& stage : plan.stages) {
    for (const auto& slice : stage.assignments) {
      if (std::find(devices.begin(), devices.end(), slice.device) ==
          devices.end()) {
        devices.push_back(slice.device);
      }
    }
  }
  ASSERT_EQ(devices.size(), 2u) << "plan must use both devices";

  const std::int64_t run_start = obs::Tracer::now_ns();
  std::vector<obs::WorkerTelemetry> harvested;
  constexpr int kTasks = 5;
  {
    runtime::PipelineRuntime rt(graph, plan);
    Tensor input(graph.input_shape());
    input.randomize(rng);
    for (int i = 0; i < kTasks; ++i) rt.infer(input);
    rt.shutdown();
    harvested = rt.cluster_telemetry().workers();
  }
  const std::int64_t run_end = obs::Tracer::now_ns();

  // Every worker harvested, clock recovered to within a loose bound (the
  // injected skew is exact; jitter is host scheduling noise).
  ASSERT_EQ(harvested.size(), devices.size());
  for (const obs::WorkerTelemetry& worker : harvested) {
    EXPECT_TRUE(worker.reachable) << "device " << worker.device;
    EXPECT_GT(worker.clock_samples, 0);
    EXPECT_NEAR(static_cast<double>(worker.offset_ns),
                static_cast<double>(kSkew), 50e6)
        << "device " << worker.device;
    EXPECT_FALSE(worker.spans.empty()) << "device " << worker.device;
    // compute + serve per request, at minimum.
    EXPECT_GE(worker.spans.size(), 2u * kTasks / devices.size());
    for (const obs::SpanRecord& span : worker.spans) {
      EXPECT_GE(span.duration_ns, 0);
      EXPECT_GE(span.start_ns, run_start - 100'000'000)
          << span.name << " not rebased";
      EXPECT_LE(span.start_ns + span.duration_ns, run_end + 100'000'000)
          << span.name << " not rebased";
    }
    // Nesting: every compute span sits inside a serve span of the same
    // task on the same device track.
    for (const obs::SpanRecord& span : worker.spans) {
      if (span.name != "compute") continue;
      bool nested = false;
      for (const obs::SpanRecord& serve : worker.spans) {
        nested |= serve.name == "serve" && serve.task_id == span.task_id &&
                  serve.track == span.track &&
                  serve.start_ns <= span.start_ns &&
                  span.start_ns + span.duration_ns <=
                      serve.start_ns + serve.duration_ns;
      }
      EXPECT_TRUE(nested) << "compute span of task " << span.task_id;
    }
  }

  // The harvested spans were injected into the global tracer: snapshot()
  // is the merged cluster trace, sorted by start time (monotonic), and the
  // worker compute spans nest inside the coordinator's task spans.
  const auto merged = obs::Tracer::global().snapshot();
  std::int64_t last_start = 0;
  std::size_t worker_compute = 0;
  for (const obs::SpanRecord& span : merged) {
    EXPECT_GE(span.start_ns, last_start) << "snapshot not sorted";
    last_start = span.start_ns;
    if (span.category == "compute" &&
        span.track >= obs::device_track(0)) {
      ++worker_compute;
      bool inside_task = false;
      for (const obs::SpanRecord& task : merged) {
        inside_task |= task.category == "task" &&
                       task.task_id == span.task_id &&
                       task.start_ns <= span.start_ns &&
                       span.start_ns + span.duration_ns <=
                           task.start_ns + task.duration_ns +
                               50'000'000;
      }
      EXPECT_TRUE(inside_task)
          << "compute span of task " << span.task_id
          << " outside its task span";
    }
  }
  EXPECT_GE(worker_compute, static_cast<std::size_t>(kTasks));

  // The timestamp-derived splits made it into the registry.
  obs::Registry& registry = obs::Registry::global();
  long long wire_observations = 0;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    for (const auto& slice : plan.stages[s].assignments) {
      const std::vector<obs::Label> labels{
          {"stage", std::to_string(s)},
          {"device", std::to_string(slice.device)}};
      wire_observations +=
          registry.histogram("pico_wire_request_seconds", labels).count();
    }
  }
  EXPECT_GT(wire_observations, 0);
  for (const DeviceId id : devices) {
    EXPECT_NEAR(
        registry
            .gauge("pico_clock_offset_ns",
                   {{"device", std::to_string(id)}})
            .value(),
        static_cast<double>(kSkew), 50e6);
  }
}

TEST_F(LoopbackClusterFixture, HarvestDisabledLeavesTelemetryEmpty) {
  nn::Graph graph = models::toy_mnist({.input_size = 16});
  Rng rng(3);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_homogeneous(2, 1.0);
  NetworkModel network;
  network.bandwidth = 1e9;
  const auto plan = partition::pico_plan(graph, cluster, network);
  runtime::RuntimeOptions options;
  options.harvest_telemetry = false;
  runtime::PipelineRuntime rt(graph, plan, options);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  rt.infer(input);
  rt.shutdown();
  EXPECT_TRUE(rt.cluster_telemetry().workers().empty());
}

}  // namespace
}  // namespace pico
