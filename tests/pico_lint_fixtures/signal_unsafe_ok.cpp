// Fixture: signal-unsafe must stay quiet.  Lint-only — never compiled.
//
// The same handler shape as signal_unsafe_bad.cpp done right: whitelisted
// syscall leaves (openat/write/close), a hand-rolled formatter, and fixed
// stack buffers — everything the dump path is allowed to be made of.
// pico-lint: allow-file(unchecked-status)
namespace fixture {

int openat(int dirfd, const char* path, int flags);
long write(int fd, const void* data, unsigned long size);
int close(int fd);

// Hand-rolled leaf formatter: loops and a fixed buffer only.
int format_u32(char* out, unsigned value) {
  int length = 0;
  char reversed[16];
  do {
    reversed[length++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && length < 15);
  for (int i = 0; i < length; ++i) {
    out[i] = reversed[length - 1 - i];
  }
  return length;
}

void dump_counters(int fd, const unsigned* counters, int count) {
  char buffer[16];
  for (int i = 0; i < count; ++i) {
    const int length = format_u32(buffer, counters[i]);
    write(fd, buffer, static_cast<unsigned long>(length));
  }
}

// pico-lint: signal-root
void safe_crash_handler(int signal_number) {
  static unsigned counters[4];
  const int fd = openat(0, "postmortem.json", 1);
  if (fd < 0) return;
  counters[0] = static_cast<unsigned>(signal_number);
  dump_counters(fd, counters, 4);
  close(fd);
}

}  // namespace fixture
