// Fixture: unchecked-status MUST fire.  Lint-only — never compiled.
namespace fixture {

struct Error {
  int code;
};

Error flush_metrics(int fd);

void teardown(int fd) {
  // VIOLATION: POSIX errno-style result dropped on the floor.
  ::shutdown(fd, 2);
  // VIOLATION: repo Error-returning function result discarded.
  flush_metrics(fd);
  // VIOLATION: ::close can report lost writes on some filesystems.
  ::close(fd);
}

}  // namespace fixture
