// Fixture: compliant twin of blocking_under_lock_bad.cpp — MUST stay quiet.
// pico-lint: allow-file(unguarded-member)
namespace fixture {

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct CondVar {
  void wait(MutexLock& lock);
};
struct Connection {
  void send(int payload);
  int recv();
};
struct Worker {
  void join();
};

struct Runtime {
  Mutex mutex_;
  CondVar cv_;
  Connection peer_;
  Worker worker_;
  int state_ = 0;

  void broadcast(int payload) {
    {
      MutexLock lock(mutex_);
      state_ = payload;
    }
    // Blocking call after the critical section closed.
    peer_.send(payload);
  }

  int drain() {
    mutex_.lock();
    const int snapshot = state_;
    mutex_.unlock();
    // Manual unlock before the blocking call.
    return peer_.recv() + snapshot;
  }

  void park() {
    MutexLock lock(mutex_);
    // CondVar::wait releases the lock while blocked: allowed.
    cv_.wait(lock);
  }

  void stop() {
    MutexLock lock(mutex_);
    // pico-lint: allow(blocking-under-lock): worker never takes mutex_;
    // join under the lock is deliberate here
    worker_.join();
  }
};

}  // namespace fixture
