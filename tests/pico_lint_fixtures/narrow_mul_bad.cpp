// Fixture: narrow-mul MUST fire.  Lint-only — never compiled.
#include <cstdint>
#include <vector>

namespace fixture {

float sum_patch(const std::vector<float>& data, int channels, int height,
                int width) {
  // VIOLATION: int*int product initialized into a 64-bit total — the
  // multiply wraps at 2^31 before the widening happens.
  const std::int64_t plane = height * width;
  float acc = 0.0f;
  for (std::int64_t i = 0; i < plane * channels; ++i) {
    acc += data[static_cast<std::size_t>(i)];
  }
  return acc;
}

void build_buffer(std::vector<float>& out, int rows, int cols) {
  // VIOLATION: 32-bit product as an allocation size.
  out.resize(rows * cols);
}

float* offset_into(float* base, int row, int stride) {
  // VIOLATION: 32-bit product added to a pointer.
  return base + row * stride;
}

}  // namespace fixture
