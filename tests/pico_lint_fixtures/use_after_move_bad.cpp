// Fixture: use-after-move MUST fire.  Lint-only — never compiled.
// pico-lint: allow-file(unguarded-member)
namespace fixture {

struct Plan {
  int stage_count();
};
void install(Plan plan);
void announce(Plan plan);

int reuse_after_handoff() {
  Plan plan;
  install(std::move(plan));
  // VIOLATION: `plan` is moved-from; stage_count() reads unspecified state.
  return plan.stage_count();
}

void double_handoff() {
  Plan plan;
  install(std::move(plan));
  // VIOLATION: passing the moved-from value to a second consumer.
  announce(plan);
}

}  // namespace fixture
