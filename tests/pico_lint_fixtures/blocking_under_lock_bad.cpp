// Fixture: blocking-under-lock MUST fire.  Lint-only — never compiled.
// pico-lint: allow-file(unguarded-member)
namespace fixture {

struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct Connection {
  void send(int payload);
  int recv();
};
struct Worker {
  void join();
};

struct Runtime {
  Mutex mutex_;
  Connection peer_;
  Worker worker_;
  int state_ = 0;

  void broadcast(int payload) {
    MutexLock lock(mutex_);
    state_ = payload;
    // VIOLATION: network send while holding the runtime mutex serializes
    // every other thread behind this peer.
    peer_.send(payload);
  }

  int drain() {
    mutex_.lock();
    // VIOLATION: blocking recv inside a manual lock()/unlock() scope.
    const int value = peer_.recv();
    mutex_.unlock();
    return value;
  }

  void stop() {
    MutexLock lock(mutex_);
    // VIOLATION: join while holding the lock the worker itself takes.
    worker_.join();
  }
};

}  // namespace fixture
