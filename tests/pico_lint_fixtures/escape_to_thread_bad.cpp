// Fixture: escape-to-thread MUST fire.  Lint-only — never compiled.
//
// Each case encodes a lifetime escape this repo actually shipped:
//   plan_switch    the simulator use-after-free — a local captured by
//                  reference into a member thread that outlives the call,
//   tls_teardown   the TLS-destruction-order UAF — `this` captured into a
//                  detached thread that can outrun the object,
//   fd_race        the TcpConnection fd race — `[&]` default capture handed
//                  to a pool with no drain before scope exit.
// pico-lint: allow-file(unguarded-member)
namespace fixture {

struct SchedThread {
  void join();
};
struct Pool {
  template <typename F>
  void submit(F&& task);
};
struct Simulator {
  int step();
};

struct Runtime {
  SchedThread worker_;
  Pool pool_;

  void plan_switch() {
    Simulator simulator;
    // VIOLATION: `&simulator` escapes into a member thread; this frame
    // returns (and `simulator` dies) while worker_ is still running.
    worker_ = SchedThread([&simulator] { simulator.step(); });
  }

  void tls_teardown() {
    // VIOLATION: `this` captured into a detached thread — the object can be
    // destroyed (or its thread_locals torn down) before the thread runs.
    std::thread reaper([this] { cleanup(); });
    reaper.detach();
  }

  void fd_race(int fd) {
    int retries = 3;
    // VIOLATION: `[&]` default capture into a pool task; `retries` and `fd`
    // are dead the moment this function returns.
    pool_.submit([&] { retry(fd, retries); });
  }

  void cleanup();
  void retry(int fd, int count);
};

}  // namespace fixture
