// Fixture: compliant twin of unguarded_member_bad.hpp — MUST stay quiet.
#pragma once

#define PICO_GUARDED_BY(x)

namespace fixture {

struct Mutex {};
namespace std_like {
template <typename T>
struct atomic {
  T value;
};
}  // namespace std_like

class StageQueue {
 public:
  void push(int v);

 private:
  Mutex mutex_;
  int pending_count_ PICO_GUARDED_BY(mutex_) = 0;
  std::atomic<long long> last_sequence_{0};
  const int capacity_ = 64;
  static int instance_count_;
  // sched-exempt: written once before threads start, read-only after
  int config_version_ = 0;
  // pico-lint: allow(unguarded-member): owned by the consumer thread only
  int consumer_cursor_ = 0;
};

}  // namespace fixture
