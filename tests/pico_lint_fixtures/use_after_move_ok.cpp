// Fixture: use-after-move must stay quiet.  Lint-only — never compiled.
//
// The benign shapes around std::move the check must not flag: reassignment
// and .clear()-style reinitialization, a conditional move that expires with
// its block, the `[fn = std::move(fn)]` init-capture idiom (the name inside
// the lambda body is the capture, not the moved-from local), and out-param
// refills via `&x`.
// pico-lint: allow-file(unguarded-member)
// pico-lint: allow-file(escape-to-thread)
namespace fixture {

struct Plan {
  int stage_count();
  void clear();
};
void install(Plan plan);
bool should_install(const Plan& plan);
void refill(Plan* out);

int moved_then_reassigned(Plan replacement) {
  Plan plan;
  install(std::move(plan));
  plan = replacement;  // OK: reassigned before any read
  return plan.stage_count();
}

int moved_then_cleared() {
  Plan plan;
  install(std::move(plan));
  plan.clear();  // OK: reinitialized in place
  return plan.stage_count();
}

int conditional_move(bool urgent) {
  Plan plan;
  if (urgent) {
    install(std::move(plan));
    return 0;
  }
  // OK: on this path the move never ran.
  return plan.stage_count();
}

void capture_rebind(Plan plan, void (*spawn)(void (*)())) {
  auto task = [plan = std::move(plan)]() mutable {
    install(std::move(plan));  // OK: this `plan` is the init-capture
  };
  task();
}

int out_param_refill() {
  Plan plan;
  install(std::move(plan));
  refill(&plan);  // OK: `&plan` hands it out for reinitialization
  return plan.stage_count();
}

}  // namespace fixture
