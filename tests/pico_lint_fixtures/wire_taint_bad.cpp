// Fixture: wire-taint MUST fire.  Lint-only — never compiled.
#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

template <typename T>
T get(const std::uint8_t*& cursor, const std::uint8_t* end);
template <typename T>
T take(const std::uint8_t*& cursor, const std::uint8_t* end);

std::vector<float> decode_frame(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto count = take<std::uint32_t>(cursor, end);
  std::vector<float> values;
  // VIOLATION: decoded count drives the allocation with no bounds check —
  // a corrupt frame allocates gigabytes.
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    values.push_back(get<float>(cursor, end));
  }
  return values;
}

void copy_payload(float* dst, const std::uint8_t*& cursor,
                  const std::uint8_t* end) {
  const auto bytes = get<std::uint64_t>(cursor, end);
  // VIOLATION: decoded length reaches memcpy unchecked.
  std::memcpy(dst, cursor, bytes);
}

}  // namespace fixture
