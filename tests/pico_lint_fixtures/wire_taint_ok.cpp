// Fixture: compliant twin of wire_taint_bad.cpp — MUST stay quiet.
#include <cstdint>
#include <cstring>
#include <vector>

#define PICO_CHECK_MSG(cond, msg)

namespace fixture {

template <typename T>
T get(const std::uint8_t*& cursor, const std::uint8_t* end);
template <typename T>
T take(const std::uint8_t*& cursor, const std::uint8_t* end);

std::vector<float> decode_frame(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto count = take<std::uint32_t>(cursor, end);
  // Bounds check before the allocation: each value costs 4 bytes.
  PICO_CHECK_MSG(count <= (end - cursor) / 4, "frame count implausible");
  std::vector<float> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    values.push_back(get<float>(cursor, end));
  }
  return values;
}

void copy_payload(float* dst, const std::uint8_t*& cursor,
                  const std::uint8_t* end) {
  const auto bytes = get<std::uint64_t>(cursor, end);
  if (bytes > static_cast<std::uint64_t>(end - cursor)) {
    return;
  }
  std::memcpy(dst, cursor, bytes);
}

}  // namespace fixture
