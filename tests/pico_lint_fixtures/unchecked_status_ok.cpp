// Fixture: compliant twin of unchecked_status_bad.cpp — MUST stay quiet.
namespace fixture {

struct Error {
  int code;
};

Error flush_metrics(int fd);
void log_errno(const char* what);

void teardown(int fd) {
  // Handled result.
  if (::shutdown(fd, 2) != 0) {
    log_errno("shutdown");
  }
  const Error err = flush_metrics(fd);
  if (err.code != 0) {
    log_errno("flush_metrics");
  }
  // Annotated best-effort discard.
  // pico-lint: allow(unchecked-status): descriptor release in teardown;
  // nothing useful can be done with the error here
  ::close(fd);
}

class Wrapper {
 public:
  void close();
  ~Wrapper() {
    // Unqualified call resolves to the void member above, not POSIX close.
    close();
  }
};

}  // namespace fixture
