// Fixture: compliant twin of narrow_mul_bad.cpp — MUST stay quiet.
#include <cstdint>
#include <vector>

namespace fixture {

float sum_patch(const std::vector<float>& data, int channels, int height,
                int width) {
  // Widened before the multiply: the product is computed in 64 bits.
  const std::int64_t plane =
      static_cast<std::int64_t>(height) * width;
  float acc = 0.0f;
  for (std::int64_t i = 0; i < plane * channels; ++i) {
    acc += data[static_cast<std::size_t>(i)];
  }
  return acc;
}

void build_buffer(std::vector<float>& out, int rows, int cols) {
  out.resize(static_cast<std::size_t>(rows) * cols);
}

float* offset_into(float* base, int row, int stride) {
  return base + static_cast<std::ptrdiff_t>(row) * stride;
}

int coordinate(int oy, int sh, int ph) {
  // Narrow product kept in a narrow context (coordinate math): not flagged.
  int iy = oy * sh - ph;
  return iy;
}

}  // namespace fixture
