// Fixture: escape-to-thread must stay quiet.  Lint-only — never compiled.
//
// The safe twins of escape_to_thread_bad.cpp: a reference capture bounded
// by a join before scope exit, `this` landing in a member thread the
// destructor joins (the SchedThread contract), value captures into a
// detached thread, and `[&]` into parallel_for (which blocks until done).
// pico-lint: allow-file(unguarded-member)
namespace fixture {

struct SchedThread {
  void join();
};
struct Pool {
  template <typename F>
  void submit(F&& task);
  template <typename F>
  void parallel_for(int count, F&& body);
};

struct Runtime {
  SchedThread worker_;
  Pool pool_;

  void joined_before_exit(int* totals, int count) {
    int sum = 0;
    // OK: `&sum` escapes, but the join below bounds the thread inside this
    // scope — the capture can never dangle.
    std::thread accumulator([&sum, totals, count] {
      for (int i = 0; i < count; ++i) sum += totals[i];
    });
    accumulator.join();
  }

  void start() {
    // OK: `this` into a member thread — the owning object's destructor
    // joins worker_, so the thread never outlives *this.
    worker_ = SchedThread([this] { run(); });
  }

  void fire_and_forget(int fd) {
    // OK: value captures only — the task owns copies.
    std::thread logger([fd] { log_close(fd); });
    logger.detach();
  }

  void fan_out(int* strips, int count) {
    // OK: parallel_for blocks until every strip completes; `[&]` cannot
    // outlive this frame.
    pool_.parallel_for(count, [&](int s) { strips[s] += 1; });
  }

  void run();
  static void log_close(int fd);
};

}  // namespace fixture
