// Fixture: unguarded-member MUST fire.  Lint-only — never compiled.
#pragma once

namespace fixture {

struct Mutex {};
template <typename T>
struct atomic {
  T value;
};

class StageQueue {
 public:
  void push(int v);

 private:
  Mutex mutex_;
  // VIOLATION: mutable state in a concurrent class with no discipline.
  int pending_count_ = 0;
  // VIOLATION: multi-line declaration, still a bare mutable member.
  long long
      last_sequence_ = 0;
};

}  // namespace fixture
