// Fixture: signal-unsafe MUST fire.  Lint-only — never compiled.
//
// A signal-root handler reaches malloc three helpers deep, constructs a
// dynamic container, and throws — each a distinct violation with the call
// chain in the diagnostic.
// pico-lint: allow-file(unchecked-status)
namespace fixture {

struct Event {
  int code;
};

void* malloc(unsigned long size);

// Deep helper: the allocation is nowhere near the handler textually.
char* format_event(const Event& event) {
  // VIOLATION: malloc on the handler path (root -> dump_state ->
  // render_events -> format_event).
  char* buffer = static_cast<char*>(malloc(64));
  buffer[0] = static_cast<char>('0' + event.code % 10);
  return buffer;
}

void render_events(const Event* events, int count) {
  for (int i = 0; i < count; ++i) {
    format_event(events[i]);
  }
}

void dump_state(const Event* events, int count) {
  // VIOLATION: dynamic container constructed on the handler path.
  std::string header = "events";
  render_events(events, count);
  if (count < 0) {
    // VIOLATION: throw unwinds (and allocates the exception object).
    throw header;
  }
}

// pico-lint: signal-root
void crash_handler(int signal_number) {
  static Event events[8];
  dump_state(events, signal_number);
}

}  // namespace fixture
