// Explorer self-test: seeded toy bugs the checker must catch (textbook
// lock-order deadlock, missed notify, lost update on a bare flag), the
// lockdep cycle report, replay determinism, and divergence detection.
// Only built under the PICO_SCHED preset.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "sched/explorer.hpp"
#include "sched/hooks.hpp"

namespace pico {
namespace {

sched::ExploreOptions exhaustive() {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Exhaustive;
  options.preemption_bound = 2;
  return options;
}

bool has_verdict(const sched::ExploreResult& result,
                 sched::Verdict verdict) {
  for (const sched::ScheduleFailure& failure : result.failures) {
    if (failure.verdict == verdict) return true;
  }
  return false;
}

// --- toy 1: AB/BA deadlock ---------------------------------------------

struct TwoLocks {
  Mutex a;
  Mutex b;
};

void deadlock_toy_body() {
  // Leaked on purpose: a failing schedule parks its threads forever, and
  // they still hold pointers into the model's state.
  auto* locks = new TwoLocks;
  sched::name_object(&locks->a, "A");
  sched::name_object(&locks->b, "B");
  SchedThread first([locks] {
    MutexLock hold_a(locks->a);
    MutexLock hold_b(locks->b);
  });
  SchedThread second([locks] {
    MutexLock hold_b(locks->b);
    MutexLock hold_a(locks->a);
  });
  first.join();
  second.join();
}

TEST(SchedExplorer, CatchesTextbookDeadlock) {
  sched::ExploreResult result = sched::explore(exhaustive(),
                                               deadlock_toy_body);
  ASSERT_FALSE(result.failures.empty()) << result.summary();
  EXPECT_TRUE(has_verdict(result, sched::Verdict::Deadlock))
      << result.summary();
  // The failing schedule must be replayable from its decision string.
  const sched::ScheduleFailure& failure = result.failures.front();
  ASSERT_FALSE(failure.decisions.empty());
  sched::ScheduleFailure again =
      sched::replay(failure.decisions, deadlock_toy_body);
  EXPECT_EQ(again.verdict, sched::Verdict::Deadlock) << again.to_string();
}

TEST(SchedExplorer, LockdepReportsAbBaCycle) {
  sched::ExploreResult result = sched::explore(exhaustive(),
                                               deadlock_toy_body);
  ASSERT_FALSE(result.lock_cycles.empty()) << result.summary();
  const std::string& cycle = result.lock_cycles.front();
  EXPECT_NE(cycle.find("A"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("B"), std::string::npos) << cycle;
}

TEST(SchedExplorer, ConsistentLockOrderIsClean) {
  sched::ExploreResult result = sched::explore(exhaustive(), [] {
    auto* locks = new TwoLocks;
    SchedThread first([locks] {
      MutexLock hold_a(locks->a);
      MutexLock hold_b(locks->b);
    });
    SchedThread second([locks] {
      MutexLock hold_a(locks->a);
      MutexLock hold_b(locks->b);
    });
    first.join();
    second.join();
    delete locks;
  });
  EXPECT_TRUE(result.complete) << result.summary();
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(SchedExplorer, LockdepFiresOnNonDeadlockingSchedule) {
  // Single-threaded: no schedule can deadlock, but the acquisition orders
  // A-then-B and B-then-A both happen, so the cycle is still a report.
  sched::ExploreResult result = sched::explore(exhaustive(), [] {
    TwoLocks locks;
    sched::name_object(&locks.a, "A");
    sched::name_object(&locks.b, "B");
    {
      MutexLock hold_a(locks.a);
      MutexLock hold_b(locks.b);
    }
    {
      MutexLock hold_b(locks.b);
      MutexLock hold_a(locks.a);
    }
  });
  EXPECT_TRUE(result.failures.empty()) << result.summary();
  EXPECT_FALSE(result.lock_cycles.empty()) << result.summary();
  EXPECT_FALSE(result.ok());
}

// --- toy 2: missed notify ----------------------------------------------

struct NotifyToy {
  Mutex m;
  CondVar cv;
  bool flag = false;
  bool waiter = false;
};

void missed_notify_body() {
  auto* toy = new NotifyToy;  // leaked on purpose (see deadlock toy)
  sched::name_object(&toy->cv, "flag_cv");
  SchedThread waiter([toy] {
    MutexLock lock(toy->m);
    toy->waiter = true;
    while (!toy->flag) toy->cv.wait(toy->m);
  });
  SchedThread setter([toy] {
    // BUG: reads `waiter` without the lock, so it can observe "nobody
    // waiting" while the waiter is committing to its wait.
    const bool someone = toy->waiter;
    {
      MutexLock lock(toy->m);
      toy->flag = true;
    }
    if (someone) toy->cv.notify_one();
  });
  waiter.join();
  setter.join();
}

TEST(SchedExplorer, CatchesMissedNotify) {
  sched::ExploreResult result = sched::explore(exhaustive(),
                                               missed_notify_body);
  ASSERT_FALSE(result.failures.empty()) << result.summary();
  EXPECT_TRUE(has_verdict(result, sched::Verdict::LostWakeup))
      << result.summary();
  const sched::ScheduleFailure& failure = result.failures.front();
  sched::ScheduleFailure again =
      sched::replay(failure.decisions, missed_notify_body);
  EXPECT_EQ(again.verdict, sched::Verdict::LostWakeup) << again.to_string();
}

TEST(SchedExplorer, UnconditionalNotifyIsClean) {
  sched::ExploreResult result = sched::explore(exhaustive(), [] {
    NotifyToy toy;
    SchedThread waiter([&toy] {
      MutexLock lock(toy.m);
      while (!toy.flag) toy.cv.wait(toy.m);
    });
    SchedThread setter([&toy] {
      {
        MutexLock lock(toy.m);
        toy.flag = true;
      }
      toy.cv.notify_one();
    });
    waiter.join();
    setter.join();
  });
  EXPECT_TRUE(result.complete) << result.summary();
  EXPECT_TRUE(result.ok()) << result.summary();
}

// --- toy 3: lost update on a bare flag ---------------------------------

void flag_race_body() {
  auto* counter = new int(0);  // leaked on purpose (see deadlock toy)
  auto bump = [counter] {
    const int seen = *counter;
    sched::yield("between read and write");
    *counter = seen + 1;
  };
  SchedThread first(bump);
  SchedThread second(bump);
  first.join();
  second.join();
  sched::check(*counter == 2, "increment lost");
  delete counter;
}

TEST(SchedExplorer, CatchesLostUpdateOnBareFlag) {
  sched::ExploreResult result = sched::explore(exhaustive(),
                                               flag_race_body);
  ASSERT_FALSE(result.failures.empty()) << result.summary();
  EXPECT_TRUE(has_verdict(result, sched::Verdict::CheckFailed))
      << result.summary();
  const sched::ScheduleFailure& failure = result.failures.front();
  sched::ScheduleFailure again =
      sched::replay(failure.decisions, flag_race_body);
  EXPECT_EQ(again.verdict, sched::Verdict::CheckFailed)
      << again.to_string();
}

// --- replay / determinism ----------------------------------------------

TEST(SchedExplorer, SameSeedSameSchedulesSameVerdict) {
  sched::ExploreOptions options;
  options.mode = sched::Mode::Random;
  options.random_schedules = 40;
  options.seed = 12345;
  sched::ExploreResult first = sched::explore(options, flag_race_body);
  sched::ExploreResult second = sched::explore(options, flag_race_body);
  ASSERT_EQ(first.failures.size(), second.failures.size());
  ASSERT_FALSE(first.failures.empty()) << first.summary();
  EXPECT_EQ(first.failures[0].verdict, second.failures[0].verdict);
  EXPECT_EQ(first.failures[0].decisions, second.failures[0].decisions);
  EXPECT_EQ(first.failures[0].schedule_index,
            second.failures[0].schedule_index);
  EXPECT_EQ(first.failures[0].seed, second.failures[0].seed);
}

TEST(SchedExplorer, ImpossiblePrescriptionIsDivergence) {
  sched::ScheduleFailure failure = sched::replay("99,99", flag_race_body);
  EXPECT_EQ(failure.verdict, sched::Verdict::Divergence)
      << failure.to_string();
}

TEST(SchedExplorer, ReplayOfCleanModelPasses) {
  sched::ScheduleFailure failure = sched::replay("", [] {
    Mutex m;
    int value = 0;
    SchedThread worker([&] {
      MutexLock lock(m);
      value = 1;
    });
    worker.join();
    MutexLock lock(m);
    sched::check(value == 1, "write visible after join");
  });
  EXPECT_EQ(failure.verdict, sched::Verdict::Ok) << failure.to_string();
}

// --- failure artifacts --------------------------------------------------

TEST(SchedExplorer, WritesFailureArtifacts) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pico-sched-artifacts";
  std::filesystem::remove_all(dir);
  setenv("PICO_SCHED_ARTIFACT_DIR", dir.c_str(), 1);
  sched::ExploreResult result = sched::explore(exhaustive(),
                                               deadlock_toy_body);
  const int written = sched::write_failure_artifacts(result, "toy");
  unsetenv("PICO_SCHED_ARTIFACT_DIR");
  ASSERT_FALSE(result.failures.empty());
  EXPECT_GE(written, 1);
  EXPECT_TRUE(std::filesystem::exists(dir / "toy-0.txt"));
}

}  // namespace
}  // namespace pico
