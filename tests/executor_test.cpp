// execute_segment vs whole-graph execution: for every model in the zoo and a
// sweep of segments/regions, computing a strip through a fused segment must
// equal the sliced reference result exactly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "nn/receptive.hpp"
#include "partition/units.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

struct SegmentCase {
  const char* name;
  models::ModelId model;
  int input_size;
};

class SegmentExecution : public ::testing::TestWithParam<SegmentCase> {};

TEST_P(SegmentExecution, StripsMatchReference) {
  const SegmentCase param = GetParam();
  nn::Graph g = models::build(param.model, {.input_size = param.input_size});
  Rng rng(55);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const std::vector<Tensor> reference = nn::execute_all(g, input);

  const auto units = partition::partition_units(g);
  // Split the unit chain into three segments and each segment's output into
  // three strips; every (segment, strip) must match the reference slice.
  const int unit_count = static_cast<int>(units.size());
  const int cut1 = unit_count / 3, cut2 = 2 * unit_count / 3;
  const std::array<std::pair<int, int>, 3> segments{
      std::pair{0, cut1}, std::pair{cut1 + 1, cut2},
      std::pair{cut2 + 1, unit_count - 1}};

  for (const auto& [u_first, u_last] : segments) {
    if (u_first > u_last) continue;
    const partition::Unit span =
        partition::unit_span(units, u_first, u_last);
    const Shape out_shape = g.node(span.last).out_shape;
    const Shape in_shape = g.node(span.first).in_shape;
    const Tensor& segment_input =
        reference[static_cast<std::size_t>(span.first - 1)];
    ASSERT_EQ(segment_input.shape(), in_shape);

    const int h = out_shape.height;
    const std::array<Region, 3> strips{Region::rows(0, h / 3, out_shape.width),
                                       Region::rows(h / 3, 2 * h / 3,
                                                    out_shape.width),
                                       Region::rows(2 * h / 3, h,
                                                    out_shape.width)};
    for (const Region& strip : strips) {
      if (strip.empty()) continue;
      const Region need =
          nn::segment_input_region(g, span.first, span.last, strip);
      const Tensor piece = extract(segment_input, need);
      const Tensor got =
          nn::execute_segment(g, span.first, span.last, {need, piece}, strip);
      const Tensor expected = extract(
          reference[static_cast<std::size_t>(span.last)], strip);
      ASSERT_FLOAT_EQ(Tensor::max_abs_diff(expected, got), 0.0f)
          << param.name << " segment [" << span.first << "," << span.last
          << "] strip " << strip;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SegmentExecution,
    ::testing::Values(SegmentCase{"vgg16", models::ModelId::Vgg16, 64},
                      SegmentCase{"yolov2", models::ModelId::Yolov2, 64},
                      SegmentCase{"resnet34", models::ModelId::Resnet34, 64},
                      SegmentCase{"inception", models::ModelId::Inception,
                                  96},
                      SegmentCase{"toy", models::ModelId::ToyMnist, 32}),
    [](const auto& info) { return info.param.name; });

TEST(Executor, WholeGraphAsSingleSegment) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  Rng rng(77);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor expected = nn::execute(g, input);
  const Shape out = g.output_shape();
  const Region full_in =
      Region::full(g.input_shape().height, g.input_shape().width);
  const Tensor got = nn::execute_segment(
      g, 1, g.size() - 1, {full_in, input},
      Region::full(out.height, out.width));
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(expected, got), 0.0f);
}

TEST(Executor, RejectsUndercoveredInput) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  Rng rng(78);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Shape out = g.output_shape();
  // Provide only half the input but demand the full output.
  const Region half = Region::rows(0, 16, 32);
  EXPECT_THROW(nn::execute_segment(g, 1, g.size() - 1,
                                   {half, extract(input, half)},
                                   Region::full(out.height, out.width)),
               InvariantError);
}

TEST(Executor, RejectsShapeMismatch) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  Rng rng(1);
  g.randomize_weights(rng);
  Tensor wrong({1, 16, 16});
  EXPECT_THROW(nn::execute(g, wrong), InvariantError);
}

TEST(Executor, ClassifierModelsExecute) {
  nn::Graph g =
      models::vgg16({.input_size = 32, .include_classifier = true});
  Rng rng(79);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor out = nn::execute(g, input);
  EXPECT_EQ(out.shape(), (Shape{1000, 1, 1}));
}

}  // namespace
}  // namespace pico
