#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "partition/splitter.hpp"

namespace pico {
namespace {

using partition::split_grid;
using partition::split_rows_equal;
using partition::split_rows_proportional;

void expect_tiling(int height, int width, const std::vector<Region>& strips) {
  EXPECT_TRUE(tiles_exactly(Region::full(height, width), strips));
}

TEST(Splitter, EqualSplitBalanced) {
  const auto strips = split_rows_equal(10, 4, 3);
  ASSERT_EQ(strips.size(), 3u);
  expect_tiling(10, 4, strips);
  for (const Region& r : strips) {
    EXPECT_GE(r.height(), 3);
    EXPECT_LE(r.height(), 4);
    EXPECT_EQ(r.width(), 4);
  }
}

TEST(Splitter, EqualSplitMorePartsThanRows) {
  const auto strips = split_rows_equal(2, 5, 4);
  ASSERT_EQ(strips.size(), 4u);
  expect_tiling(2, 5, strips);
  int empty = 0;
  for (const Region& r : strips) empty += r.empty();
  EXPECT_EQ(empty, 2);
}

TEST(Splitter, SinglePart) {
  const auto strips = split_rows_equal(7, 3, 1);
  ASSERT_EQ(strips.size(), 1u);
  EXPECT_EQ(strips[0], Region::full(7, 3));
}

TEST(Splitter, ProportionalTracksWeights) {
  const std::vector<double> weights{3.0, 1.0};
  const auto strips = split_rows_proportional(100, 8, weights);
  expect_tiling(100, 8, strips);
  EXPECT_EQ(strips[0].height(), 75);
  EXPECT_EQ(strips[1].height(), 25);
}

TEST(Splitter, ZeroWeightGetsEmptyStrip) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  const auto strips = split_rows_proportional(10, 2, weights);
  expect_tiling(10, 2, strips);
  EXPECT_TRUE(strips[1].empty());
  EXPECT_EQ(strips[0].height(), 5);
  EXPECT_EQ(strips[2].height(), 5);
}

// Property sweep: random weights always produce an exact, ordered tiling.
class ProportionalSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProportionalSweep, AlwaysTilesExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int height = rng.uniform_int(1, 300);
    const int parts = rng.uniform_int(1, 12);
    std::vector<double> weights(static_cast<std::size_t>(parts));
    for (auto& w : weights) w = rng.uniform(0.1, 10.0);
    const auto strips = split_rows_proportional(height, 3, weights);
    ASSERT_EQ(static_cast<int>(strips.size()), parts);
    expect_tiling(height, 3, strips);
    // Strips appear in order.
    int cursor = 0;
    for (const Region& r : strips) {
      if (r.empty()) continue;
      EXPECT_EQ(r.row_begin, cursor);
      cursor = r.row_end;
    }
    EXPECT_EQ(cursor, height);
  }
}

TEST_P(ProportionalSweep, ErrorBoundedVsIdeal) {
  // Divide & conquer rounding error per strip is O(log parts) rows.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 999);
  for (int trial = 0; trial < 20; ++trial) {
    const int height = rng.uniform_int(64, 512);
    const int parts = rng.uniform_int(2, 8);
    std::vector<double> weights(static_cast<std::size_t>(parts));
    double total = 0.0;
    for (auto& w : weights) {
      w = rng.uniform(0.5, 4.0);
      total += w;
    }
    const auto strips = split_rows_proportional(height, 1, weights);
    for (int k = 0; k < parts; ++k) {
      const double ideal =
          height * weights[static_cast<std::size_t>(k)] / total;
      EXPECT_NEAR(strips[static_cast<std::size_t>(k)].height(), ideal,
                  4.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProportionalSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Splitter, GridTilesExactly) {
  const auto tiles = split_grid(10, 9, 3, 2);
  ASSERT_EQ(tiles.size(), 6u);
  expect_tiling(10, 9, tiles);
}

TEST(Splitter, GridSingleCell) {
  const auto tiles = split_grid(5, 5, 1, 1);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], Region::full(5, 5));
}

}  // namespace
}  // namespace pico
