#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "nn/weights_io.hpp"

namespace pico {
namespace {

TEST(WeightsIo, BufferRoundTripPreservesEveryParameter) {
  nn::Graph original = models::resnet34({.input_size = 64});
  Rng rng(12);
  original.randomize_weights(rng);

  const auto blob = nn::serialize_weights(original);
  nn::Graph restored = models::resnet34({.input_size = 64});
  nn::deserialize_weights(restored, blob.data(), blob.size());

  for (int id = 0; id < original.size(); ++id) {
    ASSERT_EQ(original.node(id).weights, restored.node(id).weights) << id;
    ASSERT_EQ(original.node(id).bias, restored.node(id).bias) << id;
    ASSERT_EQ(original.node(id).bn_scale, restored.node(id).bn_scale) << id;
    ASSERT_EQ(original.node(id).bn_shift, restored.node(id).bn_shift) << id;
  }
}

TEST(WeightsIo, RestoredModelComputesIdenticalOutputs) {
  nn::Graph original = models::toy_mnist({.input_size = 32});
  Rng rng(13);
  original.randomize_weights(rng);
  Tensor input(original.input_shape());
  input.randomize(rng);
  const Tensor expected = nn::execute(original, input);

  const auto blob = nn::serialize_weights(original);
  nn::Graph restored = models::toy_mnist({.input_size = 32});
  nn::deserialize_weights(restored, blob.data(), blob.size());
  EXPECT_FLOAT_EQ(
      Tensor::max_abs_diff(nn::execute(restored, input), expected), 0.0f);
}

TEST(WeightsIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pico_weights_test.bin";
  nn::Graph original = models::vgg16({.input_size = 32});
  Rng rng(14);
  original.randomize_weights(rng);
  nn::save_weights(original, path);

  nn::Graph restored = models::vgg16({.input_size = 32});
  nn::load_weights(restored, path);
  for (int id = 0; id < original.size(); ++id) {
    ASSERT_EQ(original.node(id).weights, restored.node(id).weights) << id;
  }
  std::remove(path.c_str());
}

TEST(WeightsIo, RejectsStructurallyDifferentModel) {
  nn::Graph source = models::toy_mnist({.input_size = 32});
  Rng rng(15);
  source.randomize_weights(rng);
  const auto blob = nn::serialize_weights(source);

  nn::Graph other_model = models::vgg16({.input_size = 32});
  EXPECT_THROW(
      nn::deserialize_weights(other_model, blob.data(), blob.size()), Error);
}

TEST(WeightsIo, RejectsCorruptBlobs) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  auto blob = nn::serialize_weights(g);

  // Truncated.
  EXPECT_THROW(nn::deserialize_weights(g, blob.data(), blob.size() / 2),
               Error);
  // Trailing garbage.
  auto padded = blob;
  padded.push_back(0);
  EXPECT_THROW(nn::deserialize_weights(g, padded.data(), padded.size()),
               Error);
  // Bad magic.
  auto bad = blob;
  bad[0] ^= 0xff;
  EXPECT_THROW(nn::deserialize_weights(g, bad.data(), bad.size()), Error);
  // Bad version.
  auto bad_version = blob;
  bad_version[4] ^= 0xff;
  EXPECT_THROW(
      nn::deserialize_weights(g, bad_version.data(), bad_version.size()),
      Error);
}

TEST(WeightsIo, MissingFileThrows) {
  nn::Graph g = models::toy_mnist({.input_size = 32});
  EXPECT_THROW(nn::load_weights(g, "/nonexistent/pico.bin"), Error);
}

}  // namespace
}  // namespace pico
