// Edge cases and error paths across modules — the checks that guard against
// silent misuse of the API.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "partition/plan.hpp"
#include "partition/schemes.hpp"
#include "partition/splitter.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

TEST(GraphErrors, WindowLargerThanPaddedInput) {
  nn::Graph g;
  const int in = g.add_input({1, 4, 4});
  g.add_conv(in, 1, 7, 1, 0);  // 7x7 kernel on 4x4, no padding
  EXPECT_THROW(g.finalize(), InvariantError);
}

TEST(GraphErrors, SecondInputRejected) {
  nn::Graph g;
  g.add_input({1, 4, 4});
  EXPECT_THROW(g.add_input({1, 4, 4}), InvariantError);
}

TEST(GraphErrors, ForwardReferenceRejected) {
  nn::Graph g;
  const int in = g.add_input({1, 4, 4});
  EXPECT_THROW(g.add_add(in, 7), InvariantError);  // node 7 doesn't exist
}

TEST(GraphErrors, AddNodesAfterFinalizeRejected) {
  nn::Graph g;
  const int in = g.add_input({1, 4, 4});
  g.add_relu(in);
  g.finalize();
  EXPECT_THROW(g.add_relu(1), InvariantError);
  EXPECT_THROW(g.finalize(), InvariantError);  // double finalize
}

TEST(GraphErrors, OutputShapeBeforeFinalizeRejected) {
  nn::Graph g;
  g.add_input({1, 4, 4});
  EXPECT_THROW(g.output_shape(), InvariantError);
}

TEST(ExecutorErrors, TwoExternalProducersRejected) {
  // add consumes both conv2's output and the *graph input* — segment
  // [conv2, add] has two distinct external producers and cannot execute
  // from a single input piece.
  nn::Graph g;
  const int in = g.add_input({2, 8, 8});
  const int c1 = g.add_conv(in, 2, 3, 1, 1, false);
  const int c2 = g.add_conv(c1, 2, 3, 1, 1, false);
  const int add = g.add_add(c2, in);
  g.finalize();
  Rng rng(1);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  EXPECT_THROW(nn::execute_segment(g, c2, add,
                                   {Region::full(8, 8), input},
                                   Region::full(8, 8)),
               InvariantError);
}

TEST(ValidatePlanErrors, BranchIndexOutOfRange) {
  nn::Graph g;
  const int in = g.add_input({4, 8, 8});
  const int stem = g.add_conv(in, 4, 3, 1, 1);
  const int a = g.add_conv(stem, 2, 1, 1, 0);
  const int b = g.add_conv(stem, 2, 3, 1, 1);
  g.add_concat({a, b});
  g.finalize();
  const Cluster c = Cluster::homogeneous(3, 1e9);
  partition::Plan plan;
  plan.scheme = "bad";
  plan.pipelined = true;
  plan.stages.push_back(partition::make_stage(g, c, 1, 1, {0}));
  partition::Stage branch;
  branch.first = 2;
  branch.last = 4;
  branch.kind = partition::StageKind::Branch;
  branch.assignments.push_back({1, {}, {0}});
  branch.assignments.push_back({2, {}, {5}});  // only branches 0 and 1 exist
  plan.stages.push_back(branch);
  EXPECT_THROW(partition::validate_plan(g, c, plan), InvariantError);
}

TEST(SplitterErrors, InvalidArguments) {
  EXPECT_THROW(partition::split_rows_equal(0, 4, 2), InvariantError);
  EXPECT_THROW(partition::split_rows_equal(4, 4, 0), InvariantError);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(partition::split_rows_proportional(4, 4, negative),
               InvariantError);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(partition::split_rows_proportional(4, 4, zeros),
               InvariantError);
}

TEST(ClusterErrors, BoundsChecked) {
  const Cluster c = Cluster::homogeneous(2, 1e9);
  EXPECT_THROW(c.device(2), InvariantError);
  EXPECT_THROW(c.device(-1), InvariantError);
  EXPECT_THROW(c.prefix(0), InvariantError);
  EXPECT_THROW(c.prefix(3), InvariantError);
  EXPECT_THROW(Cluster::homogeneous(1, 0.0), InvariantError);
}

TEST(StitchErrors, ChannelMismatchRejected) {
  std::vector<Placed> pieces{{Region::full(2, 2), Tensor({3, 2, 2})}};
  EXPECT_THROW(stitch({2, 2, 2}, pieces), InvariantError);
}

TEST(Rng, ForkTreeIsDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng child_a = a.fork();
  Rng child_b = b.fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(NetworkModel, UniformStripsOnlyScaling) {
  NetworkModel net;
  net.bandwidth = 123.0;
  net.per_message_overhead = 0.5;
  net.device_bandwidth_scale = {0.1};
  const NetworkModel uniform = net.uniform();
  EXPECT_DOUBLE_EQ(uniform.bandwidth, 123.0);
  EXPECT_DOUBLE_EQ(uniform.per_message_overhead, 0.5);
  EXPECT_TRUE(uniform.device_bandwidth_scale.empty());
}

TEST(Schemes, SingleDeviceClusterStillPlans) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(1, 1e9);
  NetworkModel net;
  for (const auto& plan :
       {partition::lw_plan(g, c), partition::efl_plan(g, c),
        partition::ofl_plan(g, c, net)}) {
    partition::validate_plan(g, c, plan);
    for (const auto& stage : plan.stages) {
      EXPECT_EQ(stage.device_count(), 1);
    }
  }
}

}  // namespace
}  // namespace pico
