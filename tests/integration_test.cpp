// End-to-end: public facade -> plan -> (a) distributed runtime output equals
// single-device inference for every scheme x model, and (b) the simulator
// reproduces the cost model's headline predictions.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <thread>

#include "adaptive/apico.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/cfg.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "nn/weights_io.hpp"
#include "partition/plan_cost.hpp"
#include "partition/plan_io.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

struct EndToEndCase {
  const char* name;
  models::ModelId model;
  int input_size;
  Scheme scheme;
};

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEnd, DistributedMatchesLocal) {
  const EndToEndCase param = GetParam();
  nn::Graph graph =
      models::build(param.model, {.input_size = param.input_size});
  Rng rng(1234);
  graph.randomize_weights(rng);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(graph, input);

  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = test_network();
  const auto p = plan(graph, cluster, network, param.scheme);
  partition::validate_plan(graph, cluster, p);

  runtime::PipelineRuntime rt(graph, p);
  const Tensor out = rt.infer(input);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(out, reference), 0.0f);
}

std::vector<EndToEndCase> end_to_end_cases() {
  std::vector<EndToEndCase> cases;
  const std::pair<models::ModelId, int> zoo[] = {
      {models::ModelId::Vgg16, 64},
      {models::ModelId::Yolov2, 64},
      {models::ModelId::Resnet34, 64},
      {models::ModelId::Inception, 96},
      {models::ModelId::ToyMnist, 64},
  };
  const std::pair<Scheme, const char*> schemes[] = {
      {Scheme::LayerWise, "LW"},
      {Scheme::EarlyFused, "EFL"},
      {Scheme::OptimalFused, "OFL"},
      {Scheme::Pico, "PICO"},
  };
  for (const auto& [model, size] : zoo) {
    for (const auto& [scheme, scheme_name] : schemes) {
      cases.push_back({nullptr, model, size, scheme});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<EndToEndCase>& info) {
  return std::string(models::model_name(info.param.model)) + "_" +
         scheme_name(info.param.scheme);
}

INSTANTIATE_TEST_SUITE_P(ZooTimesSchemes, EndToEnd,
                         ::testing::ValuesIn(end_to_end_cases()), case_name);

TEST(EndToEndGrid, GridPartitionBitExactThroughRuntime) {
  // 2-D tiles have halos on all four sides; the runtime must still stitch a
  // bit-exact result for every scheme that supports grid mode.
  nn::Graph graph = models::vgg16({.input_size = 64});
  Rng rng(77);
  graph.randomize_weights(rng);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(graph, input);
  const Cluster cluster = Cluster::paper_homogeneous(8, 1.0);
  const NetworkModel network = test_network();
  for (const Scheme scheme :
       {Scheme::LayerWise, Scheme::EarlyFused, Scheme::OptimalFused}) {
    const auto p =
        plan(graph, cluster, network, scheme,
             {.partition_mode = partition::PartitionMode::Grid});
    runtime::PipelineRuntime rt(graph, p);
    const Tensor out = rt.infer(input);
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(out, reference), 0.0f)
        << scheme_name(scheme);
  }
}

TEST(Facade, BfsSchemeOnTinyModel) {
  nn::Graph graph = models::synthetic_chain(4, 32, 8);
  Rng rng(5);
  graph.randomize_weights(rng);
  Tensor input(graph.input_shape());
  input.randomize(rng);
  const Cluster cluster = Cluster::raspberry_pi({1.2, 0.6});
  const auto p = plan(graph, cluster, test_network(), Scheme::BfsOptimal);
  runtime::PipelineRuntime rt(graph, p);
  EXPECT_FLOAT_EQ(
      Tensor::max_abs_diff(rt.infer(input), nn::execute(graph, input)), 0.0f);
}

TEST(Integration, FullDeploymentRoundTrip) {
  // The complete deployment artifact chain: model from .cfg text, weights
  // from a blob, plan from a plan file — all reloaded by a "fresh"
  // coordinator which then runs distributed inference bit-exactly against
  // remote-style workers over TCP.
  const char* cfg = R"(
[net]
channels=2
height=24
width=24
[convolutional]
filters=8
size=3
pad=1
activation=relu
[convolutional]
filters=8
size=3
pad=1
activation=relu
[maxpool]
size=2
stride=2
[convolutional]
filters=16
size=3
pad=1
activation=relu
)";
  const std::string dir = ::testing::TempDir();
  const std::string weights_path = dir + "/deploy_weights.bin";
  const std::string plan_path = dir + "/deploy.plan";

  // "Build machine": train (randomize), plan, persist everything.
  const Cluster cluster = Cluster::raspberry_pi({1.2, 0.8, 0.6});
  {
    nn::Graph model = models::parse_cfg(cfg);
    Rng rng(2027);
    model.randomize_weights(rng);
    nn::save_weights(model, weights_path);
    const auto p = plan(model, cluster, test_network(), Scheme::Pico);
    partition::save_plan(p, plan_path);
  }

  // "Coordinator at boot": reload all three artifacts.
  nn::Graph model = models::parse_cfg(cfg);
  nn::load_weights(model, weights_path);
  const partition::Plan p = partition::load_plan(plan_path);
  partition::validate_plan(model, cluster, p);

  Rng rng(4);
  Tensor frame(model.input_shape());
  frame.randomize(rng);
  const Tensor reference = nn::execute(model, frame);

  // Workers connect over TCP exactly as separate device binaries would.
  runtime::TcpListener listener;
  std::vector<std::thread> workers;
  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  for (const auto& stage : p.stages) {
    for (const auto& slice : stage.assignments) {
      workers.emplace_back([&model, port = listener.port()] {
        auto connection = runtime::tcp_connect(port);
        runtime::serve_blocking(model, *connection);
      });
      connections.emplace(slice.device, listener.accept());
    }
  }
  {
    runtime::PipelineRuntime rt(model, p, std::move(connections));
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(frame), reference), 0.0f);
  }
  for (std::thread& worker : workers) worker.join();

  std::remove(weights_path.c_str());
  std::remove(plan_path.c_str());
}

TEST(Facade, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::LayerWise), "LW");
  EXPECT_STREQ(scheme_name(Scheme::Pico), "PICO");
  EXPECT_STREQ(scheme_name(Scheme::BfsOptimal), "BFS");
}

TEST(Facade, EvaluateMatchesPlanCost) {
  const nn::Graph graph = models::vgg16({.input_size = 64});
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = test_network();
  const auto p = plan(graph, cluster, network, Scheme::Pico);
  const auto cost = evaluate(graph, cluster, network, p);
  const auto direct = partition::plan_cost(graph, cluster, network, p);
  EXPECT_DOUBLE_EQ(cost.period, direct.period);
  EXPECT_DOUBLE_EQ(cost.latency, direct.latency);
}

TEST(Integration, PaperHeadline_PicoThroughputGain) {
  // The paper's headline: throughput improves 1.8–6.2x over the baselines.
  // Check the simulated saturated throughput of PICO vs EFL on VGG16.
  const nn::Graph graph = models::vgg16();  // full 224x224
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = test_network();
  const auto efl = plan(graph, cluster, network, Scheme::EarlyFused);
  const auto pico = plan(graph, cluster, network, Scheme::Pico);
  const auto arrivals = sim::back_to_back_arrivals(60);
  const auto efl_result =
      sim::simulate_plan(graph, cluster, network, efl, arrivals);
  const auto pico_result =
      sim::simulate_plan(graph, cluster, network, pico, arrivals);
  const double gain = pico_result.throughput() / efl_result.throughput();
  EXPECT_GT(gain, 1.5);
  EXPECT_LT(gain, 10.0);
}

TEST(Integration, ApicoNeverMuchWorseThanBestFixedScheme) {
  // Across light and heavy load, APICO should track the better of
  // OFL-fixed / PICO-fixed within a modest factor.
  const nn::Graph graph = models::vgg16({.input_size = 64});
  const Cluster cluster = Cluster::paper_heterogeneous();
  const NetworkModel network = test_network();
  const auto ofl = plan(graph, cluster, network, Scheme::OptimalFused);
  const auto pico = plan(graph, cluster, network, Scheme::Pico);
  const auto pico_cost = evaluate(graph, cluster, network, pico);

  for (const double load : {0.2, 0.9}) {
    Rng rng(71);
    const double lambda = load / pico_cost.period;
    const auto arrivals = sim::poisson_arrivals(
        rng, lambda, 600.0 * pico_cost.period);

    const auto fixed_ofl =
        sim::simulate_plan(graph, cluster, network, ofl, arrivals);
    const auto fixed_pico =
        sim::simulate_plan(graph, cluster, network, pico, arrivals);
    const Seconds best = std::min(fixed_ofl.mean_latency(),
                                  fixed_pico.mean_latency());

    sim::ClusterSimulator simulator(graph, cluster, network);
    auto controller = adaptive::ApicoController::make_default(
        graph, cluster, network,
        {.beta = 0.5, .window = 20.0 * pico_cost.period});
    controller.attach(simulator);
    simulator.add_arrivals(arrivals);
    const auto apico = simulator.run();

    EXPECT_LT(apico.mean_latency(), best * 1.5 + 2.0 * pico_cost.latency)
        << "load " << load;
  }
}

}  // namespace
}  // namespace pico
