#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/metrics.hpp"
#include "partition/pico_dp.hpp"
#include "partition/schemes.hpp"
#include "runtime/channel.hpp"
#include "runtime/message.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/worker.hpp"
#include "runtime/transport.hpp"

namespace pico {
namespace {

using runtime::BoundedQueue;
using runtime::Message;
using runtime::MessageType;

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(Channel, FifoOrder) {
  BoundedQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(Channel, BlocksWhenFullUntilPopped) {
  BoundedQueue<int> queue(2);
  queue.push(1);
  queue.push(2);
  std::thread producer([&] { queue.push(3); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(Channel, CloseDrainsThenNullopt) {
  BoundedQueue<int> queue;
  queue.push(7);
  queue.close();
  EXPECT_EQ(queue.pop(), 7);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_THROW(queue.push(8), TransportError);
}

TEST(Channel, CloseWakesBlockedPop) {
  BoundedQueue<int> queue;
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

Message sample_message() {
  Message m;
  m.type = MessageType::WorkRequest;
  m.task_id = 42;
  m.stage_index = 3;
  m.first_node = 5;
  m.last_node = 9;
  m.in_region = {1, 7, 0, 16};
  m.out_region = {2, 5, 0, 16};
  m.compute_seconds = 0.125;
  m.tensor = Tensor({2, 6, 16});
  Rng rng(3);
  m.tensor.randomize(rng);
  return m;
}

TEST(Message, SerializeRoundTrip) {
  const Message original = sample_message();
  const auto bytes = runtime::serialize(original);
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.type, original.type);
  EXPECT_EQ(decoded.task_id, original.task_id);
  EXPECT_EQ(decoded.stage_index, original.stage_index);
  EXPECT_EQ(decoded.first_node, original.first_node);
  EXPECT_EQ(decoded.last_node, original.last_node);
  EXPECT_EQ(decoded.in_region, original.in_region);
  EXPECT_EQ(decoded.out_region, original.out_region);
  EXPECT_EQ(decoded.compute_seconds, original.compute_seconds);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(decoded.tensor, original.tensor),
                  0.0f);
}

TEST(Message, DeserializeRejectsTruncation) {
  const auto bytes = runtime::serialize(sample_message());
  EXPECT_THROW(runtime::deserialize(bytes.data(), bytes.size() - 4),
               InvariantError);
  EXPECT_THROW(runtime::deserialize(bytes.data(), 3), InvariantError);
}

TEST(Message, EmptyTensorRoundTrip) {
  Message m;
  m.type = MessageType::Shutdown;
  const auto bytes = runtime::serialize(m);
  const Message decoded = runtime::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.type, MessageType::Shutdown);
  EXPECT_EQ(decoded.tensor.size(), 0);
}

TEST(Transport, InProcRoundTrip) {
  auto [a, b] = runtime::make_inproc_pair();
  const Message original = sample_message();
  a->send(original);
  const Message got = b->recv();
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(got.tensor, original.tensor), 0.0f);
  b->send(got);
  const Message back = a->recv();
  EXPECT_EQ(back.task_id, original.task_id);
}

TEST(Transport, InProcCloseUnblocksPeer) {
  auto [a, b] = runtime::make_inproc_pair();
  std::thread waiter([&b = b] { EXPECT_THROW(b->recv(), TransportError); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a->close();
  waiter.join();
}

TEST(Transport, TcpRoundTrip) {
  runtime::TcpListener listener;
  std::unique_ptr<runtime::Connection> client;
  std::thread connector(
      [&] { client = runtime::tcp_connect(listener.port()); });
  auto server = listener.accept();
  connector.join();

  const Message original = sample_message();
  client->send(original);
  const Message got = server->recv();
  EXPECT_EQ(got.task_id, original.task_id);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(got.tensor, original.tensor), 0.0f);
  server->send(got);
  const Message back = client->recv();
  EXPECT_EQ(back.out_region, original.out_region);
}

TEST(Transport, TcpLargeTensor) {
  runtime::TcpListener listener;
  std::unique_ptr<runtime::Connection> client;
  std::thread connector(
      [&] { client = runtime::tcp_connect(listener.port()); });
  auto server = listener.accept();
  connector.join();

  Message big;
  big.type = MessageType::WorkResult;
  big.tensor = Tensor({64, 128, 128});  // 4 MiB payload
  Rng rng(9);
  big.tensor.randomize(rng);
  std::thread sender([&] { client->send(big); });
  const Message got = server->recv();
  sender.join();
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(got.tensor, big.tensor), 0.0f);
}

TEST(Transport, TcpCloseUnblocksRecv) {
  runtime::TcpListener listener;
  std::unique_ptr<runtime::Connection> client;
  std::thread connector(
      [&] { client = runtime::tcp_connect(listener.port()); });
  auto server = listener.accept();
  connector.join();
  std::thread waiter([&] { EXPECT_THROW(server->recv(), TransportError); });
  client->close();
  waiter.join();
}

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture()
      : graph_(models::toy_mnist({.input_size = 32})),
        cluster_(Cluster::paper_heterogeneous()) {
    Rng rng(7);
    graph_.randomize_weights(rng);
    input_ = Tensor(graph_.input_shape());
    input_.randomize(rng);
    reference_ = nn::execute(graph_, input_);
  }

  nn::Graph graph_;
  Cluster cluster_;
  Tensor input_;
  Tensor reference_;
};

TEST_F(RuntimeFixture, PicoPipelineMatchesReference) {
  const auto plan = partition::pico_plan(graph_, cluster_, test_network());
  runtime::PipelineRuntime rt(graph_, plan);
  const Tensor out = rt.infer(input_);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(out, reference_), 0.0f);
  EXPECT_EQ(rt.tasks_completed(), 1);
}

TEST_F(RuntimeFixture, SequentialSchemesMatchReference) {
  const NetworkModel net = test_network();
  for (const auto& plan :
       {partition::lw_plan(graph_, cluster_),
        partition::efl_plan(graph_, cluster_),
        partition::ofl_plan(graph_, cluster_, net)}) {
    runtime::PipelineRuntime rt(graph_, plan);
    const Tensor out = rt.infer(input_);
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(out, reference_), 0.0f)
        << plan.scheme;
  }
}

TEST_F(RuntimeFixture, ManyConcurrentTasksAllCorrectAndOrdered) {
  const auto plan = partition::pico_plan(graph_, cluster_, test_network());
  runtime::PipelineRuntime rt(graph_, plan);
  Rng rng(11);
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 24; ++i) {
    Tensor t(graph_.input_shape());
    t.randomize(rng);
    inputs.push_back(t);
    futures.push_back(rt.submit(std::move(t)));
  }
  for (int i = 0; i < 24; ++i) {
    const Tensor expected = nn::execute(graph_, inputs[static_cast<std::size_t>(i)]);
    const Tensor got = futures[static_cast<std::size_t>(i)].get();
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(got, expected), 0.0f) << "task " << i;
  }
  EXPECT_EQ(rt.tasks_completed(), 24);
}

TEST_F(RuntimeFixture, TcpTransportMatchesReference) {
  const auto plan = partition::pico_plan(graph_, cluster_, test_network());
  runtime::PipelineRuntime rt(graph_, plan,
                              {.transport = runtime::TransportKind::Tcp});
  for (int i = 0; i < 3; ++i) {
    const Tensor out = rt.infer(input_);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(out, reference_), 0.0f);
  }
}

TEST_F(RuntimeFixture, BringYourOwnTransportMatchesReference) {
  // External workers (threads standing in for remote processes) serving
  // over real TCP; the runtime only gets the established sockets.
  const auto plan = partition::pico_plan(graph_, cluster_, test_network());
  std::vector<DeviceId> devices;
  for (const auto& stage : plan.stages) {
    for (const auto& slice : stage.assignments) {
      devices.push_back(slice.device);
    }
  }

  runtime::TcpListener listener;
  std::vector<std::thread> workers;
  std::map<DeviceId, std::unique_ptr<runtime::Connection>> connections;
  for (const DeviceId device : devices) {
    workers.emplace_back([this, port = listener.port()] {
      auto connection = runtime::tcp_connect(port);
      runtime::serve_blocking(graph_, *connection);
    });
    connections.emplace(device, listener.accept());
  }
  {
    runtime::PipelineRuntime rt(graph_, plan, std::move(connections));
    for (int i = 0; i < 3; ++i) {
      ASSERT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input_), reference_),
                      0.0f);
    }
  }  // destructor sends Shutdown; workers must return
  for (std::thread& worker : workers) worker.join();
}

TEST_F(RuntimeFixture, ByoTransportRejectsMissingConnection) {
  const auto plan = partition::pico_plan(graph_, cluster_, test_network());
  std::map<DeviceId, std::unique_ptr<runtime::Connection>> empty;
  EXPECT_THROW(runtime::PipelineRuntime(graph_, plan, std::move(empty)),
               InvariantError);
}

TEST_F(RuntimeFixture, ServeBlockingSurvivesMalformedRequest) {
  // A malformed request (wrong message type) used to escape serve_blocking
  // as an InvariantError — in a standalone worker process that unwinds out
  // of main (or terminates the serving thread).  The unified serve loop
  // logs it and returns cleanly, exactly like Worker::run always did.
  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  Message malformed;
  malformed.type = MessageType::WorkResult;
  coordinator_end->send(malformed);
  EXPECT_NO_THROW(runtime::serve_blocking(graph_, *worker_end, /*device=*/42));
}

TEST_F(RuntimeFixture, ServeBlockingCountsRequestsInMetricsRegistry) {
  // Standalone workers used to be invisible to the PR 2 metrics: requests
  // were only counted in Worker::run, and only after send() succeeded.  The
  // unified loop counts every computed request at serve time, labelled by
  // device.
  obs::Counter& counter = obs::Registry::global().counter(
      "pico_worker_requests_total", {{"device", "7"}});
  const long long before = counter.value();

  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  std::thread server([this, worker = worker_end.get()] {
    runtime::serve_blocking(graph_, *worker, /*device=*/7);
  });

  Message request;
  request.type = MessageType::WorkRequest;
  request.first_node = 1;
  request.last_node = graph_.size() - 1;
  request.in_region =
      Region::full(graph_.input_shape().height, graph_.input_shape().width);
  request.out_region =
      Region::full(graph_.output_shape().height, graph_.output_shape().width);
  request.tensor = input_;
  coordinator_end->send(request);
  const Message reply = coordinator_end->recv();
  EXPECT_EQ(reply.type, MessageType::WorkResult);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(reply.tensor, reference_), 0.0f);

  Message shutdown;
  shutdown.type = MessageType::Shutdown;
  coordinator_end->send(shutdown);
  server.join();
  EXPECT_EQ(counter.value(), before + 1);
}

TEST_F(RuntimeFixture, WorkerHonorsExecOptionsThreadCap) {
  // A worker pinned to one intra-device thread must still produce the
  // bit-exact reference (determinism across thread counts).
  auto [coordinator_end, worker_end] = runtime::make_inproc_pair();
  runtime::Worker worker(graph_, std::move(worker_end), /*device=*/3,
                         nn::ExecOptions{.threads = 1});
  worker.start();

  Message request;
  request.type = MessageType::WorkRequest;
  request.first_node = 1;
  request.last_node = graph_.size() - 1;
  request.in_region =
      Region::full(graph_.input_shape().height, graph_.input_shape().width);
  request.out_region =
      Region::full(graph_.output_shape().height, graph_.output_shape().width);
  request.tensor = input_;
  coordinator_end->send(request);
  const Message reply = coordinator_end->recv();
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(reply.tensor, reference_), 0.0f);
  worker.stop();
  EXPECT_EQ(worker.requests_served(), 1);
}

TEST_F(RuntimeFixture, ExplicitShutdownIdempotent) {
  const auto plan = partition::efl_plan(graph_, cluster_);
  runtime::PipelineRuntime rt(graph_, plan);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input_), reference_), 0.0f);
  rt.shutdown();
  rt.shutdown();
  EXPECT_THROW(rt.submit(Tensor(graph_.input_shape())), InvariantError);
}

}  // namespace
}  // namespace pico
