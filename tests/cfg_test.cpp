#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/cfg.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"

namespace pico {
namespace {

using models::parse_cfg;

TEST(Cfg, MinimalConvNet) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=3
height=16
width=16

[convolutional]
filters=8
size=3
stride=1
pad=1
activation=relu
)");
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.output_shape(), (Shape{8, 16, 16}));
  EXPECT_TRUE(g.node(1).fused_relu);
}

TEST(Cfg, PadKeywordMeansHalfKernel) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=1
height=10
width=10
[convolutional]
filters=2
size=5
stride=1
pad=1
activation=linear
)");
  EXPECT_EQ(g.node(1).win.ph, 2);
  EXPECT_EQ(g.node(1).win.pw, 2);
  EXPECT_FALSE(g.node(1).fused_relu);
}

TEST(Cfg, ExplicitPaddingOverridesPad) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=1
height=10
width=10
[convolutional]
filters=2
size=3
stride=2
padding=0
activation=relu
)");
  EXPECT_EQ(g.node(1).win.ph, 0);
  EXPECT_EQ(g.node(1).out_shape.height, 4);
}

TEST(Cfg, NonSquareKernel) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=4
height=9
width=9
[convolutional]
filters=4
size_h=1
size_w=7
padding=0
activation=relu
)");
  EXPECT_EQ(g.node(1).win.kh, 1);
  EXPECT_EQ(g.node(1).win.kw, 7);
  // padding=0 applies to both axes -> width shrinks, height kept.
  EXPECT_EQ(g.node(1).out_shape, (Shape{4, 9, 3}));
}

TEST(Cfg, BatchNormalizeInsertsBnNode) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=1
height=8
width=8
[convolutional]
batch_normalize=1
filters=2
size=3
pad=1
activation=relu
)");
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.node(1).kind, nn::OpKind::Conv);
  EXPECT_FALSE(g.node(1).fused_relu);  // relu moves after the BN
  EXPECT_EQ(g.node(2).kind, nn::OpKind::BatchNorm);
  EXPECT_TRUE(g.node(2).fused_relu);
}

TEST(Cfg, ShortcutBuildsResidualAdd) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=2
height=8
width=8
[convolutional]
filters=4
size=1
activation=relu
[convolutional]
filters=4
size=3
pad=1
activation=linear
[shortcut]
from=-2
activation=relu
)");
  const nn::Node& add = g.node(3);
  EXPECT_EQ(add.kind, nn::OpKind::Add);
  EXPECT_EQ(add.inputs, (std::vector<int>{2, 1}));
  EXPECT_TRUE(add.fused_relu);
}

TEST(Cfg, RouteConcatAndSkip) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=2
height=8
width=8
[convolutional]
filters=3
size=1
activation=relu
[convolutional]
filters=5
size=1
activation=relu
[route]
layers=-1,-2
[convolutional]
filters=2
size=1
activation=relu
)");
  EXPECT_EQ(g.node(3).kind, nn::OpKind::Concat);
  EXPECT_EQ(g.node(3).out_shape.channels, 8);
  EXPECT_EQ(g.node(4).in_shape.channels, 8);
}

TEST(Cfg, AvgpoolWithoutSizeIsGlobal) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=4
height=8
width=8
[avgpool]
)");
  EXPECT_EQ(g.node(1).kind, nn::OpKind::GlobalAvgPool);
  EXPECT_EQ(g.output_shape(), (Shape{4, 1, 1}));
}

TEST(Cfg, ConnectedLayer) {
  const nn::Graph g = parse_cfg(R"(
[net]
channels=2
height=4
width=4
[connected]
output=10
)");
  EXPECT_EQ(g.node(1).kind, nn::OpKind::FullyConnected);
  EXPECT_EQ(g.output_shape(), (Shape{10, 1, 1}));
}

TEST(Cfg, CommentsAndWhitespaceIgnored) {
  const nn::Graph g = parse_cfg(
      "# leading comment\n"
      "[net]\n"
      "  channels = 1  # inline comment\n"
      "height=4\r\n"
      "width=4\n"
      "; semicolon comment\n"
      "[maxpool]\n"
      "size=2\n"
      "stride=2\n");
  EXPECT_EQ(g.output_shape(), (Shape{1, 2, 2}));
}

TEST(Cfg, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      parse_cfg(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const Error& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };
  expect_error("[net]\nchannels=3\nheight=x\nwidth=4\n[maxpool]\n",
               "not an integer");
  expect_error("channels=3\n", "before any [section]");
  expect_error("[net\n", "malformed section header");
  expect_error("[net]\nchannels=1\nheight=4\nwidth=4\n[warp]\n",
               "unsupported section");
  expect_error("[net]\nchannels=1\nheight=4\nwidth=4\n[convolutional]\n"
               "size=3\nactivation=relu\n",
               "missing required key 'filters'");
  expect_error("[net]\nchannels=1\nheight=4\nwidth=4\n[convolutional]\n"
               "filters=2\nsize=1\nactivation=swish\n",
               "unsupported activation");
  expect_error("[net]\nchannels=1\nheight=4\nwidth=4\n[convolutional]\n"
               "filters=2\nsize=1\nactivation=relu\n[shortcut]\nfrom=-9\n",
               "out of range");
  expect_error("[maxpool]\nsize=2\n", "first section must be [net]");
}

TEST(Cfg, Vgg16FileMatchesBuilder) {
  const nn::Graph from_cfg = models::load_cfg(std::string(PICO_REPO_DIR) + "/configs/vgg16.cfg");
  const nn::Graph built = models::vgg16();
  ASSERT_EQ(from_cfg.size(), built.size());
  for (int id = 0; id < built.size(); ++id) {
    EXPECT_EQ(from_cfg.node(id).kind, built.node(id).kind) << id;
    EXPECT_EQ(from_cfg.node(id).out_shape, built.node(id).out_shape) << id;
  }
}

TEST(Cfg, Yolov2FileMatchesBuilder) {
  const nn::Graph from_cfg =
      models::load_cfg(std::string(PICO_REPO_DIR) + "/configs/yolov2.cfg");
  const nn::Graph built = models::yolov2();
  ASSERT_EQ(from_cfg.size(), built.size());
  for (int id = 0; id < built.size(); ++id) {
    EXPECT_EQ(from_cfg.node(id).kind, built.node(id).kind) << id;
    EXPECT_EQ(from_cfg.node(id).out_shape, built.node(id).out_shape) << id;
    EXPECT_EQ(from_cfg.node(id).fused_relu, built.node(id).fused_relu) << id;
  }
}

TEST(Cfg, MobileNetFileMatchesBuilder) {
  const nn::Graph from_cfg = models::load_cfg(
      std::string(PICO_REPO_DIR) + "/configs/mobilenet_v1.cfg");
  const nn::Graph built = models::mobilenet_v1();
  ASSERT_EQ(from_cfg.size(), built.size());
  for (int id = 0; id < built.size(); ++id) {
    EXPECT_EQ(from_cfg.node(id).kind, built.node(id).kind) << id;
    EXPECT_EQ(from_cfg.node(id).groups, built.node(id).groups) << id;
    EXPECT_EQ(from_cfg.node(id).out_shape, built.node(id).out_shape) << id;
    EXPECT_EQ(from_cfg.node(id).weights.size(),
              built.node(id).weights.size())
        << id;
  }
}

TEST(Cfg, ToyFileMatchesBuilder) {
  const nn::Graph from_cfg = models::load_cfg(std::string(PICO_REPO_DIR) + "/configs/toy.cfg");
  const nn::Graph built = models::toy_mnist();
  ASSERT_EQ(from_cfg.size(), built.size());
  EXPECT_EQ(from_cfg.output_shape(), built.output_shape());
}

TEST(Cfg, ResblockFileBuildsAndRuns) {
  nn::Graph g = models::load_cfg(std::string(PICO_REPO_DIR) + "/configs/resblock.cfg");
  EXPECT_FALSE(g.is_chain());
  Rng rng(3);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor out = nn::execute(g, input);
  EXPECT_EQ(out.shape(), (Shape{8, 64, 64}));
}

TEST(Cfg, MissingFileThrows) {
  EXPECT_THROW(models::load_cfg(std::string(PICO_REPO_DIR) + "/configs/does-not-exist.cfg"), Error);
}

}  // namespace
}  // namespace pico
