#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cost/calibration.hpp"

namespace pico {
namespace {

TEST(Calibration, FitRecoversExactSlope) {
  // Perfect samples at 2 GFLOP/s.
  std::vector<CalibrationSample> samples;
  for (const double f : {1e8, 5e8, 1e9, 4e9}) {
    samples.push_back({f, f / 2e9});
  }
  EXPECT_NEAR(fit_capacity(samples), 2e9, 1.0);
  EXPECT_NEAR(fit_r_squared(samples, fit_capacity(samples)), 1.0, 1e-12);
}

TEST(Calibration, FitRobustToNoise) {
  Rng rng(3);
  std::vector<CalibrationSample> samples;
  const double capacity = 3.5e9;
  for (int i = 0; i < 200; ++i) {
    const double f = rng.uniform(1e8, 5e9);
    const double noise = rng.normal(1.0, 0.05);
    samples.push_back({f, f / capacity * noise});
  }
  EXPECT_NEAR(fit_capacity(samples) / capacity, 1.0, 0.03);
  EXPECT_GT(fit_r_squared(samples, fit_capacity(samples)), 0.9);
}

TEST(Calibration, AlphaCorrectsAssumedCapacity) {
  // The device actually runs at half the assumed speed -> α ≈ 2 (Eq. 5
  // multiplies the modeled time).
  std::vector<CalibrationSample> samples;
  const double real_capacity = 1e9;
  for (const double f : {1e8, 1e9, 2e9}) {
    samples.push_back({f, f / real_capacity});
  }
  EXPECT_NEAR(fit_alpha(samples, 2e9), 2.0, 1e-9);
  EXPECT_NEAR(fit_alpha(samples, 1e9), 1.0, 1e-9);
}

TEST(Calibration, RejectsDegenerateSamples) {
  std::vector<CalibrationSample> empty;
  EXPECT_THROW(fit_capacity(empty), InvariantError);
  std::vector<CalibrationSample> zeros{{0.0, 0.0}};
  EXPECT_THROW(fit_capacity(zeros), InvariantError);
  std::vector<CalibrationSample> ok{{1e9, 0.5}};
  EXPECT_THROW(fit_alpha(ok, 0.0), InvariantError);
}

TEST(Calibration, ProfileHostProducesConsistentSamples) {
  ProfileOptions options;
  options.sizes = {12, 20, 28};
  options.repeats = 2;
  const auto samples = profile_host(options);
  ASSERT_EQ(samples.size(), 6u);
  for (const auto& s : samples) {
    EXPECT_GT(s.flops, 0.0);
    EXPECT_GT(s.measured, 0.0);
  }
  // FLOPs grow with the configured sizes.
  EXPECT_GT(samples[2].flops, samples[0].flops);
}

TEST(Calibration, HostDevicePredictsItsOwnWorkloads) {
  // Calibrate, then check the linear model explains an independent probe
  // within a loose factor (wall-clock on shared machines is noisy).
  ProfileOptions options;
  options.sizes = {16, 24, 32};
  options.repeats = 3;
  const Device host = calibrated_host_device(options);
  EXPECT_GT(host.capacity, 1e7);  // anything slower is not a computer

  ProfileOptions probe;
  probe.sizes = {40};
  probe.repeats = 3;
  probe.seed = 99;
  const auto samples = profile_host(probe);
  double measured = 0.0;
  for (const auto& s : samples) measured += s.measured;
  measured /= static_cast<double>(samples.size());
  const Seconds predicted = host.compute_time(samples[0].flops);
  EXPECT_GT(measured / predicted, 0.3);
  EXPECT_LT(measured / predicted, 3.0);
}

}  // namespace
}  // namespace pico
