// Grouped / depthwise convolution: semantics (block-diagonal equivalence to
// dense conv), backend agreement, region execution, new zoo models, and
// end-to-end distributed correctness.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cost/flops.hpp"
#include "models/cfg.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/receptive.hpp"
#include "partition/branches.hpp"
#include "partition/pico_dp.hpp"
#include "partition/units.hpp"
#include "runtime/pipeline.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(GroupedConv, WeightCountPerGroup) {
  nn::Graph g;
  const int in = g.add_input({8, 10, 10});
  const int conv = g.add_conv_grouped(in, 12, 3, 1, 1, 4);
  g.finalize();
  // 12 output channels x (8/4 = 2) input channels x 3 x 3.
  EXPECT_EQ(g.node(conv).weights.size(), 12u * 2u * 9u);
}

TEST(GroupedConv, RejectsIndivisibleChannels) {
  nn::Graph g;
  const int in = g.add_input({6, 8, 8});
  g.add_conv_grouped(in, 8, 3, 1, 1, 4);  // 6 % 4 != 0
  EXPECT_THROW(g.finalize(), InvariantError);
}

TEST(GroupedConv, EqualsBlockDiagonalDenseConv) {
  // A grouped conv must equal a dense conv whose weights are zero outside
  // the block diagonal.
  const int ic = 6, oc = 9, groups = 3, size = 11, k = 3;
  nn::Graph grouped;
  {
    const int in = grouped.add_input({ic, size, size});
    grouped.add_conv_grouped(in, oc, k, 1, 1, groups, false);
    grouped.finalize();
  }
  nn::Graph dense;
  {
    const int in = dense.add_input({ic, size, size});
    dense.add_conv(in, oc, k, 1, 1, false);
    dense.finalize();
  }
  Rng rng(5);
  grouped.randomize_weights(rng);

  // Copy the grouped weights into a dense conv node's block diagonal and
  // compute both with the same kernel entry point.
  const int icpg = ic / groups, ocpg = oc / groups;
  nn::Node dense_node = dense.node(1);
  std::fill(dense_node.weights.begin(), dense_node.weights.end(), 0.0f);
  const nn::Node& grouped_node = grouped.node(1);
  for (int o = 0; o < oc; ++o) {
    const int group = o / ocpg;
    for (int local = 0; local < icpg; ++local) {
      const int dense_ic = group * icpg + local;
      for (int tap = 0; tap < k * k; ++tap) {
        dense_node.weights[static_cast<std::size_t>(
            (o * ic + dense_ic) * k * k + tap)] =
            grouped_node
                .weights[static_cast<std::size_t>((o * icpg + local) * k * k +
                                                  tap)];
      }
    }
  }
  dense_node.bias = grouped_node.bias;

  Tensor input({ic, size, size});
  input.randomize(rng);
  const Placed whole{Region::full(size, size), input};
  const Region full_out = Region::full(size, size);
  const Tensor grouped_out =
      nn::conv2d(grouped_node, whole, full_out, nn::ConvBackend::Im2col);
  const Tensor dense_out =
      nn::conv2d(dense_node, whole, full_out, nn::ConvBackend::Im2col);
  // Same math, but dense accumulates extra zero-weight terms: values agree
  // to float tolerance (products with zero weights are exact zeros, so the
  // sums are actually identical).
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(grouped_out, dense_out), 0.0f);
}

TEST(GroupedConv, BackendsAgreeOnRegions) {
  for (const int groups : {1, 2, 4, 8}) {
    nn::Graph g;
    const int in = g.add_input({8, 13, 13});
    const int conv = g.add_conv_grouped(in, 8, 3, 1, 1, groups);
    g.finalize();
    Rng rng(7);
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const nn::Node& node = g.node(conv);
    for (const Region region :
         {Region::full(13, 13), Region::rows(3, 9, 13), Region{0, 13, 5, 9}}) {
      const Region need = nn::input_region(g, conv, region);
      const Placed piece{need, extract(input, need)};
      const Tensor direct =
          nn::conv2d(node, piece, region, nn::ConvBackend::Direct);
      const Tensor fast =
          nn::conv2d(node, piece, region, nn::ConvBackend::Im2col);
      ASSERT_FLOAT_EQ(Tensor::max_abs_diff(direct, fast), 0.0f)
          << "groups=" << groups << " region " << region;
    }
  }
}

TEST(GroupedConv, DepthwiseFlopsMatchEq2PerGroup) {
  nn::Graph g;
  const int in = g.add_input({16, 20, 20});
  const int dw = g.add_depthwise(in, 3, 1, 1);
  g.finalize();
  EXPECT_EQ(g.node(dw).groups, 16);
  EXPECT_EQ(g.node(dw).out_shape, (Shape{16, 20, 20}));
  // k² · (c_in/groups = 1) · h · w · c_out
  EXPECT_DOUBLE_EQ(cost::node_flops_full(g, dw), 9.0 * 1 * 20 * 20 * 16);
}

TEST(Zoo, MobileNetV1Shapes) {
  const nn::Graph g = models::mobilenet_v1();
  int depthwise = 0, pointwise = 0;
  for (const auto& node : g.nodes()) {
    if (node.kind != nn::OpKind::Conv) continue;
    if (node.groups > 1) ++depthwise;
    if (node.win.kh == 1 && node.groups == 1) ++pointwise;
  }
  EXPECT_EQ(depthwise, 13);
  EXPECT_EQ(pointwise, 13);
  EXPECT_EQ(g.output_shape(), (Shape{1024, 7, 7}));
  // The whole point of MobileNet: ~10-30x fewer FLOPs than VGG16.
  EXPECT_LT(cost::model_flops(g) * 10.0,
            cost::model_flops(models::vgg16()));
}

TEST(Zoo, SqueezeNetShapesAndFireBranches) {
  const nn::Graph g = models::squeezenet();
  const auto units = partition::partition_units(g);
  int fire_blocks = 0;
  for (const auto& unit : units) {
    const auto branches = partition::block_branches(g, unit);
    if (branches.size() == 2) ++fire_blocks;
  }
  EXPECT_EQ(fire_blocks, 8);  // every fire block's expand stage decomposes
  EXPECT_EQ(g.output_shape().channels, 1000);
}

TEST(GroupedConv, MobileNetSegmentStripsMatchReference) {
  nn::Graph g = models::mobilenet_v1({.input_size = 64});
  Rng rng(9);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const auto reference = nn::execute_all(g, input);
  // A fused segment spanning several depthwise-separable pairs.
  const int first = 2, last = 9;
  const Shape out = g.node(last).out_shape;
  const Region strip = Region::rows(0, out.height / 2, out.width);
  const Region need = nn::segment_input_region(g, first, last, strip);
  const Tensor got = nn::execute_segment(
      g, first, last,
      {need, extract(reference[static_cast<std::size_t>(first - 1)], need)},
      strip);
  EXPECT_FLOAT_EQ(
      Tensor::max_abs_diff(
          extract(reference[static_cast<std::size_t>(last)], strip), got),
      0.0f);
}

TEST(GroupedConv, DistributedMobileNetBitExact) {
  nn::Graph g = models::mobilenet_v1({.input_size = 64});
  Rng rng(11);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(g, input);
  const Cluster c = Cluster::paper_heterogeneous();
  const auto plan = partition::pico_plan(g, c, test_network());
  runtime::PipelineRuntime rt(g, plan);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
}

TEST(GroupedConv, DistributedSqueezeNetBitExact) {
  nn::Graph g = models::squeezenet({.input_size = 96});
  Rng rng(13);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor reference = nn::execute(g, input);
  const Cluster c = Cluster::paper_heterogeneous();
  const auto plan = partition::pico_plan(
      g, c, test_network(), {.enable_branch_parallel = true});
  runtime::PipelineRuntime rt(g, plan);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
}

TEST(Cfg, GroupsKeySupported) {
  const nn::Graph g = models::parse_cfg(R"(
[net]
channels=8
height=12
width=12
[convolutional]
filters=8
size=3
pad=1
groups=8
activation=relu
[convolutional]
filters=16
size=1
activation=relu
)");
  EXPECT_EQ(g.node(1).groups, 8);
  EXPECT_EQ(g.node(1).weights.size(), 8u * 1u * 9u);
  EXPECT_EQ(g.output_shape(), (Shape{16, 12, 12}));
}

}  // namespace
}  // namespace pico
