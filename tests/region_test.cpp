#include <gtest/gtest.h>

#include "tensor/region.hpp"

namespace pico {
namespace {

TEST(Region, Basics) {
  const Region r{2, 5, 1, 4};
  EXPECT_EQ(r.height(), 3);
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.area(), 9);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((Region{2, 2, 0, 4}).empty());
  EXPECT_TRUE((Region{3, 2, 0, 4}).empty());
}

TEST(Region, FullAndRows) {
  EXPECT_EQ(Region::full(4, 6), (Region{0, 4, 0, 6}));
  EXPECT_EQ(Region::rows(1, 3, 6), (Region{1, 3, 0, 6}));
}

TEST(Region, Contains) {
  const Region outer{0, 10, 0, 10};
  EXPECT_TRUE(outer.contains({2, 5, 3, 7}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains({2, 11, 3, 7}));
  // Empty regions are contained everywhere.
  EXPECT_TRUE(outer.contains({5, 5, 5, 5}));
  EXPECT_TRUE(outer.contains_point(0, 0));
  EXPECT_FALSE(outer.contains_point(10, 0));
}

TEST(Region, Intersect) {
  const Region a{0, 5, 0, 5};
  const Region b{3, 8, 2, 4};
  EXPECT_EQ(a.intersect(b), (Region{3, 5, 2, 4}));
  EXPECT_TRUE(a.intersect({6, 8, 0, 5}).empty());
}

TEST(Region, UnionBounds) {
  const Region a{0, 2, 0, 2};
  const Region b{4, 6, 3, 5};
  EXPECT_EQ(a.union_bounds(b), (Region{0, 6, 0, 5}));
  // Union with empty returns the other operand.
  const Region empty{};
  EXPECT_EQ(empty.union_bounds(b), b);
  EXPECT_EQ(b.union_bounds(empty), b);
}

TEST(Region, ClampAndShift) {
  const Region r{-2, 12, -1, 5};
  EXPECT_EQ(r.clamp(10, 4), (Region{0, 10, 0, 4}));
  EXPECT_EQ(r.shifted(2, 1), (Region{0, 14, 0, 6}));
}

TEST(TilesExactly, AcceptsPerfectTiling) {
  const Region whole = Region::full(10, 4);
  EXPECT_TRUE(tiles_exactly(whole, {Region::rows(0, 3, 4),
                                    Region::rows(3, 7, 4),
                                    Region::rows(7, 10, 4)}));
}

TEST(TilesExactly, SkipsEmptyPieces) {
  const Region whole = Region::full(4, 4);
  EXPECT_TRUE(tiles_exactly(whole, {Region::rows(0, 4, 4),
                                    Region{2, 2, 0, 4}}));
}

TEST(TilesExactly, RejectsGap) {
  const Region whole = Region::full(10, 4);
  EXPECT_FALSE(tiles_exactly(whole, {Region::rows(0, 3, 4),
                                     Region::rows(4, 10, 4)}));
}

TEST(TilesExactly, RejectsOverlap) {
  const Region whole = Region::full(10, 4);
  EXPECT_FALSE(tiles_exactly(whole, {Region::rows(0, 5, 4),
                                     Region::rows(4, 10, 4)}));
}

TEST(TilesExactly, RejectsOutOfBounds) {
  const Region whole = Region::full(10, 4);
  EXPECT_FALSE(tiles_exactly(whole, {Region::rows(0, 11, 4)}));
}

TEST(TilesExactly, Rejects2DOverlapWithMatchingArea) {
  // Two overlapping tiles whose total area equals the whole: must still be
  // rejected (area bookkeeping alone is not enough).
  const Region whole = Region::full(4, 4);
  EXPECT_FALSE(tiles_exactly(whole, {Region{0, 2, 0, 4}, Region{0, 4, 0, 2}}));
}

}  // namespace
}  // namespace pico
