#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cost/flops.hpp"
#include "models/zoo.hpp"
#include "nn/graph.hpp"

namespace pico {
namespace {

TEST(Flops, ConvMatchesEq2) {
  nn::Graph g;
  int x = g.add_input({3, 32, 32});
  g.add_conv(x, 16, 3, 1, 1);
  g.finalize();
  // Eq. 2: k² · c_in · w · h · c_out = 9 · 3 · 32 · 32 · 16
  EXPECT_DOUBLE_EQ(cost::node_flops_full(g, 1), 9.0 * 3 * 32 * 32 * 16);
  // A half-height region costs half.
  EXPECT_DOUBLE_EQ(cost::node_flops(g, 1, Region::rows(0, 16, 32)),
                   9.0 * 3 * 32 * 16 * 16);
  EXPECT_DOUBLE_EQ(cost::node_flops(g, 1, Region{0, 0, 0, 0}), 0.0);
}

TEST(Flops, ConvDominatesModelTotals) {
  // The paper: conv layers are 99.19% of VGG16 computation and 99.59% of
  // YOLOv2's.  Our accounting (pool/relu counted, tiny) must agree.
  for (const auto model : {models::ModelId::Vgg16, models::ModelId::Yolov2}) {
    const nn::Graph g = models::build(model);
    Flops conv = 0.0, total = 0.0;
    for (int id = 1; id < g.size(); ++id) {
      const Flops f = cost::node_flops_full(g, id);
      total += f;
      if (g.node(id).kind == nn::OpKind::Conv) conv += f;
    }
    EXPECT_GT(conv / total, 0.99) << models::model_name(model);
  }
}

TEST(Flops, Vgg16TotalInKnownBallpark) {
  // VGG16 conv body at 224x224 is ~15.3 GMACs in the literature.
  const nn::Graph g = models::vgg16();
  const Flops total = cost::model_flops(g);
  EXPECT_GT(total, 14e9);
  EXPECT_LT(total, 16.5e9);
}

TEST(Flops, SegmentFlopsIncludeHalo) {
  // Fused 3x3 convs computed over a strip need more FLOPs than the strip's
  // area share because of halo rows.
  nn::Graph g;
  int x = g.add_input({8, 32, 32});
  x = g.add_conv(x, 8, 3, 1, 1);
  x = g.add_conv(x, 8, 3, 1, 1);
  x = g.add_conv(x, 8, 3, 1, 1);
  g.finalize();
  const Flops full = cost::segment_flops_full(g, 1, 3);
  const Flops top = cost::segment_flops(g, 1, 3, Region::rows(0, 16, 32));
  const Flops bottom = cost::segment_flops(g, 1, 3, Region::rows(16, 32, 32));
  EXPECT_GT(top + bottom, full);       // redundancy exists
  EXPECT_LT(top + bottom, full * 1.5); // and is bounded
  EXPECT_DOUBLE_EQ(cost::segment_flops(g, 1, 3, Region::full(32, 32)), full);
}

TEST(Flops, RedundancyGrowsWithFusedDepthAndParts) {
  // §II-C / Fig. 4: fusing more layers or adding more devices grows the
  // overlapped share.
  nn::Graph g;
  int x = g.add_input({8, 64, 64});
  for (int i = 0; i < 6; ++i) x = g.add_conv(x, 8, 3, 1, 1);
  g.finalize();

  auto total_for = [&](int last, int parts) {
    Flops sum = 0.0;
    const Shape out = g.node(last).out_shape;
    for (int k = 0; k < parts; ++k) {
      const Region strip = Region::rows(out.height * k / parts,
                                        out.height * (k + 1) / parts,
                                        out.width);
      sum += cost::segment_flops(g, 1, last, strip);
    }
    return sum / cost::segment_flops_full(g, 1, last);
  };

  EXPECT_LT(total_for(2, 4), total_for(4, 4));  // deeper fusion -> worse
  EXPECT_LT(total_for(4, 2), total_for(4, 8));  // more devices -> worse
  EXPECT_GT(total_for(6, 8), 1.10);
}

TEST(Flops, RegionBytes) {
  EXPECT_DOUBLE_EQ(cost::region_bytes(16, Region::rows(0, 8, 10)),
                   16.0 * 8 * 10 * 4);
  EXPECT_DOUBLE_EQ(cost::region_bytes(16, Region{}), 0.0);
  nn::Graph g;
  int x = g.add_input({3, 4, 4});
  g.add_conv(x, 2, 3, 1, 1);
  g.finalize();
  EXPECT_DOUBLE_EQ(cost::node_output_bytes(g, 1), 2.0 * 4 * 4 * 4);
}

TEST(Device, ComputeTimeEq5) {
  Device d;
  d.capacity = 2e9;
  d.alpha = 1.5;
  EXPECT_DOUBLE_EQ(d.compute_time(4e9), 3.0);
}

TEST(Network, TransferTimeEq7) {
  NetworkModel net;
  net.bandwidth = 6.25e6;  // 50 Mbps
  net.per_message_overhead = 0.0;
  EXPECT_DOUBLE_EQ(net.transfer_time(6.25e6), 1.0);
  net.per_message_overhead = 1e-3;
  EXPECT_DOUBLE_EQ(net.transfer_time(0.0), 1e-3);
}

TEST(Network, PerDeviceLinkScaling) {
  NetworkModel net;
  net.bandwidth = 1e6;
  net.per_message_overhead = 0.0;
  net.device_bandwidth_scale = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6, 0), 2.0);  // degraded link
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6, 1), 1.0);
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6, 5), 1.0);  // beyond vector: 1.0
  EXPECT_DOUBLE_EQ(net.transfer_time(1e6), 1.0);     // nominal
  const NetworkModel uniform = net.uniform();
  EXPECT_DOUBLE_EQ(uniform.transfer_time(1e6, 0), 1.0);
}

TEST(Cluster, Factories) {
  const Cluster paper = Cluster::paper_heterogeneous();
  EXPECT_EQ(paper.size(), 8);
  EXPECT_DOUBLE_EQ(paper.device(0).frequency_ghz, 1.2);
  EXPECT_DOUBLE_EQ(paper.device(7).frequency_ghz, 0.6);
  EXPECT_GT(paper.device(0).capacity, paper.device(7).capacity);

  const Cluster homogeneous = Cluster::paper_homogeneous(4, 0.8);
  EXPECT_EQ(homogeneous.size(), 4);
  EXPECT_DOUBLE_EQ(homogeneous.device(0).capacity,
                   homogeneous.device(3).capacity);
}

TEST(Cluster, HomogenizedMatchesEq12) {
  const Cluster c = Cluster::paper_heterogeneous();
  const Cluster h = c.homogenized();
  EXPECT_EQ(h.size(), c.size());
  for (const Device& d : h.devices()) {
    EXPECT_DOUBLE_EQ(d.capacity, c.mean_capacity());
  }
  EXPECT_DOUBLE_EQ(h.total_capacity(), c.total_capacity());
}

TEST(Cluster, SortAndFastest) {
  const Cluster c = Cluster::raspberry_pi({0.6, 1.2, 0.8});
  EXPECT_EQ(c.fastest(), 1);
  const auto order = c.ids_by_capacity_desc();
  EXPECT_EQ(order, (std::vector<DeviceId>{1, 2, 0}));
}

TEST(Cluster, Prefix) {
  const Cluster c = Cluster::paper_heterogeneous();
  const Cluster p = c.prefix(3);
  EXPECT_EQ(p.size(), 3);
  EXPECT_DOUBLE_EQ(p.device(2).capacity, c.device(2).capacity);
}

}  // namespace
}  // namespace pico
