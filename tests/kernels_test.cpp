// Region kernels vs. full-map execution: computing a region of a node's
// output from a (haloed) input piece must agree bit-for-bit with slicing the
// full-map result.  This is the core correctness property distributed
// inference rests on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/receptive.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

using nn::Graph;

/// Build a single-op graph, run it fully, then recompute `out_region` from
/// the minimal input piece and compare exactly.
void check_region_matches(Graph& g, int node_id, const Region& out_region,
                          std::uint64_t seed) {
  g.finalize();
  Rng rng(seed);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);

  const std::vector<Tensor> all = nn::execute_all(g, input);
  const Tensor& full_out = all[static_cast<std::size_t>(node_id)];
  const Tensor expected = extract(full_out, out_region);

  const nn::Node& node = g.node(node_id);
  std::vector<Placed> pieces;
  for (std::size_t k = 0; k < node.inputs.size(); ++k) {
    const Region need =
        nn::input_region(g, node_id, out_region, static_cast<int>(k));
    const Tensor& producer =
        all[static_cast<std::size_t>(node.inputs[k])];
    pieces.push_back({need, extract(producer, need)});
  }
  const Tensor got = nn::compute_node(node, pieces, out_region);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(expected, got), 0.0f)
      << "node " << node.name << " region mismatch";
}

TEST(Kernels, ConvInteriorRegion) {
  Graph g;
  int x = g.add_input({3, 16, 16});
  g.add_conv(x, 8, 3, 1, 1);
  check_region_matches(g, 1, Region{5, 9, 3, 12}, 100);
}

TEST(Kernels, ConvBorderRegionsSeeTruePadding) {
  for (const Region r : {Region::rows(0, 4, 16), Region::rows(12, 16, 16),
                         Region{0, 16, 0, 3}, Region{0, 16, 13, 16}}) {
    Graph g;
    int x = g.add_input({2, 16, 16});
    g.add_conv(x, 4, 3, 1, 1);
    check_region_matches(g, 1, r, 101);
  }
}

TEST(Kernels, ConvStride2) {
  Graph g;
  int x = g.add_input({3, 17, 17});
  g.add_conv(x, 4, 3, 2, 1);
  check_region_matches(g, 1, Region{2, 7, 1, 8}, 102);
}

TEST(Kernels, Conv1x1) {
  Graph g;
  int x = g.add_input({6, 9, 9});
  g.add_conv(x, 3, 1, 1, 0);
  check_region_matches(g, 1, Region{4, 7, 0, 9}, 103);
}

TEST(Kernels, Conv7x7Stride2Pad3) {
  Graph g;
  int x = g.add_input({3, 32, 32});
  g.add_conv(x, 8, 7, 2, 3);
  check_region_matches(g, 1, Region{0, 9, 4, 16}, 104);
}

TEST(Kernels, ConvNonSquare1x7And7x1) {
  {
    Graph g;
    int x = g.add_input({2, 15, 15});
    g.add_conv_window(x, 3, nn::Window{1, 7, 1, 1, 0, 3});
    check_region_matches(g, 1, Region{3, 10, 0, 15}, 105);
  }
  {
    Graph g;
    int x = g.add_input({2, 15, 15});
    g.add_conv_window(x, 3, nn::Window{7, 1, 1, 1, 3, 0});
    check_region_matches(g, 1, Region{0, 15, 2, 9}, 106);
  }
}

TEST(Kernels, ConvWithoutFusedRelu) {
  Graph g;
  int x = g.add_input({2, 8, 8});
  g.add_conv(x, 2, 3, 1, 1, /*fused_relu=*/false);
  g.finalize();
  Rng rng(107);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor out = nn::execute(g, input);
  bool any_negative = false;
  for (float v : out.data()) any_negative |= v < 0.0f;
  EXPECT_TRUE(any_negative) << "unfused conv should produce negatives";
}

TEST(Kernels, FusedReluClamps) {
  Graph g;
  int x = g.add_input({2, 8, 8});
  g.add_conv(x, 2, 3, 1, 1, /*fused_relu=*/true);
  g.finalize();
  Rng rng(107);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor out = nn::execute(g, input);
  for (float v : out.data()) EXPECT_GE(v, 0.0f);
}

TEST(Kernels, MaxPoolRegions) {
  Graph g;
  int x = g.add_input({4, 16, 16});
  g.add_maxpool(x, 2, 2);
  check_region_matches(g, 1, Region{1, 5, 2, 8}, 108);
}

TEST(Kernels, MaxPool3x3Stride2Pad1) {
  Graph g;
  int x = g.add_input({2, 17, 17});
  g.add_maxpool(x, 3, 2, 1);
  check_region_matches(g, 1, Region{0, 9, 0, 5}, 109);
}

TEST(Kernels, AvgPoolPaddedBorderUsesValidTapCount) {
  Graph g;
  int x = g.add_input({1, 8, 8});
  g.add_avgpool(x, 3, 1, 1);
  g.finalize();
  Tensor input(g.input_shape(), 1.0f);
  const Tensor out = nn::execute(g, input);
  // Corner has 4 valid taps of value 1 -> average 1 (divide by valid count).
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 4, 4), 1.0f);
}

TEST(Kernels, AvgPoolRegionMatch) {
  Graph g;
  int x = g.add_input({3, 12, 12});
  g.add_avgpool(x, 3, 1, 1);
  check_region_matches(g, 1, Region{0, 6, 3, 12}, 110);
}

TEST(Kernels, BatchNormRegion) {
  Graph g;
  int x = g.add_input({5, 10, 10});
  g.add_batchnorm(x, /*fused_relu=*/true);
  check_region_matches(g, 1, Region{2, 8, 1, 9}, 111);
}

TEST(Kernels, AddRegionWithMismatchedPieceOffsets) {
  // The two inputs arrive as pieces with different (larger) regions; the add
  // must index each piece by its own offset.
  Graph g;
  int x = g.add_input({2, 12, 12});
  const int a = g.add_conv(x, 2, 3, 1, 1, false);
  const int b = g.add_conv(x, 2, 1, 1, 0, false);
  g.add_add(a, b);
  g.finalize();
  Rng rng(112);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const auto all = nn::execute_all(g, input);
  const Region out_region{4, 8, 0, 12};
  const Region big_a{2, 10, 0, 12}, big_b{4, 9, 0, 12};
  std::vector<Placed> pieces{{big_a, extract(all[1], big_a)},
                             {big_b, extract(all[2], big_b)}};
  const Tensor got = nn::compute_node(g.node(3), pieces, out_region);
  const Tensor expected = extract(all[3], out_region);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(expected, got), 0.0f);
}

TEST(Kernels, ConcatRegion) {
  Graph g;
  int x = g.add_input({3, 10, 10});
  const int a = g.add_conv(x, 2, 1, 1, 0);
  const int b = g.add_conv(x, 3, 3, 1, 1);
  g.add_concat({a, b});
  check_region_matches(g, 3, Region{3, 7, 2, 10}, 113);
}

TEST(Kernels, FullyConnectedMatchesManual) {
  Graph g;
  int x = g.add_input({2, 2, 2});
  g.add_fc(x, 3);
  g.finalize();
  Rng rng(114);
  g.randomize_weights(rng);
  Tensor input(g.input_shape());
  input.randomize(rng);
  const Tensor out = nn::execute(g, input);
  const nn::Node& fc = g.node(1);
  for (int o = 0; o < 3; ++o) {
    float acc = 0.0f;
    for (int i = 0; i < 8; ++i) {
      acc += fc.weights[static_cast<std::size_t>(o * 8 + i)] *
             input.data()[static_cast<std::size_t>(i)];
    }
    acc += fc.bias[static_cast<std::size_t>(o)];
    EXPECT_FLOAT_EQ(out.at(o, 0, 0), acc);
  }
}

TEST(Kernels, GlobalAvgPool) {
  Graph g;
  int x = g.add_input({2, 4, 4});
  g.add_global_avgpool(x);
  g.finalize();
  Tensor input(g.input_shape());
  for (int y = 0; y < 4; ++y)
    for (int xx = 0; xx < 4; ++xx) {
      input.at(0, y, xx) = 2.0f;
      input.at(1, y, xx) = static_cast<float>(y);
    }
  const Tensor out = nn::execute(g, input);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 1.5f);
}

}  // namespace
}  // namespace pico
