#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/zoo.hpp"
#include "partition/bfs.hpp"
#include "partition/local_search.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "partition/units.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

TEST(LocalSearch, NeverWorsensAndStaysValid) {
  const NetworkModel net = test_network();
  for (const auto model :
       {models::ModelId::Vgg16, models::ModelId::Resnet34}) {
    const nn::Graph g = models::build(model, {.input_size = 64});
    const Cluster c = Cluster::paper_heterogeneous();
    const auto pico = partition::pico_plan(g, c, net);
    const auto result = partition::refine_plan(g, c, net, pico);
    partition::validate_plan(g, c, result.plan);
    EXPECT_LE(result.final_period, result.initial_period + 1e-12);
    EXPECT_DOUBLE_EQ(partition::plan_cost(g, c, net, result.plan).period,
                     result.final_period);
    EXPECT_GT(result.moves_tried, 0);
  }
}

TEST(LocalSearch, CannotBeatTheExhaustiveOptimum) {
  const nn::Graph g = models::synthetic_chain(6, 32, 8);
  const Cluster c = Cluster::raspberry_pi({1.2, 0.8, 0.6});
  const NetworkModel net = test_network();
  const auto bfs = partition::bfs_optimal_plan(g, c, net, {});
  ASSERT_FALSE(bfs.timed_out);
  const auto pico = partition::pico_plan(g, c, net);
  const auto refined = partition::refine_plan(g, c, net, pico, {.seed = 3});
  EXPECT_GE(refined.final_period, bfs.period - 1e-12);
}

TEST(LocalSearch, RepairsDeliberatelyBadDeviceAssignment) {
  // Start from a plan whose fastest device sits in the lightest stage; the
  // climber must find a strictly better arrangement.
  const nn::Graph g = models::vgg16({.input_size = 224});
  const Cluster c = Cluster::raspberry_pi({1.5, 0.4, 0.4, 0.4});
  const NetworkModel net = test_network();
  const auto units = partition::partition_units(g);

  // Two stages: heavy head (most units) on slow devices, light tail on the
  // fastest device.
  const auto head_span =
      partition::unit_span(units, 0, static_cast<int>(units.size()) - 3);
  const auto tail_span =
      partition::unit_span(units, static_cast<int>(units.size()) - 2,
                           static_cast<int>(units.size()) - 1);
  partition::Plan bad;
  bad.scheme = "bad";
  bad.pipelined = true;
  bad.stages.push_back(partition::make_stage(g, c, head_span.first,
                                             head_span.last, {1, 2, 3}));
  bad.stages.push_back(
      partition::make_stage(g, c, tail_span.first, tail_span.last, {0}));
  partition::validate_plan(g, c, bad);

  const auto refined =
      partition::refine_plan(g, c, net, bad, {.max_moves = 6000, .seed = 5});
  EXPECT_LT(refined.final_period, refined.initial_period * 0.8);
  EXPECT_GT(refined.improvements, 0);
}

TEST(LocalSearch, RespectsLatencyLimit) {
  const nn::Graph g = models::vgg16({.input_size = 64});
  const Cluster c = Cluster::paper_heterogeneous();
  const NetworkModel net = test_network();
  const auto pico = partition::pico_plan(g, c, net);
  const Seconds limit =
      partition::plan_cost(g, c, net, pico).latency * 1.02;
  partition::LocalSearchOptions options;
  options.latency_limit = limit;
  options.seed = 11;
  const auto refined = partition::refine_plan(g, c, net, pico, options);
  EXPECT_LE(partition::plan_cost(g, c, net, refined.plan).latency,
            limit + 1e-12);
}

TEST(LocalSearch, RejectsSequentialPlans) {
  const nn::Graph g = models::toy_mnist({.input_size = 32});
  const Cluster c = Cluster::homogeneous(2, 1e9);
  const auto lw = partition::lw_plan(g, c);
  EXPECT_THROW(partition::refine_plan(g, c, test_network(), lw),
               InvariantError);
}

}  // namespace
}  // namespace pico
