// Observability layer: histogram bucket/percentile math, registry
// concurrency (exercised under TSan via the tsan preset), span tracing, the
// Chrome-trace JSON encoder (validated by a real JSON parser below), and
// end-to-end span/metric accounting through PipelineRuntime and the
// simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/pico_dp.hpp"
#include "runtime/pipeline.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/trace.hpp"

namespace pico {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to round-trip-validate
// the Chrome trace output with real syntax checking (quotes, escapes,
// nesting), independent of the encoder under test.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing content");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      literal("null");
      return {};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // validated but not decoded; ASCII-only output
            out.push_back('?');
            break;
          }
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  void literal(const char* text) {
    const std::size_t n = std::string(text).size();
    if (text_.compare(pos_, n, text) != 0) {
      throw std::runtime_error(std::string("expected ") + text);
    }
    pos_ += n;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketIndexInvertsBounds) {
  // Every sampled value must land in a bucket whose [lower, upper) range
  // contains it.
  for (double v = 2e-9; v < 1e3; v *= 1.17) {
    const int index = obs::Histogram::bucket_index(v);
    ASSERT_GT(index, 0);
    ASSERT_LT(index, obs::Histogram::kBucketCount);
    if (index < obs::Histogram::kBucketCount - 1) {
      EXPECT_GE(v, obs::Histogram::bucket_lower(index) * (1.0 - 1e-12))
          << v;
      EXPECT_LT(v, obs::Histogram::bucket_upper(index) * (1.0 + 1e-12))
          << v;
    }
  }
}

TEST(Histogram, UnderflowAndNonPositiveGoToBucketZero) {
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1e-10), 0);
}

TEST(Histogram, HugeValuesClampToOverflowBucket) {
  EXPECT_EQ(obs::Histogram::bucket_index(1e300),
            obs::Histogram::kBucketCount - 1);
}

TEST(Histogram, EmptyStateIsWellDefined) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_TRUE(std::isinf(h.min()) && h.min() > 0.0);
  EXPECT_TRUE(std::isinf(h.max()) && h.max() < 0.0);
}

TEST(Histogram, CountSumMeanMinMaxExact) {
  obs::Histogram h;
  h.observe(0.001);
  h.observe(0.002);
  h.observe(0.003);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 0.006);
  EXPECT_DOUBLE_EQ(h.mean(), 0.002);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.003);
}

TEST(Histogram, PercentilesWithinBucketRelativeError) {
  // Log-bucketed quantiles must be within one bucket width of the exact
  // sample quantile: rel error <= 2^(1/8) - 1 (~9%); allow 10% for the
  // interpolation endpoints.
  obs::Histogram h;
  std::vector<double> values;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-4 * std::pow(10.0, 3.0 * rng.uniform());
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double estimate = h.percentile(q);
    EXPECT_NEAR(estimate, exact, exact * 0.10) << "q=" << q;
  }
}

TEST(Histogram, ResetClears) {
  obs::Histogram h;
  h.observe(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.99), 0.0);
  h.observe(2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, GetOrCreateIsStable) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("test_total", {{"k", "v"}});
  obs::Counter& b = registry.counter("test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  obs::Counter& other = registry.counter("test_total", {{"k", "w"}});
  EXPECT_NE(&a, &other);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("metric_a");
  EXPECT_THROW(registry.histogram("metric_a"), Error);
  EXPECT_THROW(registry.gauge("metric_a"), Error);
}

TEST(Registry, PrometheusDumpHasSeriesAndSummary) {
  obs::Registry registry;
  registry.counter("pico_test_total", {{"device", "3"}}).add(7);
  registry.gauge("pico_test_gauge").set(1.5);
  obs::Histogram& h =
      registry.histogram("pico_test_seconds", {{"stage", "0"}});
  for (int i = 1; i <= 100; ++i) h.observe(0.001 * i);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("pico_test_total{device=\"3\"} 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pico_test_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("pico_test_seconds_count{stage=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

TEST(Registry, ResetValuesKeepsHandlesValid) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("persistent_total");
  counter.add(5);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0);
  counter.add(2);
  EXPECT_EQ(registry.counter("persistent_total").value(), 2);
}

TEST(Registry, ConcurrentRegistrationAndObservation) {
  // Hammer get-or-create and the lock-free hot paths from many threads;
  // TSan (tsan preset) checks the synchronization, we check the totals.
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kOps; ++i) {
        registry.counter("concurrent_total").add(1);
        registry
            .histogram("concurrent_seconds",
                       {{"lane", std::to_string(t % 3)}})
            .observe(1e-3 * (i + 1));
        registry.gauge("concurrent_gauge").set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("concurrent_total").value(),
            static_cast<std::int64_t>(kThreads) * kOps);
  std::int64_t histogram_total = 0;
  for (const char* lane : {"0", "1", "2"}) {
    histogram_total +=
        registry.histogram("concurrent_seconds", {{"lane", lane}}).count();
  }
  EXPECT_EQ(histogram_total, static_cast<std::int64_t>(kThreads) * kOps);
}

// ---------------------------------------------------------------------------
// Tracer + Chrome trace JSON
// ---------------------------------------------------------------------------

class TracerFixture : public ::testing::Test {
 protected:
  TracerFixture() {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  ~TracerFixture() override {
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
  }
};

TEST_F(TracerFixture, DisabledRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  { obs::Span span("noop", "test"); }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST_F(TracerFixture, SpanRecordsNameCategoryTrackAndArgs) {
  obs::Tracer& tracer = obs::Tracer::global();
  {
    obs::Span span("work", "test", obs::stage_track(2), 42);
    span.arg("key", "value");
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].track, obs::stage_track(2));
  EXPECT_EQ(spans[0].task_id, 42);
  EXPECT_GE(spans[0].duration_ns, 0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "key");
}

TEST_F(TracerFixture, MergesThreadBuffersSortedByStart) {
  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        obs::SpanRecord span;
        span.name = "t" + std::to_string(t);
        span.category = "test";
        span.start_ns = obs::Tracer::now_ns();
        span.duration_ns = 10;
        obs::Tracer::global().record(std::move(span));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto spans = tracer.snapshot();
  EXPECT_EQ(spans.size(), 200u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
}

TEST_F(TracerFixture, ChromeTraceJsonRoundTrip) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord span;
  span.name = "needs \"escaping\" \\ here";
  span.category = "stage";
  span.track = obs::stage_track(1);
  span.start_ns = 2500;       // 2.5 us
  span.duration_ns = 1500;    // 1.5 us
  span.task_id = 7;
  span.args = {{"bytes", "123"}};
  spans.push_back(span);
  span.name = "plain";
  span.args.clear();
  spans.push_back(span);

  std::ostringstream out;
  obs::write_chrome_trace(out, spans, {{obs::stage_track(1), "stage 1"}});

  const JsonValue root = JsonParser(out.str()).parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 thread_name metadata event + 2 spans.
  ASSERT_EQ(events->array.size(), 3u);

  const JsonValue& meta = events->array[0];
  EXPECT_EQ(meta.find("ph")->string, "M");
  EXPECT_EQ(meta.find("name")->string, "thread_name");

  const JsonValue& first = events->array[1];
  EXPECT_EQ(first.find("ph")->string, "X");
  EXPECT_EQ(first.find("name")->string, "needs \"escaping\" \\ here");
  EXPECT_EQ(first.find("cat")->string, "stage");
  EXPECT_DOUBLE_EQ(first.find("ts")->number, 2.5);
  EXPECT_DOUBLE_EQ(first.find("dur")->number, 1.5);
  EXPECT_EQ(first.find("tid")->number, obs::stage_track(1));
  const JsonValue* args = first.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("bytes")->string, "123");
}

// ---------------------------------------------------------------------------
// End-to-end: PipelineRuntime spans and metrics
// ---------------------------------------------------------------------------

TEST_F(TracerFixture, PipelineRunEmitsOneStageSpanPerTaskPerStage) {
  obs::Registry::global().reset_values();
  nn::Graph graph = models::toy_mnist({.input_size = 32});
  Rng rng(7);
  graph.randomize_weights(rng);
  const Cluster cluster = Cluster::paper_heterogeneous();
  NetworkModel network;
  network.bandwidth = 50e6 / 8.0;
  network.per_message_overhead = 1e-3;
  const auto plan = partition::pico_plan(graph, cluster, network);
  ASSERT_TRUE(plan.pipelined);
  const std::size_t stages = plan.stages.size();

  constexpr int kTasks = 6;
  {
    runtime::PipelineRuntime rt(graph, plan);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kTasks; ++i) {
      Tensor input(graph.input_shape());
      input.randomize(rng);
      futures.push_back(rt.submit(std::move(input)));
    }
    for (auto& f : futures) f.get();
    rt.shutdown();
  }

  const auto spans = obs::Tracer::global().snapshot();
  std::size_t stage_spans = 0, task_spans = 0, compute_spans = 0,
              queue_spans = 0;
  for (const auto& span : spans) {
    if (span.category == "stage") ++stage_spans;
    if (span.category == "task") ++task_spans;
    if (span.category == "compute") ++compute_spans;
    if (span.category == "queue") ++queue_spans;
  }
  EXPECT_EQ(stage_spans, kTasks * stages);
  EXPECT_EQ(task_spans, static_cast<std::size_t>(kTasks));
  EXPECT_GE(compute_spans, kTasks * stages);  // >= one device per stage
  EXPECT_EQ(queue_spans, kTasks * stages);    // one wait per coordinator

  // Metrics agree with the span counts.
  obs::Registry& registry = obs::Registry::global();
  EXPECT_EQ(registry.counter("pico_tasks_completed_total").value(), kTasks);
  EXPECT_EQ(registry.histogram("pico_task_latency_seconds").count(), kTasks);
  long long requests = 0;
  for (int d = 0; d < cluster.size(); ++d) {
    requests += registry
                    .counter("pico_device_requests_total",
                             {{"device", std::to_string(d)}})
                    .value();
  }
  EXPECT_EQ(requests, static_cast<long long>(compute_spans));
  for (std::size_t s = 0; s < stages; ++s) {
    EXPECT_EQ(registry
                  .histogram("pico_stage_service_seconds",
                             {{"stage", std::to_string(s)}})
                  .count(),
              kTasks)
        << "stage " << s;
  }
}

// ---------------------------------------------------------------------------
// Simulator stage records + shared exporter
// ---------------------------------------------------------------------------

class SimObsFixture : public ::testing::Test {
 protected:
  SimObsFixture()
      : graph_(models::toy_mnist({.input_size = 32})),
        cluster_(Cluster::paper_heterogeneous()) {
    network_.bandwidth = 50e6 / 8.0;
    network_.per_message_overhead = 1e-3;
  }

  sim::SimResult run(int tasks) {
    const auto plan = partition::pico_plan(graph_, cluster_, network_);
    stages_ = plan.stages.size();
    const auto arrivals = sim::back_to_back_arrivals(tasks);
    return sim::simulate_plan(graph_, cluster_, network_, plan, arrivals);
  }

  nn::Graph graph_;
  Cluster cluster_;
  NetworkModel network_;
  std::size_t stages_ = 0;
};

TEST_F(SimObsFixture, StageRecordsCoverEveryTaskAndStage) {
  const auto result = run(10);
  // Serialized comm model: one chain node per stage.
  EXPECT_EQ(result.stage_records.size(), 10 * stages_);
  for (const auto& record : result.stage_records) {
    EXPECT_GE(record.stage, 0);
    EXPECT_LT(record.stage, static_cast<int>(stages_));
    EXPECT_LE(record.enqueue, record.start);
    EXPECT_LE(record.start, record.completion);
    EXPECT_EQ(record.phase, sim::StagePhase::Service);
  }
  // Sorted by (task, start) and each task's records walk the stages.
  for (std::size_t i = 1; i < result.stage_records.size(); ++i) {
    const auto& prev = result.stage_records[i - 1];
    const auto& cur = result.stage_records[i];
    EXPECT_TRUE(prev.task < cur.task ||
                (prev.task == cur.task && prev.start <= cur.start));
  }
}

TEST_F(SimObsFixture, StageWaitsExplainServiceGaps) {
  const auto result = run(8);
  // Back-to-back arrivals saturate the pipeline: some record must wait.
  double total_wait = 0.0;
  for (const auto& record : result.stage_records) {
    total_wait += record.wait();
  }
  EXPECT_GT(total_wait, 0.0);
}

TEST_F(SimObsFixture, CsvWritersIncludeQueueingColumns) {
  const auto result = run(5);
  std::ostringstream tasks;
  sim::write_task_csv(tasks, result);
  EXPECT_NE(tasks.str().find("queue_wait"), std::string::npos);

  std::ostringstream stages;
  sim::write_stage_csv(stages, result);
  const std::string text = stages.str();
  EXPECT_NE(text.find("task,stage,phase,enqueue,start,completion,wait,"
                      "service"),
            std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            result.stage_records.size() + 1);
}

TEST_F(SimObsFixture, ChromeTraceOfSimulationParses) {
  const auto result = run(4);
  std::ostringstream out;
  sim::write_chrome_trace(out, result);
  const JsonValue root = JsonParser(out.str()).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t task_spans = 0, stage_spans = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    const JsonValue* cat = event.find("cat");
    if (cat->string == "task") ++task_spans;
    if (cat->string == "stage") ++stage_spans;
  }
  EXPECT_EQ(task_spans, 4u);
  EXPECT_EQ(stage_spans, result.stage_records.size());
}

}  // namespace
}  // namespace pico
