// AdaptiveRuntime: APICO on the real threaded runtime — scheme switching
// under wall-clock workload changes, with bit-exact results throughout.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "adaptive/selector.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "models/zoo.hpp"
#include "nn/executor.hpp"
#include "runtime/adaptive_runtime.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

class AdaptiveRuntimeFixture : public ::testing::Test {
 protected:
  AdaptiveRuntimeFixture()
      : graph_(models::toy_mnist({.input_size = 32})),
        cluster_(Cluster::paper_heterogeneous()) {
    Rng rng(91);
    graph_.randomize_weights(rng);
    input_ = Tensor(graph_.input_shape());
    input_.randomize(rng);
    reference_ = nn::execute(graph_, input_);
  }

  std::vector<adaptive::Candidate> candidates() const {
    const NetworkModel net = test_network();
    return {adaptive::make_candidate(
                graph_, cluster_, net,
                plan(graph_, cluster_, net, Scheme::OptimalFused)),
            adaptive::make_candidate(
                graph_, cluster_, net,
                plan(graph_, cluster_, net, Scheme::Pico))};
  }

  nn::Graph graph_;
  Cluster cluster_;
  Tensor input_;
  Tensor reference_;
};

TEST_F(AdaptiveRuntimeFixture, StartsOnFirstCandidateAndComputesExactly) {
  runtime::AdaptiveRuntime rt(graph_, candidates(), {.window = 1000.0, .runtime = {}});
  EXPECT_EQ(rt.current_scheme(), "OFL");
  for (int i = 0; i < 3; ++i) {
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input_), reference_),
                    0.0f);
  }
  EXPECT_EQ(rt.switches(), 0);
}

TEST_F(AdaptiveRuntimeFixture, SwitchesToPipelineUnderBurst) {
  // Tiny window so the controller re-evaluates quickly; β = 1 so one busy
  // window is enough to flip the estimate.
  runtime::AdaptiveRuntime rt(graph_, candidates(),
                              {.beta = 1.0, .window = 0.05, .runtime = {}});
  // Burst: submit a batch, wait past a window boundary, submit again so the
  // re-evaluation (which runs on the submit path) observes the high rate.
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(rt.submit(input_));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const auto batch_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 40; ++i) futures.push_back(rt.submit(input_));
  const std::chrono::duration<double> batch_elapsed =
      std::chrono::steady_clock::now() - batch_start;
  for (auto& f : futures) {
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(f.get(), reference_), 0.0f);
  }
  // Under a sustained burst the controller must have moved to the pipeline
  // at some point (the final scheme depends on the machine's real service
  // rate, so assert on the history, not the end state).
  bool pico_used = false;
  for (const std::string& scheme : rt.scheme_history()) {
    pico_used |= scheme == "PICO";
  }
  if (!pico_used && batch_elapsed.count() > 0.25) {
    // E.g. under a sanitizer the submissions spread over many windows, so
    // the controller never observes a burst-level arrival rate.
    GTEST_SKIP() << "burst took " << batch_elapsed.count()
                 << "s to submit — machine too slow to hit the switching rate";
  }
  EXPECT_TRUE(pico_used);
  EXPECT_GE(rt.switches(), 1);
}

TEST_F(AdaptiveRuntimeFixture, FallsBackToOneStageWhenIdle) {
  runtime::AdaptiveRuntime rt(graph_, candidates(),
                              {.beta = 1.0, .window = 0.05, .runtime = {}});
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(rt.submit(input_));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  futures.push_back(rt.submit(input_));  // triggers re-evaluation -> PICO
  for (auto& f : futures) f.get();
  if (rt.current_scheme() != "PICO") {
    GTEST_SKIP() << "machine served the burst below the switching rate";
  }

  // Go idle: a long quiet stretch drives the measured rate toward zero
  // (one arrival over ~20 windows) -> back to OFL.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  ASSERT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input_), reference_), 0.0f);
  EXPECT_EQ(rt.current_scheme(), "OFL");
  EXPECT_GE(rt.switches(), 2);
}

TEST_F(AdaptiveRuntimeFixture, ShutdownIdempotentAndRejectsSubmit) {
  runtime::AdaptiveRuntime rt(graph_, candidates(), {.window = 1000.0, .runtime = {}});
  rt.infer(input_);
  rt.shutdown();
  rt.shutdown();
  EXPECT_THROW(rt.submit(Tensor(graph_.input_shape())), InvariantError);
}

}  // namespace
}  // namespace pico
