#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/zoo.hpp"
#include "nn/graph.hpp"
#include "partition/units.hpp"

namespace pico {
namespace {

using nn::Graph;
using nn::OpKind;

TEST(Graph, ConvShapeInference) {
  Graph g;
  const int in = g.add_input({3, 32, 32});
  const int conv = g.add_conv(in, 16, 3, 1, 1);
  g.finalize();
  EXPECT_EQ(g.node(conv).out_shape, (Shape{16, 32, 32}));
  EXPECT_EQ(g.node(conv).weights.size(), 16u * 3u * 3u * 3u);
  EXPECT_EQ(g.node(conv).bias.size(), 16u);
}

TEST(Graph, StridedConvAndPoolShapes) {
  Graph g;
  int x = g.add_input({3, 224, 224});
  x = g.add_conv(x, 64, 7, 2, 3);
  EXPECT_EQ(x, 1);
  x = g.add_maxpool(x, 3, 2, 1);
  g.finalize();
  EXPECT_EQ(g.node(1).out_shape, (Shape{64, 112, 112}));
  EXPECT_EQ(g.node(2).out_shape, (Shape{64, 56, 56}));
}

TEST(Graph, NonSquareConvShapes) {
  Graph g;
  int x = g.add_input({8, 17, 17});
  x = g.add_conv_window(x, 4, nn::Window{1, 7, 1, 1, 0, 3});
  g.finalize();
  EXPECT_EQ(g.output_shape(), (Shape{4, 17, 17}));
}

TEST(Graph, ConcatSumsChannels) {
  Graph g;
  const int in = g.add_input({4, 8, 8});
  const int a = g.add_conv(in, 3, 1, 1, 0);
  const int b = g.add_conv(in, 5, 1, 1, 0);
  const int cat = g.add_concat({a, b});
  g.finalize();
  EXPECT_EQ(g.node(cat).out_shape, (Shape{8, 8, 8}));
}

TEST(Graph, AddRequiresMatchingShapes) {
  Graph g;
  const int in = g.add_input({4, 8, 8});
  const int a = g.add_conv(in, 3, 1, 1, 0);
  const int b = g.add_conv(in, 5, 1, 1, 0);
  g.add_add(a, b);
  EXPECT_THROW(g.finalize(), InvariantError);
}

TEST(Graph, FcAndGlobalPoolShapes) {
  Graph g;
  int x = g.add_input({4, 6, 6});
  const int gap = g.add_global_avgpool(x);
  const int fc = g.add_fc(gap, 10);
  g.finalize();
  EXPECT_EQ(g.node(gap).out_shape, (Shape{4, 1, 1}));
  EXPECT_EQ(g.node(fc).out_shape, (Shape{10, 1, 1}));
  EXPECT_FALSE(g.node(fc).spatially_splittable());
}

TEST(Graph, ChainDetection) {
  EXPECT_TRUE(models::vgg16().is_chain());
  EXPECT_TRUE(models::yolov2().is_chain());
  EXPECT_FALSE(models::resnet34().is_chain());
  EXPECT_FALSE(models::inception().is_chain());
}

TEST(Graph, RandomizeWeightsIsDeterministic) {
  Graph a = models::toy_mnist();
  Graph b = models::toy_mnist();
  Rng ra(5), rb(5);
  a.randomize_weights(ra);
  b.randomize_weights(rb);
  for (int id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.node(id).weights, b.node(id).weights);
  }
}

TEST(Zoo, Vgg16LayerCounts) {
  const Graph g = models::vgg16();
  int convs = 0, pools = 0;
  for (const auto& node : g.nodes()) {
    convs += node.kind == OpKind::Conv;
    pools += node.kind == OpKind::MaxPool;
  }
  EXPECT_EQ(convs, 13);  // paper: 13 conv
  EXPECT_EQ(pools, 5);   // paper: 5 pool
  EXPECT_EQ(g.output_shape(), (Shape{512, 7, 7}));
}

TEST(Zoo, Yolov2LayerCounts) {
  const Graph g = models::yolov2();
  int convs = 0, pools = 0;
  for (const auto& node : g.nodes()) {
    convs += node.kind == OpKind::Conv;
    pools += node.kind == OpKind::MaxPool;
  }
  EXPECT_EQ(convs, 23);  // paper: 23 conv
  EXPECT_EQ(pools, 5);   // paper: 5 pool
  EXPECT_EQ(g.input_shape(), (Shape{3, 448, 448}));
  EXPECT_EQ(g.output_shape().channels, 425);
}

TEST(Zoo, ToyMnistLayerCounts) {
  const Graph g = models::toy_mnist();
  int convs = 0, pools = 0;
  for (const auto& node : g.nodes()) {
    convs += node.kind == OpKind::Conv;
    pools += node.kind == OpKind::MaxPool;
  }
  EXPECT_EQ(convs, 8);  // paper §V-C: 8 conv
  EXPECT_EQ(pools, 2);  // paper §V-C: 2 pool
}

TEST(Zoo, Resnet34BlockCount) {
  const Graph g = models::resnet34();
  int adds = 0;
  for (const auto& node : g.nodes()) adds += node.kind == OpKind::Add;
  EXPECT_EQ(adds, 16);  // 3 + 4 + 6 + 3 basic blocks
  EXPECT_EQ(g.output_shape(), (Shape{512, 7, 7}));
}

TEST(Zoo, InceptionBuildsAndHasConcats) {
  const Graph g = models::inception();
  int concats = 0;
  for (const auto& node : g.nodes()) concats += node.kind == OpKind::Concat;
  EXPECT_EQ(concats, 7);  // 5 inception + 2 reduction blocks
}

TEST(Zoo, ClassifierVariants) {
  const Graph vgg = models::vgg16({.input_size = 0, .include_classifier = true});
  EXPECT_EQ(vgg.output_shape(), (Shape{1000, 1, 1}));
  const Graph resnet =
      models::resnet34({.input_size = 0, .include_classifier = true});
  EXPECT_EQ(resnet.output_shape(), (Shape{1000, 1, 1}));
}

TEST(Zoo, SyntheticChain) {
  const Graph g = models::synthetic_chain(12, 32, 8);
  EXPECT_EQ(g.size(), 13);
  EXPECT_TRUE(g.is_chain());
  EXPECT_EQ(g.output_shape(), (Shape{8, 32, 32}));
}

TEST(Units, ChainModelHasOneUnitPerNode) {
  const Graph g = models::vgg16();
  const auto units = partition::partition_units(g);
  EXPECT_EQ(static_cast<int>(units.size()), g.size() - 1);
  for (const auto& unit : units) EXPECT_EQ(unit.first, unit.last);
}

TEST(Units, ResnetBlocksAreAtomic) {
  const Graph g = models::resnet34();
  const auto units = partition::partition_units(g);
  // stem conv + stem pool + 16 residual blocks = 18 units.
  EXPECT_EQ(units.size(), 18u);
  // Every unit is a valid segment and units cover all nodes contiguously.
  int next = 1;
  for (const auto& unit : units) {
    EXPECT_EQ(unit.first, next);
    next = unit.last + 1;
  }
  EXPECT_EQ(next, g.size());
}

TEST(Units, InceptionBlocksAreAtomic) {
  const Graph g = models::inception();
  const auto units = partition::partition_units(g);
  // 7 stem nodes + 7 blocks = 14 units.
  EXPECT_EQ(units.size(), 14u);
}

TEST(Units, RejectsClassifierHeads) {
  const Graph g = models::vgg16({.input_size = 0, .include_classifier = true});
  EXPECT_THROW(partition::partition_units(g), InvariantError);
}

TEST(Units, UnitSpan) {
  const std::vector<partition::Unit> units{{1, 3}, {4, 4}, {5, 9}};
  EXPECT_EQ(partition::unit_span(units, 0, 1), (partition::Unit{1, 4}));
  EXPECT_EQ(partition::unit_span(units, 2, 2), (partition::Unit{5, 9}));
}

}  // namespace
}  // namespace pico
