// Randomized property tests: generate random (but valid) CNNs and clusters,
// then check stack-wide invariants — unit decomposition, plan validity and
// cost identities for every scheme, region execution against the reference,
// and full distributed execution through the threaded runtime.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cost/flops.hpp"
#include "nn/executor.hpp"
#include "nn/receptive.hpp"
#include "partition/pico_dp.hpp"
#include "partition/plan_cost.hpp"
#include "partition/schemes.hpp"
#include "partition/units.hpp"
#include "runtime/pipeline.hpp"
#include "sim/arrivals.hpp"
#include "sim/pipeline_sim.hpp"
#include "tensor/slice.hpp"

namespace pico {
namespace {

NetworkModel test_network() {
  NetworkModel net;
  net.bandwidth = 50e6 / 8.0;
  net.per_message_overhead = 1e-3;
  return net;
}

/// Random graph: a chain of conv/pool segments interleaved with residual
/// and two-branch concat blocks, sized so every spatial dimension stays
/// valid and tests stay fast.
nn::Graph random_graph(Rng& rng) {
  nn::Graph g;
  int channels = rng.uniform_int(1, 6);
  int size = rng.uniform_int(14, 28);
  int x = g.add_input({channels, size, size});
  const int pieces = rng.uniform_int(3, 7);
  for (int piece = 0; piece < pieces; ++piece) {
    switch (rng.uniform_int(0, 4)) {
      case 0: {  // conv
        const int k = rng.uniform_int(1, 3);
        channels = rng.uniform_int(2, 10);
        x = g.add_conv(x, channels, k, 1, rng.uniform_int(0, k / 2 + 1),
                       rng.uniform() < 0.8);
        break;
      }
      case 1: {  // strided conv or pool (only while the map is big enough)
        if (size < 8) {
          x = g.add_relu(x);
          break;
        }
        if (rng.uniform() < 0.5) {
          channels = rng.uniform_int(2, 10);
          x = g.add_conv(x, channels, 3, 2, 1);
        } else {
          x = g.add_maxpool(x, 2, 2);
        }
        break;
      }
      case 2: {  // residual block
        const int y = g.add_conv(x, channels, 3, 1, 1, false);
        const int z = g.add_batchnorm(y, false);
        x = g.add_add(z, x, true);
        break;
      }
      case 3: {  // two-branch concat block
        const int c1 = rng.uniform_int(2, 6);
        const int c2 = rng.uniform_int(2, 6);
        const int a = g.add_conv(x, c1, 3, 1, 1);
        const int b = g.add_conv(x, c2, 1, 1, 0);
        x = g.add_concat({a, b});
        channels = c1 + c2;
        break;
      }
      default: {  // elementwise
        x = g.add_batchnorm(x, rng.uniform() < 0.5);
        break;
      }
    }
    size = g.nodes().back().out_shape.height;
  }
  g.finalize();
  return g;
}

Cluster random_cluster(Rng& rng) {
  const int devices = rng.uniform_int(2, 6);
  std::vector<double> freqs;
  for (int d = 0; d < devices; ++d) {
    freqs.push_back(rng.uniform(0.4, 1.6));
  }
  return Cluster::raspberry_pi(freqs);
}

class FuzzCase : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCase, UnitsTileTheGraph) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const nn::Graph g = random_graph(rng);
    const auto units = partition::partition_units(g);
    int next = 1;
    for (const auto& unit : units) {
      EXPECT_EQ(unit.first, next);
      EXPECT_TRUE(nn::is_valid_segment(g, unit.first, unit.last));
      next = unit.last + 1;
    }
    EXPECT_EQ(next, g.size());
  }
}

TEST_P(FuzzCase, SchemesProduceValidCostedPlans) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const NetworkModel net = test_network();
  for (int trial = 0; trial < 4; ++trial) {
    const nn::Graph g = random_graph(rng);
    const Cluster c = random_cluster(rng);
    const std::vector<partition::Plan> plans{
        partition::lw_plan(g, c),
        partition::efl_plan(g, c),
        partition::ofl_plan(g, c, net),
        partition::pico_plan(g, c, net),
        partition::pico_plan(g, c, net, {.enable_branch_parallel = true}),
    };
    for (const auto& plan : plans) {
      partition::validate_plan(g, c, plan);
      const auto cost = partition::plan_cost(g, c, net, plan);
      EXPECT_GT(cost.period, 0.0) << plan.scheme;
      EXPECT_LE(cost.period, cost.latency + 1e-12) << plan.scheme;

      // Accounting identity: executed − redundant == essential work.
      const auto work = partition::plan_device_work(g, c, plan);
      Flops executed = 0.0, redundant = 0.0;
      for (const auto& w : work) {
        EXPECT_GE(w.redundant, -1e-9) << plan.scheme;
        EXPECT_LE(w.redundant, w.total * (1.0 + 1e-9)) << plan.scheme;
        executed += w.total;
        redundant += w.redundant;
      }
      Flops essential = 0.0;
      for (const auto& stage : plan.stages) {
        essential += cost::segment_flops_full(g, stage.first, stage.last);
      }
      EXPECT_NEAR(executed - redundant, essential,
                  essential * 1e-6 + 1e-6)
          << plan.scheme;
    }
  }
}

TEST_P(FuzzCase, RandomSegmentStripsMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  for (int trial = 0; trial < 4; ++trial) {
    nn::Graph g = random_graph(rng);
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const auto reference = nn::execute_all(g, input);
    const auto units = partition::partition_units(g);

    for (int probe = 0; probe < 4; ++probe) {
      const int u1 = rng.uniform_int(0, static_cast<int>(units.size()) - 1);
      const int u2 =
          rng.uniform_int(u1, static_cast<int>(units.size()) - 1);
      const auto span = partition::unit_span(units, u1, u2);
      const Shape out = g.node(span.last).out_shape;
      const int row0 = rng.uniform_int(0, out.height - 1);
      const int row1 = rng.uniform_int(row0 + 1, out.height);
      const Region strip = Region::rows(row0, row1, out.width);
      const Region need =
          nn::segment_input_region(g, span.first, span.last, strip);
      const Tensor& segment_input =
          reference[static_cast<std::size_t>(span.first - 1)];
      const Tensor got = nn::execute_segment(
          g, span.first, span.last, {need, extract(segment_input, need)},
          strip);
      const Tensor expected =
          extract(reference[static_cast<std::size_t>(span.last)], strip);
      ASSERT_FLOAT_EQ(Tensor::max_abs_diff(expected, got), 0.0f)
          << "span [" << span.first << "," << span.last << "] strip "
          << strip;
    }
  }
}

TEST_P(FuzzCase, RuntimeMatchesLocalOnRandomModels) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const NetworkModel net = test_network();
  for (int trial = 0; trial < 2; ++trial) {
    nn::Graph g = random_graph(rng);
    g.randomize_weights(rng);
    Tensor input(g.input_shape());
    input.randomize(rng);
    const Tensor reference = nn::execute(g, input);
    const Cluster c = random_cluster(rng);
    const auto plan =
        rng.uniform() < 0.5
            ? partition::pico_plan(g, c, net)
            : partition::ofl_plan(g, c, net);
    runtime::PipelineRuntime rt(g, plan);
    ASSERT_FLOAT_EQ(Tensor::max_abs_diff(rt.infer(input), reference), 0.0f);
  }
}

TEST_P(FuzzCase, SimulatorConservesTasks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const NetworkModel net = test_network();
  for (int trial = 0; trial < 3; ++trial) {
    const nn::Graph g = random_graph(rng);
    const Cluster c = random_cluster(rng);
    const auto plan = partition::pico_plan(g, c, net);
    const auto arrivals =
        sim::poisson_arrivals(rng, rng.uniform(0.5, 5.0), 20.0);
    if (arrivals.empty()) continue;
    const auto result = sim::simulate_plan(g, c, net, plan, arrivals);
    ASSERT_EQ(result.tasks.size(), arrivals.size());
    for (const auto& task : result.tasks) {
      EXPECT_GE(task.start, task.arrival);
      EXPECT_GT(task.completion, task.start);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase, ::testing::Range(1, 6));

}  // namespace
}  // namespace pico
