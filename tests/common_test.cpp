#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pico {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  const double rate = 4.0;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng parent(17);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RunningStats, Basics) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  stats.add(2.0);
  stats.add(4.0);
  stats.add(6.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 6.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 12.0);
}

TEST(RunningStats, SingleValueVarianceZero) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 25.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), InvariantError);
  EXPECT_THROW(percentile({1.0}, 1.5), InvariantError);
}

TEST(Check, ThrowsWithMessage) {
  try {
    PICO_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& error) {
    EXPECT_NE(std::string(error.what()).find("math broke: 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace pico
