#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/error.hpp"

namespace pico {

namespace {

/// OS-level thread name (common/ sits below obs/, so the richer
/// obs::set_current_thread_name is out of reach here; debuggers, TSan
/// reports and /proc/<pid>/task still see the name).
void name_current_thread(int lane) {
#if defined(__linux__)
  char name[16];  // pthread limit: 15 chars + NUL
  std::snprintf(name, sizeof(name), "pico-pool-%d", lane);
  pthread_setname_np(pthread_self(), name);
#else
  (void)lane;
#endif
}

}  // namespace

ThreadPool::ThreadPool(int parallelism) {
  PICO_CHECK_MSG(parallelism >= 1 && parallelism <= kMaxThreads,
                 "thread pool parallelism " << parallelism
                                            << " out of [1, " << kMaxThreads
                                            << "]");
  workers_.reserve(static_cast<std::size_t>(parallelism - 1));
  for (int i = 1; i < parallelism; ++i) {
    workers_.emplace_back([this, i] {
      name_current_thread(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
    work_cv_.notify_all();
  }
  for (SchedThread& worker : workers_) worker.join();
}

void ThreadPool::run_one(int index, const std::function<void(int)>& fn,
                         const std::shared_ptr<Sync>& sync) {
  std::exception_ptr error;
  try {
    fn(index);
  } catch (...) {
    error = std::current_exception();
  }
  MutexLock lock(sync->mutex);
  if (error != nullptr && sync->error == nullptr) sync->error = error;
  if (--sync->remaining == 0) sync->done.notify_all();
}

void ThreadPool::parallel_for(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  auto sync = std::make_shared<Sync>();
  {
    MutexLock lock(sync->mutex);
    sync->remaining = count;
  }
  {
    MutexLock lock(mutex_);
    PICO_CHECK_MSG(!stop_, "parallel_for on a stopping thread pool");
    // The closures capture fn by reference: the submitting caller never
    // returns before every task has run, so the reference stays valid.
    for (int i = 0; i < count; ++i) {
      tasks_.push_back([i, &fn, sync] { run_one(i, fn, sync); });
    }
    work_cv_.notify_all();
  }

  // The caller is one of the pool's lanes: drain tasks (its own or a
  // concurrent job's — work conservation either way) until nothing is
  // queued, then sleep until this job's last task signals completion.
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    MutexLock lock(sync->mutex);
    while (sync->remaining > 0) sync->done.wait(sync->mutex);
    if (sync->error != nullptr) std::rethrow_exception(sync->error);
    return;
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) work_cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_parallelism());
  return pool;
}

int ThreadPool::default_parallelism() {
  if (const char* env = std::getenv("PICO_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      return static_cast<int>(
          std::clamp<long>(parsed, 1, ThreadPool::kMaxThreads));
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(
                                 std::min<unsigned>(hardware, kMaxThreads));
}

}  // namespace pico
