#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace pico::log {

namespace {
std::atomic<Level> g_level{Level::Warn};
std::mutex g_emit_mutex;

const char* tag(Level level) {
  switch (level) {
    case Level::Debug: return "DEBUG";
    case Level::Info:  return "INFO ";
    case Level::Warn:  return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  if (level() > lvl) return;
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %8lld.%03lld] %s\n", tag(lvl),
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), message.c_str());
}

}  // namespace pico::log
