// Error handling: PICO uses exceptions for contract violations and
// unrecoverable runtime failures (CppCoreGuidelines E.2).  The PICO_CHECK
// macro documents preconditions at API boundaries and throws with location
// context; it is always enabled (these checks guard distributed-glue
// invariants, not hot inner loops).
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pico {

/// Base exception for all PICO failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on violated preconditions / invariants.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown on transport/socket failures in the runtime.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// Thrown when a transport operation exceeds its configured deadline.
/// `mid_frame` distinguishes an idle timeout (no bytes of the next frame
/// seen — the peer may simply have nothing to say) from a stall in the
/// middle of a frame (peer wedged; the stream is unrecoverable because
/// re-synchronizing on the length-prefixed framing is impossible).
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what, bool mid_frame = false)
      : TransportError(what), mid_frame_(mid_frame) {}
  bool mid_frame() const { return mid_frame_; }

 private:
  bool mid_frame_;
};

namespace detail {

/// Observation seam: the flight recorder (obs/flight_recorder.cpp) installs
/// a journaling hook here at startup so every PICO_CHECK failure — caught or
/// not — lands in the crash-readable event ring.  A raw function pointer
/// keeps common free of any obs dependency; the hook must not throw or
/// allocate unboundedly (it runs on the failure path).
using CheckFailedHook = void (*)(const char* expr, const char* file, int line);
inline std::atomic<CheckFailedHook> check_failed_hook{nullptr};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  if (CheckFailedHook hook =
          check_failed_hook.load(std::memory_order_acquire)) {
    hook(expr, file, line);
  }
  std::ostringstream os;
  os << "PICO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace pico

#define PICO_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::pico::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define PICO_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream pico_check_os_;                              \
      pico_check_os_ << msg;                                          \
      ::pico::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   pico_check_os_.str());             \
    }                                                                 \
  } while (false)
