// Clang thread-safety annotations (enforced by -Wthread-safety, which the
// top-level CMakeLists enables whenever the compiler supports it).  On other
// compilers the macros expand to nothing, so annotated code stays portable.
//
// Usage follows the Abseil convention: data members guarded by a mutex carry
// PICO_GUARDED_BY(mutex_); functions that must run under a lock carry
// PICO_REQUIRES(mutex_); a mutex passed by reference is named with
// PICO_ACQUIRE/PICO_RELEASE on the lock/unlock wrappers.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PICO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PICO_THREAD_ANNOTATION(x)
#endif

#define PICO_CAPABILITY(x) PICO_THREAD_ANNOTATION(capability(x))
#define PICO_GUARDED_BY(x) PICO_THREAD_ANNOTATION(guarded_by(x))
#define PICO_PT_GUARDED_BY(x) PICO_THREAD_ANNOTATION(pt_guarded_by(x))
#define PICO_REQUIRES(...) \
  PICO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PICO_ACQUIRE(...) \
  PICO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PICO_RELEASE(...) \
  PICO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PICO_EXCLUDES(...) PICO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PICO_SCOPED_CAPABILITY PICO_THREAD_ANNOTATION(scoped_lockable)
#define PICO_NO_THREAD_SAFETY_ANALYSIS \
  PICO_THREAD_ANNOTATION(no_thread_safety_analysis)
