#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pico {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1)
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PICO_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  PICO_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; avoid log(0) by mapping uniform() into (0, 1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  PICO_CHECK(rate > 0.0);
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pico
