// Minimal leveled logger.  Defaults to Warn so tests and benches stay quiet;
// examples raise it to Info.  Thread-safe (single mutex around emission) —
// the runtime logs from worker threads.
#pragma once

#include <sstream>
#include <string>

namespace pico::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide threshold; messages below it are discarded.
void set_level(Level level);
Level level();

/// Emit one line (appends '\n') to stderr with a level tag and timestamp.
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { emit(level_, os_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pico::log

#define PICO_LOG(lvl)                                   \
  if (::pico::log::level() <= ::pico::log::Level::lvl)  \
  ::pico::log::detail::LineStream(::pico::log::Level::lvl)
