// Deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness (synthetic weights,
// inputs, Poisson arrivals, capacity perturbations) goes through Rng so that
// every test, example, and bench run is reproducible from a seed.
// The core generator is xoshiro256** seeded via splitmix64.
#pragma once

#include <cstdint>

namespace pico {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller.
  double normal();
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).  Requires rate > 0.
  double exponential(double rate);

  /// Fork a statistically independent child stream (for per-thread use).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pico
