// Shared fixed-size thread pool for intra-device parallelism.
//
// PICO's evaluation hardware (quad-core Raspberry Pi 4Bs, paper §V) runs
// every kernel on all cores; the Eq. 5 capacity term ϑ(d_k) only matches a
// real device if the kernels actually saturate it.  This pool is the one
// place the process spawns compute threads: kernels submit coarse
// independent tasks (one per output strip) via parallel_for and the caller
// participates in draining the queue, so a pool of parallelism P runs P
// tasks concurrently with P-1 resident worker threads.
//
// Concurrency discipline follows the ROADMAP standing requirement: every
// mutable member is PICO_GUARDED_BY(mutex_) (clang -Wthread-safety checks
// the locking statically) and the implementation is TSan-clean.  Multiple
// threads may call parallel_for on the same pool concurrently — jobs share
// the queue — and a task may itself call parallel_for (the nested caller
// drains tasks itself, so progress never depends on a free worker).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "sched/hooks.hpp"

namespace pico {

class ThreadPool {
 public:
  /// A pool of total parallelism `parallelism` (>= 1): the caller of
  /// parallel_for counts as one lane, so `parallelism - 1` worker threads
  /// are spawned.  ThreadPool(1) runs everything inline on the caller.
  explicit ThreadPool(int parallelism);

  /// Joins the workers after draining any queued tasks.  Destroying the
  /// pool while a parallel_for is still blocked in another thread is a
  /// caller bug.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads + the calling lane.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(0) ... fn(count - 1), distributing indices over the workers and
  /// the calling thread, and return once all have finished.  Tasks must be
  /// independent: the pool guarantees nothing about execution order.  If
  /// any invocation throws, the first exception is rethrown here after the
  /// remaining tasks complete.  Writes done by fn happen-before the return.
  void parallel_for(int count, const std::function<void(int)>& fn);

  /// Process-wide pool, sized by default_parallelism() at first use.
  static ThreadPool& global();

  /// PICO_THREADS env (clamped to [1, kMaxThreads]) when set and numeric,
  /// else std::thread::hardware_concurrency(), else 1.
  static int default_parallelism();

  static constexpr int kMaxThreads = 256;

 private:
  /// Per-parallel_for completion state, shared by the queued task closures
  /// (which may outlive nothing — the submitting caller always waits).
  struct Sync {
    Mutex mutex;
    CondVar done;
    int remaining PICO_GUARDED_BY(mutex) = 0;
    std::exception_ptr error PICO_GUARDED_BY(mutex);
  };

  static void run_one(int index, const std::function<void(int)>& fn,
                      const std::shared_ptr<Sync>& sync);
  void worker_loop();

  mutable Mutex mutex_;
  CondVar work_cv_;
  std::deque<std::function<void()>> tasks_ PICO_GUARDED_BY(mutex_);
  bool stop_ PICO_GUARDED_BY(mutex_) = false;
  // sched-exempt: written only by the constructor, joined by the
  // destructor; never touched while workers run.
  std::vector<SchedThread> workers_;
};

}  // namespace pico
