// Annotated mutex / condition-variable wrappers.
//
// std::mutex is not a thread-safety "capability" type under libstdc++, so
// PICO_GUARDED_BY(std_mutex_member) cannot be statically enforced.  These
// thin wrappers carry the capability attributes (the Abseil pattern) while
// delegating to the standard primitives, so clang's -Wthread-safety checks
// locking discipline at compile time and the code is unchanged elsewhere.
//
// Under PICO_SCHED (test-only preset) every operation first offers itself
// to the schedule explorer: on a managed thread inside sched::explore the
// operation is *modeled* (the real primitive is never touched and the
// explorer decides who runs next); on ordinary threads the hook falls
// through to the real primitive, with lock/unlock additionally feeding the
// process-global lockdep graph.  Without PICO_SCHED the wrappers compile
// to exactly the code below — zero overhead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.hpp"
#ifdef PICO_SCHED
#include "sched/explorer.hpp"
#endif

namespace pico {

class PICO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PICO_ACQUIRE() {
#ifdef PICO_SCHED
    if (sched::hook::mutex_lock(this)) return;
#endif
    mutex_.lock();
  }

  void unlock() PICO_RELEASE() {
#ifdef PICO_SCHED
    if (sched::hook::mutex_unlock(this)) return;
#endif
    mutex_.unlock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock with scope-based capability tracking (std::lock_guard shape).
class PICO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PICO_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PICO_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to an annotated Mutex.  wait() must be called
/// with the mutex held (enforced via PICO_REQUIRES) and holds it again on
/// return, exactly like std::condition_variable::wait.
class CondVar {
 public:
  void wait(Mutex& mutex) PICO_REQUIRES(mutex) {
#ifdef PICO_SCHED
    if (sched::hook::cond_wait(this, &mutex)) return;
#endif
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex
  }

  /// Timed wait: returns true when notified, false on timeout.  Under
  /// schedule exploration a timed wait is modeled as an *immediate timeout*
  /// that yields the schedule token: the explorer has no notion of time, so
  /// treating the sleep as a pure scheduling point keeps periodic-loop
  /// models finite, and never parking on the condvar means a forgotten
  /// notify cannot surface as a false LostWakeup verdict — the timeout path
  /// is exactly the behavior being modeled.
  bool wait_for(Mutex& mutex, std::int64_t timeout_ns) PICO_REQUIRES(mutex) {
#ifdef PICO_SCHED
    if (sched::under_exploration()) {
      mutex.unlock();
      sched::yield("wait_for timeout");
      mutex.lock();
      return false;
    }
#endif
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const auto status =
        cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns));
    lock.release();  // caller still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void notify_one() {
#ifdef PICO_SCHED
    if (sched::hook::cond_notify(this, /*notify_all=*/false)) return;
#endif
    cv_.notify_one();
  }

  void notify_all() {
#ifdef PICO_SCHED
    if (sched::hook::cond_notify(this, /*notify_all=*/true)) return;
#endif
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pico
