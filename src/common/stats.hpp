// Small statistics helpers used by the simulator and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace pico {

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< sample variance; 0 when count < 2
  double stddev() const;
  double min() const;       ///< +inf when empty
  double max() const;       ///< -inf when empty
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample by linear interpolation; q in [0, 1].
/// Sorts a copy; fine for bench-sized vectors.
double percentile(std::vector<double> values, double q);

}  // namespace pico
