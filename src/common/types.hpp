// Fundamental scalar types and unit aliases shared across all PICO modules.
//
// All physical quantities use double precision with documented units:
//   Seconds  — wall-clock or simulated time
//   Flops    — floating point operations (a count, not a rate)
//   FlopsPerSec — compute capacity of a device
//   Bytes    — data volume
//   BytesPerSec — link bandwidth
#pragma once

#include <cstdint>

namespace pico {

using Seconds = double;
using Flops = double;
using FlopsPerSec = double;
using Bytes = double;
using BytesPerSec = double;

/// Identifier of a device inside a cluster (index into Cluster::devices()).
using DeviceId = int;

/// Identifier of a layer (index into a model's topological layer order).
using LayerId = int;

/// Bytes occupied by one feature-map scalar (float32 everywhere).
inline constexpr Bytes kBytesPerScalar = 4.0;

}  // namespace pico
