#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pico {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double percentile(std::vector<double> values, double q) {
  PICO_CHECK(!values.empty());
  PICO_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace pico
