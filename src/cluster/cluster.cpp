#include "cluster/cluster.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace pico {

FlopsPerSec pi_capacity(double frequency_ghz) {
  PICO_CHECK(frequency_ghz > 0.0);
  constexpr double kSustainedMacsPerCycle = 2.0;
  return frequency_ghz * 1e9 * kSustainedMacsPerCycle;
}

Cluster::Cluster(std::vector<Device> devices) : devices_(std::move(devices)) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i].id = static_cast<DeviceId>(i);
    PICO_CHECK_MSG(devices_[i].capacity > 0.0,
                   "device " << i << " has non-positive capacity");
    if (devices_[i].name.empty()) {
      devices_[i].name = "dev" + std::to_string(i);
    }
  }
}

const Device& Cluster::device(DeviceId id) const {
  PICO_CHECK_MSG(id >= 0 && id < size(), "device id " << id
                                                      << " out of range");
  return devices_[static_cast<std::size_t>(id)];
}

FlopsPerSec Cluster::total_capacity() const {
  return std::accumulate(devices_.begin(), devices_.end(), 0.0,
                         [](double acc, const Device& d) {
                           return acc + d.capacity;
                         });
}

FlopsPerSec Cluster::mean_capacity() const {
  PICO_CHECK(!devices_.empty());
  return total_capacity() / static_cast<double>(size());
}

std::vector<DeviceId> Cluster::ids_by_capacity_desc() const {
  std::vector<DeviceId> ids(devices_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](DeviceId a, DeviceId b) {
    return devices_[static_cast<std::size_t>(a)].capacity >
           devices_[static_cast<std::size_t>(b)].capacity;
  });
  return ids;
}

DeviceId Cluster::fastest() const {
  PICO_CHECK(!devices_.empty());
  return ids_by_capacity_desc().front();
}

Cluster Cluster::homogenized() const {
  const FlopsPerSec mean = mean_capacity();
  std::vector<Device> devices = devices_;
  for (auto& d : devices) {
    d.capacity = mean;
    d.name += "-hom";
  }
  return Cluster(std::move(devices));
}

Cluster Cluster::prefix(int count) const {
  PICO_CHECK(count >= 1 && count <= size());
  return Cluster(std::vector<Device>(devices_.begin(),
                                     devices_.begin() + count));
}

Cluster Cluster::homogeneous(int count, FlopsPerSec capacity) {
  PICO_CHECK(count >= 1);
  std::vector<Device> devices(static_cast<std::size_t>(count));
  for (auto& d : devices) d.capacity = capacity;
  return Cluster(std::move(devices));
}

Cluster Cluster::raspberry_pi(const std::vector<double>& frequencies_ghz) {
  PICO_CHECK(!frequencies_ghz.empty());
  std::vector<Device> devices;
  devices.reserve(frequencies_ghz.size());
  for (double freq : frequencies_ghz) {
    Device d;
    d.capacity = pi_capacity(freq);
    d.frequency_ghz = freq;
    d.name = "pi4b-" + std::to_string(static_cast<int>(freq * 1000)) + "MHz";
    devices.push_back(std::move(d));
  }
  return Cluster(std::move(devices));
}

Cluster Cluster::paper_heterogeneous() {
  return raspberry_pi({1.2, 1.2, 0.8, 0.8, 0.6, 0.6, 0.6, 0.6});
}

Cluster Cluster::paper_homogeneous(int count, double frequency_ghz) {
  return raspberry_pi(std::vector<double>(static_cast<std::size_t>(count),
                                          frequency_ghz));
}

}  // namespace pico
