// Heterogeneous edge cluster model.
//
// Substitutes for the paper's testbed: 8 Raspberry-Pi 4Bs (single ARM core,
// frequency-scaled 600 MHz – 1.5 GHz) behind one 50 Mbps WiFi access point.
// A Device carries its sustained compute capacity θ(d_k) in FLOP/s (the
// paper's Eq. 5, FLOPs counted as multiply-accumulates per Eq. 2) and the
// regression coefficient α_k; the NetworkModel carries the shared uplink
// bandwidth b used by Eq. 7.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace pico {

struct Device {
  DeviceId id = -1;
  std::string name;
  FlopsPerSec capacity = 0.0;  ///< θ(d_k): sustained MAC/s
  double alpha = 1.0;          ///< α_k: measured-vs-model correction (Eq. 5)
  double frequency_ghz = 0.0;  ///< informational (Pi calibration)

  /// Modeled time to execute `flops` on this device (Eq. 5).
  Seconds compute_time(Flops flops) const {
    return alpha * flops / capacity;
  }
};

/// Shared-medium network (one WiFi AP): Eq. 7 transfer time plus a small
/// fixed per-message overhead (MAC/queueing), serialized through one link.
///
/// The paper assumes one bandwidth `b` for every device (§III-A).  As an
/// extension, `device_bandwidth_scale` lets individual links degrade (a
/// device far from the AP, a 2.4 GHz-only radio): device k's effective
/// bandwidth is b * scale[k].  An empty vector means uniform; devices
/// beyond the vector's length also get scale 1.
struct NetworkModel {
  BytesPerSec bandwidth = 50e6 / 8.0;  ///< 50 Mbps default
  Seconds per_message_overhead = 1e-3;
  std::vector<double> device_bandwidth_scale;

  BytesPerSec device_bandwidth(DeviceId device) const {
    if (device < 0 ||
        device >= static_cast<DeviceId>(device_bandwidth_scale.size())) {
      return bandwidth;
    }
    return bandwidth * device_bandwidth_scale[static_cast<std::size_t>(device)];
  }

  /// Transfer time over device k's link (device < 0: the nominal link).
  Seconds transfer_time(Bytes bytes, DeviceId device = -1) const {
    return per_message_overhead + bytes / device_bandwidth(device);
  }

  /// Copy with per-device scaling stripped — what planners that reason
  /// about anonymous homogeneous devices (Alg. 1) should use.
  NetworkModel uniform() const {
    NetworkModel copy = *this;
    copy.device_bandwidth_scale.clear();
    return copy;
  }
};

class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<Device> devices);

  int size() const { return static_cast<int>(devices_.size()); }
  const Device& device(DeviceId id) const;
  const std::vector<Device>& devices() const { return devices_; }

  FlopsPerSec total_capacity() const;
  FlopsPerSec mean_capacity() const;
  /// Device ids sorted by capacity, fastest first.
  std::vector<DeviceId> ids_by_capacity_desc() const;
  DeviceId fastest() const;

  /// Eq. 12: same device count, every capacity replaced by the mean.
  Cluster homogenized() const;

  /// First `count` devices.
  Cluster prefix(int count) const;

  // -- Factories ----------------------------------------------------------

  /// n identical devices.
  static Cluster homogeneous(int count, FlopsPerSec capacity);

  /// Raspberry-Pi-4B-class devices at the given core frequencies (GHz),
  /// using the calibrated MACs-per-cycle sustained rate.
  static Cluster raspberry_pi(const std::vector<double>& frequencies_ghz);

  /// The paper's Table I heterogeneous testbed:
  /// 2 x 1.2 GHz, 2 x 800 MHz, 4 x 600 MHz.
  static Cluster paper_heterogeneous();

  /// 8 devices all at `frequency_ghz` (the Fig. 8/9 sweeps fix frequency).
  static Cluster paper_homogeneous(int count, double frequency_ghz);

 private:
  std::vector<Device> devices_;
};

/// Sustained MAC/s of one Pi-4B-class core at `frequency_ghz`.
/// Calibration: ~2 sustained MACs per cycle for NNPACK-accelerated conv on a
/// single Cortex-A72 core (peak 8 FLOPs/cycle, realistic conv efficiency
/// ~25%).  Only ratios across frequencies matter for the paper's figures.
FlopsPerSec pi_capacity(double frequency_ghz);

}  // namespace pico
