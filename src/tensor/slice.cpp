#include "tensor/slice.hpp"

#include <cstring>

#include "common/error.hpp"

namespace pico {

namespace {

void copy_region_rows(const Tensor& src, const Region& src_region,
                      Tensor& dst, const Region& dst_region) {
  PICO_CHECK(src_region.height() == dst_region.height() &&
             src_region.width() == dst_region.width());
  PICO_CHECK(src.shape().channels == dst.shape().channels);
  const int run = src_region.width();
  for (int c = 0; c < src.shape().channels; ++c) {
    for (int dy = 0; dy < src_region.height(); ++dy) {
      const float* from =
          &src.at(c, src_region.row_begin + dy, src_region.col_begin);
      float* to = &dst.at(c, dst_region.row_begin + dy, dst_region.col_begin);
      std::memcpy(to, from, sizeof(float) * static_cast<std::size_t>(run));
    }
  }
}

}  // namespace

Tensor extract(const Tensor& source, const Region& region) {
  const Region map = Region::full(source.shape().height,
                                  source.shape().width);
  PICO_CHECK_MSG(map.contains(region),
                 "extract region " << region << " outside map " << map);
  Tensor out({source.shape().channels, region.height(), region.width()});
  copy_region_rows(source, region, out,
                   Region::full(region.height(), region.width()));
  return out;
}

Tensor stitch(const Shape& full_shape, const std::vector<Placed>& pieces) {
  const Region whole = Region::full(full_shape.height, full_shape.width);
  std::vector<Region> regions;
  regions.reserve(pieces.size());
  for (const auto& piece : pieces) regions.push_back(piece.region);
  PICO_CHECK_MSG(tiles_exactly(whole, regions),
                 "stitch pieces do not tile the full map exactly");
  return stitch_lenient(full_shape, pieces);
}

Tensor stitch_lenient(const Shape& full_shape,
                      const std::vector<Placed>& pieces) {
  Tensor out(full_shape);
  const Region whole = Region::full(full_shape.height, full_shape.width);
  for (const auto& piece : pieces) {
    if (piece.region.empty()) continue;
    PICO_CHECK_MSG(whole.contains(piece.region),
                   "piece " << piece.region << " outside map " << whole);
    PICO_CHECK(piece.tensor.shape().channels == full_shape.channels &&
               piece.tensor.shape().height == piece.region.height() &&
               piece.tensor.shape().width == piece.region.width());
    copy_region_rows(piece.tensor,
                     Region::full(piece.region.height(), piece.region.width()),
                     out, piece.region);
  }
  return out;
}

}  // namespace pico
