#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace pico {

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.channels << "x" << s.height << "x" << s.width;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape),
      data_(static_cast<std::size_t>(shape.elements()), fill) {
  PICO_CHECK_MSG(shape.channels >= 0 && shape.height >= 0 && shape.width >= 0,
                 "negative tensor dimension " << shape);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::randomize(Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  PICO_CHECK_MSG(a.shape() == b.shape(), "shape mismatch " << a.shape()
                                                           << " vs "
                                                           << b.shape());
  float worst = 0.0f;
  for (long long i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

}  // namespace pico
