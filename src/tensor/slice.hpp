// Overlapped feature-map split and stitch.
//
// The paper implements these by direct memory manipulation because framework
// slicing was too slow (§IV-D); here they are plain row-contiguous copies.
// `extract` copies a region (which may overlap with other devices' regions)
// out of a full map; `stitch` reassembles disjoint output regions into the
// full map.
#pragma once

#include <vector>

#include "tensor/region.hpp"
#include "tensor/tensor.hpp"

namespace pico {

/// Copy `region` (must lie inside the map) from `source` into a new tensor of
/// shape {C, region.height, region.width}.
Tensor extract(const Tensor& source, const Region& region);

/// A piece of a larger feature map: the tensor plus where it belongs.
struct Placed {
  Region region;  ///< location in the full map; extents match tensor shape
  Tensor tensor;
};

/// Assemble pieces into a map of `full_shape`.  Pieces must lie inside the
/// map and tile it exactly (no gaps, no overlaps) — the postcondition of a
/// correct output partition.
Tensor stitch(const Shape& full_shape, const std::vector<Placed>& pieces);

/// Like stitch but tolerates overlapping pieces (later pieces win) and gaps
/// (left zero).  Used by diagnostics, not by the runtime hot path.
Tensor stitch_lenient(const Shape& full_shape,
                      const std::vector<Placed>& pieces);

}  // namespace pico
