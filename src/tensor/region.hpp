// Region: a half-open 2-D window [row_begin, row_end) × [col_begin, col_end)
// over a feature map.  Channels are never split (the paper partitions the
// spatial extent only), so a Region plus a full channel count identifies the
// exact sub-tensor a device owns or needs.
#pragma once

#include <iosfwd>
#include <vector>

namespace pico {

struct Region {
  int row_begin = 0;
  int row_end = 0;  ///< exclusive
  int col_begin = 0;
  int col_end = 0;  ///< exclusive

  static Region full(int height, int width) { return {0, height, 0, width}; }
  /// Horizontal strip covering all columns.
  static Region rows(int row_begin, int row_end, int width) {
    return {row_begin, row_end, 0, width};
  }

  int height() const { return row_end - row_begin; }
  int width() const { return col_end - col_begin; }
  long long area() const {
    return static_cast<long long>(height()) * width();
  }
  bool empty() const { return height() <= 0 || width() <= 0; }

  bool contains(const Region& other) const;
  bool contains_point(int row, int col) const;

  /// Intersection; may be empty.
  Region intersect(const Region& other) const;
  /// Smallest region covering both (bounding box).
  Region union_bounds(const Region& other) const;
  /// Clamp into [0, height) × [0, width).
  Region clamp(int height, int width) const;
  /// Translate by (+drow, +dcol).
  Region shifted(int drow, int dcol) const;

  friend bool operator==(const Region&, const Region&) = default;
};

std::ostream& operator<<(std::ostream& os, const Region& r);

/// True iff `pieces` tile `whole` exactly: pairwise disjoint and their total
/// area equals the whole's area with every piece inside it.
bool tiles_exactly(const Region& whole, const std::vector<Region>& pieces);

}  // namespace pico
