#include "tensor/region.hpp"

#include <algorithm>
#include <ostream>

namespace pico {

bool Region::contains(const Region& other) const {
  if (other.empty()) return true;
  return row_begin <= other.row_begin && other.row_end <= row_end &&
         col_begin <= other.col_begin && other.col_end <= col_end;
}

bool Region::contains_point(int row, int col) const {
  return row >= row_begin && row < row_end && col >= col_begin &&
         col < col_end;
}

Region Region::intersect(const Region& other) const {
  return {std::max(row_begin, other.row_begin),
          std::min(row_end, other.row_end),
          std::max(col_begin, other.col_begin),
          std::min(col_end, other.col_end)};
}

Region Region::union_bounds(const Region& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  return {std::min(row_begin, other.row_begin),
          std::max(row_end, other.row_end),
          std::min(col_begin, other.col_begin),
          std::max(col_end, other.col_end)};
}

Region Region::clamp(int height, int width) const {
  return {std::clamp(row_begin, 0, height), std::clamp(row_end, 0, height),
          std::clamp(col_begin, 0, width), std::clamp(col_end, 0, width)};
}

Region Region::shifted(int drow, int dcol) const {
  return {row_begin + drow, row_end + drow, col_begin + dcol, col_end + dcol};
}

std::ostream& operator<<(std::ostream& os, const Region& r) {
  return os << "[" << r.row_begin << "," << r.row_end << ")x[" << r.col_begin
            << "," << r.col_end << ")";
}

bool tiles_exactly(const Region& whole, const std::vector<Region>& pieces) {
  long long covered = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Region& piece = pieces[i];
    if (piece.empty()) continue;
    if (!whole.contains(piece)) return false;
    covered += piece.area();
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      if (!piece.intersect(pieces[j]).empty()) return false;
    }
  }
  return covered == whole.area();
}

}  // namespace pico
