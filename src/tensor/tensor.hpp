// Dense CHW float32 tensor — the feature-map representation used by the
// inference engine and the runtime.  Inference is batch-1 throughout (the
// paper streams single frames through the pipeline), so no batch dimension.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pico {

struct Shape {
  int channels = 0;
  int height = 0;
  int width = 0;

  long long elements() const {
    return static_cast<long long>(channels) * height * width;
  }
  friend bool operator==(const Shape&, const Shape&) = default;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  const Shape& shape() const { return shape_; }
  long long size() const { return static_cast<long long>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float& at(int c, int y, int x) { return data_[index(c, y, x)]; }
  const float& at(int c, int y, int x) const { return data_[index(c, y, x)]; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  /// Pointer to the start of channel c's H×W plane.
  float* channel(int c) { return data_.data() + plane_size() * c; }
  const float* channel(int c) const { return data_.data() + plane_size() * c; }

  void fill(float value);
  /// Fill with deterministic uniform values in [lo, hi).
  void randomize(Rng& rng, float lo = -1.0f, float hi = 1.0f);

  /// Max |a - b| over all elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  long long plane_size() const {
    return static_cast<long long>(shape_.height) * shape_.width;
  }
  long long index(int c, int y, int x) const {
    return (static_cast<long long>(c) * shape_.height + y) * shape_.width + x;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace pico
