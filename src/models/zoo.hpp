// Model zoo — the four networks the paper evaluates plus the toy model from
// §V-C and a synthetic chain generator for planner stress tests (Table II).
//
// All builders produce the convolutional feature extractor the paper
// partitions ("13 conv + 5 pool" for VGG16, "23 conv + 5 pool" for YOLOv2);
// classifier tails (FC / global-pool heads) are optional because they are
// not spatially partitionable and the paper excludes them from cooperative
// execution.  Weights are zero until Graph::randomize_weights.
//
// ResNet34 and the Inception network are graph-based: residual and inception
// blocks appear as sub-DAGs whose internal nodes cannot be stage boundaries
// (§IV-B treats each block as a "special layer").  The Inception builder is
// structurally representative of InceptionV3 — factorized 1x7/7x1 kernels,
// multi-branch blocks with concat, pooling branches — with a reduced block
// count so tests stay fast; the partitioning problem it poses is the same.
#pragma once

#include "nn/graph.hpp"

namespace pico::models {

struct ZooOptions {
  /// Spatial input size (images are square).  0 = the paper's default
  /// (224 for VGG16/ResNet/Inception, 448 for YOLOv2, 64 for the toy model).
  int input_size = 0;
  /// Append the classifier head (FC layers / global pool).  Planners only
  /// partition the convolutional body, so this defaults to off.
  bool include_classifier = false;
};

/// VGG16 [12]: 13 conv (3x3, pad 1) + 5 maxpool.  Default input 3x224x224.
nn::Graph vgg16(const ZooOptions& options = {});

/// YOLOv2 [13] backbone+head as a chain: 23 conv + 5 maxpool
/// (Darknet-19 feature extractor plus the detection head, passthrough
/// omitted as in the paper's layer count).  Default input 3x448x448.
nn::Graph yolov2(const ZooOptions& options = {});

/// ResNet34 [16]: 7x7/2 stem, 3-4-6-3 basic blocks with batch-norm and
/// projection shortcuts.  Default input 3x224x224.
nn::Graph resnet34(const ZooOptions& options = {});

/// InceptionV3-style network [17]: conv stem, inception blocks with 5x5,
/// factorized 7x7 (1x7 + 7x1) and pooling branches, reduction blocks.
/// Default input 3x224x224.
nn::Graph inception(const ZooOptions& options = {});

/// The toy model of §V-C: 8 conv + 2 pool on 64x64 input (MNIST-sized).
nn::Graph toy_mnist(const ZooOptions& options = {});

/// MobileNetV1 [11-adjacent]: 3x3/2 stem then 13 depthwise-separable pairs
/// (depthwise 3x3 + pointwise 1x1).  The canonical low-FLOP edge model —
/// exercises grouped/depthwise convolution end to end.  Default input
/// 3x224x224.
nn::Graph mobilenet_v1(const ZooOptions& options = {});

/// SqueezeNet-v1.1-style: conv stem + 8 "fire" blocks (1x1 squeeze ->
/// {1x1, 3x3} expand -> concat).  Fire blocks are exactly the two-branch
/// concat blocks the intra-block partitioner (branches.hpp) decomposes.
/// Default input 3x224x224.
nn::Graph squeezenet(const ZooOptions& options = {});

/// Synthetic chain of `conv_layers` identical 3x3 convolutions (pad 1) with
/// `channels` channels — the workload for the PICO-vs-BFS planner cost
/// comparison (Table II).
nn::Graph synthetic_chain(int conv_layers, int input_size = 64,
                          int channels = 16);

/// Convenience: the model names used throughout benches.
enum class ModelId {
  Vgg16,
  Yolov2,
  Resnet34,
  Inception,
  ToyMnist,
  MobileNetV1,
  SqueezeNet,
};
const char* model_name(ModelId id);
nn::Graph build(ModelId id, const ZooOptions& options = {});

}  // namespace pico::models
