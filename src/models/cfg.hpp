// Darknet-style .cfg model loader.
//
// The paper's models (YOLOv2, VGG16 ports) circulate as Darknet config
// files; this parser builds a pico::nn::Graph from that format so users can
// plan/partition their own networks without writing C++ builders.
//
// Supported sections (a practical subset of Darknet plus two extensions):
//
//   [net]            channels= height= width=
//   [convolutional]  filters= size= (or size_h=/size_w=) stride=
//                    (or stride_h=/stride_w=) pad= (1 -> size/2) or
//                    padding= (explicit) activation=relu|linear|leaky(*)
//                    batch_normalize=0|1
//   [maxpool]        size= stride= padding=
//   [avgpool]        size= stride= padding=   (without size: global)
//   [connected]      output=
//   [shortcut]       from=<relative or absolute layer index>
//                    activation=relu|linear   (residual add)
//   [route]          layers=<comma list>      (channel concat; single layer
//                                              = plain skip)
//   [globalavgpool]                            (extension)
//
// (*) leaky is mapped to relu with a warning — the partitioning problem is
// unchanged and this repo's kernels implement relu.
//
// Darknet layer indices (for route/shortcut) count sections after [net],
// starting at 0; negative values are relative to the current section, as in
// Darknet.
#pragma once

#include <string>
#include <string_view>

#include "nn/graph.hpp"

namespace pico::models {

/// Parse config text.  Throws pico::Error with a line-numbered message on
/// malformed input.  The returned graph is finalized (weights zeroed).
nn::Graph parse_cfg(std::string_view text);

/// Read and parse a .cfg file.
nn::Graph load_cfg(const std::string& path);

}  // namespace pico::models
