#include "models/zoo.hpp"

#include "common/error.hpp"

namespace pico::models {

using nn::Graph;
using nn::Window;

namespace {

int default_size(int requested, int fallback) {
  return requested > 0 ? requested : fallback;
}

}  // namespace

Graph vgg16(const ZooOptions& options) {
  const int size = default_size(options.input_size, 224);
  Graph g;
  int x = g.add_input({3, size, size});
  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_convs[5] = {2, 2, 3, 3, 3};
  for (int stage = 0; stage < 5; ++stage) {
    for (int conv = 0; conv < stage_convs[stage]; ++conv) {
      x = g.add_conv(x, stage_channels[stage], 3, 1, 1);
    }
    x = g.add_maxpool(x, 2, 2);
  }
  if (options.include_classifier) {
    x = g.add_fc(x, 4096);
    x = g.add_fc(x, 4096);
    x = g.add_fc(x, 1000);
  }
  g.finalize();
  return g;
}

Graph yolov2(const ZooOptions& options) {
  const int size = default_size(options.input_size, 448);
  Graph g;
  int x = g.add_input({3, size, size});
  // Darknet-19 feature extractor: 18 conv + 5 maxpool.
  x = g.add_conv(x, 32, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 64, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 128, 3, 1, 1);
  x = g.add_conv(x, 64, 1, 1, 0);
  x = g.add_conv(x, 128, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 256, 3, 1, 1);
  x = g.add_conv(x, 128, 1, 1, 0);
  x = g.add_conv(x, 256, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 512, 3, 1, 1);
  x = g.add_conv(x, 256, 1, 1, 0);
  x = g.add_conv(x, 512, 3, 1, 1);
  x = g.add_conv(x, 256, 1, 1, 0);
  x = g.add_conv(x, 512, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 512, 1, 1, 0);
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 512, 1, 1, 0);
  x = g.add_conv(x, 1024, 3, 1, 1);
  // Detection head: 4 x 3x3 conv + final 1x1 detection conv -> 23 conv total.
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 1024, 3, 1, 1);
  x = g.add_conv(x, 425, 1, 1, 0, /*fused_relu=*/false);
  g.finalize();
  return g;
}

namespace {

/// ResNet basic block: conv3x3 -> bn+relu -> conv3x3 -> bn, plus shortcut
/// (identity, or 1x1/stride-2 projection + bn when shape changes), then
/// add+relu.  Returns the id of the add node.
int basic_block(Graph& g, int input, int channels, int stride,
                bool project) {
  int y = g.add_conv(input, channels, 3, stride, 1, /*fused_relu=*/false);
  y = g.add_batchnorm(y, /*fused_relu=*/true);
  y = g.add_conv(y, channels, 3, 1, 1, /*fused_relu=*/false);
  y = g.add_batchnorm(y, /*fused_relu=*/false);
  int shortcut = input;
  if (project) {
    shortcut =
        g.add_conv(input, channels, 1, stride, 0, /*fused_relu=*/false);
    shortcut = g.add_batchnorm(shortcut, /*fused_relu=*/false);
  }
  return g.add_add(y, shortcut, /*fused_relu=*/true);
}

}  // namespace

Graph resnet34(const ZooOptions& options) {
  const int size = default_size(options.input_size, 224);
  Graph g;
  int x = g.add_input({3, size, size});
  x = g.add_conv(x, 64, 7, 2, 3);
  x = g.add_maxpool(x, 3, 2, 1);
  const int group_channels[4] = {64, 128, 256, 512};
  const int group_blocks[4] = {3, 4, 6, 3};
  for (int group = 0; group < 4; ++group) {
    for (int block = 0; block < group_blocks[group]; ++block) {
      const bool first = block == 0;
      const int stride = (first && group > 0) ? 2 : 1;
      const bool project = first && group > 0;
      x = basic_block(g, x, group_channels[group], stride, project);
    }
  }
  if (options.include_classifier) {
    x = g.add_global_avgpool(x);
    x = g.add_fc(x, 1000);
  }
  g.finalize();
  return g;
}

namespace {

/// Inception-A-style block: 1x1 | 1x1->5x5 | 1x1->3x3->3x3 | avgpool->1x1,
/// concatenated.  All branches stride 1, spatial size preserved.
int inception_a(Graph& g, int input, int b1, int b2, int b3, int b4) {
  const int branch1 = g.add_conv(input, b1, 1, 1, 0);
  int branch2 = g.add_conv(input, b2 / 2, 1, 1, 0);
  branch2 = g.add_conv(branch2, b2, 5, 1, 2);
  int branch3 = g.add_conv(input, b3 / 2, 1, 1, 0);
  branch3 = g.add_conv(branch3, b3, 3, 1, 1);
  branch3 = g.add_conv(branch3, b3, 3, 1, 1);
  int branch4 = g.add_avgpool(input, 3, 1, 1);
  branch4 = g.add_conv(branch4, b4, 1, 1, 0);
  return g.add_concat({branch1, branch2, branch3, branch4});
}

/// Inception-B-style block with factorized 7x7: 1x1 | 1x1->1x7->7x1 |
/// 1x1->7x1->1x7->7x1->1x7 | avgpool->1x1.
int inception_b(Graph& g, int input, int channels) {
  const int c = channels;
  const int branch1 = g.add_conv(input, c, 1, 1, 0);
  int branch2 = g.add_conv(input, c / 2, 1, 1, 0);
  branch2 = g.add_conv_window(branch2, c / 2, Window{1, 7, 1, 1, 0, 3});
  branch2 = g.add_conv_window(branch2, c, Window{7, 1, 1, 1, 3, 0});
  int branch3 = g.add_conv(input, c / 2, 1, 1, 0);
  branch3 = g.add_conv_window(branch3, c / 2, Window{7, 1, 1, 1, 3, 0});
  branch3 = g.add_conv_window(branch3, c / 2, Window{1, 7, 1, 1, 0, 3});
  branch3 = g.add_conv_window(branch3, c, Window{7, 1, 1, 1, 3, 0});
  int branch4 = g.add_avgpool(input, 3, 1, 1);
  branch4 = g.add_conv(branch4, c, 1, 1, 0);
  return g.add_concat({branch1, branch2, branch3, branch4});
}

/// Reduction block: 3x3/2 conv | 1x1->3x3->3x3/2 | maxpool/2, concatenated.
int reduction(Graph& g, int input, int channels) {
  const int branch1 = g.add_conv(input, channels, 3, 2, 0);
  int branch2 = g.add_conv(input, channels / 2, 1, 1, 0);
  branch2 = g.add_conv(branch2, channels / 2, 3, 1, 1);
  branch2 = g.add_conv(branch2, channels, 3, 2, 0);
  const int branch3 = g.add_maxpool(input, 3, 2);
  return g.add_concat({branch1, branch2, branch3});
}

}  // namespace

Graph inception(const ZooOptions& options) {
  const int size = default_size(options.input_size, 224);
  Graph g;
  int x = g.add_input({3, size, size});
  // Stem (InceptionV3-style).
  x = g.add_conv(x, 32, 3, 2, 0);
  x = g.add_conv(x, 32, 3, 1, 0);
  x = g.add_conv(x, 64, 3, 1, 1);
  x = g.add_maxpool(x, 3, 2);
  x = g.add_conv(x, 80, 1, 1, 0);
  x = g.add_conv(x, 192, 3, 1, 0);
  x = g.add_maxpool(x, 3, 2);
  // Inception groups.
  x = inception_a(g, x, 64, 64, 96, 32);
  x = inception_a(g, x, 64, 64, 96, 64);
  x = reduction(g, x, 192);
  x = inception_b(g, x, 128);
  x = inception_b(g, x, 160);
  x = reduction(g, x, 256);
  x = inception_a(g, x, 160, 160, 192, 96);
  if (options.include_classifier) {
    x = g.add_global_avgpool(x);
    x = g.add_fc(x, 1000);
  }
  g.finalize();
  return g;
}

Graph toy_mnist(const ZooOptions& options) {
  const int size = default_size(options.input_size, 64);
  Graph g;
  int x = g.add_input({1, size, size});
  x = g.add_conv(x, 16, 3, 1, 1);
  x = g.add_conv(x, 16, 3, 1, 1);
  x = g.add_conv(x, 32, 3, 1, 1);
  x = g.add_conv(x, 32, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 64, 3, 1, 1);
  x = g.add_conv(x, 64, 3, 1, 1);
  x = g.add_maxpool(x, 2, 2);
  x = g.add_conv(x, 64, 3, 1, 1);
  x = g.add_conv(x, 32, 3, 1, 1);
  if (options.include_classifier) {
    x = g.add_fc(x, 10);
  }
  g.finalize();
  return g;
}

Graph mobilenet_v1(const ZooOptions& options) {
  const int size = default_size(options.input_size, 224);
  Graph g;
  int x = g.add_input({3, size, size});
  x = g.add_conv(x, 32, 3, 2, 1);
  // Depthwise-separable pairs: (stride, pointwise output channels).
  const std::pair<int, int> pairs[] = {
      {1, 64},  {2, 128}, {1, 128}, {2, 256},  {1, 256},
      {2, 512}, {1, 512}, {1, 512}, {1, 512},  {1, 512},
      {1, 512}, {2, 1024}, {1, 1024},
  };
  for (const auto& [stride, channels] : pairs) {
    x = g.add_depthwise(x, 3, stride, 1);
    x = g.add_conv(x, channels, 1, 1, 0);
  }
  if (options.include_classifier) {
    x = g.add_global_avgpool(x);
    x = g.add_fc(x, 1000);
  }
  g.finalize();
  return g;
}

namespace {

/// SqueezeNet fire block: 1x1 squeeze, then parallel 1x1 and 3x3 expands
/// concatenated — a two-branch block in branches.hpp's sense.
int fire(Graph& g, int input, int squeeze, int expand) {
  const int squeezed = g.add_conv(input, squeeze, 1, 1, 0);
  const int expand1 = g.add_conv(squeezed, expand, 1, 1, 0);
  const int expand3 = g.add_conv(squeezed, expand, 3, 1, 1);
  return g.add_concat({expand1, expand3});
}

}  // namespace

Graph squeezenet(const ZooOptions& options) {
  const int size = default_size(options.input_size, 224);
  Graph g;
  int x = g.add_input({3, size, size});
  x = g.add_conv(x, 64, 3, 2, 0);
  x = g.add_maxpool(x, 3, 2);
  x = fire(g, x, 16, 64);
  x = fire(g, x, 16, 64);
  x = g.add_maxpool(x, 3, 2);
  x = fire(g, x, 32, 128);
  x = fire(g, x, 32, 128);
  x = g.add_maxpool(x, 3, 2);
  x = fire(g, x, 48, 192);
  x = fire(g, x, 48, 192);
  x = fire(g, x, 64, 256);
  x = fire(g, x, 64, 256);
  x = g.add_conv(x, 1000, 1, 1, 0);
  if (options.include_classifier) {
    x = g.add_global_avgpool(x);
  }
  g.finalize();
  return g;
}

Graph synthetic_chain(int conv_layers, int input_size, int channels) {
  PICO_CHECK(conv_layers >= 1);
  Graph g;
  int x = g.add_input({channels, input_size, input_size});
  for (int i = 0; i < conv_layers; ++i) {
    x = g.add_conv(x, channels, 3, 1, 1);
  }
  g.finalize();
  return g;
}

const char* model_name(ModelId id) {
  switch (id) {
    case ModelId::Vgg16:       return "VGG16";
    case ModelId::Yolov2:      return "YOLOv2";
    case ModelId::Resnet34:    return "ResNet34";
    case ModelId::Inception:   return "InceptionV3";
    case ModelId::ToyMnist:    return "ToyMNIST";
    case ModelId::MobileNetV1: return "MobileNetV1";
    case ModelId::SqueezeNet:  return "SqueezeNet";
  }
  return "?";
}

Graph build(ModelId id, const ZooOptions& options) {
  switch (id) {
    case ModelId::Vgg16:       return vgg16(options);
    case ModelId::Yolov2:      return yolov2(options);
    case ModelId::Resnet34:    return resnet34(options);
    case ModelId::Inception:   return inception(options);
    case ModelId::ToyMnist:    return toy_mnist(options);
    case ModelId::MobileNetV1: return mobilenet_v1(options);
    case ModelId::SqueezeNet:  return squeezenet(options);
  }
  PICO_CHECK_MSG(false, "unknown model id");
  return {};
}

}  // namespace pico::models
