#include "models/cfg.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace pico::models {

namespace {

struct Section {
  std::string name;
  int line = 0;  ///< 1-based line of the [header]
  std::map<std::string, std::string> keys;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw Error("cfg parse error (line " + std::to_string(line) + "): " +
              message);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<Section> tokenize(std::string_view text) {
  std::vector<Section> sections;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Strip comments (# and ;) and whitespace.
    if (const std::size_t hash = line.find_first_of("#;");
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        fail(line_number, "malformed section header");
      }
      Section section;
      section.name = std::string(line.substr(1, line.size() - 2));
      section.line = line_number;
      sections.push_back(std::move(section));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_number, "expected key=value, got '" + std::string(line) +
                            "'");
    }
    if (sections.empty()) {
      fail(line_number, "key=value before any [section]");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) fail(line_number, "empty key");
    sections.back().keys[key] = value;
  }
  return sections;
}

class SectionReader {
 public:
  explicit SectionReader(const Section& section) : section_(section) {}

  int get_int(const std::string& key, int fallback) const {
    const auto it = section_.keys.find(key);
    if (it == section_.keys.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const int value = std::stoi(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("");
      return value;
    } catch (const std::exception&) {
      fail(section_.line, "key '" + key + "' is not an integer: '" +
                              it->second + "'");
    }
  }

  int require_int(const std::string& key) const {
    if (!has(key)) {
      fail(section_.line,
           "[" + section_.name + "] is missing required key '" + key + "'");
    }
    return get_int(key, 0);
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = section_.keys.find(key);
    return it == section_.keys.end() ? fallback : it->second;
  }

  bool has(const std::string& key) const {
    return section_.keys.count(key) != 0;
  }

  /// Comma-separated integer list.
  std::vector<int> get_int_list(const std::string& key) const {
    const auto it = section_.keys.find(key);
    if (it == section_.keys.end()) {
      fail(section_.line,
           "[" + section_.name + "] is missing required key '" + key + "'");
    }
    std::vector<int> out;
    std::stringstream stream{it->second};
    std::string item;
    while (std::getline(stream, item, ',')) {
      try {
        out.push_back(std::stoi(item));
      } catch (const std::exception&) {
        fail(section_.line, "bad integer '" + item + "' in '" + key + "'");
      }
    }
    if (out.empty()) fail(section_.line, "empty list for '" + key + "'");
    return out;
  }

  int line() const { return section_.line; }
  const std::string& name() const { return section_.name; }

 private:
  const Section& section_;
};

/// activation= handling shared by convolutional/shortcut.
bool parse_relu(const SectionReader& reader) {
  const std::string activation = reader.get("activation", "linear");
  if (activation == "relu") return true;
  if (activation == "linear" || activation == "none") return false;
  if (activation == "leaky") {
    PICO_LOG(Warn) << "cfg line " << reader.line()
                   << ": 'leaky' mapped to relu (kernels implement relu)";
    return true;
  }
  fail(reader.line(), "unsupported activation '" + activation + "'");
}

}  // namespace

nn::Graph parse_cfg(std::string_view text) {
  const std::vector<Section> sections = tokenize(text);
  PICO_CHECK_MSG(!sections.empty(), "cfg has no sections");
  if (sections.front().name != "net" && sections.front().name != "network") {
    fail(sections.front().line, "first section must be [net]");
  }

  nn::Graph graph;
  // darknet_outputs[i] = our node id producing darknet layer i's output.
  std::vector<int> darknet_outputs;

  {
    const SectionReader net(sections.front());
    const Shape input{net.require_int("channels"), net.require_int("height"),
                      net.require_int("width")};
    graph.add_input(input);
  }

  auto resolve = [&](int reference, int line) -> int {
    // Negative = relative to the layer being built (Darknet convention).
    const int index =
        reference < 0 ? static_cast<int>(darknet_outputs.size()) + reference
                      : reference;
    if (index < 0 || index >= static_cast<int>(darknet_outputs.size())) {
      fail(line, "layer reference " + std::to_string(reference) +
                     " out of range");
    }
    return darknet_outputs[static_cast<std::size_t>(index)];
  };

  int previous = 0;  // node id feeding the next section (graph input first)
  for (std::size_t i = 1; i < sections.size(); ++i) {
    const SectionReader reader(sections[i]);
    const std::string& name = reader.name();
    int output = -1;

    if (name == "convolutional" || name == "conv") {
      nn::Window window;
      const int size = reader.get_int("size", 1);
      window.kh = reader.get_int("size_h", size);
      window.kw = reader.get_int("size_w", size);
      const int stride = reader.get_int("stride", 1);
      window.sh = reader.get_int("stride_h", stride);
      window.sw = reader.get_int("stride_w", stride);
      if (reader.has("padding")) {
        window.ph = window.pw = reader.get_int("padding", 0);
      } else if (reader.get_int("pad", 0) != 0) {
        window.ph = window.kh / 2;  // Darknet: pad=1 means "same"-ish
        window.pw = window.kw / 2;
      }
      const bool relu = parse_relu(reader);
      const bool batch_normalize = reader.get_int("batch_normalize", 0) != 0;
      output = graph.add_conv_window(previous, reader.require_int("filters"),
                                     window,
                                     /*fused_relu=*/relu && !batch_normalize,
                                     /*name=*/"",
                                     reader.get_int("groups", 1));
      if (batch_normalize) {
        output = graph.add_batchnorm(output, /*fused_relu=*/relu);
      }
    } else if (name == "maxpool") {
      output = graph.add_maxpool(previous, reader.get_int("size", 2),
                                 reader.get_int("stride", 2),
                                 reader.get_int("padding", 0));
    } else if (name == "avgpool") {
      if (reader.has("size")) {
        output = graph.add_avgpool(previous, reader.require_int("size"),
                                   reader.get_int("stride", 1),
                                   reader.get_int("padding", 0));
      } else {
        output = graph.add_global_avgpool(previous);  // Darknet's [avgpool]
      }
    } else if (name == "globalavgpool") {
      output = graph.add_global_avgpool(previous);
    } else if (name == "connected" || name == "fc") {
      output = graph.add_fc(previous, reader.require_int("output"));
    } else if (name == "shortcut") {
      const int from = resolve(reader.require_int("from"), reader.line());
      output = graph.add_add(previous, from, parse_relu(reader));
    } else if (name == "route") {
      const std::vector<int> refs = reader.get_int_list("layers");
      std::vector<int> nodes;
      nodes.reserve(refs.size());
      for (int ref : refs) nodes.push_back(resolve(ref, reader.line()));
      if (nodes.size() == 1) {
        output = nodes[0];  // plain skip, as in Darknet
      } else {
        output = graph.add_concat(std::move(nodes));
      }
    } else {
      fail(reader.line(), "unsupported section [" + name + "]");
    }

    darknet_outputs.push_back(output);
    previous = output;
  }

  PICO_CHECK_MSG(!darknet_outputs.empty(), "cfg defines no layers");
  graph.finalize();
  return graph;
}

nn::Graph load_cfg(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  PICO_CHECK_MSG(file.good(), "cannot open cfg file: " << path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_cfg(buffer.str());
}

}  // namespace pico::models
