#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace pico::obs {

const char* health_event_kind_name(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::Straggler: return "straggler";
    case HealthEventKind::Recovered: return "recovered";
    case HealthEventKind::ModelDrift: return "model_drift";
    case HealthEventKind::Unreachable: return "unreachable";
    case HealthEventKind::DeviceDown: return "device_down";
  }
  return "unknown";
}

namespace {

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

std::vector<StragglerVerdict> detect_stragglers(
    const std::map<int, double>& device_mean_seconds,
    const StragglerOptions& options) {
  std::vector<StragglerVerdict> verdicts;
  if (device_mean_seconds.size() < 2) {
    // A single device has no peers to straggle behind.
    for (const auto& [device, mean] : device_mean_seconds) {
      verdicts.push_back({device, mean, 0.0, false});
    }
    return verdicts;
  }

  std::vector<double> means;
  means.reserve(device_mean_seconds.size());
  for (const auto& [device, mean] : device_mean_seconds) {
    means.push_back(mean);
  }
  const double median = median_of(means);
  std::vector<double> deviations;
  deviations.reserve(means.size());
  for (const double m : means) deviations.push_back(std::abs(m - median));
  const double mad = median_of(deviations);

  const bool use_zscore =
      static_cast<int>(means.size()) >= options.min_devices_for_zscore &&
      mad > 0.0;
  for (const auto& [device, mean] : device_mean_seconds) {
    StragglerVerdict verdict;
    verdict.device = device;
    verdict.mean_seconds = mean;
    if (use_zscore) {
      // Iglewicz–Hoaglin modified z-score; only a *slow* outlier is a
      // straggler (a fast one got an easy window, not a problem).
      verdict.score = 0.6745 * (mean - median) / mad;
      verdict.straggler = verdict.score > options.zscore_threshold;
    } else {
      // Tiny stage: compare against the best peer.  With two devices the
      // median sits between them and MAD cannot separate slow from fast,
      // so a ratio test is the robust option.
      double best_peer = std::numeric_limits<double>::infinity();
      for (const auto& [other, other_mean] : device_mean_seconds) {
        if (other != device) best_peer = std::min(best_peer, other_mean);
      }
      verdict.score = best_peer > 0.0 ? mean / best_peer : 0.0;
      verdict.straggler = verdict.score > options.ratio_threshold;
    }
    verdicts.push_back(verdict);
  }
  return verdicts;
}

double md1_waiting_seconds(double lambda, double period_seconds) {
  if (lambda <= 0.0 || period_seconds <= 0.0) return 0.0;
  const double utilization = lambda * period_seconds;
  if (utilization >= 1.0) return std::numeric_limits<double>::infinity();
  // Thm. 2: Wq = λp² / (2(1−λp))  (= sim::md1_waiting_time).
  return lambda * period_seconds * period_seconds /
         (2.0 * (1.0 - utilization));
}

std::vector<HealthEvent> ModelChecker::check(
    std::int64_t round, const std::vector<StageResidual>& measurements) {
  std::vector<HealthEvent> events;
  residuals_.clear();
  for (const StageResidual& m : measurements) {
    StageResidual entry = m;
    const double denom = std::max(std::abs(entry.predicted), 1e-9);
    entry.residual = std::abs(entry.measured - entry.predicted) / denom;
    if (std::isinf(entry.predicted) || std::isinf(entry.measured)) {
      // Unstable-queue prediction against a finite measurement (or vice
      // versa): maximal disagreement, but keep the arithmetic finite.
      entry.residual = 1e9;
    }

    std::ostringstream key;
    key << entry.signal << '/' << entry.stage;
    SignalState& state = state_[key.str()];
    if (!state.ewma_primed) {
      state.ewma = entry.residual;
      state.ewma_primed = true;
    } else {
      state.ewma = options_.residual_alpha * entry.residual +
                   (1.0 - options_.residual_alpha) * state.ewma;
    }
    entry.residual_ewma = state.ewma;

    if (state.ewma > options_.drift_threshold) {
      ++state.breaches;
      if (state.breaches >= options_.consecutive_rounds && !state.fired) {
        state.fired = true;
        HealthEvent event;
        event.kind = HealthEventKind::ModelDrift;
        event.stage = entry.stage;
        event.signal = entry.signal;
        event.value = state.ewma;
        event.threshold = options_.drift_threshold;
        event.round = round;
        std::ostringstream detail;
        detail << entry.signal << " stage " << entry.stage << ": predicted "
               << entry.predicted << "s, measured " << entry.measured
               << "s (residual ewma " << state.ewma << ")";
        event.detail = detail.str();
        events.push_back(std::move(event));
      }
    } else {
      state.breaches = 0;
      state.fired = false;  // re-arm once the model fits again
    }
    residuals_.push_back(std::move(entry));
  }
  return events;
}

bool HealthSnapshot::healthy() const {
  for (const DeviceHealth& device : devices) {
    if (!device.alive || !device.reachable || device.straggler) return false;
  }
  return true;
}

std::vector<int> HealthSnapshot::down_devices() const {
  std::vector<int> down;
  for (const DeviceHealth& device : devices) {
    if (!device.alive) down.push_back(device.device);
  }
  return down;
}

bool HealthSnapshot::drift_seen() const {
  for (const HealthEvent& event : events) {
    if (event.kind == HealthEventKind::ModelDrift) return true;
  }
  return false;
}

}  // namespace pico::obs
