// Crash postmortem: dump the flight recorder's black box when the process
// dies abnormally, so the causal record survives the crash it explains.
//
// install_postmortem_handlers() arms three capture paths:
//   - fatal signals (SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL) via
//     sigaction with SA_RESETHAND: the handler writes the dump, then
//     re-raises so the default disposition (core, exit status) is preserved;
//   - std::terminate (uncaught exceptions — including an uncaught
//     PICO_CHECK InvariantError, which the flight recorder has already
//     journaled as a CheckFailed event via the check_failed_hook);
//   - explicit calls (write_postmortem_now) for tests and tools.
//
// Signal-safety argument (DESIGN §15 has the long form): the dump path
// performs no allocation, takes no locks, and calls only async-signal-safe
// functions — openat(2) on a directory fd opened at install time, write(2),
// close(2).  All data it reads is lock-free by construction: the flight
// recorder's seqlock rings (FlightRecorder::read_slot), the pending-span
// slot table, and the metric registry's published crash slots
// (Registry::crash_metric).  Integers and doubles are formatted by local
// helpers, not snprintf (not on the async-signal-safe list).  A relaxed
// "already dumped" flag makes the abort-inside-terminate path write once.
//
// The artifact is JSON at ${PICO_POSTMORTEM_DIR:-.}/pico_postmortem_<pid>.json
// — events exactly as the rings hold them (unsorted; readers sort by seq),
// the thread-name and string tables, the pending spans, and a metrics
// snapshot.  load_postmortem() parses it back for pico_postmortem,
// pico_cluster_report --postmortem, and the round-trip tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace pico::obs {

/// Arm the crash paths (idempotent).  Forces FlightRecorder::global() so
/// the handler never runs a static init guard.  Honors PICO_POSTMORTEM_DIR
/// (read once, at install).
void install_postmortem_handlers();

/// Absolute/relative path the next dump will be written to (stable for the
/// process lifetime once handlers are installed; "" before).
const char* postmortem_path();

/// Write a postmortem right now, outside any crash (tests, tools, operator
/// request).  Unlike the signal path this may run more than once and does
/// not set the dumped-once latch.  Returns false when the file cannot be
/// written.  `reason` lands in the JSON "reason" field.
bool write_postmortem_now(const char* reason);

/// One journal entry as parsed back from a postmortem file.
struct PostmortemEvent {
  std::uint64_t seq = 0;
  std::int64_t t_ns = 0;
  std::uint32_t tid = 0;
  std::uint16_t category = 0;
  std::uint16_t code = 0;
  std::string name;  ///< event_code_name at dump time
  std::int64_t args[4] = {0, 0, 0, 0};
};

struct PostmortemSpan {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t track = 0;
  std::int64_t task_id = -1;
  std::uint32_t tid = 0;
};

struct PostmortemMetric {
  std::string name;
  std::string labels;
  int kind = 0;  ///< 0 counter, 1 gauge, 2 histogram
  std::int64_t count = 0;
  double value = 0.0;
};

struct PostmortemThread {
  std::uint32_t tid = 0;
  std::string name;
};

struct Postmortem {
  int pid = 0;
  std::string reason;   ///< "SIGSEGV", "terminate", caller-supplied, ...
  int signal_number = 0;
  std::vector<PostmortemThread> threads;
  std::vector<std::string> strings;        ///< intern table
  std::vector<PostmortemEvent> events;     ///< sorted by seq after load
  std::vector<PostmortemSpan> spans;       ///< spans open at dump time
  std::vector<PostmortemMetric> metrics;
  /// Thread name for a recorder tid ("" when unknown).
  std::string thread_name(std::uint32_t tid) const;
};

/// Parse a postmortem JSON file; throws pico::Error on malformed input.
Postmortem load_postmortem(const std::string& path);

}  // namespace pico::obs
