#include "obs/clock.hpp"

#include <atomic>

#include "obs/trace.hpp"

namespace pico::obs {

void ClockOffsetEstimator::update(const ClockSample& sample) {
  if (!sample.plausible()) {
    MutexLock lock(mutex_);
    ++samples_;
    return;
  }
  const std::int64_t rtt = sample.rtt_ns();
  const auto offset = static_cast<double>(sample.offset_ns());
  MutexLock lock(mutex_);
  ++samples_;
  if (accepted_ == 0) {
    // First plausible sample seeds everything.
    ++accepted_;
    offset_ns_ = offset;
    rtt_ns_ = static_cast<double>(rtt);
    min_rtt_ns_ = rtt;
    return;
  }
  if (rtt < min_rtt_ns_) min_rtt_ns_ = rtt;
  const auto gate = static_cast<double>(min_rtt_ns_) * options_.rtt_gate;
  if (static_cast<double>(rtt) > gate) return;  // jittery: offset untrusted
  ++accepted_;
  offset_ns_ += options_.alpha * (offset - offset_ns_);
  rtt_ns_ += options_.alpha * (static_cast<double>(rtt) - rtt_ns_);
}

bool ClockOffsetEstimator::valid() const {
  MutexLock lock(mutex_);
  return accepted_ > 0;
}

std::int64_t ClockOffsetEstimator::offset_ns() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(offset_ns_);
}

std::int64_t ClockOffsetEstimator::rtt_ns() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(rtt_ns_);
}

std::int64_t ClockOffsetEstimator::min_rtt_ns() const {
  MutexLock lock(mutex_);
  return min_rtt_ns_;
}

std::int64_t ClockOffsetEstimator::error_bound_ns() const {
  MutexLock lock(mutex_);
  return min_rtt_ns_ / 2;
}

int ClockOffsetEstimator::samples() const {
  MutexLock lock(mutex_);
  return samples_;
}

int ClockOffsetEstimator::accepted() const {
  MutexLock lock(mutex_);
  return accepted_;
}

namespace {
std::atomic<std::int64_t> g_debug_skew_ns{0};
}  // namespace

void set_debug_clock_skew_ns(std::int64_t skew_ns) {
  g_debug_skew_ns.store(skew_ns, std::memory_order_relaxed);
}

std::int64_t debug_clock_skew_ns() {
  return g_debug_skew_ns.load(std::memory_order_relaxed);
}

std::int64_t worker_now_ns() {
  return Tracer::now_ns() + debug_clock_skew_ns();
}

}  // namespace pico::obs
