// Postmortem parse-back: load_postmortem() and its minimal JSON DOM.
//
// Deliberately a separate translation unit from postmortem.cpp: the reader
// runs in normal context (allocation, iostreams and exceptions are fine),
// while postmortem.cpp holds the async-signal-safe DUMP path whose object
// file is audited symbol-by-symbol by tools/check_postmortem_syms.sh — the
// link-time backstop to pico_lint's signal-unsafe call-graph proof.  Code
// that needs malloc/stdio belongs here, never in postmortem.cpp.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "obs/postmortem.hpp"

namespace pico::obs {

namespace {

/// Minimal JSON DOM — just enough for the machine-written postmortem format
/// (objects, arrays, strings, integer/real numbers, literals).
struct JsonValue {
  enum class Kind { Null, Bool, Int, Real, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool boolean = false;
  long long integer = 0;
  double real = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* find(const char* key) const {
    const auto it = fields.find(key);
    return it != fields.end() ? &it->second : nullptr;
  }
  long long as_int(long long fallback = 0) const {
    if (kind == Kind::Int) return integer;
    if (kind == Kind::Real) return static_cast<long long>(real);
    return fallback;
  }
  double as_real(double fallback = 0.0) const {
    if (kind == Kind::Real) return real;
    if (kind == Kind::Int) return static_cast<double>(integer);
    return fallback;
  }
};

class JsonParser {
 public:
  JsonParser(const char* data, std::size_t size)
      : cursor_(data), end_(data + size) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (cursor_ != end_) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    std::ostringstream os;
    os << "postmortem JSON: " << what << " at offset " << (cursor_ - begin_);
    throw Error(os.str());
  }

  void skip_space() {
    while (cursor_ != end_ &&
           (*cursor_ == ' ' || *cursor_ == '\n' || *cursor_ == '\t' ||
            *cursor_ == '\r')) {
      ++cursor_;
    }
  }

  char peek() {
    skip_space();
    if (cursor_ == end_) fail("unexpected end");
    return *cursor_;
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++cursor_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::Str;
      value.text = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') return parse_literal(c == 't');
    if (c == 'n') {
      consume_word("null");
      return JsonValue{};
    }
    return parse_number();
  }

  void consume_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (cursor_ == end_ || *cursor_ != *p) fail("bad literal");
      ++cursor_;
    }
  }

  JsonValue parse_literal(bool value) {
    consume_word(value ? "true" : "false");
    JsonValue out;
    out.kind = JsonValue::Kind::Bool;
    out.boolean = value;
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (cursor_ != end_ && *cursor_ != '"') {
      char c = *cursor_++;
      if (c == '\\') {
        if (cursor_ == end_) fail("bad escape");
        const char escape = *cursor_++;
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // Our writer never emits \u; tolerate by skipping 4 hex chars.
            for (int i = 0; i < 4 && cursor_ != end_; ++i) ++cursor_;
            c = '?';
            break;
          default: fail("bad escape");
        }
      }
      out.push_back(c);
    }
    if (cursor_ == end_) fail("unterminated string");
    ++cursor_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const char* start = cursor_;
    bool real = false;
    if (cursor_ != end_ && *cursor_ == '-') ++cursor_;
    while (cursor_ != end_ &&
           ((*cursor_ >= '0' && *cursor_ <= '9') || *cursor_ == '.' ||
            *cursor_ == 'e' || *cursor_ == 'E' || *cursor_ == '+' ||
            *cursor_ == '-')) {
      if (*cursor_ == '.' || *cursor_ == 'e' || *cursor_ == 'E') real = true;
      ++cursor_;
    }
    if (cursor_ == start) fail("bad number");
    const std::string text(start, static_cast<std::size_t>(cursor_ - start));
    JsonValue out;
    if (real) {
      out.kind = JsonValue::Kind::Real;
      out.real = std::strtod(text.c_str(), nullptr);
    } else {
      out.kind = JsonValue::Kind::Int;
      out.integer = std::strtoll(text.c_str(), nullptr, 10);
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out;
    out.kind = JsonValue::Kind::Arr;
    if (peek() == ']') {
      ++cursor_;
      return out;
    }
    for (;;) {
      out.items.push_back(parse_value());
      const char c = peek();
      ++cursor_;
      if (c == ']') return out;
      if (c != ',') fail("expected , or ]");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out;
    out.kind = JsonValue::Kind::Obj;
    if (peek() == '}') {
      ++cursor_;
      return out;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      out.fields.emplace(std::move(key), parse_value());
      const char c = peek();
      ++cursor_;
      if (c == '}') return out;
      if (c != ',') fail("expected , or }");
    }
  }

  const char* cursor_;
  const char* end_;
  const char* begin_ = cursor_;
};

}  // namespace

std::string Postmortem::thread_name(std::uint32_t tid) const {
  for (const PostmortemThread& thread : threads) {
    if (thread.tid == tid) return thread.name;
  }
  return "";
}

Postmortem load_postmortem(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) throw Error("cannot read postmortem file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text.data(), text.size());
  const JsonValue root = parser.parse();
  if (root.kind != JsonValue::Kind::Obj ||
      root.find("pico_postmortem") == nullptr) {
    throw Error("not a pico postmortem file: " + path);
  }
  Postmortem out;
  if (const JsonValue* pid = root.find("pid")) {
    out.pid = static_cast<int>(pid->as_int());
  }
  if (const JsonValue* reason = root.find("reason")) out.reason = reason->text;
  if (const JsonValue* sig = root.find("signal")) {
    out.signal_number = static_cast<int>(sig->as_int());
  }
  if (const JsonValue* threads = root.find("threads")) {
    for (const JsonValue& item : threads->items) {
      PostmortemThread thread;
      if (const JsonValue* tid = item.find("tid")) {
        thread.tid = static_cast<std::uint32_t>(tid->as_int());
      }
      if (const JsonValue* name = item.find("name")) thread.name = name->text;
      out.threads.push_back(std::move(thread));
    }
  }
  if (const JsonValue* strings = root.find("strings")) {
    for (const JsonValue& item : strings->items) {
      out.strings.push_back(item.text);
    }
  }
  if (const JsonValue* events = root.find("events")) {
    for (const JsonValue& item : events->items) {
      PostmortemEvent event;
      if (const JsonValue* v = item.find("seq")) {
        event.seq = static_cast<std::uint64_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("t_ns")) event.t_ns = v->as_int();
      if (const JsonValue* v = item.find("tid")) {
        event.tid = static_cast<std::uint32_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("cat")) {
        event.category = static_cast<std::uint16_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("code")) {
        event.code = static_cast<std::uint16_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("name")) event.name = v->text;
      if (const JsonValue* v = item.find("args")) {
        for (std::size_t a = 0; a < 4 && a < v->items.size(); ++a) {
          event.args[a] = v->items[a].as_int();
        }
      }
      out.events.push_back(std::move(event));
    }
  }
  if (const JsonValue* spans = root.find("spans")) {
    for (const JsonValue& item : spans->items) {
      PostmortemSpan span;
      if (const JsonValue* v = item.find("name")) span.name = v->text;
      if (const JsonValue* v = item.find("start_ns")) {
        span.start_ns = v->as_int();
      }
      if (const JsonValue* v = item.find("track")) span.track = v->as_int();
      if (const JsonValue* v = item.find("task")) span.task_id = v->as_int();
      if (const JsonValue* v = item.find("tid")) {
        span.tid = static_cast<std::uint32_t>(v->as_int());
      }
      out.spans.push_back(std::move(span));
    }
  }
  if (const JsonValue* metrics = root.find("metrics")) {
    for (const JsonValue& item : metrics->items) {
      PostmortemMetric metric;
      if (const JsonValue* v = item.find("name")) metric.name = v->text;
      if (const JsonValue* v = item.find("labels")) metric.labels = v->text;
      if (const JsonValue* v = item.find("kind")) {
        metric.kind = static_cast<int>(v->as_int());
      }
      if (const JsonValue* v = item.find("count")) metric.count = v->as_int();
      if (const JsonValue* v = item.find("value")) {
        metric.value = v->as_real();
      }
      out.metrics.push_back(std::move(metric));
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const PostmortemEvent& a, const PostmortemEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace pico::obs
