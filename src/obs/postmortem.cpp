#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pico::obs {

// ---------------------------------------------------------------------------
// Dump path (async-signal-safe)
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumped{false};
std::atomic<int> g_dirfd{-1};
char g_dir[256] = ".";
char g_path[320] = "";  // display path for the *current* process

/// Buffered raw writer: write(2) only, EINTR-retried, fixed stack buffer.
/// Every formatter below is a plain loop — no snprintf, no locale, no
/// allocation — keeping the whole dump path on the async-signal-safe list.
class RawWriter {
 public:
  explicit RawWriter(int fd) : fd_(fd) {}
  ~RawWriter() { flush(); }

  void ch(char c) {
    if (len_ == sizeof(buf_)) flush();
    buf_[len_++] = c;
  }

  void lit(const char* text) {
    for (const char* p = text; *p != '\0'; ++p) ch(*p);
  }

  /// JSON string with escaping, bounded by max_len (our tables are
  /// NUL-terminated fixed buffers, but belt and braces in a handler).
  void json_string(const char* text, int max_len = 1 << 16) {
    ch('"');
    for (int i = 0; text[i] != '\0' && i < max_len; ++i) {
      const char c = text[i];
      if (c == '"' || c == '\\') {
        ch('\\');
        ch(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        ch(' ');  // control chars cannot appear in our tables; neutralize
      } else {
        ch(c);
      }
    }
    ch('"');
  }

  void i64(long long value) {
    if (value < 0) {
      ch('-');
      // Negate digit by digit to survive LLONG_MIN.
      u64_digits(static_cast<unsigned long long>(-(value + 1)) + 1);
      return;
    }
    u64_digits(static_cast<unsigned long long>(value));
  }

  void u64(unsigned long long value) { u64_digits(value); }

  /// Fixed-point double: sign, integer part, 9 fractional digits.  Good
  /// enough for metric sums/gauges; NaN/inf degrade to 0.
  void dbl(double value) {
    if (!(value == value) || value > 1e18 || value < -1e18) {
      lit("0");
      return;
    }
    if (value < 0) {
      ch('-');
      value = -value;
    }
    const auto whole = static_cast<unsigned long long>(value);
    u64_digits(whole);
    ch('.');
    double frac = value - static_cast<double>(whole);
    for (int i = 0; i < 9; ++i) {
      frac *= 10.0;
      const int digit = static_cast<int>(frac);
      ch(static_cast<char>('0' + (digit < 0 ? 0 : digit > 9 ? 9 : digit)));
      frac -= digit;
    }
  }

  void flush() {
    int offset = 0;
    while (offset < len_) {
      const ssize_t n = ::write(fd_, buf_ + offset, static_cast<std::size_t>(len_ - offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // nothing a handler can do; keep the partial artifact
      }
      offset += static_cast<int>(n);
    }
    len_ = 0;
  }

 private:
  void u64_digits(unsigned long long value) {
    char digits[24];
    int count = 0;
    do {
      digits[count++] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    while (count > 0) ch(digits[--count]);
  }

  int fd_;
  char buf_[512];
  int len_ = 0;
};

/// Format "pico_postmortem_<pid>.json" for the *calling* process — pid is
/// read at dump time, so handlers inherited across fork() still write a
/// per-process artifact.
void format_file_name(char* out, int cap) {
  const char* prefix = "pico_postmortem_";
  int len = 0;
  for (const char* p = prefix; *p != '\0' && len < cap - 1; ++p) {
    out[len++] = *p;
  }
  long long pid = static_cast<long long>(::getpid());
  char digits[24];
  int count = 0;
  do {
    digits[count++] = static_cast<char>('0' + pid % 10);
    pid /= 10;
  } while (pid != 0);
  while (count > 0 && len < cap - 1) out[len++] = digits[--count];
  const char* suffix = ".json";
  for (const char* p = suffix; *p != '\0' && len < cap - 1; ++p) {
    out[len++] = *p;
  }
  out[len] = '\0';
}

const char* signal_name(int signal_number) {
  switch (signal_number) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

/// The dump itself.  Async-signal-safe: openat/write/close, seqlock ring
/// reads, published-pointer metric reads, loop-based formatting.  Events
/// are emitted per-ring, unsorted — sorting needs no signal safety, so the
/// readers do it.
void write_postmortem(const char* reason, int signal_number) {
  const int dirfd = g_dirfd.load(std::memory_order_acquire);
  if (dirfd < 0) return;
  char name[64];
  format_file_name(name, sizeof(name));
  const int fd = ::openat(dirfd, name, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  {
    RawWriter out(fd);
    out.lit("{\"pico_postmortem\":1,\"pid\":");
    out.i64(static_cast<long long>(::getpid()));
    out.lit(",\"reason\":");
    out.json_string(reason);
    out.lit(",\"signal\":");
    out.i64(signal_number);

    FlightRecorder* recorder = FlightRecorder::crash_instance();
    out.lit(",\"threads\":[");
    if (recorder != nullptr) {
      bool first = true;
      FlightRecorder::ThreadName names[FlightRecorder::kMaxThreadNames];
      const int count =
          recorder->thread_names_raw(names, FlightRecorder::kMaxThreadNames);
      for (int i = 0; i < count; ++i) {
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"tid\":");
        out.u64(names[i].tid);
        out.lit(",\"name\":");
        out.json_string(names[i].name, FlightRecorder::kNameBytes);
        out.ch('}');
      }
    }
    out.lit("],\"strings\":[");
    if (recorder != nullptr) {
      const int count = recorder->string_count();
      for (int i = 0; i < count; ++i) {
        if (i > 0) out.ch(',');
        out.json_string(recorder->string_raw(i),
                        FlightRecorder::kStringBytes);
      }
    } else {
      out.lit("\"\"");
    }
    out.lit("],\"events\":[");
    if (recorder != nullptr) {
      bool first = true;
      EventRecord record;
      for (int ring = 0; ring < recorder->ring_count(); ++ring) {
        for (int slot = 0; slot < recorder->ring_size(); ++slot) {
          if (!recorder->read_slot(ring, slot, &record)) continue;
          if (!first) out.ch(',');
          first = false;
          out.lit("{\"seq\":");
          out.u64(record.seq);
          out.lit(",\"t_ns\":");
          out.i64(record.t_ns);
          out.lit(",\"tid\":");
          out.u64(record.tid);
          out.lit(",\"cat\":");
          out.u64(record.category);
          out.lit(",\"code\":");
          out.u64(record.code);
          out.lit(",\"name\":");
          out.json_string(
              event_code_name(static_cast<EventCode>(record.code)));
          out.lit(",\"args\":[");
          for (int a = 0; a < 4; ++a) {
            if (a > 0) out.ch(',');
            out.i64(record.args[a]);
          }
          out.lit("]}");
        }
      }
    }
    out.lit("],\"spans\":[");
    {
      PendingSpanTable& table = PendingSpanTable::global();
      bool first = true;
      PendingSpanTable::Entry entry;
      for (int i = 0; i < table.slot_count(); ++i) {
        if (!table.read_slot(i, &entry)) continue;
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"name\":");
        out.json_string(entry.name, PendingSpanTable::kNameBytes);
        out.lit(",\"start_ns\":");
        out.i64(entry.start_ns);
        out.lit(",\"track\":");
        out.i64(entry.track);
        out.lit(",\"task\":");
        out.i64(entry.task_id);
        out.lit(",\"tid\":");
        out.u64(entry.tid);
        out.ch('}');
      }
    }
    out.lit("],\"metrics\":[");
    {
      Registry& registry = Registry::global();
      Registry::CrashMetricView view;
      bool first = true;
      const int count = registry.crash_metric_count();
      for (int i = 0; i < count; ++i) {
        if (!registry.crash_metric(i, &view)) continue;
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"name\":");
        out.json_string(view.name);
        out.lit(",\"labels\":");
        out.json_string(view.labels);
        out.lit(",\"kind\":");
        out.i64(view.kind);
        out.lit(",\"count\":");
        out.i64(view.count);
        out.lit(",\"value\":");
        out.dbl(view.value);
        out.ch('}');
      }
    }
    out.lit("]}\n");
    out.flush();
  }
  // pico-lint: allow(unchecked-status): best-effort close on the crash path
  ::close(fd);
}

extern "C" void postmortem_signal_handler(int signal_number) {
  // Dump exactly once; a second fatal signal (e.g. the abort() that follows
  // the terminate-path dump) falls straight through to the default action
  // restored by SA_RESETHAND.
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) {
    write_postmortem(signal_name(signal_number), signal_number);
  }
  // SA_RESETHAND restored the default disposition; re-deliver so the
  // process dies with the honest wait status (core / signal exit).
  // pico-lint: allow(unchecked-status): nothing to do if raise fails here
  ::raise(signal_number);
}

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void postmortem_terminate_handler() {
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) {
    write_postmortem("terminate", 0);
  }
  if (g_previous_terminate != nullptr &&
      g_previous_terminate != &postmortem_terminate_handler) {
    g_previous_terminate();
  }
  std::abort();
}

/// Resolve the target directory and open the pre-dump directory fd.  Safe
/// only in normal (non-handler) context; both entry points run it before
/// any dump can happen.
bool ensure_target() {
  if (g_dirfd.load(std::memory_order_acquire) >= 0) return true;
  const char* dir = std::getenv("PICO_POSTMORTEM_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  std::strncpy(g_dir, dir, sizeof(g_dir) - 1);
  g_dir[sizeof(g_dir) - 1] = '\0';
  const int dirfd = ::open(g_dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) return false;
  int expected = -1;
  if (!g_dirfd.compare_exchange_strong(expected, dirfd,
                                       std::memory_order_acq_rel)) {
    // pico-lint: allow(unchecked-status): lost the race; ours is redundant
    ::close(dirfd);
  }
  return true;
}

}  // namespace

void install_postmortem_handlers() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
  // Force every lock-free structure the handler reads into existence now —
  // a function-local static's init guard is not async-signal-safe — and
  // initialize the trace clock's epoch.
  FlightRecorder::global();
  PendingSpanTable::global();
  Registry::global();
  Tracer::now_ns();
  if (!ensure_target()) return;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &postmortem_signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: one shot — after the dump the default disposition takes
  // over, so the re-raise terminates and a crash *inside* the handler
  // cannot recurse.
  action.sa_flags = SA_RESETHAND;
  for (const int signal_number :
       {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    // pico-lint: allow(unchecked-status): best-effort arming; a signal we
    // cannot hook simply keeps its previous disposition
    ::sigaction(signal_number, &action, nullptr);
  }
  g_previous_terminate = std::set_terminate(&postmortem_terminate_handler);
}

const char* postmortem_path() {
  if (g_dirfd.load(std::memory_order_acquire) < 0) return "";
  char name[64];
  format_file_name(name, sizeof(name));
  std::size_t len = 0;
  for (; g_dir[len] != '\0' && len < sizeof(g_path) - 2; ++len) {
    g_path[len] = g_dir[len];
  }
  g_path[len++] = '/';
  for (std::size_t i = 0; name[i] != '\0' && len < sizeof(g_path) - 1; ++i) {
    g_path[len++] = name[i];
  }
  g_path[len] = '\0';
  return g_path;
}

bool write_postmortem_now(const char* reason) {
  FlightRecorder::global();  // handler-grade structures must exist
  PendingSpanTable::global();
  Registry::global();
  Tracer::now_ns();
  if (!ensure_target()) return false;
  record_event(EventCode::Postmortem, 0);
  write_postmortem(reason != nullptr ? reason : "manual", 0);
  // openat-based write leaves no easy error channel; verify existence.
  char name[64];
  format_file_name(name, sizeof(name));
  return ::faccessat(g_dirfd.load(std::memory_order_acquire), name, R_OK,
                     0) == 0;
}

// ---------------------------------------------------------------------------
// Parse-back (normal context: allocation allowed)
// ---------------------------------------------------------------------------

namespace {

/// Minimal JSON DOM — just enough for the machine-written postmortem format
/// (objects, arrays, strings, integer/real numbers, literals).
struct JsonValue {
  enum class Kind { Null, Bool, Int, Real, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool boolean = false;
  long long integer = 0;
  double real = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* find(const char* key) const {
    const auto it = fields.find(key);
    return it != fields.end() ? &it->second : nullptr;
  }
  long long as_int(long long fallback = 0) const {
    if (kind == Kind::Int) return integer;
    if (kind == Kind::Real) return static_cast<long long>(real);
    return fallback;
  }
  double as_real(double fallback = 0.0) const {
    if (kind == Kind::Real) return real;
    if (kind == Kind::Int) return static_cast<double>(integer);
    return fallback;
  }
};

class JsonParser {
 public:
  JsonParser(const char* data, std::size_t size)
      : cursor_(data), end_(data + size) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (cursor_ != end_) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    std::ostringstream os;
    os << "postmortem JSON: " << what << " at offset " << (cursor_ - begin_);
    throw Error(os.str());
  }

  void skip_space() {
    while (cursor_ != end_ &&
           (*cursor_ == ' ' || *cursor_ == '\n' || *cursor_ == '\t' ||
            *cursor_ == '\r')) {
      ++cursor_;
    }
  }

  char peek() {
    skip_space();
    if (cursor_ == end_) fail("unexpected end");
    return *cursor_;
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++cursor_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::Str;
      value.text = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') return parse_literal(c == 't');
    if (c == 'n') {
      consume_word("null");
      return JsonValue{};
    }
    return parse_number();
  }

  void consume_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (cursor_ == end_ || *cursor_ != *p) fail("bad literal");
      ++cursor_;
    }
  }

  JsonValue parse_literal(bool value) {
    consume_word(value ? "true" : "false");
    JsonValue out;
    out.kind = JsonValue::Kind::Bool;
    out.boolean = value;
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (cursor_ != end_ && *cursor_ != '"') {
      char c = *cursor_++;
      if (c == '\\') {
        if (cursor_ == end_) fail("bad escape");
        const char escape = *cursor_++;
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // Our writer never emits \u; tolerate by skipping 4 hex chars.
            for (int i = 0; i < 4 && cursor_ != end_; ++i) ++cursor_;
            c = '?';
            break;
          default: fail("bad escape");
        }
      }
      out.push_back(c);
    }
    if (cursor_ == end_) fail("unterminated string");
    ++cursor_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const char* start = cursor_;
    bool real = false;
    if (cursor_ != end_ && *cursor_ == '-') ++cursor_;
    while (cursor_ != end_ &&
           ((*cursor_ >= '0' && *cursor_ <= '9') || *cursor_ == '.' ||
            *cursor_ == 'e' || *cursor_ == 'E' || *cursor_ == '+' ||
            *cursor_ == '-')) {
      if (*cursor_ == '.' || *cursor_ == 'e' || *cursor_ == 'E') real = true;
      ++cursor_;
    }
    if (cursor_ == start) fail("bad number");
    const std::string text(start, static_cast<std::size_t>(cursor_ - start));
    JsonValue out;
    if (real) {
      out.kind = JsonValue::Kind::Real;
      out.real = std::strtod(text.c_str(), nullptr);
    } else {
      out.kind = JsonValue::Kind::Int;
      out.integer = std::strtoll(text.c_str(), nullptr, 10);
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out;
    out.kind = JsonValue::Kind::Arr;
    if (peek() == ']') {
      ++cursor_;
      return out;
    }
    for (;;) {
      out.items.push_back(parse_value());
      const char c = peek();
      ++cursor_;
      if (c == ']') return out;
      if (c != ',') fail("expected , or ]");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out;
    out.kind = JsonValue::Kind::Obj;
    if (peek() == '}') {
      ++cursor_;
      return out;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      out.fields.emplace(std::move(key), parse_value());
      const char c = peek();
      ++cursor_;
      if (c == '}') return out;
      if (c != ',') fail("expected , or }");
    }
  }

  const char* cursor_;
  const char* end_;
  const char* begin_ = cursor_;
};

}  // namespace

std::string Postmortem::thread_name(std::uint32_t tid) const {
  for (const PostmortemThread& thread : threads) {
    if (thread.tid == tid) return thread.name;
  }
  return "";
}

Postmortem load_postmortem(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) throw Error("cannot read postmortem file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text.data(), text.size());
  const JsonValue root = parser.parse();
  if (root.kind != JsonValue::Kind::Obj ||
      root.find("pico_postmortem") == nullptr) {
    throw Error("not a pico postmortem file: " + path);
  }
  Postmortem out;
  if (const JsonValue* pid = root.find("pid")) {
    out.pid = static_cast<int>(pid->as_int());
  }
  if (const JsonValue* reason = root.find("reason")) out.reason = reason->text;
  if (const JsonValue* sig = root.find("signal")) {
    out.signal_number = static_cast<int>(sig->as_int());
  }
  if (const JsonValue* threads = root.find("threads")) {
    for (const JsonValue& item : threads->items) {
      PostmortemThread thread;
      if (const JsonValue* tid = item.find("tid")) {
        thread.tid = static_cast<std::uint32_t>(tid->as_int());
      }
      if (const JsonValue* name = item.find("name")) thread.name = name->text;
      out.threads.push_back(std::move(thread));
    }
  }
  if (const JsonValue* strings = root.find("strings")) {
    for (const JsonValue& item : strings->items) {
      out.strings.push_back(item.text);
    }
  }
  if (const JsonValue* events = root.find("events")) {
    for (const JsonValue& item : events->items) {
      PostmortemEvent event;
      if (const JsonValue* v = item.find("seq")) {
        event.seq = static_cast<std::uint64_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("t_ns")) event.t_ns = v->as_int();
      if (const JsonValue* v = item.find("tid")) {
        event.tid = static_cast<std::uint32_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("cat")) {
        event.category = static_cast<std::uint16_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("code")) {
        event.code = static_cast<std::uint16_t>(v->as_int());
      }
      if (const JsonValue* v = item.find("name")) event.name = v->text;
      if (const JsonValue* v = item.find("args")) {
        for (std::size_t a = 0; a < 4 && a < v->items.size(); ++a) {
          event.args[a] = v->items[a].as_int();
        }
      }
      out.events.push_back(std::move(event));
    }
  }
  if (const JsonValue* spans = root.find("spans")) {
    for (const JsonValue& item : spans->items) {
      PostmortemSpan span;
      if (const JsonValue* v = item.find("name")) span.name = v->text;
      if (const JsonValue* v = item.find("start_ns")) {
        span.start_ns = v->as_int();
      }
      if (const JsonValue* v = item.find("track")) span.track = v->as_int();
      if (const JsonValue* v = item.find("task")) span.task_id = v->as_int();
      if (const JsonValue* v = item.find("tid")) {
        span.tid = static_cast<std::uint32_t>(v->as_int());
      }
      out.spans.push_back(std::move(span));
    }
  }
  if (const JsonValue* metrics = root.find("metrics")) {
    for (const JsonValue& item : metrics->items) {
      PostmortemMetric metric;
      if (const JsonValue* v = item.find("name")) metric.name = v->text;
      if (const JsonValue* v = item.find("labels")) metric.labels = v->text;
      if (const JsonValue* v = item.find("kind")) {
        metric.kind = static_cast<int>(v->as_int());
      }
      if (const JsonValue* v = item.find("count")) metric.count = v->as_int();
      if (const JsonValue* v = item.find("value")) {
        metric.value = v->as_real();
      }
      out.metrics.push_back(std::move(metric));
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const PostmortemEvent& a, const PostmortemEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace pico::obs
