// Postmortem DUMP path — async-signal-safe by construction, and by proof:
//
//   - pico_lint's signal-unsafe check walks the call graph from the
//     `pico-lint: signal-root` handlers below and fails CI if anything
//     reachable allocates, locks, throws or touches stdio;
//   - tools/check_postmortem_syms.sh (ctest postmortem_symbol_backstop)
//     independently rejects forbidden undefined symbols in THIS translation
//     unit's object file.
//
// That second gate is why this file must stay dump-only: the parse-back
// (load_postmortem and its JSON DOM, which legitimately use fstream and
// std::map) lives in postmortem_reader.cpp.  Do not add allocating code
// here — put it in the reader, or outside the handler closure.
#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pico::obs {

// ---------------------------------------------------------------------------
// Dump path (async-signal-safe)
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumped{false};
std::atomic<int> g_dirfd{-1};
char g_dir[256] = ".";
char g_path[320] = "";  // display path for the *current* process

/// Buffered raw writer: write(2) only, EINTR-retried, fixed stack buffer.
/// Every formatter below is a plain loop — no snprintf, no locale, no
/// allocation — keeping the whole dump path on the async-signal-safe list.
class RawWriter {
 public:
  explicit RawWriter(int fd) : fd_(fd) {}
  ~RawWriter() { flush(); }

  void ch(char c) {
    if (len_ == sizeof(buf_)) flush();
    buf_[len_++] = c;
  }

  void lit(const char* text) {
    for (const char* p = text; *p != '\0'; ++p) ch(*p);
  }

  /// JSON string with escaping, bounded by max_len (our tables are
  /// NUL-terminated fixed buffers, but belt and braces in a handler).
  void json_string(const char* text, int max_len = 1 << 16) {
    ch('"');
    for (int i = 0; text[i] != '\0' && i < max_len; ++i) {
      const char c = text[i];
      if (c == '"' || c == '\\') {
        ch('\\');
        ch(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        ch(' ');  // control chars cannot appear in our tables; neutralize
      } else {
        ch(c);
      }
    }
    ch('"');
  }

  void i64(long long value) {
    if (value < 0) {
      ch('-');
      // Negate digit by digit to survive LLONG_MIN.
      u64_digits(static_cast<unsigned long long>(-(value + 1)) + 1);
      return;
    }
    u64_digits(static_cast<unsigned long long>(value));
  }

  void u64(unsigned long long value) { u64_digits(value); }

  /// Fixed-point double: sign, integer part, 9 fractional digits.  Good
  /// enough for metric sums/gauges; NaN/inf degrade to 0.
  void dbl(double value) {
    if (!(value == value) || value > 1e18 || value < -1e18) {
      lit("0");
      return;
    }
    if (value < 0) {
      ch('-');
      value = -value;
    }
    const auto whole = static_cast<unsigned long long>(value);
    u64_digits(whole);
    ch('.');
    double frac = value - static_cast<double>(whole);
    for (int i = 0; i < 9; ++i) {
      frac *= 10.0;
      const int digit = static_cast<int>(frac);
      ch(static_cast<char>('0' + (digit < 0 ? 0 : digit > 9 ? 9 : digit)));
      frac -= digit;
    }
  }

  void flush() {
    int offset = 0;
    while (offset < len_) {
      const ssize_t n = ::write(fd_, buf_ + offset, static_cast<std::size_t>(len_ - offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // nothing a handler can do; keep the partial artifact
      }
      offset += static_cast<int>(n);
    }
    len_ = 0;
  }

 private:
  void u64_digits(unsigned long long value) {
    char digits[24];
    int count = 0;
    do {
      digits[count++] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    while (count > 0) ch(digits[--count]);
  }

  int fd_;
  char buf_[512];
  int len_ = 0;
};

/// Format "pico_postmortem_<pid>.json" for the *calling* process — pid is
/// read at dump time, so handlers inherited across fork() still write a
/// per-process artifact.
void format_file_name(char* out, int cap) {
  const char* prefix = "pico_postmortem_";
  int len = 0;
  for (const char* p = prefix; *p != '\0' && len < cap - 1; ++p) {
    out[len++] = *p;
  }
  long long pid = static_cast<long long>(::getpid());
  char digits[24];
  int count = 0;
  do {
    digits[count++] = static_cast<char>('0' + pid % 10);
    pid /= 10;
  } while (pid != 0);
  while (count > 0 && len < cap - 1) out[len++] = digits[--count];
  const char* suffix = ".json";
  for (const char* p = suffix; *p != '\0' && len < cap - 1; ++p) {
    out[len++] = *p;
  }
  out[len] = '\0';
}

const char* signal_name(int signal_number) {
  switch (signal_number) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

/// The dump itself.  Async-signal-safe: openat/write/close, seqlock ring
/// reads, published-pointer metric reads, loop-based formatting.  Events
/// are emitted per-ring, unsorted — sorting needs no signal safety, so the
/// readers do it.
void write_postmortem(const char* reason, int signal_number) {
  const int dirfd = g_dirfd.load(std::memory_order_acquire);
  if (dirfd < 0) return;
  char name[64];
  format_file_name(name, sizeof(name));
  const int fd = ::openat(dirfd, name, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  {
    RawWriter out(fd);
    out.lit("{\"pico_postmortem\":1,\"pid\":");
    out.i64(static_cast<long long>(::getpid()));
    out.lit(",\"reason\":");
    out.json_string(reason);
    out.lit(",\"signal\":");
    out.i64(signal_number);

    FlightRecorder* recorder = FlightRecorder::crash_instance();
    out.lit(",\"threads\":[");
    if (recorder != nullptr) {
      bool first = true;
      FlightRecorder::ThreadName names[FlightRecorder::kMaxThreadNames];
      const int count =
          recorder->thread_names_raw(names, FlightRecorder::kMaxThreadNames);
      for (int i = 0; i < count; ++i) {
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"tid\":");
        out.u64(names[i].tid);
        out.lit(",\"name\":");
        out.json_string(names[i].name, FlightRecorder::kNameBytes);
        out.ch('}');
      }
    }
    out.lit("],\"strings\":[");
    if (recorder != nullptr) {
      const int count = recorder->string_count();
      for (int i = 0; i < count; ++i) {
        if (i > 0) out.ch(',');
        out.json_string(recorder->string_raw(i),
                        FlightRecorder::kStringBytes);
      }
    } else {
      out.lit("\"\"");
    }
    out.lit("],\"events\":[");
    if (recorder != nullptr) {
      bool first = true;
      EventRecord record;
      for (int ring = 0; ring < recorder->ring_count(); ++ring) {
        for (int slot = 0; slot < recorder->ring_size(); ++slot) {
          if (!recorder->read_slot(ring, slot, &record)) continue;
          if (!first) out.ch(',');
          first = false;
          out.lit("{\"seq\":");
          out.u64(record.seq);
          out.lit(",\"t_ns\":");
          out.i64(record.t_ns);
          out.lit(",\"tid\":");
          out.u64(record.tid);
          out.lit(",\"cat\":");
          out.u64(record.category);
          out.lit(",\"code\":");
          out.u64(record.code);
          out.lit(",\"name\":");
          out.json_string(
              event_code_name(static_cast<EventCode>(record.code)));
          out.lit(",\"args\":[");
          for (int a = 0; a < 4; ++a) {
            if (a > 0) out.ch(',');
            out.i64(record.args[a]);
          }
          out.lit("]}");
        }
      }
    }
    out.lit("],\"spans\":[");
    // crash_instance(), not global(): a static's init guard (and the `new`
    // behind it) is not async-signal-safe.  install_postmortem_handlers()
    // forces both singletons into existence, so nullptr only means the
    // process crashed before installation finished.
    if (PendingSpanTable* table = PendingSpanTable::crash_instance()) {
      bool first = true;
      PendingSpanTable::Entry entry;
      for (int i = 0; i < table->slot_count(); ++i) {
        if (!table->read_slot(i, &entry)) continue;
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"name\":");
        out.json_string(entry.name, PendingSpanTable::kNameBytes);
        out.lit(",\"start_ns\":");
        out.i64(entry.start_ns);
        out.lit(",\"track\":");
        out.i64(entry.track);
        out.lit(",\"task\":");
        out.i64(entry.task_id);
        out.lit(",\"tid\":");
        out.u64(entry.tid);
        out.ch('}');
      }
    }
    out.lit("],\"metrics\":[");
    if (Registry* registry = Registry::crash_instance()) {
      Registry::CrashMetricView view;
      bool first = true;
      const int count = registry->crash_metric_count();
      for (int i = 0; i < count; ++i) {
        if (!registry->crash_metric(i, &view)) continue;
        if (!first) out.ch(',');
        first = false;
        out.lit("{\"name\":");
        out.json_string(view.name);
        out.lit(",\"labels\":");
        out.json_string(view.labels);
        out.lit(",\"kind\":");
        out.i64(view.kind);
        out.lit(",\"count\":");
        out.i64(view.count);
        out.lit(",\"value\":");
        out.dbl(view.value);
        out.ch('}');
      }
    }
    out.lit("]}\n");
    out.flush();
  }
  // pico-lint: allow(unchecked-status): best-effort close on the crash path
  ::close(fd);
}

// pico-lint: signal-root
extern "C" void postmortem_signal_handler(int signal_number) {
  // Dump exactly once; a second fatal signal (e.g. the abort() that follows
  // the terminate-path dump) falls straight through to the default action
  // restored by SA_RESETHAND.
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) {
    write_postmortem(signal_name(signal_number), signal_number);
  }
  // SA_RESETHAND restored the default disposition; re-deliver so the
  // process dies with the honest wait status (core / signal exit).
  // pico-lint: allow(unchecked-status): nothing to do if raise fails here
  ::raise(signal_number);
}

std::terminate_handler g_previous_terminate = nullptr;

// pico-lint: signal-root
[[noreturn]] void postmortem_terminate_handler() {
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) {
    write_postmortem("terminate", 0);
  }
  if (g_previous_terminate != nullptr &&
      g_previous_terminate != &postmortem_terminate_handler) {
    g_previous_terminate();
  }
  std::abort();
}

/// Resolve the target directory and open the pre-dump directory fd.  Safe
/// only in normal (non-handler) context; both entry points run it before
/// any dump can happen.
bool ensure_target() {
  if (g_dirfd.load(std::memory_order_acquire) >= 0) return true;
  const char* dir = std::getenv("PICO_POSTMORTEM_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  std::strncpy(g_dir, dir, sizeof(g_dir) - 1);
  g_dir[sizeof(g_dir) - 1] = '\0';
  const int dirfd = ::open(g_dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) return false;
  int expected = -1;
  if (!g_dirfd.compare_exchange_strong(expected, dirfd,
                                       std::memory_order_acq_rel)) {
    // pico-lint: allow(unchecked-status): lost the race; ours is redundant
    ::close(dirfd);
  }
  return true;
}

}  // namespace

void install_postmortem_handlers() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
  // Force every lock-free structure the handler reads into existence now —
  // a function-local static's init guard is not async-signal-safe — and
  // initialize the trace clock's epoch.
  FlightRecorder::global();
  PendingSpanTable::global();
  Registry::global();
  Tracer::now_ns();
  if (!ensure_target()) return;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &postmortem_signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: one shot — after the dump the default disposition takes
  // over, so the re-raise terminates and a crash *inside* the handler
  // cannot recurse.
  action.sa_flags = SA_RESETHAND;
  for (const int signal_number :
       {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    // pico-lint: allow(unchecked-status): best-effort arming; a signal we
    // cannot hook simply keeps its previous disposition
    ::sigaction(signal_number, &action, nullptr);
  }
  g_previous_terminate = std::set_terminate(&postmortem_terminate_handler);
}

const char* postmortem_path() {
  if (g_dirfd.load(std::memory_order_acquire) < 0) return "";
  char name[64];
  format_file_name(name, sizeof(name));
  std::size_t len = 0;
  for (; g_dir[len] != '\0' && len < sizeof(g_path) - 2; ++len) {
    g_path[len] = g_dir[len];
  }
  g_path[len++] = '/';
  for (std::size_t i = 0; name[i] != '\0' && len < sizeof(g_path) - 1; ++i) {
    g_path[len++] = name[i];
  }
  g_path[len] = '\0';
  return g_path;
}

bool write_postmortem_now(const char* reason) {
  FlightRecorder::global();  // handler-grade structures must exist
  PendingSpanTable::global();
  Registry::global();
  Tracer::now_ns();
  if (!ensure_target()) return false;
  record_event(EventCode::Postmortem, 0);
  write_postmortem(reason != nullptr ? reason : "manual", 0);
  // openat-based write leaves no easy error channel; verify existence.
  char name[64];
  format_file_name(name, sizeof(name));
  return ::faccessat(g_dirfd.load(std::memory_order_acquire), name, R_OK,
                     0) == 0;
}


}  // namespace pico::obs
