#include "obs/remote.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace pico::obs {

void SpanBuffer::flush_to_tracer() {
  std::vector<SpanRecord> spans = drain();
  Tracer& tracer = Tracer::global();
  for (SpanRecord& span : spans) tracer.record(std::move(span));
}

// ---------------------------------------------------------------------------
// Span wire codec (TraceDump payload)
// ---------------------------------------------------------------------------

namespace {

// v1 lacks the per-span sequence number; v2 adds it.  The encoder always
// emits v2, the decoder accepts both (v1 spans land with seq = -1) so a
// new coordinator still reads an old worker's buffer.
constexpr std::uint32_t kSpanMagicV1 = 0x50535031;  // "PSP1"
constexpr std::uint32_t kSpanMagicV2 = 0x50535032;  // "PSP2" (adds seq)

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  const auto offset = out.size();
  out.resize(offset + text.size());
  if (!text.empty()) std::memcpy(out.data() + offset, text.data(), text.size());
}

template <typename T>
T take(const std::uint8_t*& cursor, const std::uint8_t* end) {
  if (cursor + sizeof(T) > end) {
    throw TransportError("span buffer truncated");
  }
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

std::string take_string(const std::uint8_t*& cursor, const std::uint8_t* end) {
  const auto size = take<std::uint32_t>(cursor, end);
  if (cursor + size > end) throw TransportError("span buffer truncated");
  std::string text(reinterpret_cast<const char*>(cursor), size);
  cursor += size;
  return text;
}

}  // namespace

std::vector<std::uint8_t> encode_spans(const std::vector<SpanRecord>& spans) {
  std::vector<std::uint8_t> out;
  put<std::uint32_t>(out, kSpanMagicV2);
  put<std::uint64_t>(out, spans.size());
  for (const SpanRecord& span : spans) {
    put_string(out, span.name);
    put_string(out, span.category);
    put<std::int64_t>(out, span.track);
    put<std::int64_t>(out, span.start_ns);
    put<std::int64_t>(out, span.duration_ns);
    put<std::int64_t>(out, span.task_id);
    put<std::int64_t>(out, span.seq);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(span.args.size()));
    for (const auto& [key, value] : span.args) {
      put_string(out, key);
      put_string(out, value);
    }
  }
  return out;
}

std::vector<SpanRecord> decode_spans(const std::uint8_t* data,
                                     std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto magic = take<std::uint32_t>(cursor, end);
  if (magic != kSpanMagicV1 && magic != kSpanMagicV2) {
    throw TransportError("bad span buffer magic");
  }
  const bool has_seq = magic == kSpanMagicV2;
  const auto count = take<std::uint64_t>(cursor, end);
  // Each span costs at least the fixed fields; cheap sanity bound so a
  // corrupt count cannot drive a huge allocation.
  if (count > size) throw TransportError("span buffer count implausible");
  std::vector<SpanRecord> spans;
  spans.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    SpanRecord span;
    span.name = take_string(cursor, end);
    span.category = take_string(cursor, end);
    span.track = take<std::int64_t>(cursor, end);
    span.start_ns = take<std::int64_t>(cursor, end);
    span.duration_ns = take<std::int64_t>(cursor, end);
    span.task_id = take<std::int64_t>(cursor, end);
    if (has_seq) span.seq = take<std::int64_t>(cursor, end);
    const auto args = take<std::uint32_t>(cursor, end);
    // Decoded count: each arg costs at least two length-prefixed strings
    // (8 bytes), so bound it by the bytes actually left in the buffer.
    if (args > static_cast<std::size_t>(end - cursor) / 8) {
      throw TransportError("span arg count implausible");
    }
    span.args.reserve(args);
    for (std::uint32_t a = 0; a < args; ++a) {
      std::string key = take_string(cursor, end);
      std::string value = take_string(cursor, end);
      span.args.emplace_back(std::move(key), std::move(value));
    }
    spans.push_back(std::move(span));
  }
  if (cursor != end) throw TransportError("span buffer trailing bytes");
  return spans;
}

// ---------------------------------------------------------------------------
// Harvest
// ---------------------------------------------------------------------------

WorkerTelemetry harvest_worker(const HarvestEndpoint& endpoint,
                               int clock_pings) {
  WorkerTelemetry out;
  out.device = endpoint.device;
  out.next_cursor = endpoint.trace_cursor;
  out.next_event_cursor = endpoint.event_cursor;
  out.rounds = 1;
  ClockOffsetEstimator local_clock;
  ClockOffsetEstimator* clock =
      endpoint.clock != nullptr ? endpoint.clock : &local_clock;
  try {
    if (endpoint.ping) {
      for (int i = 0; i < clock_pings; ++i) clock->update(endpoint.ping());
    }
    // Trace before metrics: when the worker dies mid-round, spans already
    // on this side of the wire are kept (rebased below, after the catch)
    // rather than lost to the exception.
    if (endpoint.fetch_trace_chunk) {
      TraceChunk chunk = endpoint.fetch_trace_chunk(endpoint.trace_cursor);
      out.spans = std::move(chunk.spans);
      out.next_cursor = chunk.next;
    } else if (endpoint.fetch_trace) {
      out.spans = endpoint.fetch_trace();
    }
    // Black box right after the trace, same rationale: the last EventDump
    // to succeed before a death is exactly the retained flight recording.
    if (endpoint.fetch_event_chunk) {
      EventChunk chunk = endpoint.fetch_event_chunk(endpoint.event_cursor);
      out.events = std::move(chunk.events);
      out.next_event_cursor = chunk.next;
    }
    if (endpoint.fetch_metrics) out.metrics_text = endpoint.fetch_metrics();
    out.reachable = true;
  } catch (const Error&) {
    // Worker gone mid-harvest: report what we have, flagged unreachable.
    out.reachable = false;
  }
  // At-least-once delivery: a chunk may re-send spans the coordinator
  // already merged (reply lost after the worker buffered past the cursor).
  // Anything below the request cursor is a duplicate by definition.
  if (endpoint.trace_cursor > 0) {
    std::vector<SpanRecord> fresh;
    fresh.reserve(out.spans.size());
    for (SpanRecord& span : out.spans) {
      if (span.seq >= 0 &&
          static_cast<std::uint64_t>(span.seq) < endpoint.trace_cursor) {
        continue;
      }
      fresh.push_back(std::move(span));
    }
    out.spans.swap(fresh);
  }
  // The EventDump chunk never re-delivers below the request cursor (the
  // worker filters by seq), but a gap is possible: drop defensively anyway.
  if (endpoint.event_cursor > 0 && !out.events.empty()) {
    std::vector<EventRecord> fresh;
    fresh.reserve(out.events.size());
    for (EventRecord& event : out.events) {
      if (event.seq <= endpoint.event_cursor) continue;
      fresh.push_back(event);
    }
    out.events.swap(fresh);
  }
  out.offset_ns = clock->valid() ? clock->offset_ns() : 0;
  out.rtt_ns = clock->rtt_ns();
  out.error_bound_ns = clock->error_bound_ns();
  out.clock_samples = clock->accepted();
  for (SpanRecord& span : out.spans) {
    span.start_ns -= out.offset_ns;  // durations need no correction
  }
  for (EventRecord& event : out.events) {
    event.t_ns -= out.offset_ns;  // same rebase as spans
  }
  return out;
}

// ---------------------------------------------------------------------------
// ClusterTelemetry
// ---------------------------------------------------------------------------

namespace {

/// Continuous harvest folds many rounds per device into one entry: spans
/// accumulate (the cursor protocol already deduplicated them), everything
/// scalar — clock estimate, reachability, the worker's *cumulative* metrics
/// text, the next cursor — refreshes to the latest round's view.
void merge_into(WorkerTelemetry& into, WorkerTelemetry&& round) {
  into.reachable = round.reachable;
  into.offset_ns = round.offset_ns;
  into.rtt_ns = round.rtt_ns;
  into.error_bound_ns = round.error_bound_ns;
  into.clock_samples = round.clock_samples;
  if (!round.metrics_text.empty()) {
    into.metrics_text = std::move(round.metrics_text);
  }
  into.spans.insert(into.spans.end(),
                    std::make_move_iterator(round.spans.begin()),
                    std::make_move_iterator(round.spans.end()));
  into.next_cursor = std::max(into.next_cursor, round.next_cursor);
  into.events.insert(into.events.end(),
                     std::make_move_iterator(round.events.begin()),
                     std::make_move_iterator(round.events.end()));
  into.next_event_cursor =
      std::max(into.next_event_cursor, round.next_event_cursor);
  into.rounds += round.rounds;
}

}  // namespace

void ClusterTelemetry::add(WorkerTelemetry telemetry) {
  MutexLock lock(mutex_);
  for (WorkerTelemetry& existing : workers_) {
    if (existing.device == telemetry.device) {
      merge_into(existing, std::move(telemetry));
      return;
    }
  }
  workers_.push_back(std::move(telemetry));
}

void ClusterTelemetry::merge_from(ClusterTelemetry&& other) {
  std::vector<WorkerTelemetry> theirs;
  {
    MutexLock lock(other.mutex_);
    theirs.swap(other.workers_);
  }
  for (WorkerTelemetry& w : theirs) add(std::move(w));
}

std::vector<WorkerTelemetry> ClusterTelemetry::workers() const {
  MutexLock lock(mutex_);
  return workers_;
}

std::vector<SpanRecord> ClusterTelemetry::worker_spans() const {
  MutexLock lock(mutex_);
  std::vector<SpanRecord> out;
  for (const WorkerTelemetry& worker : workers_) {
    out.insert(out.end(), worker.spans.begin(), worker.spans.end());
  }
  return out;
}

std::string ClusterTelemetry::merged_prometheus(
    const std::string& local_text) const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  os << "# ---- coordinator ----\n" << local_text;
  for (const WorkerTelemetry& worker : workers_) {
    os << "# ---- worker device=" << worker.device
       << " reachable=" << (worker.reachable ? 1 : 0)
       << " clock_offset_ns=" << worker.offset_ns
       << " clock_rtt_ns=" << worker.rtt_ns
       << " clock_samples=" << worker.clock_samples << " ----\n"
       << worker.metrics_text;
    if (!worker.metrics_text.empty() && worker.metrics_text.back() != '\n') {
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace pico::obs
