// Runtime metrics: lock-free counters, gauges and log-bucketed latency
// histograms, collected in a process-wide registry.
//
// The hot path (Counter::add, Gauge::set, Histogram::observe) is a handful
// of relaxed atomic operations — safe to leave always-on in the threaded
// runtime (ROADMAP: TSan-clean, no bare shared state).  Registration and the
// Prometheus-style text dump take the registry mutex; callers on hot paths
// cache the returned metric pointers, which stay valid for the registry's
// lifetime (reset_values() zeroes metrics in place instead of destroying
// them).
//
// Naming follows the Prometheus convention: `pico_<subsystem>_<unit>` with
// `{key="value"}` labels, e.g. pico_stage_compute_seconds{stage="2",
// device="5"}.  Histograms are dumped summary-style (quantiles + _count +
// _sum) rather than as 300-odd cumulative buckets.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"

namespace pico::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (λ̂ snapshots, queue depths, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram;

/// Plain-value copy of a histogram's state at one instant.  Two snapshots
/// of the same histogram subtract (`delta`) into the distribution of just
/// the observations made between them — the primitive behind the rolling
/// windows the continuous harvester maintains (obs/window.hpp): cumulative
/// histograms answer "since start", deltas answer "recently".
struct HistogramSnapshot {
  std::vector<std::int64_t> buckets;  ///< Histogram::kBucketCount entries
  std::int64_t count = 0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate over the bucketed counts, q in [0, 1]; 0 when empty.
  /// Interpolates inside the landing bucket like Histogram::percentile (the
  /// exact max is not carried in a snapshot, so the top bucket uses its
  /// lower edge).
  double percentile(double q) const;
  /// Distribution of the observations made after `earlier` was taken.
  /// Counts are clamped at zero so a reset between snapshots degrades to an
  /// empty window instead of negative counts.
  HistogramSnapshot delta(const HistogramSnapshot& earlier) const;
  /// Fold another snapshot's counts into this one (window accumulation).
  void merge(const HistogramSnapshot& other);
};

/// Lock-free histogram over non-negative values with geometrically spaced
/// buckets: kBucketsPerOctave buckets per power of two, spanning
/// [kMinValue, kMinValue * 2^kOctaves) — 1 ns to ~73 minutes when observing
/// seconds.  Quantile estimates interpolate inside the landing bucket, so
/// the relative error is bounded by the bucket width (2^(1/8) − 1 ≈ 9%).
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kOctaves = 42;
  static constexpr double kMinValue = 1e-9;
  /// Bucket 0 catches v <= kMinValue (incl. zero); the last bucket catches
  /// overflow.
  static constexpr int kBucketCount = kOctaves * kBucketsPerOctave + 2;

  void observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  /// Quantile estimate, q in [0, 1]; 0 when empty.
  double percentile(double q) const;

  /// Consistent-enough copy of the current state (each field is read with a
  /// relaxed load; concurrent observes may straddle the reads, which a
  /// windowed consumer tolerates by construction).
  HistogramSnapshot snapshot() const;

  void reset();

  /// Bucket index a value lands in, and the half-open [lower, upper) value
  /// range of a bucket (exposed for tests).
  static int bucket_index(double value);
  static double bucket_lower(int index);
  static double bucket_upper(int index);

 private:
  std::atomic<std::int64_t> buckets_[kBucketCount] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // ±inf sentinels make the CAS min/max loops correct without a racy
  // first-observation special case.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct Label {
  std::string key;
  std::string value;
};

/// Process-wide metric registry.  get-or-create accessors return references
/// that stay valid for the registry's lifetime; a name+labels key is pinned
/// to one metric kind (mixing kinds throws InvariantError).
class Registry {
 public:
  static Registry& global();

  /// The instance pointer if global() has run, else nullptr.  The crash
  /// handler reads this instead of calling global(): a function-local
  /// static's init guard (and the `new` behind it) is not
  /// async-signal-safe.
  static Registry* crash_instance();

  Counter& counter(const std::string& name, const std::vector<Label>& labels = {});
  Gauge& gauge(const std::string& name, const std::vector<Label>& labels = {});
  Histogram& histogram(const std::string& name,
                       const std::vector<Label>& labels = {});

  /// Prometheus-ish text exposition (histograms summary-style).
  void write_prometheus(std::ostream& os) const;
  std::string prometheus_text() const;

  /// Zero every registered metric in place.  Pointers handed out earlier
  /// remain valid — this is how tools isolate consecutive runs.
  void reset_values();

  // -- crash-path view --------------------------------------------------
  // The postmortem dump (obs/postmortem.cpp) must read the registry from a
  // signal handler: no locks (the crashing thread may hold mutex_), no
  // allocation.  Registration therefore also publishes each slot into a
  // fixed append-only pointer array — release-stored *after* the slot's
  // kind is final, so a published Slot is immutable apart from its metric
  // values (relaxed atomics, safe to read at any instant).

  /// Upper bound on crash-visible metric series; later registrations still
  /// work, they are just absent from postmortems.
  static constexpr int kCrashSlotCap = 512;

  struct CrashMetricView {
    const char* name = "";    ///< process-lifetime storage
    const char* labels = "";  ///< rendered `{k="v",...}` or ""
    int kind = 0;             ///< 0 counter, 1 gauge, 2 histogram
    std::int64_t count = 0;   ///< counter value / histogram count
    double value = 0.0;       ///< gauge value / histogram sum
  };

  /// Published series so far (async-signal-safe).
  int crash_metric_count() const {
    return crash_count_.load(std::memory_order_acquire);
  }
  /// Read one published series (async-signal-safe); false out of range.
  bool crash_metric(int index, CrashMetricView* out) const;

 private:
  struct Slot {
    std::string name;
    std::string labels_text;  ///< rendered `{k="v",...}` or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(const std::string& name, const std::vector<Label>& labels)
      PICO_REQUIRES(mutex_);
  void publish_crash_slot(const Slot& slot) PICO_REQUIRES(mutex_);

  mutable Mutex mutex_;
  // Keyed by name + rendered labels; std::map keeps the dump sorted so all
  // series of one metric family are adjacent.
  std::map<std::string, std::unique_ptr<Slot>> slots_ PICO_GUARDED_BY(mutex_);
  // Crash-path view: written under mutex_ (registration), read lock-free.
  std::atomic<int> crash_count_{0};
  std::atomic<const Slot*> crash_slots_[kCrashSlotCap] = {};
};

}  // namespace pico::obs
