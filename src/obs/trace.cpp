#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"

namespace pico::obs {

Tracer& Tracer::global() {
  static Tracer* instance = [] {
    auto* tracer = new Tracer();  // never destroyed: worker threads may
    const char* env = std::getenv("PICO_TRACE");  // outlive static teardown
    if (env != nullptr && env[0] != '\0') tracer->set_enabled(true);
    return tracer;
  }();
  return *instance;
}

std::int64_t Tracer::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per thread, registered with (and kept alive by) the tracer so
  // snapshot() still sees spans from threads that have exited.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto created = std::make_shared<ThreadBuffer>();
    MutexLock lock(mutex_);
    buffers_.push_back(created);
    return created;
  }();
  return *buffer;
}

void Tracer::record(SpanRecord span) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  MutexLock lock(buffer.mutex);  // uncontended except during snapshot()
  if (buffer.spans.size() >= kMaxSpansPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.spans.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> merged;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mutex);
    merged.insert(merged.end(), buffer->spans.begin(), buffer->spans.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return merged;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mutex);
    buffer->spans.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

Span::Span(const char* name, const char* category, std::int64_t track,
           std::int64_t task_id)
    : active_(Tracer::global().enabled()),
      name_(name),
      category_(category),
      track_(track),
      task_id_(task_id) {
  if (!active_) return;
  start_ns_ = Tracer::now_ns();
  // Publish the open span so a crash postmortem can dump what was
  // in flight.  Claim failure (table full) just leaves it untracked.
  PendingSpanTable::Entry entry;
  std::strncpy(entry.name, name_, sizeof(entry.name) - 1);
  entry.start_ns = start_ns_;
  entry.track = track_;
  entry.task_id = task_id_;
  entry.tid = FlightRecorder::global().current_tid();
  pending_slot_ = PendingSpanTable::global().claim(entry);
}

Span::~Span() {
  if (!active_) return;
  if (pending_slot_ >= 0) PendingSpanTable::global().release(pending_slot_);
  SpanRecord record;
  record.name = name_;
  record.category = category_;
  record.track = track_;
  record.task_id = task_id_;
  record.start_ns = start_ns_;
  record.duration_ns = Tracer::now_ns() - start_ns_;
  record.args = std::move(args_);
  Tracer::global().record(std::move(record));
}

void Span::arg(std::string key, std::string value) {
  if (!active_) return;
  args_.emplace_back(std::move(key), std::move(value));
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

namespace {

void write_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void write_chrome_trace(
    std::ostream& os, const std::vector<SpanRecord>& spans,
    const std::map<std::int64_t, std::string>& track_names) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  }
  const auto previous_precision = os.precision(15);
  for (const SpanRecord& span : spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << span.track << ",\"name\":";
    write_json_string(os, span.name);
    os << ",\"cat\":";
    write_json_string(os, span.category);
    os << ",\"ts\":" << to_us(span.start_ns)
       << ",\"dur\":" << to_us(span.duration_ns);
    if (span.task_id >= 0 || !span.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (span.task_id >= 0) {
        os << "\"task\":" << span.task_id;
        first_arg = false;
      }
      for (const auto& [key, value] : span.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        write_json_string(os, key);
        os << ':';
        write_json_string(os, value);
      }
      os << '}';
    }
    os << '}';
  }
  os.precision(previous_precision);
  os << "]}\n";
}

void write_chrome_trace_file(
    const std::string& path, const std::vector<SpanRecord>& spans,
    const std::map<std::int64_t, std::string>& track_names) {
  std::ofstream file(path, std::ios::trunc);
  PICO_CHECK_MSG(file.good(), "cannot open for writing: " << path);
  write_chrome_trace(file, spans, track_names);
  PICO_CHECK_MSG(file.good(), "write failed: " << path);
}

}  // namespace pico::obs
