#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pico::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

int Histogram::bucket_index(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  const double position = std::log2(value / kMinValue) * kBucketsPerOctave;
  // Compare before casting: value / kMinValue can overflow to inf, and
  // casting an out-of-range double to int is UB.
  if (position >= kBucketCount - 2) return kBucketCount - 1;
  return 1 + static_cast<int>(position);
}

double Histogram::bucket_lower(int index) {
  if (index <= 0) return 0.0;
  return kMinValue *
         std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

double Histogram::bucket_upper(int index) {
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return bucket_lower(index + 1);
}

double Histogram::percentile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  double cumulative = 0.0;
  for (int i = 0; i < kBucketCount; ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const double fraction = (rank - cumulative) / in_bucket;
      const double lower = bucket_lower(i);
      const double upper = i >= kBucketCount - 1
                               ? max_.load(std::memory_order_relaxed)
                               : bucket_upper(i);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    out.buckets[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

double HistogramSnapshot::percentile(double q) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  double cumulative = 0.0;
  double last_nonempty_lower = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket <= 0.0) continue;
    const int index = static_cast<int>(i);
    last_nonempty_lower = Histogram::bucket_lower(index);
    if (cumulative + in_bucket >= rank) {
      const double fraction = (rank - cumulative) / in_bucket;
      const double lower = Histogram::bucket_lower(index);
      // A snapshot has no exact max; the overflow bucket answers with its
      // lower edge instead of interpolating toward infinity.
      const double upper = index >= Histogram::kBucketCount - 1
                               ? lower
                               : Histogram::bucket_upper(index);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return last_nonempty_lower;
}

HistogramSnapshot HistogramSnapshot::delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::int64_t before =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    out.buckets[i] = std::max<std::int64_t>(0, buckets[i] - before);
    out.count += out.buckets[i];
  }
  out.sum = std::max(0.0, sum - earlier.sum);
  if (out.count == 0) out.sum = 0.0;
  return out;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

std::string render_labels(const std::vector<Label>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += "=\"";
    out += labels[i].value;
    out += '"';
  }
  out += '}';
  return out;
}

// Published by global() for the crash handler (see crash_instance()).
std::atomic<Registry*> g_crash_registry{nullptr};

}  // namespace

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* registry = new Registry();  // never destroyed: metric
    // pointers must outlive static-teardown users
    g_crash_registry.store(registry, std::memory_order_release);
    return registry;
  }();
  return *instance;
}

Registry* Registry::crash_instance() {
  return g_crash_registry.load(std::memory_order_acquire);
}

Registry::Slot& Registry::slot(const std::string& name,
                               const std::vector<Label>& labels) {
  const std::string labels_text = render_labels(labels);
  auto [it, inserted] = slots_.try_emplace(name + labels_text);
  if (inserted) {
    it->second = std::make_unique<Slot>();
    it->second->name = name;
    it->second->labels_text = labels_text;
  }
  return *it->second;
}

void Registry::publish_crash_slot(const Slot& slot) {
  // Called under mutex_ right after the slot's kind pointer is set: from
  // here on the Slot is immutable apart from its metric values (relaxed
  // atomics), so the lock-free crash reader sees a consistent series.
  const int index = crash_count_.load(std::memory_order_relaxed);
  if (index >= kCrashSlotCap) return;
  crash_slots_[index].store(&slot, std::memory_order_release);
  crash_count_.store(index + 1, std::memory_order_release);
}

bool Registry::crash_metric(int index, CrashMetricView* out) const {
  if (index < 0 || index >= crash_count_.load(std::memory_order_acquire)) {
    return false;
  }
  const Slot* slot = crash_slots_[index].load(std::memory_order_acquire);
  if (slot == nullptr) return false;
  out->name = slot->name.c_str();
  out->labels = slot->labels_text.c_str();
  if (slot->counter) {
    out->kind = 0;
    out->count = slot->counter->value();
    out->value = 0.0;
  } else if (slot->gauge) {
    out->kind = 1;
    out->count = 0;
    out->value = slot->gauge->value();
  } else if (slot->histogram) {
    out->kind = 2;
    out->count = slot->histogram->count();
    out->value = slot->histogram->sum();
  } else {
    return false;
  }
  return true;
}

Counter& Registry::counter(const std::string& name,
                           const std::vector<Label>& labels) {
  MutexLock lock(mutex_);
  Slot& s = slot(name, labels);
  PICO_CHECK_MSG(!s.gauge && !s.histogram,
                 "metric " << name << " already registered with another kind");
  if (!s.counter) {
    s.counter = std::make_unique<Counter>();
    publish_crash_slot(s);
  }
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name,
                       const std::vector<Label>& labels) {
  MutexLock lock(mutex_);
  Slot& s = slot(name, labels);
  PICO_CHECK_MSG(!s.counter && !s.histogram,
                 "metric " << name << " already registered with another kind");
  if (!s.gauge) {
    s.gauge = std::make_unique<Gauge>();
    publish_crash_slot(s);
  }
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<Label>& labels) {
  MutexLock lock(mutex_);
  Slot& s = slot(name, labels);
  PICO_CHECK_MSG(!s.counter && !s.gauge,
                 "metric " << name << " already registered with another kind");
  if (!s.histogram) {
    s.histogram = std::make_unique<Histogram>();
    publish_crash_slot(s);
  }
  return *s.histogram;
}

void Registry::write_prometheus(std::ostream& os) const {
  MutexLock lock(mutex_);
  std::string last_name;
  for (const auto& [key, slot] : slots_) {
    if (slot->name != last_name) {
      const char* type = slot->counter ? "counter"
                        : slot->gauge  ? "gauge"
                                       : "summary";
      os << "# TYPE " << slot->name << ' ' << type << '\n';
      last_name = slot->name;
    }
    if (slot->counter) {
      os << slot->name << slot->labels_text << ' ' << slot->counter->value()
         << '\n';
    } else if (slot->gauge) {
      os << slot->name << slot->labels_text << ' ' << slot->gauge->value()
         << '\n';
    } else if (slot->histogram) {
      const Histogram& h = *slot->histogram;
      // Summary exposition: {quantile="..."} series share the label set.
      for (const double q : {0.5, 0.95, 0.99}) {
        std::string labels = slot->labels_text;
        std::ostringstream quantile;
        quantile << "quantile=\"" << q << '"';
        if (labels.empty()) {
          labels = "{" + quantile.str() + "}";
        } else {
          labels.insert(labels.size() - 1, "," + quantile.str());
        }
        os << slot->name << labels << ' ' << h.percentile(q) << '\n';
      }
      os << slot->name << "_count" << slot->labels_text << ' ' << h.count()
         << '\n';
      os << slot->name << "_sum" << slot->labels_text << ' ' << h.sum()
         << '\n';
    }
  }
}

std::string Registry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void Registry::reset_values() {
  MutexLock lock(mutex_);
  for (auto& [key, slot] : slots_) {
    if (slot->counter) slot->counter->reset();
    if (slot->gauge) slot->gauge->reset();
    if (slot->histogram) slot->histogram->reset();
  }
}

}  // namespace pico::obs
