// Cluster health model fed by the continuous harvester: structured events,
// per-device straggler detection and online validation of the paper's
// latency model (Eq. 5–11, Thm. 2) against live measurements.
//
// Straggler detection exploits a property of the partitioner: within one
// stage every device is sized so its per-task compute *time* is equal
// (slices are proportional to measured speed), so a device whose windowed
// compute time pulls away from its stage peers has drifted.  The score is a
// robust z (median/MAD, z = 0.6745·(x−med)/MAD) for stages with enough
// peers; tiny stages (2–3 devices, where MAD degenerates) fall back to a
// ratio-to-best-peer test.
//
// The model checker compares the plan's predicted per-stage compute/comm
// (Eq. 6/8) and the Thm. 2 M/D/1 waiting time — driven by the live λ̂ EWMA —
// against windowed measurements, tracking a smoothed relative residual per
// signal and raising a ModelDrift event after `consecutive_rounds` breaches
// (re-armed when the residual falls back under the threshold).
//
// Everything here is plain, lock-free policy code; the Harvester serializes
// calls and owns the synchronization.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace pico::obs {

enum class HealthEventKind {
  Straggler,
  Recovered,
  ModelDrift,
  Unreachable,  ///< one failed harvest round trip (may be transient)
  DeviceDown,   ///< declared dead: heartbeat_missed_rounds consecutive
                ///< misses, or a data-plane transport failure
};

const char* health_event_kind_name(HealthEventKind kind);

/// One structured health transition, as surfaced through HealthSnapshot
/// (and, later, consumed by churn-driven replanning).
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::Straggler;
  int device = -1;      ///< -1 = not device-scoped (ModelDrift)
  int stage = -1;       ///< -1 = cluster-wide signal
  std::string signal;   ///< ModelDrift: "compute" | "comm" | "md1_wait"
  double value = 0.0;      ///< measured score / residual
  double threshold = 0.0;  ///< the limit it crossed
  std::int64_t round = 0;  ///< harvest round that raised it
  std::string detail;
  /// DeviceDown only: the device's last harvested flight recording (its
  /// black box) — timestamps already rebased onto the coordinator clock.
  /// Empty for every other kind, and when no EventDump ever succeeded.
  std::vector<EventRecord> blackbox;
};

// ---------------------------------------------------------------------------
// Straggler detection
// ---------------------------------------------------------------------------

struct StragglerOptions {
  /// Robust-z threshold (0.6745·(x−median)/MAD); 3.5 is the classic
  /// Iglewicz–Hoaglin outlier cut.
  double zscore_threshold = 3.5;
  /// Small-stage fallback: straggler when windowed mean compute exceeds
  /// ratio_threshold × the best peer's mean.
  double ratio_threshold = 2.0;
  /// Use the z-score only with at least this many devices in the stage
  /// (below, median/MAD over 2–3 points cannot separate the outlier).
  int min_devices_for_zscore = 4;
  /// Ignore devices whose window holds fewer observations than this.
  std::int64_t min_window_count = 3;
};

struct StragglerVerdict {
  int device = -1;
  double mean_seconds = 0.0;  ///< windowed per-task compute mean
  double score = 0.0;         ///< robust z, or peer ratio in fallback mode
  bool straggler = false;
};

/// Judge the devices of one stage by their windowed per-task compute means.
/// Pure function: no state, no events — transition tracking is the
/// caller's (Harvester's) job.
std::vector<StragglerVerdict> detect_stragglers(
    const std::map<int, double>& device_mean_seconds,
    const StragglerOptions& options);

// ---------------------------------------------------------------------------
// Online model checking (Eq. 5–11 + Thm. 2)
// ---------------------------------------------------------------------------

/// Predicted per-stage costs, plain-struct mirror of partition::StageCost
/// (obs cannot link the partition layer; callers compute plan_cost() and
/// inject the numbers).
struct StagePrediction {
  double compute_seconds = 0.0;  ///< Eq. 6
  double comm_seconds = 0.0;     ///< Eq. 8
};

struct ModelPrediction {
  std::vector<StagePrediction> stages;
  double period_seconds = 0.0;   ///< Eq. 10 (pipeline bottleneck period)
  double latency_seconds = 0.0;  ///< Eq. 11
  bool valid = false;
};

/// Thm. 2 M/D/1 mean waiting time Wq = λp² / (2(1−λp)); +inf when the
/// queue is unstable (λp ≥ 1), 0 for degenerate inputs.  Mirror of
/// sim::md1_waiting_time — obs cannot link the simulator.
double md1_waiting_seconds(double lambda, double period_seconds);

/// One predicted-vs-measured comparison the checker tracked this round.
struct StageResidual {
  int stage = -1;              ///< -1 = cluster-wide (md1_wait)
  std::string signal;          ///< "compute" | "comm" | "md1_wait"
  double predicted = 0.0;
  double measured = 0.0;
  double residual = 0.0;       ///< |measured − predicted| / max(predicted, ε)
  double residual_ewma = 0.0;  ///< smoothed across rounds
};

class ModelChecker {
 public:
  struct Options {
    /// Relative-residual level that counts as a breach.
    double drift_threshold = 0.5;
    /// Breaches in a row before a ModelDrift event fires.
    int consecutive_rounds = 3;
    /// EWMA weight of the newest residual.
    double residual_alpha = 0.5;
  };

  // Both defined below the class: a nested Options with member defaults is
  // not usable as a default argument until the enclosing class is complete.
  ModelChecker();
  explicit ModelChecker(Options options) : options_(options) {}

  /// Feed one round of (predicted, measured) pairs; returns the ModelDrift
  /// events that fired this round.  Updates the per-signal residual state
  /// returned by residuals().
  std::vector<HealthEvent> check(
      std::int64_t round,
      const std::vector<StageResidual>& measurements);

  /// Latest residual per tracked signal (post-EWMA), stable order.
  const std::vector<StageResidual>& residuals() const { return residuals_; }

 private:
  struct SignalState {
    double ewma = 0.0;
    bool ewma_primed = false;
    int breaches = 0;
    bool fired = false;  ///< drift raised; re-armed when residual recovers
  };

  Options options_;
  std::map<std::string, SignalState> state_;
  std::vector<StageResidual> residuals_;
};

inline ModelChecker::ModelChecker() : ModelChecker(Options()) {}

// ---------------------------------------------------------------------------
// Snapshot surface
// ---------------------------------------------------------------------------

struct DeviceHealth {
  int device = -1;
  bool reachable = true;
  /// False once the heartbeat policy (or a data-plane failure report)
  /// declared the device dead; a successful harvest round trip revives it.
  bool alive = true;
  /// Consecutive failed harvest round trips (reset on success).
  int missed_rounds = 0;
  double window_compute_mean = 0.0;  ///< worst stage, seconds per task
  double straggler_score = 0.0;      ///< worst stage's z / ratio
  bool straggler = false;
  std::int64_t spans_harvested = 0;  ///< total spans merged so far
  std::uint64_t trace_cursor = 0;    ///< next span seq to request
  std::int64_t clock_offset_ns = 0;
  std::int64_t clock_rtt_ns = 0;
};

/// Point-in-time cluster health, the API the report tool (and the future
/// churn/replanning loop) reads.
struct HealthSnapshot {
  std::int64_t rounds = 0;         ///< harvest rounds completed
  double lambda_hat = 0.0;         ///< live arrivals/sec EWMA
  double md1_wait_predicted = 0.0; ///< Thm. 2 Wq at lambda_hat
  double queue_wait_measured = 0.0;///< windowed mean entry-queue wait
  std::vector<DeviceHealth> devices;
  std::vector<StageResidual> residuals;
  std::vector<HealthEvent> events;  ///< bounded log, oldest first

  /// No dead or unreachable worker and no active straggler (model drift is
  /// advisory: it questions the plan, not the cluster).
  bool healthy() const;
  /// True if any ModelDrift event is in the log.
  bool drift_seen() const;
  /// Devices currently declared dead (alive == false), ascending.
  std::vector<int> down_devices() const;
};

}  // namespace pico::obs
