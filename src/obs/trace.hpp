// Span-based tracing of the task lifecycle, exportable as Chrome
// about://tracing JSON (trace-event format).
//
// Producers record SpanRecords into per-thread buffers owned by the global
// Tracer; snapshot() merges every thread's spans for export.  Tracing is off
// by default: the disabled fast path is a single relaxed atomic load (the
// RAII Span does no allocation, no clock read and no formatting when
// disabled), so instrumentation can stay compiled into the hot runtime.
// Enable programmatically (Tracer::global().set_enabled(true)) or by setting
// the PICO_TRACE environment variable to anything non-empty before launch.
//
// Tracks (Chrome's "tid" rows) group spans for visualization: one row for
// whole tasks, one per pipeline stage, one per device, plus net/adaptive
// rows — see the *_track helpers.  The encoder in write_chrome_trace is
// shared by the threaded runtime and the discrete-event simulator (one
// exporter, two producers; see sim/trace.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"

namespace pico::obs {

struct SpanRecord {
  std::string name;      ///< e.g. "scatter", "compute", "task"
  std::string category;  ///< e.g. "stage", "queue", "net", "adaptive"
  std::int64_t track = 0;       ///< Chrome tid (visualization row)
  std::int64_t start_ns = 0;    ///< Tracer::now_ns() timebase
  std::int64_t duration_ns = 0;
  std::int64_t task_id = -1;    ///< -1 = not task-scoped
  /// Per-producer sequence number, assigned by the worker-side SpanBuffer
  /// (obs/remote.hpp) in record order.  (device, seq) identifies a harvested
  /// span across repeated TraceDump rounds — the continuous harvester's
  /// dedup key.  -1 = unsequenced (coordinator-local spans, v1 peers).
  std::int64_t seq = -1;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Visualization rows.  Task row 0; stages from 1; devices from 1001;
/// net/adaptive rows sit far above so they never collide with stages;
/// kernel rows (one per intra-device strip index) sit above those.
inline std::int64_t task_track() { return 0; }
inline std::int64_t stage_track(int stage) { return 1 + stage; }
inline std::int64_t device_track(int device) { return 1001 + device; }
inline std::int64_t net_track() { return 2001; }
inline std::int64_t adaptive_track() { return 3001; }
inline std::int64_t kernel_track(int strip) { return 4001 + strip; }

class Tracer {
 public:
  /// Process-wide tracer; reads PICO_TRACE once at first use.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Append one span to the calling thread's buffer.  No-op when disabled.
  /// Buffers are capped (kMaxSpansPerThread); beyond that spans are counted
  /// as dropped instead of recorded.
  void record(SpanRecord span);

  /// Merged copy of every thread's spans, sorted by start time.
  std::vector<SpanRecord> snapshot() const;

  /// Drop all recorded spans (buffers stay registered).
  void clear();

  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since process start (shared span timebase).
  static std::int64_t now_ns();

  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

 private:
  struct ThreadBuffer {
    Mutex mutex;
    std::vector<SpanRecord> spans PICO_GUARDED_BY(mutex);
  };

  ThreadBuffer& local_buffer();

  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ PICO_GUARDED_BY(mutex_);
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> dropped_{0};
};

/// RAII span: captures the start time at construction and records [start,
/// now) into the global tracer at destruction.  `name` and `category` must
/// be string literals (or otherwise outlive the Span) — they are not copied
/// until the span is recorded, keeping the disabled path free.
class Span {
 public:
  Span(const char* name, const char* category, std::int64_t track = 0,
       std::int64_t task_id = -1);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value argument (shown in the Chrome trace viewer).
  void arg(std::string key, std::string value);

 private:
  bool active_;
  const char* name_;
  const char* category_;
  std::int64_t track_;
  std::int64_t task_id_;
  std::int64_t start_ns_ = 0;
  /// PendingSpanTable slot while open (-1 when untracked): a crash
  /// postmortem dumps every still-open span so the black box names what the
  /// process was in the middle of.
  int pending_slot_ = -1;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Chrome trace-event JSON ("X" complete events; ts/dur in microseconds).
/// `track_names` labels rows via thread_name metadata events.
void write_chrome_trace(
    std::ostream& os, const std::vector<SpanRecord>& spans,
    const std::map<std::int64_t, std::string>& track_names = {});
void write_chrome_trace_file(
    const std::string& path, const std::vector<SpanRecord>& spans,
    const std::map<std::int64_t, std::string>& track_names = {});

}  // namespace pico::obs
