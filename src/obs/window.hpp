// Rolling-window views over cumulative metrics.
//
// The registry's counters and histograms are cumulative by design (cheap,
// lock-free, monotone) — good for "since start", useless for "is the
// cluster drifting *now*".  The continuous harvester closes that gap by
// snapshotting tracked metrics once per harvest round and keeping the last
// W per-round deltas in a ring: the merged ring is the distribution (or
// count) of just the last W rounds, which is what the straggler detector
// and the online model checker consume.
//
// These classes are deliberately plain (no locking): one owner — the
// Harvester, which serializes rounds under its own mutex — rolls and reads
// them.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace pico::obs {

/// Rolling window over one histogram: call roll() once per round; window()
/// is the merged distribution of the observations made during the last
/// `window_rounds` rounds.
class WindowedSeries {
 public:
  WindowedSeries(const Histogram* source, int window_rounds)
      : source_(source), capacity_(window_rounds < 1 ? 1 : window_rounds) {
    last_ = source_->snapshot();
  }

  void roll() {
    HistogramSnapshot now = source_->snapshot();
    HistogramSnapshot delta = now.delta(last_);
    last_ = std::move(now);
    if (ring_.size() < static_cast<std::size_t>(capacity_)) {
      ring_.push_back(std::move(delta));
    } else {
      ring_[head_] = std::move(delta);
    }
    head_ = (head_ + 1) % static_cast<std::size_t>(capacity_);
    window_ = HistogramSnapshot{};
    for (const HistogramSnapshot& slice : ring_) window_.merge(slice);
  }

  /// Merged distribution of the last `window_rounds` rounds (empty before
  /// the first roll()).
  const HistogramSnapshot& window() const { return window_; }

 private:
  const Histogram* source_;
  int capacity_;
  std::vector<HistogramSnapshot> ring_;
  std::size_t head_ = 0;
  HistogramSnapshot last_;    ///< cumulative state at the previous roll
  HistogramSnapshot window_;  ///< cached merge of the ring
};

/// Rolling window over one counter: window() is the number of increments
/// during the last `window_rounds` rounds; last_delta() the most recent
/// round's increment (the live-rate numerator).
class WindowedCounter {
 public:
  WindowedCounter(const Counter* source, int window_rounds)
      : source_(source),
        capacity_(window_rounds < 1 ? 1 : window_rounds),
        last_(source_->value()) {}

  void roll() {
    const std::int64_t now = source_->value();
    std::int64_t delta = now - last_;
    if (delta < 0) delta = 0;  // reset between rounds degrades gracefully
    last_ = now;
    last_delta_ = delta;
    if (ring_.size() < static_cast<std::size_t>(capacity_)) {
      ring_.push_back(delta);
    } else {
      ring_[head_] = delta;
    }
    head_ = (head_ + 1) % static_cast<std::size_t>(capacity_);
    window_ = 0;
    for (const std::int64_t slice : ring_) window_ += slice;
  }

  std::int64_t window() const { return window_; }
  std::int64_t last_delta() const { return last_delta_; }

 private:
  const Counter* source_;
  int capacity_;
  std::vector<std::int64_t> ring_;
  std::size_t head_ = 0;
  std::int64_t last_ = 0;
  std::int64_t last_delta_ = 0;
  std::int64_t window_ = 0;
};

}  // namespace pico::obs
