// Continuous-harvest policy engine: rolling windows, live λ̂, straggler and
// model-drift detection, health snapshot assembly.
//
// The runtime side (runtime/pipeline.cpp) owns the transport mechanics of a
// harvest round — gating connections, pulling MetricsDump/TraceDump with
// cursors, merging spans into the tracer.  It then feeds this class: one
// note_worker() per pulled worker, one complete_round() per round.  The
// Harvester rolls the windows (obs/window.hpp), refreshes the λ̂ EWMA from
// the tasks-completed delta, runs the straggler detector and the online
// model checker (obs/health.hpp), publishes windowed views into the global
// registry (pico_window_*, pico_lambda_hat_live, pico_straggler_score,
// pico_model_residual, pico_harvest_rounds_total, pico_health_events_total)
// and maintains the bounded structured-event log behind HealthSnapshot.
//
// Thread-safe: the background harvest thread drives rounds while report /
// watch threads read snapshot().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "obs/health.hpp"
#include "obs/remote.hpp"
#include "obs/window.hpp"

namespace pico::obs {

class Harvester {
 public:
  struct Options {
    /// Rounds per rolling window (window duration = rounds × harvest
    /// period).
    int window_rounds = 8;
    /// EWMA weight of the newest per-round arrival-rate sample in λ̂.
    double lambda_alpha = 0.3;
    StragglerOptions straggler;
    ModelChecker::Options model;
    /// Structured-event log bound (oldest entries drop beyond this).
    std::size_t max_events = 256;
    /// Heartbeat policy: consecutive failed harvest round trips before a
    /// device is declared dead (DeviceDown).  With the harvester visiting
    /// every worker once per round, detection latency is bounded by
    /// heartbeat_missed_rounds × harvest period (+ the transport timeout).
    int heartbeat_missed_rounds = 2;
  };

  // Both defined in harvester.cpp: a nested Options with member defaults
  // is not usable as a default argument until the class is complete.
  Harvester();
  explicit Harvester(Options options);

  // --- wiring (call before the first round; not safe concurrently with
  // rounds) ---------------------------------------------------------------
  /// Per-(stage, device) compute histogram — the straggler signal.
  void track_stage_compute(int stage, int device, const Histogram* histogram);
  /// Per-stage critical-path compute histogram — Eq. 6 measured side.
  void track_stage_compute_critical(int stage, const Histogram* histogram);
  /// Per-stage service-time histogram — measured-period fallback for
  /// Thm. 2 when no prediction was injected.
  void track_stage_service(int stage, const Histogram* histogram);
  /// Per-(stage, device) wire histograms — Eq. 8 measured side.
  void track_stage_wire(int stage, int device, const Histogram* request,
                        const Histogram* reply);
  /// Entry-queue wait histogram — Thm. 2 measured side.
  void track_entry_queue_wait(const Histogram* histogram);
  /// Tasks-completed counter — λ̂'s numerator.
  void track_tasks_completed(const Counter* counter);
  /// Inject the plan's Eq. 5–11 predictions (computed by the caller via
  /// partition::plan_cost; obs cannot link that layer).
  void set_prediction(const ModelPrediction& prediction);

  // --- per round ----------------------------------------------------------
  /// Fold in one worker's pull (reachability transitions, span counts,
  /// cursors).  Call once per worker per round, before complete_round().
  void note_worker(const WorkerTelemetry& round);
  /// Data-plane failure report: declare `device` dead immediately (the
  /// coordinator saw its connection fail mid-task — no need to wait for
  /// heartbeat_missed_rounds of silence).  Idempotent per down episode.
  void note_device_down(int device, const std::string& detail);
  /// Devices currently declared dead, ascending.
  std::vector<int> down_devices() const;
  /// Close the round: roll windows, refresh λ̂, run detectors, publish
  /// windowed gauges.  `now_ns` is the coordinator clock (Tracer::now_ns).
  void complete_round(std::int64_t now_ns);

  // --- read side ----------------------------------------------------------
  HealthSnapshot snapshot() const;
  std::int64_t rounds() const;
  double lambda_hat() const;

 private:
  struct ComputeTrack {
    int stage;
    int device;
    WindowedSeries series;
  };
  struct StageTrack {
    int stage;
    WindowedSeries series;
  };
  struct WireTrack {
    int stage;
    int device;
    WindowedSeries request;
    WindowedSeries reply;
  };
  struct DeviceStatus {
    bool reachable = true;
    bool alive = true;
    int missed_rounds = 0;
    bool straggler = false;
    double score = 0.0;
    double window_mean = 0.0;
    std::int64_t spans_total = 0;
    std::uint64_t cursor = 0;
    std::int64_t offset_ns = 0;
    std::int64_t rtt_ns = 0;
    /// Last harvested flight-recorder events (bounded; newest kept).  This
    /// is the black box retained for the device: when it is declared dead,
    /// a copy rides on the DeviceDown HealthEvent.
    std::vector<EventRecord> blackbox;
  };

  void push_event(HealthEvent event) PICO_REQUIRES(mutex_);
  void detect_stragglers_locked(std::int64_t round) PICO_REQUIRES(mutex_);
  void check_model_locked(std::int64_t round) PICO_REQUIRES(mutex_);

  const Options options_;
  mutable Mutex mutex_;
  std::vector<ComputeTrack> compute_ PICO_GUARDED_BY(mutex_);
  std::vector<StageTrack> compute_critical_ PICO_GUARDED_BY(mutex_);
  std::vector<StageTrack> service_ PICO_GUARDED_BY(mutex_);
  std::vector<WireTrack> wire_ PICO_GUARDED_BY(mutex_);
  std::vector<WindowedSeries> entry_queue_ PICO_GUARDED_BY(mutex_);
  std::vector<WindowedCounter> tasks_ PICO_GUARDED_BY(mutex_);
  ModelPrediction prediction_ PICO_GUARDED_BY(mutex_);
  ModelChecker checker_ PICO_GUARDED_BY(mutex_);
  std::map<int, DeviceStatus> devices_ PICO_GUARDED_BY(mutex_);
  std::vector<HealthEvent> events_ PICO_GUARDED_BY(mutex_);
  std::int64_t rounds_ PICO_GUARDED_BY(mutex_) = 0;
  std::int64_t last_round_ns_ PICO_GUARDED_BY(mutex_) = 0;
  double lambda_hat_ PICO_GUARDED_BY(mutex_) = 0.0;
  bool lambda_primed_ PICO_GUARDED_BY(mutex_) = false;
  double md1_wait_predicted_ PICO_GUARDED_BY(mutex_) = 0.0;
  double queue_wait_measured_ PICO_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace pico::obs
