#include "obs/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace pico::obs {

namespace {

std::string to_string_int(int v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Harvester::Harvester() : Harvester(Options()) {}

Harvester::Harvester(Options options)
    : options_(options), checker_(options.model) {}

void Harvester::track_stage_compute(int stage, int device,
                                    const Histogram* histogram) {
  MutexLock lock(mutex_);
  compute_.push_back(
      {stage, device, WindowedSeries(histogram, options_.window_rounds)});
}

void Harvester::track_stage_compute_critical(int stage,
                                             const Histogram* histogram) {
  MutexLock lock(mutex_);
  compute_critical_.push_back(
      {stage, WindowedSeries(histogram, options_.window_rounds)});
}

void Harvester::track_stage_service(int stage, const Histogram* histogram) {
  MutexLock lock(mutex_);
  service_.push_back(
      {stage, WindowedSeries(histogram, options_.window_rounds)});
}

void Harvester::track_stage_wire(int stage, int device,
                                 const Histogram* request,
                                 const Histogram* reply) {
  MutexLock lock(mutex_);
  wire_.push_back({stage, device,
                   WindowedSeries(request, options_.window_rounds),
                   WindowedSeries(reply, options_.window_rounds)});
}

void Harvester::track_entry_queue_wait(const Histogram* histogram) {
  MutexLock lock(mutex_);
  entry_queue_.emplace_back(histogram, options_.window_rounds);
}

void Harvester::track_tasks_completed(const Counter* counter) {
  MutexLock lock(mutex_);
  tasks_.emplace_back(counter, options_.window_rounds);
}

void Harvester::set_prediction(const ModelPrediction& prediction) {
  MutexLock lock(mutex_);
  prediction_ = prediction;
}

void Harvester::push_event(HealthEvent event) {
  Registry::global()
      .counter("pico_health_events_total",
               {{"kind", health_event_kind_name(event.kind)}})
      .add(1);
  // Mirror every health verdict into the flight recorder so a postmortem —
  // or a harvested black box — carries the cluster's judgement inline with
  // the task and transport events it judged.
  switch (event.kind) {
    case HealthEventKind::Straggler:
      record_event(EventCode::HealthStraggler, event.device, event.stage);
      break;
    case HealthEventKind::Recovered:
      record_event(EventCode::HealthRecovered, event.device);
      break;
    case HealthEventKind::ModelDrift:
      record_event(EventCode::HealthModelDrift, event.stage);
      break;
    case HealthEventKind::Unreachable:
      record_event(EventCode::HealthUnreachable, event.device);
      break;
    case HealthEventKind::DeviceDown:
      record_event(EventCode::HealthDeviceDown, event.device, event.round);
      break;
  }
  events_.push_back(std::move(event));
  if (events_.size() > options_.max_events) {
    events_.erase(events_.begin(),
                  events_.begin() +
                      static_cast<std::ptrdiff_t>(events_.size() -
                                                  options_.max_events));
  }
}

void Harvester::note_worker(const WorkerTelemetry& round) {
  MutexLock lock(mutex_);
  DeviceStatus& status = devices_[round.device];
  if (!round.reachable && status.reachable) {
    HealthEvent event;
    event.kind = HealthEventKind::Unreachable;
    event.device = round.device;
    event.round = rounds_ + 1;
    event.detail = "harvest round trip failed";
    push_event(std::move(event));
  } else if (round.reachable && !status.reachable) {
    HealthEvent event;
    event.kind = HealthEventKind::Recovered;
    event.device = round.device;
    event.round = rounds_ + 1;
    event.detail = "worker reachable again";
    push_event(std::move(event));
  }
  if (round.reachable) {
    if (!status.alive) {
      HealthEvent event;
      event.kind = HealthEventKind::Recovered;
      event.device = round.device;
      event.round = rounds_ + 1;
      event.detail = "device rejoined after being declared down";
      push_event(std::move(event));
    }
    status.alive = true;
    status.missed_rounds = 0;
  } else {
    ++status.missed_rounds;
    if (status.alive &&
        status.missed_rounds >= options_.heartbeat_missed_rounds) {
      status.alive = false;
      HealthEvent event;
      event.kind = HealthEventKind::DeviceDown;
      event.device = round.device;
      event.value = static_cast<double>(status.missed_rounds);
      event.threshold = static_cast<double>(options_.heartbeat_missed_rounds);
      event.round = rounds_ + 1;
      std::ostringstream detail;
      detail << "heartbeat: " << status.missed_rounds
             << " consecutive harvest round trips failed";
      event.detail = detail.str();
      event.blackbox = status.blackbox;  // last known flight recording
      push_event(std::move(event));
    }
  }
  status.reachable = round.reachable;
  status.spans_total += static_cast<std::int64_t>(round.spans.size());
  status.cursor = std::max(status.cursor, round.next_cursor);
  status.offset_ns = round.offset_ns;
  status.rtt_ns = round.rtt_ns;
  // Retain the device's flight recording, bounded: keep the newest
  // kMaxBlackboxEvents — the tail is what explains a death.
  if (!round.events.empty()) {
    constexpr std::size_t kMaxBlackboxEvents = 1024;
    status.blackbox.insert(status.blackbox.end(), round.events.begin(),
                           round.events.end());
    if (status.blackbox.size() > kMaxBlackboxEvents) {
      status.blackbox.erase(
          status.blackbox.begin(),
          status.blackbox.begin() +
              static_cast<std::ptrdiff_t>(status.blackbox.size() -
                                          kMaxBlackboxEvents));
    }
  }
}

void Harvester::note_device_down(int device, const std::string& detail) {
  MutexLock lock(mutex_);
  DeviceStatus& status = devices_[device];
  if (!status.alive) return;
  status.alive = false;
  status.reachable = false;
  HealthEvent event;
  event.kind = HealthEventKind::DeviceDown;
  event.device = device;
  event.round = rounds_ + 1;
  event.detail = detail;
  event.blackbox = status.blackbox;  // last known flight recording
  push_event(std::move(event));
}

std::vector<int> Harvester::down_devices() const {
  MutexLock lock(mutex_);
  std::vector<int> down;
  for (const auto& [device, status] : devices_) {
    if (!status.alive) down.push_back(device);
  }
  return down;
}

void Harvester::detect_stragglers_locked(std::int64_t round) {
  // Group the tracked (stage, device) windows by stage; only windows with
  // enough fresh observations vote.
  std::map<int, std::map<int, double>> stage_means;
  for (ComputeTrack& track : compute_) {
    const HistogramSnapshot& window = track.series.window();
    if (window.count < options_.straggler.min_window_count) continue;
    stage_means[track.stage][track.device] = window.mean();
  }

  std::map<int, StragglerVerdict> worst;  // per device, across its stages
  for (const auto& [stage, means] : stage_means) {
    for (const StragglerVerdict& verdict :
         detect_stragglers(means, options_.straggler)) {
      auto [it, inserted] = worst.emplace(verdict.device, verdict);
      if (!inserted) {
        it->second.straggler |= verdict.straggler;
        if (verdict.score > it->second.score) {
          it->second.score = verdict.score;
        }
        it->second.mean_seconds =
            std::max(it->second.mean_seconds, verdict.mean_seconds);
      }
    }
  }

  Registry& registry = Registry::global();
  for (const auto& [device, verdict] : worst) {
    DeviceStatus& status = devices_[device];
    status.score = verdict.score;
    status.window_mean = verdict.mean_seconds;
    if (verdict.straggler && !status.straggler) {
      HealthEvent event;
      event.kind = HealthEventKind::Straggler;
      event.device = device;
      event.value = verdict.score;
      event.threshold = options_.straggler.zscore_threshold;
      event.round = round;
      std::ostringstream detail;
      detail << "windowed compute mean " << verdict.mean_seconds
             << "s, score " << verdict.score;
      event.detail = detail.str();
      push_event(std::move(event));
    } else if (!verdict.straggler && status.straggler) {
      HealthEvent event;
      event.kind = HealthEventKind::Recovered;
      event.device = device;
      event.value = verdict.score;
      event.round = round;
      event.detail = "compute back within the stage envelope";
      push_event(std::move(event));
    }
    status.straggler = verdict.straggler;
    registry
        .gauge("pico_straggler_score",
               {{"device", to_string_int(device)}})
        .set(verdict.score);
    registry
        .gauge("pico_window_compute_seconds",
               {{"device", to_string_int(device)}})
        .set(verdict.mean_seconds);
  }
}

void Harvester::check_model_locked(std::int64_t round) {
  std::vector<StageResidual> measurements;

  if (prediction_.valid) {
    // Eq. 6: per-stage critical-path compute.
    for (StageTrack& track : compute_critical_) {
      if (track.stage < 0 ||
          static_cast<std::size_t>(track.stage) >=
              prediction_.stages.size()) {
        continue;
      }
      const HistogramSnapshot& window = track.series.window();
      if (window.count == 0) continue;
      StageResidual m;
      m.stage = track.stage;
      m.signal = "compute";
      m.predicted = prediction_.stages[static_cast<std::size_t>(track.stage)]
                        .compute_seconds;
      m.measured = window.mean();
      measurements.push_back(std::move(m));
    }
    // Eq. 8: per-stage transfer time, measured as the sum of the stage's
    // per-device request+reply wire means (an upper-bound approximation of
    // the shared-link serialization the model assumes).
    std::map<int, std::pair<double, std::int64_t>> stage_wire;
    for (WireTrack& track : wire_) {
      const HistogramSnapshot& request = track.request.window();
      const HistogramSnapshot& reply = track.reply.window();
      if (request.count == 0 && reply.count == 0) continue;
      auto& [sum, count] = stage_wire[track.stage];
      sum += request.mean() + reply.mean();
      count += request.count + reply.count;
    }
    for (const auto& [stage, wire] : stage_wire) {
      if (stage < 0 ||
          static_cast<std::size_t>(stage) >= prediction_.stages.size()) {
        continue;
      }
      StageResidual m;
      m.stage = stage;
      m.signal = "comm";
      m.predicted =
          prediction_.stages[static_cast<std::size_t>(stage)].comm_seconds;
      m.measured = wire.first;
      measurements.push_back(std::move(m));
    }
  }

  // Thm. 2: the entry queue as M/D/1 with the live λ̂.  Service period from
  // the prediction (Eq. 10) when available, else the measured bottleneck
  // stage service time.
  double period = prediction_.valid ? prediction_.period_seconds : 0.0;
  if (period <= 0.0) {
    for (StageTrack& track : service_) {
      const HistogramSnapshot& window = track.series.window();
      if (window.count > 0) period = std::max(period, window.mean());
    }
  }
  double queue_measured = 0.0;
  std::int64_t queue_count = 0;
  for (WindowedSeries& series : entry_queue_) {
    const HistogramSnapshot& window = series.window();
    queue_measured += window.sum;
    queue_count += window.count;
  }
  queue_wait_measured_ =
      queue_count > 0 ? queue_measured / static_cast<double>(queue_count)
                      : 0.0;
  md1_wait_predicted_ = md1_waiting_seconds(lambda_hat_, period);
  if (lambda_primed_ && period > 0.0 && queue_count > 0) {
    StageResidual m;
    m.stage = -1;
    m.signal = "md1_wait";
    m.predicted = md1_wait_predicted_;
    m.measured = queue_wait_measured_;
    measurements.push_back(std::move(m));
  }

  for (HealthEvent& event : checker_.check(round, measurements)) {
    push_event(std::move(event));
  }
  Registry& registry = Registry::global();
  for (const StageResidual& residual : checker_.residuals()) {
    registry
        .gauge("pico_model_residual",
               {{"signal", residual.signal},
                {"stage", to_string_int(residual.stage)}})
        .set(residual.residual_ewma);
  }
}

void Harvester::complete_round(std::int64_t now_ns) {
  MutexLock lock(mutex_);
  const std::int64_t round = ++rounds_;

  for (ComputeTrack& track : compute_) track.series.roll();
  for (StageTrack& track : compute_critical_) track.series.roll();
  for (StageTrack& track : service_) track.series.roll();
  for (WireTrack& track : wire_) {
    track.request.roll();
    track.reply.roll();
  }
  for (WindowedSeries& series : entry_queue_) series.roll();
  for (WindowedCounter& counter : tasks_) counter.roll();

  // λ̂: EWMA of the per-round completion rate.  (Completions, not arrivals:
  // in steady state they agree, and completions are what the coordinator
  // can observe without trusting producers.)
  if (last_round_ns_ > 0 && now_ns > last_round_ns_ && !tasks_.empty()) {
    const double dt =
        static_cast<double>(now_ns - last_round_ns_) / 1e9;
    std::int64_t delta = 0;
    for (WindowedCounter& counter : tasks_) delta += counter.last_delta();
    const double rate = static_cast<double>(delta) / dt;
    if (!lambda_primed_) {
      lambda_hat_ = rate;
      lambda_primed_ = true;
    } else {
      lambda_hat_ = options_.lambda_alpha * rate +
                    (1.0 - options_.lambda_alpha) * lambda_hat_;
    }
  }
  last_round_ns_ = now_ns;

  detect_stragglers_locked(round);
  check_model_locked(round);

  Registry& registry = Registry::global();
  registry.counter("pico_harvest_rounds_total").add(1);
  registry.gauge("pico_lambda_hat_live").set(lambda_hat_);
  std::int64_t window_tasks = 0;
  for (WindowedCounter& counter : tasks_) window_tasks += counter.window();
  registry.gauge("pico_window_tasks_completed")
      .set(static_cast<double>(window_tasks));
}

HealthSnapshot Harvester::snapshot() const {
  MutexLock lock(mutex_);
  HealthSnapshot out;
  out.rounds = rounds_;
  out.lambda_hat = lambda_hat_;
  out.md1_wait_predicted = md1_wait_predicted_;
  out.queue_wait_measured = queue_wait_measured_;
  for (const auto& [device, status] : devices_) {
    DeviceHealth health;
    health.device = device;
    health.reachable = status.reachable;
    health.alive = status.alive;
    health.missed_rounds = status.missed_rounds;
    health.window_compute_mean = status.window_mean;
    health.straggler_score = status.score;
    health.straggler = status.straggler;
    health.spans_harvested = status.spans_total;
    health.trace_cursor = status.cursor;
    health.clock_offset_ns = status.offset_ns;
    health.clock_rtt_ns = status.rtt_ns;
    out.devices.push_back(health);
  }
  out.residuals = checker_.residuals();
  out.events = events_;
  return out;
}

std::int64_t Harvester::rounds() const {
  MutexLock lock(mutex_);
  return rounds_;
}

double Harvester::lambda_hat() const {
  MutexLock lock(mutex_);
  return lambda_hat_;
}

}  // namespace pico::obs
