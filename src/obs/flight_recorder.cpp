#include "obs/flight_recorder.hpp"

#include <pthread.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace pico::obs {

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

namespace {

struct CodeInfo {
  EventCode code;
  EventCategory category;
  const char* name;
};

constexpr CodeInfo kCodes[] = {
    {EventCode::None, EventCategory::Lifecycle, "none"},
    {EventCode::ThreadStart, EventCategory::Lifecycle, "thread_start"},
    {EventCode::PlanSwitch, EventCategory::Lifecycle, "plan_switch"},
    {EventCode::EpochStart, EventCategory::Lifecycle, "epoch_start"},
    {EventCode::EpochRetire, EventCategory::Lifecycle, "epoch_retire"},
    {EventCode::TaskAccept, EventCategory::Task, "task_accept"},
    {EventCode::TaskRetry, EventCategory::Task, "task_retry"},
    {EventCode::TaskComplete, EventCategory::Task, "task_complete"},
    {EventCode::TaskFail, EventCategory::Task, "task_fail"},
    {EventCode::QueueHighWater, EventCategory::Task, "queue_highwater"},
    {EventCode::HarvestRound, EventCategory::Harvest, "harvest_round"},
    {EventCode::HealthStraggler, EventCategory::Health, "health_straggler"},
    {EventCode::HealthRecovered, EventCategory::Health, "health_recovered"},
    {EventCode::HealthModelDrift, EventCategory::Health, "health_model_drift"},
    {EventCode::HealthUnreachable, EventCategory::Health,
     "health_unreachable"},
    {EventCode::HealthDeviceDown, EventCategory::Health, "health_device_down"},
    {EventCode::TransportConnect, EventCategory::Transport,
     "transport_connect"},
    {EventCode::TransportTimeout, EventCategory::Transport,
     "transport_timeout"},
    {EventCode::TransportClose, EventCategory::Transport, "transport_close"},
    {EventCode::WorkerServe, EventCategory::Worker, "worker_serve"},
    {EventCode::WorkerReply, EventCategory::Worker, "worker_reply"},
    {EventCode::WorkerShutdown, EventCategory::Worker, "worker_shutdown"},
    {EventCode::CheckFailed, EventCategory::Check, "check_failed"},
    {EventCode::DeviceFailure, EventCategory::Health, "device_failure"},
    {EventCode::Postmortem, EventCategory::Check, "postmortem"},
};

constexpr const char* kCategoryNames[] = {
    "lifecycle", "task", "harvest", "health", "transport", "worker", "check",
};

const CodeInfo* code_info(EventCode code) {
  for (const CodeInfo& info : kCodes) {
    if (info.code == code) return &info;
  }
  return nullptr;
}

}  // namespace

const char* event_code_name(EventCode code) {
  const CodeInfo* info = code_info(code);
  return info != nullptr ? info->name : "?";
}

EventCode event_code_from_name(const char* name) {
  if (name == nullptr) return EventCode::None;
  for (const CodeInfo& info : kCodes) {
    if (std::strcmp(info.name, name) == 0) return info.code;
  }
  return EventCode::None;
}

EventCategory event_category(EventCode code) {
  const CodeInfo* info = code_info(code);
  return info != nullptr ? info->category : EventCategory::Lifecycle;
}

const char* event_category_name(EventCategory category) {
  const auto index = static_cast<std::size_t>(category);
  if (index >= sizeof(kCategoryNames) / sizeof(kCategoryNames[0])) return "?";
  return kCategoryNames[index];
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

namespace {

// Published by global() for the crash handler: reading a plain atomic is
// async-signal-safe, running a function-local static's init guard is not.
std::atomic<FlightRecorder*> g_recorder{nullptr};

// The calling thread's display name, pointing into the recorder's
// process-lifetime name table ("" before set_thread_name).  A plain
// thread_local const char* is trivially destructible, so recording from TLS
// destructors during thread teardown stays safe (the PR 5 lesson).
thread_local const char* t_thread_name = "";

// pico-lint: signal-root
void check_failed_flight_hook(const char* /*expr*/, const char* file,
                              int line) {
  FlightRecorder* recorder = FlightRecorder::crash_instance();
  if (recorder == nullptr) return;
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  recorder->record(EventCode::CheckFailed, line, recorder->intern(basename));
}

}  // namespace

FlightRecorder::FlightRecorder() {
  strings_[0].text[0] = '\0';  // index 0 = "" (also the overflow sentinel)
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = [] {
    auto* recorder = new FlightRecorder();  // never destroyed: threads and
    // TLS destructors may record during static teardown
    if (const char* env = std::getenv("PICO_EVENTS");
        env != nullptr && env[0] != '\0') {
      const std::string value = env;
      if (value == "0" || value == "false" || value == "off") {
        recorder->set_enabled(false);
      }
    }
    g_recorder.store(recorder, std::memory_order_release);
    // PICO_CHECK failures are part of the causal record whether or not the
    // throw is caught upstream (caught ones are routine wire validation —
    // cheap to journal, interesting in hindsight).
    detail::check_failed_hook.store(&check_failed_flight_hook,
                                    std::memory_order_release);
    return recorder;
  }();
  return *instance;
}

FlightRecorder* FlightRecorder::crash_instance() {
  return g_recorder.load(std::memory_order_acquire);
}

FlightRecorder::ThreadRing* FlightRecorder::local_ring() {
  // The handle claims a ring on first use and releases it (contents kept —
  // a dead thread's final events are exactly what a postmortem wants) when
  // the thread exits.  It touches only this never-destroyed object, so the
  // destructor is safe at any teardown stage.
  struct Handle {
    FlightRecorder* owner = nullptr;
    ThreadRing* ring = nullptr;
    ~Handle() {
      if (ring != nullptr) ring->owner.store(0, std::memory_order_release);
    }
  };
  thread_local Handle handle;
  if (handle.ring != nullptr && handle.owner == this) return handle.ring;
  for (int i = 0; i < kMaxThreads; ++i) {
    std::uint32_t expected = 0;
    if (rings_[i].owner.compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel)) {
      const std::uint32_t tid =
          next_tid_.fetch_add(1, std::memory_order_relaxed);
      rings_[i].tid.store(tid, std::memory_order_relaxed);
      handle.owner = this;
      handle.ring = &rings_[i];
      return handle.ring;
    }
  }
  return nullptr;
}

void FlightRecorder::record(EventCode code, std::int64_t a0, std::int64_t a1,
                            std::int64_t a2, std::int64_t a3) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadRing* ring = local_ring();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t index =
      ring->head.fetch_add(1, std::memory_order_relaxed) &
      static_cast<std::uint32_t>(kRingSize - 1);
  Slot& slot = ring->slots[index];
  // Per-slot seqlock: invalidate, write payload, commit.  Readers accept a
  // slot only when the commit word is nonzero and stable across their copy.
  slot.seq.store(0, std::memory_order_release);
  slot.t_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  slot.tid.store(ring->tid.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  slot.category.store(static_cast<std::uint16_t>(event_category(code)),
                      std::memory_order_relaxed);
  slot.code.store(static_cast<std::uint16_t>(code), std::memory_order_relaxed);
  slot.args[0].store(a0, std::memory_order_relaxed);
  slot.args[1].store(a1, std::memory_order_relaxed);
  slot.args[2].store(a2, std::memory_order_relaxed);
  slot.args[3].store(a3, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

bool FlightRecorder::read_slot(int ring, int slot, EventRecord* out) const {
  if (ring < 0 || ring >= kMaxThreads || slot < 0 || slot >= kRingSize) {
    return false;
  }
  const Slot& s = rings_[ring].slots[slot];
  const std::uint64_t before = s.seq.load(std::memory_order_acquire);
  if (before == 0) return false;
  // Acquire payload loads keep the validation re-read below from being
  // reordered before any of them (a later load cannot move ahead of an
  // acquire load) — the fence-free seqlock reader; an overwrite racing
  // this copy changes the commit word and the copy is discarded.
  // (atomic_thread_fence would also work but trips gcc's -Wtsan.)
  out->t_ns = s.t_ns.load(std::memory_order_acquire);
  out->tid = s.tid.load(std::memory_order_acquire);
  out->category = s.category.load(std::memory_order_acquire);
  out->code = s.code.load(std::memory_order_acquire);
  for (int a = 0; a < 4; ++a) {
    out->args[a] = s.args[a].load(std::memory_order_acquire);
  }
  const std::uint64_t after = s.seq.load(std::memory_order_relaxed);
  if (after != before) return false;
  out->seq = before;
  return true;
}

EventChunk FlightRecorder::chunk(std::uint64_t cursor) const {
  EventChunk out;
  out.base = cursor;
  out.next = cursor;
  for (int ring = 0; ring < kMaxThreads; ++ring) {
    for (int slot = 0; slot < kRingSize; ++slot) {
      EventRecord record;
      if (!read_slot(ring, slot, &record)) continue;
      if (record.seq <= cursor) continue;
      out.events.push_back(record);
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.seq < b.seq;
            });
  if (!out.events.empty()) {
    out.base = out.events.front().seq;
    out.next = out.events.back().seq;
  }
  return out;
}

void FlightRecorder::clear() {
  for (ThreadRing& ring : rings_) {
    for (Slot& slot : ring.slots) {
      slot.seq.store(0, std::memory_order_release);
    }
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint16_t FlightRecorder::intern(const char* text) {
  if (text == nullptr || text[0] == '\0') return 0;
  char bounded[kStringBytes];
  std::strncpy(bounded, text, kStringBytes - 1);
  bounded[kStringBytes - 1] = '\0';
  for (;;) {
    const int count = string_count_.load(std::memory_order_acquire);
    for (int i = 0; i < count; ++i) {
      if (std::strcmp(strings_[i].text, bounded) == 0) {
        return static_cast<std::uint16_t>(i);
      }
    }
    if (count >= kMaxStrings) return 0;  // table full: degrade to ""
    int expected = count;
    // Reserve the slot first; losers rescan (the winner may have interned
    // the same string).
    if (!string_count_.compare_exchange_strong(expected, count + 1,
                                               std::memory_order_acq_rel)) {
      continue;
    }
    std::memcpy(strings_[count].text, bounded, kStringBytes);
    return static_cast<std::uint16_t>(count);
  }
}

const char* FlightRecorder::string_at(std::uint16_t index) const {
  if (index >= static_cast<std::uint16_t>(
                   string_count_.load(std::memory_order_acquire))) {
    return "";
  }
  return strings_[index].text;
}

void FlightRecorder::set_thread_name(const char* name) {
  char bounded[kNameBytes];
  std::strncpy(bounded, name != nullptr ? name : "", kNameBytes - 1);
  bounded[kNameBytes - 1] = '\0';
  // pico-lint: allow(unchecked-status): naming is cosmetic; a too-long or
  // unsupported name must not fail the thread being named
  pthread_setname_np(pthread_self(), bounded);
  const std::uint32_t tid = current_tid();
  const int index = name_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index < kMaxThreadNames) {
    std::memcpy(names_[index].name, bounded, kNameBytes);
    names_[index].tid.store(tid, std::memory_order_release);
    t_thread_name = names_[index].name;
  } else {
    name_count_.store(kMaxThreadNames, std::memory_order_relaxed);
  }
  record(EventCode::ThreadStart, tid);
}

std::uint32_t FlightRecorder::current_tid() {
  ThreadRing* ring = local_ring();
  return ring != nullptr ? ring->tid.load(std::memory_order_relaxed) : 0;
}

const char* FlightRecorder::current_thread_name() { return t_thread_name; }

std::vector<FlightRecorder::ThreadName> FlightRecorder::thread_names() const {
  std::vector<ThreadName> out;
  const int count =
      std::min(name_count_.load(std::memory_order_acquire), kMaxThreadNames);
  for (int i = 0; i < count; ++i) {
    ThreadName entry;
    entry.tid = names_[i].tid.load(std::memory_order_acquire);
    if (entry.tid == 0) continue;  // claimed but not yet committed
    std::memcpy(entry.name, names_[i].name, kNameBytes);
    out.push_back(entry);
  }
  return out;
}

int FlightRecorder::thread_names_raw(ThreadName* out, int cap) const {
  const int count =
      std::min(name_count_.load(std::memory_order_acquire), kMaxThreadNames);
  int copied = 0;
  for (int i = 0; i < count && copied < cap; ++i) {
    const std::uint32_t tid = names_[i].tid.load(std::memory_order_acquire);
    if (tid == 0) continue;
    out[copied].tid = tid;
    std::memcpy(out[copied].name, names_[i].name, kNameBytes);
    ++copied;
  }
  return copied;
}

void set_current_thread_name(const char* name) {
  FlightRecorder::global().set_thread_name(name);
}

// ---------------------------------------------------------------------------
// Event wire codec (EventDump payload)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kEventMagicV1 = 0x50455631;  // "PEV1"

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  const auto offset = out.size();
  out.resize(offset + text.size());
  if (!text.empty()) std::memcpy(out.data() + offset, text.data(), text.size());
}

template <typename T>
T take(const std::uint8_t*& cursor, const std::uint8_t* end) {
  if (cursor + sizeof(T) > end) {
    throw TransportError("event buffer truncated");
  }
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

std::string take_string(const std::uint8_t*& cursor, const std::uint8_t* end) {
  const auto size = take<std::uint32_t>(cursor, end);
  if (size > static_cast<std::size_t>(end - cursor)) {
    throw TransportError("event buffer truncated");
  }
  std::string text(reinterpret_cast<const char*>(cursor), size);
  cursor += size;
  return text;
}

/// Fixed wire cost of one EventRecord (seq + t_ns + tid + cat + code + args).
constexpr std::size_t kEventWireBytes = 8 + 8 + 4 + 2 + 2 + 4 * 8;

}  // namespace

std::vector<std::uint8_t> encode_events(const EventChunk& chunk) {
  std::vector<std::uint8_t> out;
  put<std::uint32_t>(out, kEventMagicV1);
  put<std::uint64_t>(out, chunk.base);
  put<std::uint64_t>(out, chunk.next);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(chunk.events.size()));
  for (const EventRecord& event : chunk.events) {
    put<std::uint64_t>(out, event.seq);
    put<std::int64_t>(out, event.t_ns);
    put<std::uint32_t>(out, event.tid);
    put<std::uint16_t>(out, event.category);
    put<std::uint16_t>(out, event.code);
    for (const std::int64_t arg : event.args) put<std::int64_t>(out, arg);
  }
  // Thread-name and string tables travel with the events so a harvested
  // ring renders (and a retained black box replays) without the worker.
  const FlightRecorder& recorder = FlightRecorder::global();
  const auto names = recorder.thread_names();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) {
    put<std::uint32_t>(out, name.tid);
    put_string(out, name.name);
  }
  const int strings = recorder.string_count();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(strings));
  for (int i = 0; i < strings; ++i) {
    put_string(out, recorder.string_at(static_cast<std::uint16_t>(i)));
  }
  return out;
}

EventChunk decode_events(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto magic = take<std::uint32_t>(cursor, end);
  if (magic != kEventMagicV1) {
    throw TransportError("bad event buffer magic");
  }
  EventChunk chunk;
  chunk.base = take<std::uint64_t>(cursor, end);
  chunk.next = take<std::uint64_t>(cursor, end);
  const auto count = take<std::uint32_t>(cursor, end);
  // Wire-taint bound: each record costs exactly kEventWireBytes, so a count
  // the remaining bytes cannot hold is corruption, not data.
  if (count > static_cast<std::size_t>(end - cursor) / kEventWireBytes) {
    throw TransportError("event count implausible");
  }
  chunk.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EventRecord event;
    event.seq = take<std::uint64_t>(cursor, end);
    event.t_ns = take<std::int64_t>(cursor, end);
    event.tid = take<std::uint32_t>(cursor, end);
    event.category = take<std::uint16_t>(cursor, end);
    event.code = take<std::uint16_t>(cursor, end);
    for (int a = 0; a < 4; ++a) event.args[a] = take<std::int64_t>(cursor, end);
    chunk.events.push_back(event);
  }
  // The tables are decoded for validation (and future use by callers that
  // want remote names); the chunk itself carries only events.  Each table
  // entry costs at least its length prefix, bounding both counts.
  const auto names = take<std::uint32_t>(cursor, end);
  if (names > static_cast<std::size_t>(end - cursor) / 8) {
    throw TransportError("event thread-name count implausible");
  }
  for (std::uint32_t i = 0; i < names; ++i) {
    take<std::uint32_t>(cursor, end);  // tid
    take_string(cursor, end);
  }
  const auto strings = take<std::uint32_t>(cursor, end);
  if (strings > static_cast<std::size_t>(end - cursor) / 4 + 1) {
    throw TransportError("event string count implausible");
  }
  for (std::uint32_t i = 0; i < strings; ++i) take_string(cursor, end);
  if (cursor != end) throw TransportError("event buffer trailing bytes");
  return chunk;
}

// ---------------------------------------------------------------------------
// PendingSpanTable
// ---------------------------------------------------------------------------

namespace {
// Published by global() for the crash handler (see crash_instance()).
std::atomic<PendingSpanTable*> g_span_table{nullptr};
}  // namespace

PendingSpanTable& PendingSpanTable::global() {
  static PendingSpanTable* instance = [] {
    auto* table = new PendingSpanTable();  // never destroyed: spans may
    // close during static teardown
    g_span_table.store(table, std::memory_order_release);
    return table;
  }();
  return *instance;
}

PendingSpanTable* PendingSpanTable::crash_instance() {
  return g_span_table.load(std::memory_order_acquire);
}

int PendingSpanTable::claim(const Entry& entry) {
  const std::uint32_t hint = FlightRecorder::global().current_tid();
  for (int probe = 0; probe < kSlots; ++probe) {
    const int index = static_cast<int>((hint + probe) % kSlots);
    Slot& slot = slots_[index];
    std::uint32_t expected = 0;
    if (!slot.state.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    std::uint64_t words[3] = {0, 0, 0};
    std::memcpy(words, entry.name,
                std::min(sizeof(words), sizeof(entry.name)));
    for (int w = 0; w < 3; ++w) {
      slot.name_words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.start_ns.store(entry.start_ns, std::memory_order_relaxed);
    slot.track.store(entry.track, std::memory_order_relaxed);
    slot.task_id.store(entry.task_id, std::memory_order_relaxed);
    slot.tid.store(entry.tid, std::memory_order_relaxed);
    slot.state.store(2, std::memory_order_release);
    return index;
  }
  return -1;
}

void PendingSpanTable::release(int slot) {
  if (slot < 0 || slot >= kSlots) return;
  slots_[slot].state.store(0, std::memory_order_release);
}

bool PendingSpanTable::read_slot(int slot, Entry* out) const {
  if (slot < 0 || slot >= kSlots) return false;
  const Slot& s = slots_[slot];
  if (s.state.load(std::memory_order_acquire) != 2) return false;
  // Acquire payload loads order the validation re-read after the copy
  // (fence-free seqlock reader; atomic_thread_fence trips gcc's -Wtsan).
  std::uint64_t words[3];
  for (int w = 0; w < 3; ++w) {
    words[w] = s.name_words[w].load(std::memory_order_acquire);
  }
  std::memcpy(out->name, words, sizeof(out->name));
  out->name[kNameBytes - 1] = '\0';
  out->start_ns = s.start_ns.load(std::memory_order_acquire);
  out->track = s.track.load(std::memory_order_acquire);
  out->task_id = s.task_id.load(std::memory_order_acquire);
  out->tid = s.tid.load(std::memory_order_acquire);
  return s.state.load(std::memory_order_relaxed) == 2;
}

std::vector<PendingSpanTable::Entry> PendingSpanTable::snapshot() const {
  std::vector<Entry> out;
  for (int i = 0; i < kSlots; ++i) {
    Entry entry;
    if (read_slot(i, &entry)) out.push_back(entry);
  }
  return out;
}

}  // namespace pico::obs
