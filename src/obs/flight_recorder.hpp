// Flight recorder: the cluster's always-on black box.
//
// A bounded, lock-free, per-thread ring journal of structured control-plane
// events — plan switches, epoch transitions, task accept/retry/complete,
// queue highwater, harvest rounds, health verdicts, transport
// connect/timeout/close.  It completes the observability stack's third leg:
// metrics answer "how much", traces answer "how long", the flight recorder
// answers "what did the runtime decide, in what order" — and, because the
// rings are crash-readable, it still answers after a SIGSEGV (see
// obs/postmortem.hpp).
//
// Design constraints, in priority order:
//   1. Always on.  record() must be cheap enough (≲100 ns) to leave enabled
//      in production: one global relaxed fetch_add for the merge order, one
//      per-thread ring index bump, eleven relaxed atomic stores.  No locks,
//      no allocation, ever.  PICO_EVENTS=0 reduces it to one relaxed load.
//   2. Crash-readable.  All storage is reachable from a raw pointer
//      published before any handler can run; the dump path in postmortem.cpp
//      walks it with the *_raw accessors below — no locks, no allocation,
//      async-signal-safe.  Records commit via a per-slot seqlock (payload
//      stores bracketed by release stores of the sequence word), so a torn
//      in-progress record is detected and skipped rather than mis-parsed.
//   3. TSan-clean.  Every cross-thread-visible field of a ring slot is a
//      relaxed atomic; the seqlock commit word carries the release/acquire
//      edge.  No bare shared state (the repo's standing requirement).
//
// Events carry up to four integer args; rare strings (scheme names, file
// names) go through a small append-only intern table and travel as indices.
// Thread identity is a claim-ordered small integer (tid) mapped to a
// human-readable name by set_thread_name(), which also names the OS thread
// (pthread_setname_np) so TSan reports and debuggers agree with the journal.
//
// The coordinator pulls worker rings over the control plane (EventDump verb,
// message.hpp) with the span-cursor protocol: chunk(cursor) returns every
// committed event with seq > cursor plus [base, next].  Unlike SpanBuffer
// the storage is a ring — old events are overwritten, never retained for
// re-delivery — so base > cursor + 1 signals a gap (the overwritten span of
// history), which the harvester tolerates by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace pico::obs {

/// What happened.  Codes are wire-stable: append only, never renumber.
enum class EventCode : std::uint16_t {
  None = 0,
  ThreadStart = 1,       ///< a0 = tid (name in the thread table)
  PlanSwitch = 2,        ///< a0/a1 = from/to scheme (string idx), a2 = epoch
  EpochStart = 3,        ///< a0 = epoch, a1 = devices
  EpochRetire = 4,       ///< a0 = epoch, a1 = first dead device (-1 none)
  TaskAccept = 5,        ///< a0 = task
  TaskRetry = 6,         ///< a0 = task, a1 = attempt, a2 = epoch
  TaskComplete = 7,      ///< a0 = task
  TaskFail = 8,          ///< a0 = task, a1 = attempts
  QueueHighWater = 9,    ///< a0 = in-flight tasks (new admission highwater)
  HarvestRound = 10,     ///< a0 = round, a1 = reachable, a2 = devices
  HealthStraggler = 11,  ///< a0 = device, a1 = stage
  HealthRecovered = 12,  ///< a0 = device
  HealthModelDrift = 13, ///< a0 = stage
  HealthUnreachable = 14,///< a0 = device
  HealthDeviceDown = 15, ///< a0 = device, a1 = round
  TransportConnect = 16, ///< a0 = port (tcp) or 0 (in-process)
  TransportTimeout = 17, ///< a0 = mid_frame (0/1)
  TransportClose = 18,   ///< a0 = fd (tcp) or 0
  WorkerServe = 19,      ///< a0 = task, a1 = first layer, a2 = device
  WorkerReply = 20,      ///< a0 = task, a1 = device
  WorkerShutdown = 21,   ///< a0 = device
  CheckFailed = 22,      ///< a0 = line, a1 = file basename (string idx)
  DeviceFailure = 23,    ///< a0 = device, a1 = stage (-1 = heartbeat)
  Postmortem = 24,       ///< a0 = signal number (0 = terminate/manual)
};

/// Coarse grouping for filters and rendering.
enum class EventCategory : std::uint16_t {
  Lifecycle = 0,
  Task = 1,
  Harvest = 2,
  Health = 3,
  Transport = 4,
  Worker = 5,
  Check = 6,
};

/// Stable lowercase identifier ("task_accept"); "?" for unknown codes.
const char* event_code_name(EventCode code);
/// Inverse of event_code_name; EventCode::None when unknown.
EventCode event_code_from_name(const char* name);
EventCategory event_category(EventCode code);
const char* event_category_name(EventCategory category);

/// One committed journal entry — plain data, trivially copyable, the unit
/// the wire codec and the postmortem dump both move verbatim.
struct EventRecord {
  std::uint64_t seq = 0;   ///< global merge order (1-based; 0 = empty slot)
  std::int64_t t_ns = 0;   ///< Tracer::now_ns() at record time (local clock)
  std::uint32_t tid = 0;   ///< recorder thread id (claim order, 1-based)
  std::uint16_t category = 0;  ///< EventCategory
  std::uint16_t code = 0;      ///< EventCode
  std::int64_t args[4] = {0, 0, 0, 0};
};

/// One cursor-delimited slice of the merged journal (EventDump reply).
/// base > cursor + 1 means events (cursor, base) were overwritten before
/// this pull — the ring's bounded-history contract, not an error.
struct EventChunk {
  std::uint64_t base = 0;  ///< seq of the first event included (cursor if none)
  std::uint64_t next = 0;  ///< cursor to present next round
  std::vector<EventRecord> events;  ///< sorted by seq, all > request cursor
};

class FlightRecorder {
 public:
  static constexpr int kMaxThreads = 64;       ///< concurrent recording threads
  static constexpr int kRingSize = 256;        ///< events kept per thread
  static constexpr int kMaxStrings = 128;      ///< intern table capacity
  static constexpr int kStringBytes = 48;      ///< max interned length (w/ NUL)
  static constexpr int kMaxThreadNames = 128;  ///< thread-name log capacity
  static constexpr int kNameBytes = 16;        ///< pthread name limit (w/ NUL)

  /// Process-wide instance, allocated once and never destroyed (worker and
  /// TLS-destructor paths may record during static teardown).  First call
  /// reads PICO_EVENTS (unset/non-zero = on, "0" = off).
  static FlightRecorder& global();

  /// The instance pointer if global() has run, else nullptr.  The crash
  /// handler reads this instead of calling global(): a function-local
  /// static's init guard is not async-signal-safe.
  static FlightRecorder* crash_instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Append one event to the calling thread's ring.  Lock-free, allocation
  /// free; drops (counted) if more than kMaxThreads threads record at once.
  void record(EventCode code, std::int64_t a0 = 0, std::int64_t a1 = 0,
              std::int64_t a2 = 0, std::int64_t a3 = 0);

  /// Intern a short string, returning its stable table index (0 = the empty
  /// string, also the overflow sentinel).  Linear-scan dedup — call on rare
  /// paths only (plan switches, check failures), never per task.
  std::uint16_t intern(const char* text);
  /// Table lookup; "" for out-of-range indices.
  const char* string_at(std::uint16_t index) const;
  int string_count() const {
    return string_count_.load(std::memory_order_acquire);
  }

  /// Name the calling thread: sets the OS thread name (pthread_setname_np,
  /// truncated to 15 chars), logs {tid, name} in the thread table, and
  /// records a ThreadStart event.
  void set_thread_name(const char* name);
  /// Recorder tid of the calling thread (claims a ring if needed); 0 if the
  /// ring table is exhausted.
  std::uint32_t current_tid();
  /// The calling thread's name as set by set_thread_name ("" before).
  /// Pointer valid for the process lifetime.
  const char* current_thread_name();

  struct ThreadName {
    std::uint32_t tid = 0;
    char name[kNameBytes] = {};
  };
  std::vector<ThreadName> thread_names() const;

  /// Every committed event, merged across rings and sorted by seq.
  std::vector<EventRecord> snapshot() const { return chunk(0).events; }
  /// Events with seq > cursor, sorted; see EventChunk for gap semantics.
  EventChunk chunk(std::uint64_t cursor) const;
  /// Sequence the next record() will take.
  std::uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Empty every ring (sequence numbers stay monotone — cursors held by
  /// harvesters remain valid).  Test isolation only.
  void clear();

  // -- crash-path raw accessors (async-signal-safe: no locks, no allocation,
  //    bounded work; see postmortem.cpp for the full signal-safety argument)

  int ring_count() const { return kMaxThreads; }
  int ring_size() const { return kRingSize; }
  /// Seqlock-read one slot into `out`; false when empty or torn (a record
  /// being overwritten concurrently — skip it, the journal is best-effort
  /// by design at the crash boundary).
  bool read_slot(int ring, int slot, EventRecord* out) const;
  /// Copy up to `cap` thread-name entries; returns the count copied.
  int thread_names_raw(ThreadName* out, int cap) const;
  /// Raw intern-table row (NUL-terminated, process-lifetime storage).
  const char* string_raw(int index) const { return strings_[index].text; }

 private:
  FlightRecorder();

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< commit word, 0 = empty/in-progress
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint16_t> category{0};
    std::atomic<std::uint16_t> code{0};
    std::atomic<std::int64_t> args[4];
  };

  struct ThreadRing {
    std::atomic<std::uint32_t> owner{0};  ///< 0 = free, 1 = claimed
    std::atomic<std::uint32_t> tid{0};    ///< claim-ordered id of the owner
    std::atomic<std::uint32_t> head{0};   ///< next write position (monotone)
    Slot slots[kRingSize];
  };

  struct InternedString {
    char text[kStringBytes] = {};
  };

  struct NameEntry {
    std::atomic<std::uint32_t> tid{0};
    char name[kNameBytes] = {};
  };

  /// The calling thread's ring, claimed on first use and released (contents
  /// retained) when the thread exits; nullptr when all rings are taken.
  ThreadRing* local_ring();

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint32_t> next_tid_{1};
  ThreadRing rings_[kMaxThreads];
  InternedString strings_[kMaxStrings];
  std::atomic<int> string_count_{1};  ///< slot 0 = ""
  NameEntry names_[kMaxThreadNames];
  std::atomic<int> name_count_{0};
};

/// Convenience: FlightRecorder::global().record(...) — the one-liner every
/// instrumentation site uses.
inline void record_event(EventCode code, std::int64_t a0 = 0,
                         std::int64_t a1 = 0, std::int64_t a2 = 0,
                         std::int64_t a3 = 0) {
  FlightRecorder::global().record(code, a0, a1, a2, a3);
}

/// Name the calling thread everywhere at once (OS, recorder, spans).
void set_current_thread_name(const char* name);

/// Binary encoding of an event chunk — the EventDump wire payload ("PEV1":
/// header, fixed-width records, then the thread-name and string tables so a
/// harvested ring renders without the worker process).  decode_events
/// throws TransportError on a malformed buffer (wire-taint: every count is
/// bounds-checked against the remaining bytes before use).
std::vector<std::uint8_t> encode_events(const EventChunk& chunk);
EventChunk decode_events(const std::uint8_t* data, std::size_t size);

// -- pending-span table ------------------------------------------------------

/// Crash-visible registry of the spans currently *open* (obs::Span objects
/// alive right now).  A fixed slot table of POD copies with a per-slot
/// state word: the Span constructor claims a slot and commits a copy of the
/// identifying fields, the destructor releases it.  The postmortem dump
/// walks committed slots — "what was the process in the middle of" — which
/// the completed-span trace cannot answer (a span interrupted by SIGSEGV is
/// never recorded).  Only engaged while tracing is enabled, so the recorder
/// ≤1% budget is unaffected.
class PendingSpanTable {
 public:
  static constexpr int kSlots = 128;
  static constexpr int kNameBytes = 24;

  struct Entry {
    char name[kNameBytes] = {};
    std::int64_t start_ns = 0;
    std::int64_t track = 0;
    std::int64_t task_id = -1;
    std::uint32_t tid = 0;
  };

  static PendingSpanTable& global();

  /// The instance pointer if global() has run, else nullptr.  The crash
  /// handler reads this instead of calling global(): a function-local
  /// static's init guard (and the `new` behind it) is not
  /// async-signal-safe.
  static PendingSpanTable* crash_instance();

  /// Claim a slot and commit `entry`; -1 when full (span goes untracked).
  int claim(const Entry& entry);
  void release(int slot);

  int slot_count() const { return kSlots; }
  /// Seqlock-read one slot; false when free or mid-transition.
  bool read_slot(int slot, Entry* out) const;
  /// All committed entries (test/report convenience; allocates).
  std::vector<Entry> snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> state{0};  ///< 0 free, 1 claiming, 2 committed
    std::atomic<std::uint64_t> name_words[3];  ///< packed kNameBytes
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> track{0};
    std::atomic<std::int64_t> task_id{0};
    std::atomic<std::uint32_t> tid{0};
  };
  Slot slots_[kSlots];
};

}  // namespace pico::obs
