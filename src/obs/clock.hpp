// Clock-offset estimation between the coordinator and a remote device.
//
// Tracer::now_ns() is a *per-process* monotonic timebase (nanoseconds since
// first use), so timestamps taken on different hosts — or even different
// processes on one host — are mutually meaningless.  To place worker-side
// spans on the coordinator timeline, each request/response round trip yields
// an NTP-style timestamp quadruple
//
//   t1 = coordinator clock at request send
//   t2 = worker clock at request receipt
//   t3 = worker clock at reply send
//   t4 = coordinator clock at reply receipt
//
// from which  offset = ((t2 - t1) + (t3 - t4)) / 2  estimates how far the
// worker clock runs ahead of the coordinator clock, and
// rtt = (t4 - t1) - (t3 - t2) is the pure wire round trip (worker service
// time excluded).  The estimation error is bounded by the one-way-delay
// asymmetry, which is at most rtt / 2 — so low-RTT samples are the accurate
// ones.  ClockOffsetEstimator keeps the minimum observed RTT, feeds only
// samples whose RTT is within a gate of that minimum into an EWMA (jittery
// samples are filtered out, they only refresh the RTT statistics), and
// reports an error bound of min_rtt / 2.
//
// Samples arrive from two producers: every WorkResult piggybacks a
// quadruple (big payloads, asymmetric — kept in check by the RTT gate), and
// lightweight Ping/Pong control messages provide tight symmetric probes
// (the harvest path sends a burst of them before pulling dumps).
#pragma once

#include <cstdint>

#include "common/mutex.hpp"

namespace pico::obs {

/// One NTP-style round-trip observation (all Tracer::now_ns() timebases;
/// t1/t4 on the local clock, t2/t3 on the remote clock).
struct ClockSample {
  std::int64_t t1_ns = 0;
  std::int64_t t2_ns = 0;
  std::int64_t t3_ns = 0;
  std::int64_t t4_ns = 0;

  /// Remote-minus-local clock offset implied by this sample.
  std::int64_t offset_ns() const {
    return ((t2_ns - t1_ns) + (t3_ns - t4_ns)) / 2;
  }
  /// Wire round trip with the remote's service time subtracted out.
  std::int64_t rtt_ns() const {
    return (t4_ns - t1_ns) - (t3_ns - t2_ns);
  }
  /// A usable sample moves forward on both clocks.
  bool plausible() const { return t4_ns >= t1_ns && t3_ns >= t2_ns; }
};

/// EWMA offset estimator with a minimum-RTT acceptance gate.  Thread-safe:
/// results for one device may arrive from several coordinator threads (a
/// sequential plan reuses devices across stages).
class ClockOffsetEstimator {
 public:
  struct Options {
    double alpha = 0.25;     ///< EWMA weight of an accepted sample
    double rtt_gate = 2.0;   ///< accept samples with rtt <= gate * min_rtt
  };

  ClockOffsetEstimator() : ClockOffsetEstimator(Options{}) {}
  explicit ClockOffsetEstimator(Options options) : options_(options) {}

  /// Feed one quadruple; implausible samples (clock went backwards) are
  /// counted but otherwise ignored.
  void update(const ClockSample& sample);

  /// True once at least one sample passed the gate.
  bool valid() const;

  /// Smoothed remote-minus-local offset (0 until valid()).
  std::int64_t offset_ns() const;
  /// Smoothed accepted-sample RTT (0 until valid()).
  std::int64_t rtt_ns() const;
  /// Best (minimum) RTT seen; the tightest sample the estimate leans on.
  std::int64_t min_rtt_ns() const;
  /// Worst-case estimation error: half the best round trip observed.
  std::int64_t error_bound_ns() const;

  int samples() const;   ///< quadruples offered
  int accepted() const;  ///< quadruples that passed the RTT gate

  /// Map a remote-clock instant onto the local timeline.
  std::int64_t rebase(std::int64_t remote_ns) const {
    return remote_ns - offset_ns();
  }

 private:
  const Options options_;
  mutable Mutex mutex_;
  int samples_ PICO_GUARDED_BY(mutex_) = 0;
  int accepted_ PICO_GUARDED_BY(mutex_) = 0;
  double offset_ns_ PICO_GUARDED_BY(mutex_) = 0.0;
  double rtt_ns_ PICO_GUARDED_BY(mutex_) = 0.0;
  std::int64_t min_rtt_ns_ PICO_GUARDED_BY(mutex_) = 0;
};

/// Test hook simulating an unsynchronized device clock: worker-side
/// timestamping (worker_now_ns) reads Tracer::now_ns() shifted by this
/// constant.  Default 0; only tests set it.  In-process workers share the
/// coordinator's clock, so without this hook loopback tests would exercise
/// the estimator only around a trivial zero offset.
void set_debug_clock_skew_ns(std::int64_t skew_ns);
std::int64_t debug_clock_skew_ns();

/// The worker-side clock: Tracer::now_ns() plus the debug skew.  Every
/// timestamp a worker puts on the wire (t2/t3, compute start/end) and into
/// its local span buffer uses this, so the rebase path is exercised
/// end to end when a test injects skew.
std::int64_t worker_now_ns();

}  // namespace pico::obs
