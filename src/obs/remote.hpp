// Remote telemetry harvest: pull worker-side metrics and trace buffers over
// the transport and merge them — clock-offset corrected — into one
// cluster-wide view.
//
// The transport itself lives above this module (runtime depends on obs, not
// the reverse), so the harvester talks through three closures per worker
// endpoint: `ping` performs one lightweight round trip and returns the
// timestamp quadruple, `fetch_metrics` pulls the worker's Prometheus text
// (MetricsDump), and `fetch_trace` drains the worker's span buffer
// (TraceDump).  harvest_worker() sends a burst of pings to converge the
// ClockOffsetEstimator, pulls both dumps, and rebases every harvested span
// onto the local (coordinator) timeline.  ClusterTelemetry accumulates the
// per-worker results and produces the merged artifacts: one aggregated
// Prometheus dump and one Chrome-trace span list in which worker compute
// sits — monotonic and correctly nested — under the coordinator's task
// spans.
//
// SpanBuffer is the worker-side half: a small mutex-guarded span store the
// serve loop records into, drains into a TraceDump reply, and flushes into
// the process-global Tracer on graceful shutdown so telemetry from
// short-lived runs is never silently lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace pico::obs {

/// Worker-side span store.  record() is called by the serve thread;
/// drain() by the same thread when answering a TraceDump — but the
/// annotation-enforced locking keeps it safe if a future worker grows
/// internal parallelism (ROADMAP: no bare shared state in the runtime).
class SpanBuffer {
 public:
  void record(SpanRecord span) {
    MutexLock lock(mutex_);
    spans_.push_back(std::move(span));
  }

  /// Move out everything recorded so far (the TraceDump reply payload).
  std::vector<SpanRecord> drain() {
    MutexLock lock(mutex_);
    std::vector<SpanRecord> out;
    out.swap(spans_);
    return out;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return spans_.size();
  }

  /// Graceful-shutdown drain: move any unharvested spans into the global
  /// Tracer so they survive the serve loop (correct timebase whenever the
  /// worker shares the coordinator's process/clock; a remote process keeps
  /// them visible in its own tracer for local dumping).
  void flush_to_tracer();

 private:
  mutable Mutex mutex_;
  std::vector<SpanRecord> spans_ PICO_GUARDED_BY(mutex_);
};

/// Binary encoding of a span list — the TraceDump wire payload.
/// decode_spans throws TransportError on a malformed buffer.
std::vector<std::uint8_t> encode_spans(const std::vector<SpanRecord>& spans);
std::vector<SpanRecord> decode_spans(const std::uint8_t* data,
                                     std::size_t size);

/// Everything harvested from one worker, spans already rebased onto the
/// local timeline (span.start_ns -= estimated offset).
struct WorkerTelemetry {
  int device = -1;
  bool reachable = false;       ///< harvest round trips succeeded
  std::int64_t offset_ns = 0;   ///< remote-minus-local clock offset
  std::int64_t rtt_ns = 0;      ///< smoothed ping RTT
  std::int64_t error_bound_ns = 0;
  int clock_samples = 0;        ///< accepted quadruples behind offset_ns
  std::string metrics_text;     ///< worker registry, Prometheus exposition
  std::vector<SpanRecord> spans;  ///< rebased worker spans
};

/// One worker endpoint, expressed transport-agnostically.  Any closure may
/// throw (e.g. TransportError when the worker died); harvest_worker then
/// returns a WorkerTelemetry with reachable = false.
struct HarvestEndpoint {
  int device = -1;
  std::function<ClockSample()> ping;
  std::function<std::string()> fetch_metrics;
  std::function<std::vector<SpanRecord>()> fetch_trace;
  /// Estimator to refine and use for rebasing.  Usually pre-warmed by the
  /// piggybacked quadruples of ordinary WorkResults; null = local-only.
  ClockOffsetEstimator* clock = nullptr;
};

/// Ping `clock_pings` times, pull both dumps, rebase the spans.
WorkerTelemetry harvest_worker(const HarvestEndpoint& endpoint,
                               int clock_pings = 4);

/// Accumulates WorkerTelemetry across workers (and, for the adaptive
/// runtime, across plan switches).  Guarded: teardown harvests while other
/// threads may still read a previous snapshot.
class ClusterTelemetry {
 public:
  void add(WorkerTelemetry telemetry);
  void merge_from(ClusterTelemetry&& other);

  std::vector<WorkerTelemetry> workers() const;

  /// Harvested worker spans (already rebased) from every worker.
  std::vector<SpanRecord> worker_spans() const;

  /// One cluster-wide Prometheus dump: the local (coordinator) exposition
  /// followed by each worker's, delimited by comment headers carrying the
  /// device id and the offset used for rebasing.
  std::string merged_prometheus(const std::string& local_text) const;

 private:
  mutable Mutex mutex_;
  std::vector<WorkerTelemetry> workers_ PICO_GUARDED_BY(mutex_);
};

}  // namespace pico::obs
